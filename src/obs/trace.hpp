// Opt-in per-request span tracing on a pooled slab.
//
// A span is one hop of a request's journey (proxy, application, or
// database) with three instants: when the hop *enqueued* the work, when
// service actually *started* (resource granted), and when it *completed*.
// Queue wait (start - enqueue) and service time (complete - start) therefore
// decompose exactly — the signal the SLA-control work needs to tell an
// overloaded queue from a slow server.
//
// Determinism and passivity:
//   * Sampling is by request sequence number — a request is traced iff
//     `id % every_nth == 0` — never by RNG, so the same run traces the same
//     requests at any thread count and tracing perturbs nothing.
//   * The span slab is allocated once at construction and reused as a ring:
//     when full, the oldest spans are overwritten.  Recording a span is a
//     few stores into the slab; no allocation, no events, no clock reads.
//   * Servers record through AH_OBS_TRACE_SPAN, which checks the recorder
//     pointer and the sampling predicate before touching anything; with
//     tracing off (null recorder) the macro is a single branch.
//
// Export is CSV (cold path): one row per span, in record order (oldest
// surviving span first), with queue-wait and service-time columns derived
// from the instants.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/analysis.hpp"
#include "common/units.hpp"

// sampled()/record_span() run behind AH_OBS_TRACE_SPAN on every traced hop.
AH_HOT_PATH_FILE;

namespace ah::obs {

/// Which tier produced a span.
enum class Hop : std::uint8_t { kProxy = 0, kApp = 1, kDb = 2 };

[[nodiscard]] const char* hop_name(Hop hop);

/// One recorded hop of a traced request.  `node` points at the stable name
/// string owned by the cluster::Node (nodes outlive the recorder's export).
struct Span {
  std::uint64_t request_id = 0;
  const char* node = "";
  Hop hop = Hop::kProxy;
  common::SimTime enqueue = common::SimTime::zero();
  common::SimTime start = common::SimTime::zero();
  common::SimTime complete = common::SimTime::zero();
};

class TraceRecorder {
 public:
  /// `every_nth`: trace requests whose id is divisible by it (>= 1; 1 means
  /// every request).  `capacity`: span slab size; the ring keeps the most
  /// recent `capacity` spans.
  explicit TraceRecorder(std::uint64_t every_nth = 1,
                         std::size_t capacity = 1 << 16);

  /// Sequence-based sampling predicate; no RNG by design (see file comment).
  [[nodiscard]] bool sampled(std::uint64_t request_id) const {
    return request_id % every_nth_ == 0;
  }

  /// Appends a span to the ring.  Alloc-free; hot-path files must call
  /// through AH_OBS_TRACE_SPAN (ah_lint rule obs_hot_path).
  void record_span(std::uint64_t request_id, Hop hop, const char* node,
                   common::SimTime enqueue, common::SimTime start,
                   common::SimTime complete) {
    Span& s = slab_[next_];
    s.request_id = request_id;
    s.node = node;
    s.hop = hop;
    s.enqueue = enqueue;
    s.start = start;
    s.complete = complete;
    next_ = (next_ + 1) % slab_.size();
    ++recorded_;
  }

  /// Total spans ever recorded (including ones the ring has overwritten).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Spans currently held in the ring.
  [[nodiscard]] std::size_t size() const {
    return recorded_ < slab_.size() ? static_cast<std::size_t>(recorded_)
                                    : slab_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return slab_.size(); }
  [[nodiscard]] std::uint64_t every_nth() const { return every_nth_; }

  /// Oldest-first view: index 0 is the oldest surviving span.
  [[nodiscard]] const Span& span(std::size_t i) const;

  void reset() {
    next_ = 0;
    recorded_ = 0;
  }

  /// Writes all surviving spans as CSV, oldest first.
  /// Columns: request_id,hop,node,enqueue_us,start_us,complete_us,
  ///          queue_wait_us,service_us
  void write_csv(std::FILE* out) const;
  /// Convenience: opens `path`, writes, closes.  Returns false on I/O error.
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  std::uint64_t every_nth_;
  std::vector<Span> slab_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace ah::obs

/// Null-checked, sampling-gated span record for hot-path files.  The macro
/// spelling is the approved zero-alloc form recognised by ah_lint's
/// obs_hot_path rule; a direct `->record_span(...)` in an AH_HOT_PATH_FILE
/// file is a lint finding.  `rec` is a (possibly null) ah::obs::TraceRecorder*.
#define AH_OBS_TRACE_SPAN(rec, id, hop, node, enq, start, complete)       \
  do {                                                                    \
    ::ah::obs::TraceRecorder* ah_obs_t_ = (rec);                          \
    if (ah_obs_t_ != nullptr && ah_obs_t_->sampled(id)) {                 \
      AH_LINT_ALLOW(obs_hot_path, "the approved macro's own body");       \
      ah_obs_t_->record_span((id), (hop), (node), (enq), (start),         \
                             (complete));                                 \
    }                                                                     \
  } while (false)
