#include "obs/registry.hpp"

#include <cinttypes>
#include <cstdarg>

namespace ah::obs {
namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

void Registry::add_counter(std::string name, CounterFn pull) {
  counters_.push_back({std::move(name), std::move(pull)});
}

void Registry::add_gauge(std::string name, GaugeFn pull) {
  gauges_.push_back({std::move(name), std::move(pull)});
}

void Registry::add_histogram(std::string name, const Histogram* histogram) {
  histograms_.push_back({std::move(name), histogram});
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  for (const Counter& c : counters_) {
    if (c.name == name) return c.pull();
  }
  return 0;
}

std::string Registry::json_string() const {
  std::string out;
  out += "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    append_fmt(out, "%s\n    \"%s\": %" PRIu64, i == 0 ? "" : ",",
               counters_[i].name.c_str(), counters_[i].pull());
  }
  out += counters_.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    append_fmt(out, "%s\n    \"%s\": %.6f", i == 0 ? "" : ",",
               gauges_[i].name.c_str(), gauges_[i].pull());
  }
  out += gauges_.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = *histograms_[i].histogram;
    append_fmt(out,
               "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"min_us\": %" PRIu64
               ", \"mean_us\": %.3f, \"p50_us\": %" PRIu64
               ", \"p95_us\": %" PRIu64 ", \"p99_us\": %" PRIu64
               ", \"max_us\": %" PRIu64 "}",
               i == 0 ? "" : ",", histograms_[i].name.c_str(), h.count(),
               h.min_us(), h.mean_us(), h.p50_us(), h.p95_us(), h.p99_us(),
               h.max_us());
  }
  out += histograms_.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Registry::csv_string() const {
  std::string out = "metric,value\n";
  for (const Counter& c : counters_) {
    append_fmt(out, "%s,%" PRIu64 "\n", c.name.c_str(), c.pull());
  }
  for (const Gauge& g : gauges_) {
    append_fmt(out, "%s,%.6f\n", g.name.c_str(), g.pull());
  }
  for (const Hist& h : histograms_) {
    const Histogram& hist = *h.histogram;
    append_fmt(out, "%s.count,%" PRIu64 "\n", h.name.c_str(), hist.count());
    append_fmt(out, "%s.min_us,%" PRIu64 "\n", h.name.c_str(), hist.min_us());
    append_fmt(out, "%s.mean_us,%.3f\n", h.name.c_str(), hist.mean_us());
    append_fmt(out, "%s.p50_us,%" PRIu64 "\n", h.name.c_str(), hist.p50_us());
    append_fmt(out, "%s.p95_us,%" PRIu64 "\n", h.name.c_str(), hist.p95_us());
    append_fmt(out, "%s.p99_us,%" PRIu64 "\n", h.name.c_str(), hist.p99_us());
    append_fmt(out, "%s.max_us,%" PRIu64 "\n", h.name.c_str(), hist.max_us());
  }
  return out;
}

namespace {

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const bool closed = std::fclose(out) == 0;
  return written == text.size() && closed;
}

}  // namespace

bool Registry::write_json(const std::string& path) const {
  return write_text(path, json_string());
}

bool Registry::write_csv(const std::string& path) const {
  return write_text(path, csv_string());
}

}  // namespace ah::obs
