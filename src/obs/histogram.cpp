#include "obs/histogram.hpp"

#include <cmath>

namespace ah::obs {

std::uint64_t Histogram::percentile_us(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_us_;
  if (q < 0.0) q = 0.0;
  // Exact-rank: the value at sorted position ceil(q * count), 1-based.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  const std::size_t last = bucket_index(max_us_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // The highest occupied bucket contains the maximum; report it exactly
      // rather than the bucket's lower bound.
      return i == last ? max_us_ : bucket_low_us(i);
    }
  }
  return max_us_;
}

}  // namespace ah::obs
