#include "obs/histogram.hpp"

#include <cmath>

#include "common/analysis.hpp"

AH_HOT_PATH_FILE;

namespace ah::obs {

Histogram::Page& Histogram::touch_page(std::size_t p) {
  // First-touch page-in only: every octave the workload reaches is paged in
  // during warm-up, so the measured steady state never takes this branch
  // (zero_alloc_test pins that).
  AH_LINT_ALLOW(hot_path_alloc, "lazy first-touch page-in, warm-up only");
  if (pages_[p] == nullptr) pages_[p] = std::make_unique<Page>();
  return *pages_[p];
}

std::uint64_t Histogram::percentile_us(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_us_;
  if (q < 0.0) q = 0.0;
  // Exact-rank: the value at sorted position ceil(q * count), 1-based.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  const std::size_t last = bucket_index(max_us_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    // Skip octaves that were never paged in (every counter in them is 0).
    if (pages_[i >> kSubBits] == nullptr) {
      i |= static_cast<std::size_t>(kSubBuckets - 1);
      continue;
    }
    seen += bucket(i);
    if (seen >= rank) {
      // The highest occupied bucket contains the maximum; report it exactly
      // rather than the bucket's lower bound.
      return i == last ? max_us_ : bucket_low_us(i);
    }
  }
  return max_us_;
}

}  // namespace ah::obs
