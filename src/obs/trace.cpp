#include "obs/trace.hpp"

namespace ah::obs {

const char* hop_name(Hop hop) {
  switch (hop) {
    case Hop::kProxy:
      return "proxy";
    case Hop::kApp:
      return "app";
    case Hop::kDb:
      return "db";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::uint64_t every_nth, std::size_t capacity)
    : every_nth_(every_nth > 0 ? every_nth : 1),
      slab_(capacity > 0 ? capacity : 1) {}

const Span& TraceRecorder::span(std::size_t i) const {
  const std::size_t n = size();
  // With a full ring, the oldest surviving span sits at next_.
  const std::size_t base = recorded_ > n ? next_ : 0;
  return slab_[(base + i) % slab_.size()];
}

void TraceRecorder::write_csv(std::FILE* out) const {
  std::fprintf(out,
               "request_id,hop,node,enqueue_us,start_us,complete_us,"
               "queue_wait_us,service_us\n");
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = span(i);
    const long long enq = static_cast<long long>(s.enqueue.as_micros());
    const long long start = static_cast<long long>(s.start.as_micros());
    const long long complete = static_cast<long long>(s.complete.as_micros());
    std::fprintf(out, "%llu,%s,%s,%lld,%lld,%lld,%lld,%lld\n",
                 static_cast<unsigned long long>(s.request_id),
                 hop_name(s.hop), s.node, enq, start, complete, start - enq,
                 complete - start);
  }
}

bool TraceRecorder::write_csv(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  write_csv(out);
  const bool ok = std::fclose(out) == 0;
  return ok;
}

}  // namespace ah::obs
