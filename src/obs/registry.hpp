// Unified pull-based metrics registry.
//
// Components register named sources once at wiring time; the registry pulls
// current values only when a snapshot is requested.  Nothing is pushed on
// the hot path, no events are scheduled, and the simulation cannot observe
// whether a registry exists — which is the passivity argument: runs with
// and without `--metrics` are byte-identical because the registry's only
// interaction with the system is reading counters that were being
// maintained anyway.
//
// Determinism of the snapshot itself: sources are emitted in registration
// order (a vector, not a map), values are printed with fixed formats
// (integers as-is, doubles with fixed precision), and every value pulled is
// itself deterministic at any thread count.  Hence `metrics.json` is
// byte-identical across `--threads 1/2/8`.
//
// The registry is cold-path by construction, so it is allowed what the hot
// path is not: std::function, std::string, allocation at registration and
// snapshot time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace ah::obs {

class Registry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  /// Registers a monotonic (or at least integer-valued) source, e.g.
  /// messages_sent, health transitions, pool occupancy.
  void add_counter(std::string name, CounterFn pull);

  /// Registers a real-valued source, e.g. an EWMA utilization reading.
  void add_gauge(std::string name, GaugeFn pull);

  /// Registers a histogram by pointer; the snapshot reports
  /// count/min/mean/p50/p95/p99/max.  The histogram must outlive the
  /// registry (they are owned by the components being observed).
  void add_histogram(std::string name, const Histogram* histogram);

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const {
    return histograms_.size();
  }

  /// Pulls one counter by name (test/inspection convenience); returns 0
  /// when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Full snapshot as a JSON document (registration order, fixed formats).
  [[nodiscard]] std::string json_string() const;

  /// Writes json_string() to `path`.  Returns false on I/O error.
  [[nodiscard]] bool write_json(const std::string& path) const;

  /// Flat CSV snapshot: `metric,value` rows, histograms expanded into
  /// .count/.min_us/.mean_us/.p50_us/.p95_us/.p99_us/.max_us rows.
  [[nodiscard]] std::string csv_string() const;
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  struct Counter {
    std::string name;
    CounterFn pull;
  };
  struct Gauge {
    std::string name;
    GaugeFn pull;
  };
  struct Hist {
    std::string name;
    const Histogram* histogram;
  };

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Hist> histograms_;
};

}  // namespace ah::obs
