// Fixed-size log-linear latency histogram (HDR-histogram style).
//
// Values are integer microseconds — the simulator's native time unit — so
// recording is a pure array increment: compute a bucket index from the bit
// width of the value, bump a counter.  No floating point, no allocation, no
// RNG, no events.  That is what lets histograms stay recording even on runs
// whose golden outputs must remain byte-identical: observation is passive.
//
// Bucket layout: 2^kSubBits (= 32) linear sub-buckets per power-of-two
// octave.  Group 0 covers [0, 32) exactly (one bucket per microsecond);
// group g >= 1 covers [32 * 2^(g-1), 32 * 2^g) in 32 equal sub-buckets, so
// relative bucket width is bounded by 1/32 ≈ 3.1% everywhere.  Group g's
// buckets start at index (g + 1) * 32 — the branch-free index formula leaves
// slots [32, 64) unused — so the full 64-bit range (groups 0..59) spans
// 61 * 32 = 1952 bucket indices.
//
// Counters are paged: one 32-counter page per octave group, allocated on
// the first record that touches the group and retained across reset().  A
// real latency population occupies a handful of octaves, so an idle
// histogram costs its 61-pointer page table instead of a 15 KiB slab —
// which is what keeps the per-line telemetry of a 128-line model (dozens
// of histograms per line) in the noise.  A warmed-up histogram's record
// path is still a pure array increment: every octave the workload can
// reach is paged in during warm-up, which is why the zero-allocation
// request-path property (zero_alloc_test) measures after warm-up.
//
// Percentiles use the exact-rank method: rank = ceil(q * count), walk the
// buckets accumulating counts, report the lower bound of the bucket that
// contains the rank (exact for values < 32 us; within one sub-bucket width
// otherwise).  The maximum is tracked exactly on the side.  Identical
// record sequences therefore produce identical percentiles on every
// platform and at every thread count.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>

#include "common/analysis.hpp"
#include "common/units.hpp"

// record_us/record run behind the AH_OBS_* macros on every traced request.
AH_HOT_PATH_FILE;

namespace ah::obs {

class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;          // 32
  static constexpr int kGroups = 64 - kSubBits;              // 59 + group 0
  /// Highest index is for group kGroups, sub kSubBuckets-1:
  /// kGroups * 32 + (32 - 1) + 32, hence the + 2 (slots [32, 64) go unused
  /// so that bucket_index stays branch-free).
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kGroups + 2) * kSubBuckets;   // 1952
  /// One counter page per octave group.
  static constexpr std::size_t kPageCount = kBucketCount / kSubBuckets;  // 61

  Histogram() = default;

  /// Records one value in integer microseconds.  Hot path: in
  /// AH_HOT_PATH_FILE files call through AH_OBS_RECORD_US, never directly
  /// (enforced by ah_lint rule obs_hot_path).  Allocation-free once the
  /// value's octave page exists (first touch pages it in, out of line).
  void record_us(std::uint64_t us) {
    const std::size_t i = bucket_index(us);
    Page* page = pages_[i >> kSubBits].get();
    if (page == nullptr) page = &touch_page(i >> kSubBits);
    page->counts[i & (kSubBuckets - 1)] += 1;
    ++count_;
    sum_us_ += us;
    if (us > max_us_) max_us_ = us;
    if (us < min_us_) min_us_ = us;
  }

  /// Convenience for SimTime spans (negative spans clamp to zero).
  void record(common::SimTime span) {
    const std::int64_t us = span.as_micros();
    record_us(us > 0 ? static_cast<std::uint64_t>(us) : 0u);
  }

  /// Clears all counters; capacity (the paged-in octaves) is retained.
  void reset() {
    for (auto& page : pages_) {
      if (page != nullptr) page->counts.fill(0);
    }
    count_ = 0;
    sum_us_ = 0;
    max_us_ = 0;
    min_us_ = ~0ull;
  }

  /// Adds another histogram's counts into this one (bucket-wise).  Used to
  /// combine per-line meters into one per-iteration distribution.  Pages
  /// occupied only on the other side are paged in here (cold path).
  void merge(const Histogram& other) {
    for (std::size_t p = 0; p < kPageCount; ++p) {
      const Page* theirs = other.pages_[p].get();
      if (theirs == nullptr) continue;
      Page& ours = touch_page(p);
      for (std::size_t j = 0; j < static_cast<std::size_t>(kSubBuckets);
           ++j) {
        ours.counts[j] += theirs->counts[j];
      }
    }
    count_ += other.count_;
    sum_us_ += other.sum_us_;
    if (other.count_ > 0) {
      if (other.max_us_ > max_us_) max_us_ = other.max_us_;
      if (other.min_us_ < min_us_) min_us_ = other.min_us_;
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum_us() const { return sum_us_; }
  /// Exact maximum recorded value (0 when empty).
  [[nodiscard]] std::uint64_t max_us() const {
    return count_ > 0 ? max_us_ : 0;
  }
  /// Exact minimum recorded value (0 when empty).
  [[nodiscard]] std::uint64_t min_us() const {
    return count_ > 0 ? min_us_ : 0;
  }
  [[nodiscard]] double mean_us() const {
    return count_ > 0
               ? static_cast<double>(sum_us_) / static_cast<double>(count_)
               : 0.0;
  }

  /// Exact-rank percentile, q in [0, 1]: the lower bound of the bucket
  /// holding sample number ceil(q * count) in sorted order.  q >= 1 (or a
  /// rank landing in the last occupied bucket) reports the exact maximum.
  /// Returns 0 for an empty histogram.
  [[nodiscard]] std::uint64_t percentile_us(double q) const;

  [[nodiscard]] std::uint64_t p50_us() const { return percentile_us(0.50); }
  [[nodiscard]] std::uint64_t p95_us() const { return percentile_us(0.95); }
  [[nodiscard]] std::uint64_t p99_us() const { return percentile_us(0.99); }

  /// Lowest value that maps to bucket `i` — the reported representative.
  /// Inverts bucket_index: group g's buckets sit at base (g + 1) * 32, so
  /// the group is recovered as (i >> kSubBits) - 1.
  [[nodiscard]] static std::uint64_t bucket_low_us(std::size_t i) {
    const std::uint64_t igroup = i >> kSubBits;  // = group + 1 for group >= 1
    const std::uint64_t sub = i & (kSubBuckets - 1);
    if (igroup <= 1) return sub;  // group 0 (and the unused [32, 64) slots)
    return (static_cast<std::uint64_t>(kSubBuckets) + sub) << (igroup - 2);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t us) {
    if (us < kSubBuckets) return static_cast<std::size_t>(us);
    const int width = 64 - std::countl_zero(us);  // >= kSubBits + 1
    const int group = width - kSubBits;
    const std::uint64_t sub =
        (us >> (group - 1)) - static_cast<std::uint64_t>(kSubBuckets);
    return static_cast<std::size_t>(group) * kSubBuckets +
           static_cast<std::size_t>(sub) + kSubBuckets;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    const Page* page = pages_[i >> kSubBits].get();
    return page != nullptr ? page->counts[i & (kSubBuckets - 1)] : 0;
  }

 private:
  struct Page {
    std::array<std::uint64_t, kSubBuckets> counts{};
  };

  /// Returns group page `p`, allocating it on first touch.  Out of line:
  /// this header is hot-path (ah_lint hot_path_alloc), and paging in an
  /// octave is the rare cold branch of record_us().
  [[nodiscard]] Page& touch_page(std::size_t p);

  std::array<std::unique_ptr<Page>, kPageCount> pages_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
  std::uint64_t min_us_ = ~0ull;
};

}  // namespace ah::obs

/// Null-checked histogram record for hot-path files.  The macro spelling is
/// what ah_lint's obs_hot_path rule recognises as the approved alloc-free
/// form; a direct `->record_us(...)` in an AH_HOT_PATH_FILE file is a lint
/// finding.  `hist` is a (possibly null) ah::obs::Histogram*.
#define AH_OBS_RECORD_US(hist, us)                 \
  do {                                             \
    ::ah::obs::Histogram* ah_obs_h_ = (hist);      \
    AH_LINT_ALLOW(obs_hot_path, "the approved macro's own body");  \
    if (ah_obs_h_ != nullptr) ah_obs_h_->record_us(us); \
  } while (false)

/// SimTime-span variant of AH_OBS_RECORD_US.
#define AH_OBS_RECORD_SPAN(hist, span)             \
  do {                                             \
    ::ah::obs::Histogram* ah_obs_h_ = (hist);      \
    AH_LINT_ALLOW(obs_hot_path, "the approved macro's own body");  \
    if (ah_obs_h_ != nullptr) ah_obs_h_->record(span); \
  } while (false)
