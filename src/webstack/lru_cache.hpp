// Byte-budgeted LRU object cache with Squid-style watermark eviction.
//
// Used twice by the proxy model: once for the in-memory object cache
// (capacity = cache_mem) and once for the on-disk cache.  Eviction follows
// Squid's cache_swap_low/high watermarks: inserts may fill the cache to the
// high watermark; crossing it triggers eviction down to the low watermark.
// With the default 90/95 settings this behaves almost exactly like plain
// LRU — which is why the paper found these two knobs performance-inert, a
// property our reproduction preserves by construction.
//
// Storage is a contiguous slab of entries threaded by an intrusive doubly
// linked list (indices, not pointers), with an open-addressing hash index
// on top.  Compared to the std::list + std::unordered_map it replaced, the
// steady state allocates nothing (freed slots are recycled through a free
// list), and lookups touch two small arrays instead of chasing node
// pointers — the proxy performs several cache operations per request, so
// this is squarely on the simulation hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/analysis.hpp"
#include "common/units.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

class LruCache {
 public:
  /// Watermarks are percentages of capacity (0-100], low <= high.
  LruCache(common::Bytes capacity, int swap_low_percent = 90,
           int swap_high_percent = 95);

  /// Looks up an object and promotes it to most-recently-used.
  /// Returns the object size, or -1 on miss.  An entry whose expiry is at
  /// or before `now` counts as a miss and is evicted (TPC-W pages carry
  /// finite freshness; serving stale prices is not an option).
  common::Bytes lookup(std::uint64_t key,
                       common::SimTime now = common::SimTime::zero());

  /// Degraded-mode lookup: like lookup(), but an expired entry still
  /// counts as a hit (promoted, kept, counted under stale_hits).  The
  /// proxy's serve-stale mode prefers an outdated page over an error when
  /// the whole application tier is marked down — RFC 5861's
  /// stale-if-error, in cache terms.
  common::Bytes lookup_stale(std::uint64_t key);

  /// Peeks without promoting and without touching the hit/miss counters
  /// (for tests/metrics).  An entry expired at or before `now` reports as
  /// absent — matching what lookup() at the same time would conclude — but
  /// is left in place (a peek must not mutate).
  [[nodiscard]] bool contains(
      std::uint64_t key, common::SimTime now = common::SimTime::zero()) const;

  /// Inserts (or refreshes) an object.  Objects larger than the high
  /// watermark in bytes are refused (returns false), matching Squid.
  /// `expires_at` defaults to "never".
  bool insert(std::uint64_t key, common::Bytes size,
              common::SimTime expires_at = common::SimTime::max());

  /// Removes an object; returns false when absent.
  bool erase(std::uint64_t key);

  void clear();

  /// Re-sizes the cache (proxy re-start with a new cache_mem); evicts down
  /// to the new watermarks immediately.
  void set_capacity(common::Bytes capacity);
  void set_watermarks(int low_percent, int high_percent);

  [[nodiscard]] common::Bytes capacity() const { return capacity_; }
  [[nodiscard]] common::Bytes used() const { return used_; }
  [[nodiscard]] std::size_t object_count() const { return count_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t expirations() const { return expirations_; }
  [[nodiscard]] std::uint64_t stale_hits() const { return stale_hits_; }
  [[nodiscard]] double hit_ratio() const;

 private:
  /// Slab entry: payload plus intrusive list links (slab indices; -1 ends
  /// the list).  Links as indices survive slab reallocation on growth.
  /// `bucket` mirrors the entry's current position in the hash index so
  /// eviction can erase without re-probing; every bucket move (insert,
  /// backward shift, rehash) keeps it current.
  struct Entry {
    std::uint64_t key = 0;
    common::Bytes size = 0;
    common::SimTime expires_at = common::SimTime::max();
    std::int32_t prev = -1;
    std::int32_t next = -1;
    std::uint32_t bucket = 0;
  };

  static constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

  [[nodiscard]] common::Bytes high_bytes() const;
  [[nodiscard]] common::Bytes low_bytes() const;
  /// Evicts LRU entries until used_ <= limit.
  void evict_to(common::Bytes limit);

  /// Bucket currently holding `key`, or kNoBucket.
  [[nodiscard]] std::size_t find_bucket(std::uint64_t key) const;
  /// Clears bucket `b` and backward-shifts the rest of its probe cluster
  /// so linear probing stays correct without tombstones.
  void index_erase(std::size_t b);
  void rehash(std::size_t buckets);

  /// Unlinks `slot` from the recency list.
  void list_detach(std::int32_t slot);
  /// Links `slot` at the MRU end.
  void list_push_front(std::int32_t slot);

  /// Takes a free slot (recycled or newly grown).
  [[nodiscard]] std::int32_t slot_acquire();
  /// Removes `slot` entirely: list, index, byte/count accounting.
  void remove_slot(std::int32_t slot);


  common::Bytes capacity_;
  int swap_low_;
  int swap_high_;
  common::Bytes used_ = 0;

  std::vector<Entry> slab_;
  std::vector<std::int32_t> free_slots_;
  std::int32_t head_ = -1;  // MRU
  std::int32_t tail_ = -1;  // LRU
  std::size_t count_ = 0;

  /// Open-addressing index bucket.  The key is duplicated here so a probe
  /// step costs one contiguous load instead of an indirect hop into the
  /// slab for the compare, and the probe distance from the key's home
  /// bucket is cached so backward-shift deletion never recomputes hashes.
  /// 16 bytes total — the dist field lives in what would be padding.
  struct Bucket {
    std::uint64_t key = 0;
    std::int32_t slot = -1;  // -1 = empty
    std::uint32_t dist = 0;  // (index - home) & bucket_mask_
  };

  /// Open-addressing index: power-of-two bucket array, linear probing.
  std::vector<Bucket> buckets_;
  std::size_t bucket_mask_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t stale_hits_ = 0;
};

}  // namespace ah::webstack
