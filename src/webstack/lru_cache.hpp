// Byte-budgeted LRU object cache with Squid-style watermark eviction.
//
// Used twice by the proxy model: once for the in-memory object cache
// (capacity = cache_mem) and once for the on-disk cache.  Eviction follows
// Squid's cache_swap_low/high watermarks: inserts may fill the cache to the
// high watermark; crossing it triggers eviction down to the low watermark.
// With the default 90/95 settings this behaves almost exactly like plain
// LRU — which is why the paper found these two knobs performance-inert, a
// property our reproduction preserves by construction.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.hpp"

namespace ah::webstack {

class LruCache {
 public:
  /// Watermarks are percentages of capacity (0-100], low <= high.
  LruCache(common::Bytes capacity, int swap_low_percent = 90,
           int swap_high_percent = 95);

  /// Looks up an object and promotes it to most-recently-used.
  /// Returns the object size, or -1 on miss.  An entry whose expiry is at
  /// or before `now` counts as a miss and is evicted (TPC-W pages carry
  /// finite freshness; serving stale prices is not an option).
  common::Bytes lookup(std::uint64_t key,
                       common::SimTime now = common::SimTime::zero());

  /// Peeks without promoting (for tests/metrics).
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Inserts (or refreshes) an object.  Objects larger than the high
  /// watermark in bytes are refused (returns false), matching Squid.
  /// `expires_at` defaults to "never".
  bool insert(std::uint64_t key, common::Bytes size,
              common::SimTime expires_at = common::SimTime::max());

  /// Removes an object; returns false when absent.
  bool erase(std::uint64_t key);

  void clear();

  /// Re-sizes the cache (proxy re-start with a new cache_mem); evicts down
  /// to the new watermarks immediately.
  void set_capacity(common::Bytes capacity);
  void set_watermarks(int low_percent, int high_percent);

  [[nodiscard]] common::Bytes capacity() const { return capacity_; }
  [[nodiscard]] common::Bytes used() const { return used_; }
  [[nodiscard]] std::size_t object_count() const { return index_.size(); }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t expirations() const { return expirations_; }
  [[nodiscard]] double hit_ratio() const;

 private:
  struct Entry {
    std::uint64_t key;
    common::Bytes size;
    common::SimTime expires_at = common::SimTime::max();
  };

  [[nodiscard]] common::Bytes high_bytes() const;
  [[nodiscard]] common::Bytes low_bytes() const;
  /// Evicts LRU entries until used_ <= limit.
  void evict_to(common::Bytes limit);

  common::Bytes capacity_;
  int swap_low_;
  int swap_high_;
  common::Bytes used_ = 0;

  // MRU at front.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace ah::webstack
