#include "webstack/db_server.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <cassert>

AH_HOT_PATH_FILE;

namespace ah::webstack {

namespace {
constexpr common::Bytes kBaseProcess = 140LL * 1024 * 1024;  // mysqld + key buffer
constexpr auto kRestartCpu = common::SimTime::millis(600);
constexpr auto kSyscallCpu = common::SimTime::micros(12);
/// Open-table descriptors each active connection pins on average: MyISAM
/// needs a descriptor per (connection, table) pair and TPC-W servlets keep
/// most of the schema's 8 tables warm per connection.
constexpr double kDescriptorsPerConnection = 8.0;
/// Median binlog volume of one write transaction (row events); the
/// distribution is heavy-tailed, so small binlog caches spill often.
constexpr common::Bytes kBinlogMedianTxnBytes = 26 * 1024;
/// Row size for delayed-insert batching.
constexpr common::Bytes kInsertRowBytes = 400;
/// join_buffer_size floor below which joins degrade (the paper found the
/// response flat from 8 MB all the way down to ~400 KB).
constexpr common::Bytes kJoinBufferFloor = 192LL * 1024;
/// thread_stack floor below which per-query guard overhead kicks in.
constexpr common::Bytes kThreadStackFloor = 48LL * 1024;
}  // namespace

DbServer::DbServer(sim::Simulator& sim, cluster::Node& node,
                   const DbParams& params, std::uint64_t seed)
    : sim_(sim), node_(node), params_(params), rng_(seed) {
  AH_ASSERT_POOLED_CALL(DbCall);
  AH_LINT_ALLOW(hot_path_alloc, "pool construction: server start only");
  connections_ = std::make_unique<sim::SlotPool>(
      sim_, node_.name() + ".conn",
      sim::SlotPool::Config{params_.max_connections});
  AH_LINT_ALLOW(hot_path_alloc, "pool construction: server start only");
  executors_ = std::make_unique<sim::SlotPool>(
      sim_, node_.name() + ".exec",
      sim::SlotPool::Config{params_.thread_concurrency});
  charged_memory_ = base_memory();
  node_.alloc_memory(charged_memory_);
}

DbServer::~DbServer() {
  if (charged_memory_ > 0) node_.free_memory(charged_memory_);
}

common::Bytes DbServer::per_connection_memory() const {
  return params_.thread_stack + params_.net_buffer_length;
}

common::Bytes DbServer::base_memory() const {
  // MySQL pre-allocates thread structures for a fraction of max_connections;
  // the rest is charged as connections activate.
  return kBaseProcess +
         params_.max_connections * (per_connection_memory() / 4);
}

void DbServer::reconfigure(const DbParams& params) {
  node_.free_memory(charged_memory_);
  params_ = params;
  connections_->set_slots(params_.max_connections);
  executors_->set_slots(params_.thread_concurrency);
  binlog_fill_ = 0;
  delayed_pending_ = 0;
  charged_memory_ = base_memory();
  node_.alloc_memory(charged_memory_);
  node_.cpu().submit(kRestartCpu, {});
}

void DbServer::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) {
    node_.free_memory(charged_memory_);
    charged_memory_ = 0;
  } else {
    charged_memory_ = base_memory();
    node_.alloc_memory(charged_memory_);
    binlog_fill_ = 0;
    delayed_pending_ = 0;
    node_.cpu().submit(kRestartCpu, {});
  }
}

common::SimTime DbServer::class_cpu(QueryClass cls) {
  double ms = 0.0;
  switch (cls) {
    case QueryClass::kSelectSimple: ms = 3.0; break;
    case QueryClass::kSelectJoin:   ms = 10.0; break;
    case QueryClass::kUpdate:       ms = 5.0; break;
    case QueryClass::kInsert:       ms = 3.0; break;
  }
  // Join degradation below the buffer floor: block nested loop passes grow
  // as the buffer shrinks.
  if (cls == QueryClass::kSelectJoin &&
      params_.join_buffer_size < kJoinBufferFloor) {
    ms *= static_cast<double>(kJoinBufferFloor) /
          static_cast<double>(std::max<common::Bytes>(
              16 * 1024, params_.join_buffer_size));
  }
  // Undersized thread stacks force conservative guard checks.
  if (params_.thread_stack < kThreadStackFloor) {
    ms *= 1.0 + 0.3 * (static_cast<double>(kThreadStackFloor -
                                           params_.thread_stack) /
                       static_cast<double>(kThreadStackFloor));
  }
  // Natural per-query variation.
  const double jitter = rng_.lognormal(0.0, 0.12);
  return common::SimTime::seconds(ms * jitter / 1000.0);
}

common::SimTime DbServer::transfer_cpu(common::Bytes bytes) const {
  const common::Bytes buf = std::max<common::Bytes>(512, params_.net_buffer_length);
  const std::int64_t syscalls = (bytes + buf - 1) / buf;
  return kSyscallCpu * static_cast<double>(std::max<std::int64_t>(1, syscalls));
}

void DbServer::execute(const DbQuery& query, DbResultFn done) {
  if (!active_) {
    done(DbResult{false});
    return;
  }
  ++stats_.queries;
  ++stats_.by_class[static_cast<int>(query.cls)];
  DbCall* call = calls_.acquire();
  call->self = this;
  call->query = query;
  call->done = std::move(done);
  call->t_enqueue = sim_.now();
  call->t_start = call->t_enqueue;

  // The grant closure holds only a non-owning pointer, so a rejected
  // acquire leaves `call` intact for the rejection path below.
  auto granted = [call] { call->self->on_connection(call); };
  static_assert(sim::SlotPool::Granted::stores_inline<decltype(granted)>(),
                "connection-grant closure must not allocate");
  if (!connections_->acquire(std::move(granted))) {
    // Unreachable with an unbounded connection queue, but keep the contract.
    DbResultFn cb = std::move(call->done);
    calls_.release(call);
    cb(DbResult{false});
  }
}

void DbServer::on_connection(DbCall* call) {
  // Connection slot granted: service starts; the gap back to t_enqueue is
  // the connection-queue wait.
  call->t_start = sim_.now();
  if (active_) {
    node_.alloc_memory(per_connection_memory());
    charged_memory_ += per_connection_memory();
  }
  executors_->acquire([call] { call->self->execute_body(call); });
}

void DbServer::execute_body(DbCall* call) {
  const DbQuery& query = call->query;
  // Table-cache behaviour: every active connection pins descriptors for
  // the tables it touches; demand beyond table_cache causes reopen churn
  // (close + open + .frm/.MYI reads) on the query path.
  const double descriptors_needed =
      static_cast<double>(connections_->in_use()) * kDescriptorsPerConnection;
  const double miss_prob = std::max(
      0.0, 1.0 - static_cast<double>(params_.table_cache) /
                     std::max(1.0, descriptors_needed));
  common::SimTime cpu = class_cpu(query.cls);
  call->table_miss = false;
  if (rng_.bernoulli(miss_prob)) {
    call->table_miss = true;
    ++stats_.table_cache_misses;
    cpu += common::SimTime::micros(900);
  }

  call->is_join = query.cls == QueryClass::kSelectJoin;
  if (call->is_join && active_) {
    node_.alloc_memory(params_.join_buffer_size);
    charged_memory_ += params_.join_buffer_size;
  }

  node_.cpu().submit(cpu, [call] { call->self->after_cpu(call); });
}

void DbServer::after_cpu(DbCall* call) {
  const DbQuery& query = call->query;
  // Data-path disk I/O.
  double io_prob = 0.0;
  common::Bytes io_bytes = 0;
  switch (query.cls) {
    case QueryClass::kSelectSimple: io_prob = 0.10; io_bytes = 8 * 1024; break;
    case QueryClass::kSelectJoin:   io_prob = 0.30; io_bytes = 32 * 1024; break;
    case QueryClass::kUpdate:       io_prob = 0.65; io_bytes = 8 * 1024; break;
    case QueryClass::kInsert:       io_prob = 0.0;  io_bytes = 0; break;
  }
  if (call->table_miss) {
    io_prob = std::min(1.0, io_prob + 0.30);  // .frm/.MYI reopen read
    io_bytes += 4 * 1024;
  }
  if (query.cls == QueryClass::kUpdate) {
    // Binlog-cache spill: a transaction whose row events exceed
    // binlog_cache_size falls back to an on-disk temporary file that is
    // written synchronously on the commit path.  This is the dominant
    // effect of binlog_cache_size under write-heavy mixes.
    const auto txn_bytes = static_cast<common::Bytes>(
        static_cast<double>(kBinlogMedianTxnBytes) *
        rng_.lognormal(0.0, 0.9));
    if (txn_bytes > params_.binlog_cache_size) {
      ++stats_.binlog_spills;
      io_prob = 1.0;
      io_bytes += txn_bytes;
    } else {
      binlog_fill_ += txn_bytes;
      if (binlog_fill_ >= params_.binlog_cache_size) {
        ++stats_.binlog_flushes;
        // Asynchronous group flush off the commit path.
        node_.disk().submit(node_.disk_time(binlog_fill_), {});
        binlog_fill_ = 0;
      }
    }
  } else {
    charge_write_path(query.cls);
  }

  if (io_bytes > 0 && rng_.bernoulli(io_prob)) {
    node_.disk().submit(node_.disk_time(io_bytes),
                        [call] { call->self->finish_query(call); });
  } else {
    finish_query(call);
  }
}

void DbServer::charge_write_path(QueryClass cls) {
  if (cls == QueryClass::kInsert) {
    const int queue_bound = std::max(1, params_.delayed_queue_size);
    if (delayed_pending_ >= queue_bound) {
      // Delayed queue full: fall back to a synchronous row write.
      ++stats_.sync_inserts;
      node_.disk().submit(node_.disk_time(kInsertRowBytes), {});
      return;
    }
    ++delayed_pending_;
    const int batch = std::max(1, std::min(params_.delayed_insert_limit,
                                           params_.delayed_queue_size));
    if (delayed_pending_ >= batch) {
      ++stats_.delayed_batches;
      node_.disk().submit(
          node_.disk_time(static_cast<common::Bytes>(delayed_pending_) *
                          kInsertRowBytes),
          {});
      delayed_pending_ = 0;
    }
  }
}

void DbServer::finish_query(DbCall* call) {
  node_.cpu().submit(transfer_cpu(call->query.result_bytes),
                     [call] { call->self->finish(call); });
}

void DbServer::finish(DbCall* call) {
  if (call->is_join && charged_memory_ >= params_.join_buffer_size) {
    node_.free_memory(params_.join_buffer_size);
    charged_memory_ -= params_.join_buffer_size;
  }
  executors_->release();
  if (charged_memory_ >= per_connection_memory()) {
    node_.free_memory(per_connection_memory());
    charged_memory_ -= per_connection_memory();
  }
  connections_->release();
  AH_OBS_TRACE_SPAN(trace_, call->query.request_id, obs::Hop::kDb,
                    node_.name().c_str(), call->t_enqueue, call->t_start,
                    sim_.now());
  DbResultFn done = std::move(call->done);
  calls_.release(call);
  done(DbResult{true});
}

}  // namespace ah::webstack
