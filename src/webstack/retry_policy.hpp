// Shared retry/backoff policy for the request path.
//
// Generalises the TPC-W emulated browser's fixed-interval page reload and
// the proxy's upstream re-forward into one bounded exponential-backoff
// schedule with *deterministic* jitter: the jitter fraction for attempt a of
// request r is a pure hash of (r, a), so two runs of the same scenario take
// byte-identical retry timings regardless of thread count.  The defaults
// (growth 1.0, jitter 0.0) reproduce the historical fixed-backoff behaviour
// exactly, which keeps golden benchmark CSVs stable; fault-tolerant
// deployments opt into growth > 1 so a mass failure does not turn into a
// synchronized retry storm.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/analysis.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

struct RetryPolicy {
  /// Delay before the first retry.
  common::SimTime base = common::SimTime::seconds(1.5);
  /// Multiplier applied per attempt (1.0 = fixed interval).
  double growth = 1.0;
  /// Upper bound on any single backoff delay.
  common::SimTime cap = common::SimTime::seconds(60.0);
  /// Jitter amplitude in [0, 1]: the delay is scaled by a deterministic
  /// factor drawn from [1 - jitter, 1 + jitter).  0 = no jitter.
  double jitter = 0.0;
  /// Attempts after the initial try; 0 disables retrying entirely.
  int max_retries = 4;

  /// Backoff before retry `attempt` (0-based: 0 = first retry) of the
  /// request identified by `key`.  Pure function of (policy, attempt, key).
  [[nodiscard]] common::SimTime backoff(int attempt,
                                        std::uint64_t key) const {
    double scale = 1.0;
    for (int i = 0; i < attempt; ++i) scale *= growth;
    common::SimTime delay =
        std::min(cap, base * scale);
    if (jitter > 0.0) {
      // splitmix64 of (key, attempt) -> uniform in [0, 1); no generator
      // state, so retry timing never perturbs any other random stream.
      const std::uint64_t h =
          common::mix_seed(key, static_cast<std::uint64_t>(attempt) + 1);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      delay = delay * (1.0 - jitter + 2.0 * jitter * u);
    }
    return delay;
  }

  /// True when `attempt` (0-based) is still within budget.
  [[nodiscard]] bool allows(int attempt) const {
    return attempt < max_retries;
  }
};

}  // namespace ah::webstack
