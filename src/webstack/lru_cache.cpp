#include "webstack/lru_cache.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

namespace {
/// Keys carry structure (the top 16 bits hold the interaction type), so the
/// index scrambles them through splitmix64 before masking.
std::size_t hash_key(std::uint64_t key) {
  return static_cast<std::size_t>(common::splitmix64(key));
}
}  // namespace

LruCache::LruCache(common::Bytes capacity, int swap_low_percent,
                   int swap_high_percent)
    : capacity_(capacity),
      swap_low_(swap_low_percent),
      swap_high_(swap_high_percent) {
  assert(capacity_ >= 0);
  assert(swap_low_ > 0 && swap_low_ <= 100);
  assert(swap_high_ >= swap_low_ && swap_high_ <= 100);
  rehash(64);
}

common::Bytes LruCache::high_bytes() const {
  return capacity_ * swap_high_ / 100;
}

common::Bytes LruCache::low_bytes() const {
  return capacity_ * swap_low_ / 100;
}

// -- hash index --------------------------------------------------------------

std::size_t LruCache::find_bucket(std::uint64_t key) const {
  std::size_t b = hash_key(key) & bucket_mask_;
  while (buckets_[b].slot >= 0) {
    if (buckets_[b].key == key) return b;
    b = (b + 1) & bucket_mask_;
  }
  return kNoBucket;
}

void LruCache::index_erase(std::size_t b) {
  // Backward-shift deletion: walk the probe cluster after `b`; any entry
  // whose home position does not lie strictly after the hole is moved into
  // the hole (it could otherwise become unreachable).  The cached probe
  // distance makes the reachability check hash-free: an entry may move to
  // the hole exactly when its displacement covers the gap.
  std::size_t hole = b;
  std::size_t i = (b + 1) & bucket_mask_;
  while (buckets_[i].slot >= 0) {
    const std::uint32_t gap =
        static_cast<std::uint32_t>((i - hole) & bucket_mask_);
    if (buckets_[i].dist >= gap) {
      buckets_[hole] = buckets_[i];
      buckets_[hole].dist -= gap;
      slab_[static_cast<std::size_t>(buckets_[hole].slot)].bucket =
          static_cast<std::uint32_t>(hole);
      hole = i;
    }
    i = (i + 1) & bucket_mask_;
  }
  buckets_[hole].slot = -1;
}

void LruCache::rehash(std::size_t buckets) {
  assert((buckets & (buckets - 1)) == 0);
  buckets_.assign(buckets, Bucket{});
  bucket_mask_ = buckets - 1;
  // Re-file every live entry (walk the recency list; free slots stay out).
  for (std::int32_t s = head_; s >= 0;
       s = slab_[static_cast<std::size_t>(s)].next) {
    const std::uint64_t key = slab_[static_cast<std::size_t>(s)].key;
    const std::size_t home = hash_key(key) & bucket_mask_;
    std::size_t b = home;
    while (buckets_[b].slot >= 0) b = (b + 1) & bucket_mask_;
    buckets_[b] = Bucket{key, s,
                         static_cast<std::uint32_t>((b - home) & bucket_mask_)};
    slab_[static_cast<std::size_t>(s)].bucket = static_cast<std::uint32_t>(b);
  }
}

// -- intrusive recency list --------------------------------------------------

void LruCache::list_detach(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  if (e.prev >= 0) {
    slab_[static_cast<std::size_t>(e.prev)].next = e.next;
  } else {
    head_ = e.next;
  }
  if (e.next >= 0) {
    slab_[static_cast<std::size_t>(e.next)].prev = e.prev;
  } else {
    tail_ = e.prev;
  }
  e.prev = -1;
  e.next = -1;
}

void LruCache::list_push_front(std::int32_t slot) {
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  e.prev = -1;
  e.next = head_;
  if (head_ >= 0) slab_[static_cast<std::size_t>(head_)].prev = slot;
  head_ = slot;
  if (tail_ < 0) tail_ = slot;
}

// -- slot management ---------------------------------------------------------

std::int32_t LruCache::slot_acquire() {
  if (!free_slots_.empty()) {
    const std::int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::int32_t>(slab_.size() - 1);
}

void LruCache::remove_slot(std::int32_t slot) {
  const std::size_t b = slab_[static_cast<std::size_t>(slot)].bucket;
  assert(buckets_[b].slot == slot);
  index_erase(b);
  used_ -= slab_[static_cast<std::size_t>(slot)].size;
  list_detach(slot);
  free_slots_.push_back(slot);
  --count_;
}

// -- public API --------------------------------------------------------------

common::Bytes LruCache::lookup(std::uint64_t key, common::SimTime now) {
  const std::size_t b = find_bucket(key);
  if (b == kNoBucket) {
    ++misses_;
    return -1;
  }
  const std::int32_t slot = buckets_[b].slot;
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  if (e.expires_at <= now) {
    ++expirations_;
    ++misses_;
    remove_slot(slot);
    return -1;
  }
  ++hits_;
  if (head_ != slot) {  // promote to MRU
    list_detach(slot);
    list_push_front(slot);
  }
  return e.size;
}

common::Bytes LruCache::lookup_stale(std::uint64_t key) {
  const std::size_t b = find_bucket(key);
  if (b == kNoBucket) {
    ++misses_;
    return -1;
  }
  const std::int32_t slot = buckets_[b].slot;
  Entry& e = slab_[static_cast<std::size_t>(slot)];
  // Freshness deliberately not checked: in serve-stale mode any copy beats
  // an error page.  The entry stays cached so repeated degraded hits keep
  // working until the tier recovers and a fresh copy replaces it.
  ++hits_;
  ++stale_hits_;
  if (head_ != slot) {  // promote to MRU
    list_detach(slot);
    list_push_front(slot);
  }
  return e.size;
}

bool LruCache::contains(std::uint64_t key, common::SimTime now) const {
  const std::size_t b = find_bucket(key);
  if (b == kNoBucket) return false;
  return slab_[static_cast<std::size_t>(buckets_[b].slot)].expires_at > now;
}

bool LruCache::insert(std::uint64_t key, common::Bytes size,
                      common::SimTime expires_at) {
  assert(size >= 0);
  if (size > high_bytes()) return false;
  // One probe serves both outcomes: it either finds the existing entry or
  // stops at the empty bucket where the key belongs.
  const std::size_t home = hash_key(key) & bucket_mask_;
  std::size_t b = home;
  while (buckets_[b].slot >= 0 && buckets_[b].key != key) {
    b = (b + 1) & bucket_mask_;
  }
  if (buckets_[b].slot >= 0) {
    // Refresh: update size and freshness in place and promote.
    const std::int32_t slot = buckets_[b].slot;
    Entry& e = slab_[static_cast<std::size_t>(slot)];
    used_ += size - e.size;
    e.size = size;
    e.expires_at = expires_at;
    if (head_ != slot) {
      list_detach(slot);
      list_push_front(slot);
    }
  } else {
    const std::int32_t slot = slot_acquire();
    Entry& e = slab_[static_cast<std::size_t>(slot)];
    e.key = key;
    e.size = size;
    e.expires_at = expires_at;
    list_push_front(slot);
    // Grow near 70% load so probe clusters stay short.  The rehash walk
    // re-files the whole recency list — new entry included — so the probe
    // position found above is only used when no growth happens.
    if ((count_ + 1) * 10 >= buckets_.size() * 7) {
      rehash(buckets_.size() * 2);
    } else {
      buckets_[b] = Bucket{key, slot,
                           static_cast<std::uint32_t>((b - home) &
                                                      bucket_mask_)};
      e.bucket = static_cast<std::uint32_t>(b);
    }
    used_ += size;
    ++count_;
  }
  if (used_ > high_bytes()) evict_to(low_bytes());
  return true;
}

bool LruCache::erase(std::uint64_t key) {
  const std::size_t b = find_bucket(key);
  if (b == kNoBucket) return false;
  remove_slot(buckets_[b].slot);
  return true;
}

void LruCache::clear() {
  // Keep the slab and bucket array for reuse; only reset the bookkeeping.
  slab_.clear();
  free_slots_.clear();
  for (Bucket& b : buckets_) b.slot = -1;
  head_ = -1;
  tail_ = -1;
  count_ = 0;
  used_ = 0;
}

void LruCache::set_capacity(common::Bytes capacity) {
  assert(capacity >= 0);
  capacity_ = capacity;
  if (used_ > high_bytes()) evict_to(low_bytes());
}

void LruCache::set_watermarks(int low_percent, int high_percent) {
  assert(low_percent > 0 && low_percent <= high_percent &&
         high_percent <= 100);
  swap_low_ = low_percent;
  swap_high_ = high_percent;
  if (used_ > high_bytes()) evict_to(low_bytes());
}

double LruCache::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

void LruCache::evict_to(common::Bytes limit) {
  while (used_ > limit && tail_ >= 0) {
    remove_slot(tail_);
    ++evictions_;
  }
}

}  // namespace ah::webstack
