#include "webstack/lru_cache.hpp"

#include <algorithm>
#include <cassert>

namespace ah::webstack {

LruCache::LruCache(common::Bytes capacity, int swap_low_percent,
                   int swap_high_percent)
    : capacity_(capacity),
      swap_low_(swap_low_percent),
      swap_high_(swap_high_percent) {
  assert(capacity_ >= 0);
  assert(swap_low_ > 0 && swap_low_ <= 100);
  assert(swap_high_ >= swap_low_ && swap_high_ <= 100);
}

common::Bytes LruCache::high_bytes() const {
  return capacity_ * swap_high_ / 100;
}

common::Bytes LruCache::low_bytes() const {
  return capacity_ * swap_low_ / 100;
}

common::Bytes LruCache::lookup(std::uint64_t key, common::SimTime now) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return -1;
  }
  if (it->second->expires_at <= now) {
    ++expirations_;
    ++misses_;
    used_ -= it->second->size;
    lru_.erase(it->second);
    index_.erase(it);
    return -1;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return it->second->size;
}

bool LruCache::contains(std::uint64_t key) const {
  return index_.contains(key);
}

bool LruCache::insert(std::uint64_t key, common::Bytes size,
                      common::SimTime expires_at) {
  assert(size >= 0);
  if (size > high_bytes()) return false;
  if (auto it = index_.find(key); it != index_.end()) {
    // Refresh: update size and freshness in place and promote.
    used_ += size - it->second->size;
    it->second->size = size;
    it->second->expires_at = expires_at;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, size, expires_at});
    index_[key] = lru_.begin();
    used_ += size;
  }
  if (used_ > high_bytes()) evict_to(low_bytes());
  return true;
}

bool LruCache::erase(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  used_ -= it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

void LruCache::set_capacity(common::Bytes capacity) {
  assert(capacity >= 0);
  capacity_ = capacity;
  if (used_ > high_bytes()) evict_to(low_bytes());
}

void LruCache::set_watermarks(int low_percent, int high_percent) {
  assert(low_percent > 0 && low_percent <= high_percent &&
         high_percent <= 100);
  swap_low_ = low_percent;
  swap_high_ = high_percent;
  if (used_ > high_bytes()) evict_to(low_bytes());
}

double LruCache::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                   : 0.0;
}

void LruCache::evict_to(common::Bytes limit) {
  while (used_ > limit && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.size;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace ah::webstack
