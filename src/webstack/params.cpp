#include "webstack/params.hpp"

#include <stdexcept>

#include "common/analysis.hpp"
#include "common/fmt.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::webstack {

namespace {
using cluster::TierKind;

std::vector<ParamSpec> build_catalogue() {
  // Table 3 of the paper: name, tier, default, [min, max].
  // Units follow the original configuration files: cache_mem in MB, the
  // object-size limits in KB, buffer/stack sizes in bytes.
  return {
      // -- Proxy server (Squid) ---------------------------------------------
      {"cache_mem", TierKind::kProxy, 8, 2, 512},
      {"cache_swap_low", TierKind::kProxy, 90, 50, 95},
      {"cache_swap_high", TierKind::kProxy, 95, 55, 99},
      {"maximum_object_size", TierKind::kProxy, 4096, 64, 65536},
      {"minimum_object_size", TierKind::kProxy, 0, 0, 1024},
      {"maximum_object_size_in_memory", TierKind::kProxy, 8, 1, 4096},
      {"store_objects_per_bucket", TierKind::kProxy, 20, 5, 200},
      // -- Web/application server (Tomcat) ----------------------------------
      {"minProcessors", TierKind::kApp, 5, 1, 512},
      {"maxProcessors", TierKind::kApp, 20, 1, 1024},
      {"acceptCount", TierKind::kApp, 10, 1, 1024},
      {"bufferSize", TierKind::kApp, 2048, 512, 65536},
      {"AJPminProcessors", TierKind::kApp, 5, 1, 512},
      {"AJPmaxProcessors", TierKind::kApp, 20, 1, 1024},
      {"AJPacceptCount", TierKind::kApp, 10, 1, 1024},
      // -- Database server (MySQL) ------------------------------------------
      {"binlog_cache_size", TierKind::kDb, 32768, 4096, 4194304},
      {"delayed_insert_limit", TierKind::kDb, 100, 10, 10000},
      {"max_connections", TierKind::kDb, 100, 10, 2000},
      {"delayed_queue_size", TierKind::kDb, 1000, 100, 100000},
      {"join_buffer_size", TierKind::kDb, 8388600, 131072, 16777216},
      {"net_buffer_length", TierKind::kDb, 16384, 1024, 1048576},
      {"table_cache", TierKind::kDb, 64, 16, 2048},
      {"thread_con", TierKind::kDb, 10, 1, 512},
      {"thread_stack", TierKind::kDb, 65535, 16384, 8388608},
  };
}

void check_size(std::span<const std::int64_t> all) {
  const std::size_t expected = parameter_catalogue().size();
  if (all.size() != expected) {
    throw std::invalid_argument(common::format(
        "parameter vector has {} values, catalogue has {}", all.size(),
        expected));
  }
}

}  // namespace

const std::vector<ParamSpec>& parameter_catalogue() {
  static const std::vector<ParamSpec> catalogue = build_catalogue();
  return catalogue;
}

std::vector<std::size_t> catalogue_indices_for(cluster::TierKind tier) {
  std::vector<std::size_t> indices;
  const auto& catalogue = parameter_catalogue();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    if (catalogue[i].tier == tier) indices.push_back(i);
  }
  return indices;
}

std::vector<std::int64_t> default_values() {
  std::vector<std::int64_t> values;
  for (const auto& spec : parameter_catalogue()) {
    values.push_back(spec.default_value);
  }
  return values;
}

std::size_t catalogue_index(const std::string& name) {
  const auto& catalogue = parameter_catalogue();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    if (catalogue[i].name == name) return i;
  }
  throw std::out_of_range("unknown parameter: " + name);
}

ProxyParams proxy_from_values(std::span<const std::int64_t> all) {
  check_size(all);
  ProxyParams p;
  p.cache_mem = all[0] * 1024 * 1024;  // MB -> bytes
  p.cache_swap_low = static_cast<int>(all[1]);
  p.cache_swap_high = static_cast<int>(all[2]);
  p.maximum_object_size = all[3] * 1024;            // KB -> bytes
  p.minimum_object_size = all[4] * 1024;            // KB -> bytes
  p.maximum_object_size_in_memory = all[5] * 1024;  // KB -> bytes
  p.store_objects_per_bucket = static_cast<int>(all[6]);
  return p;
}

AppParams app_from_values(std::span<const std::int64_t> all) {
  check_size(all);
  AppParams p;
  p.min_processors = static_cast<int>(all[7]);
  p.max_processors = static_cast<int>(all[8]);
  p.accept_count = static_cast<int>(all[9]);
  p.buffer_size = all[10];
  p.ajp_min_processors = static_cast<int>(all[11]);
  p.ajp_max_processors = static_cast<int>(all[12]);
  p.ajp_accept_count = static_cast<int>(all[13]);
  return p;
}

DbParams db_from_values(std::span<const std::int64_t> all) {
  check_size(all);
  DbParams p;
  p.binlog_cache_size = all[14];
  p.delayed_insert_limit = static_cast<int>(all[15]);
  p.max_connections = static_cast<int>(all[16]);
  p.delayed_queue_size = static_cast<int>(all[17]);
  p.join_buffer_size = all[18];
  p.net_buffer_length = all[19];
  p.table_cache = static_cast<int>(all[20]);
  p.thread_concurrency = static_cast<int>(all[21]);
  p.thread_stack = all[22];
  return p;
}

std::vector<std::int64_t> to_values(const ProxyParams& proxy,
                                    const AppParams& app, const DbParams& db) {
  return {
      proxy.cache_mem / (1024 * 1024),
      proxy.cache_swap_low,
      proxy.cache_swap_high,
      proxy.maximum_object_size / 1024,
      proxy.minimum_object_size / 1024,
      proxy.maximum_object_size_in_memory / 1024,
      proxy.store_objects_per_bucket,
      app.min_processors,
      app.max_processors,
      app.accept_count,
      app.buffer_size,
      app.ajp_min_processors,
      app.ajp_max_processors,
      app.ajp_accept_count,
      db.binlog_cache_size,
      db.delayed_insert_limit,
      db.max_connections,
      db.delayed_queue_size,
      db.join_buffer_size,
      db.net_buffer_length,
      db.table_cache,
      db.thread_concurrency,
      db.thread_stack,
  };
}

}  // namespace ah::webstack
