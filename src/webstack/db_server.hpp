// MySQL-like database server (tier 3 / backend).
//
// Query lifecycle: connection slot (max_connections) → executor slot
// (thread_con admission) → table-cache check → class-specific CPU → data
// disk I/O → write-path batching (binlog cache for updates, delayed-insert
// queue for inserts) → result transfer.  Modelled tunables:
//
//   max_connections     connection slots; too few → queueing ahead of the
//                       executor under the ordering mix
//   thread_con          concurrently executing queries; the admission
//                       throttle in front of the CPU
//   table_cache         open table descriptors; when concurrent executors ×
//                       tables outgrow it, reopen churn adds CPU + disk
//   binlog_cache_size   update log batching; larger → fewer seek-bound
//                       flushes (diminishing returns, memory cost)
//   delayed_insert_limit / delayed_queue_size
//                       insert batching depth / queue bound
//   join_buffer_size    flat above a small floor — reproduces the paper's
//                       negative finding — below it joins degrade; each
//                       running join holds this much memory
//   net_buffer_length   result-transfer syscall batching
//   thread_stack        per-connection stack memory; undersized stacks add
//                       guard-check CPU overhead
//
// Parameters load at server start (my.cnf), so reconfigure() restarts the
// process: pools resize, batching state resets, a restart burst is charged.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/node.hpp"
#include "common/analysis.hpp"
#include "common/object_pool.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/slot_pool.hpp"
#include "webstack/params.hpp"
#include "webstack/request.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

class DbServer : public DbService {
 public:
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t by_class[kQueryClassCount] = {0, 0, 0, 0};
    std::uint64_t table_cache_misses = 0;
    std::uint64_t binlog_flushes = 0;
    std::uint64_t binlog_spills = 0;
    std::uint64_t delayed_batches = 0;
    std::uint64_t sync_inserts = 0;
  };

  DbServer(sim::Simulator& sim, cluster::Node& node, const DbParams& params,
           std::uint64_t seed = 42);
  ~DbServer() override;

  /// Applies a new configuration (restart semantics; see file comment).
  void reconfigure(const DbParams& params);

  void set_active(bool active);
  [[nodiscard]] bool active() const { return active_; }

  void execute(const DbQuery& query, DbResultFn done) override;

  /// Opt-in span tracing (null disables, the default).  Queue wait is the
  /// gap between arrival and the connection-slot grant.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] const DbParams& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int load() const {
    return connections_->in_use() +
           static_cast<int>(connections_->queue_length());
  }
  [[nodiscard]] sim::SlotPool& connections() { return *connections_; }
  [[nodiscard]] sim::SlotPool& executors() { return *executors_; }

 private:
  /// Per-query state, pooled so the continuations threaded through the
  /// connection/executor pools, CPU and disk capture only one pointer.
  struct DbCall {
    DbServer* self = nullptr;
    DbQuery query;
    DbResultFn done;
    bool is_join = false;
    bool table_miss = false;
    /// Trace instants: arrival and connection grant (service start).
    common::SimTime t_enqueue = common::SimTime::zero();
    common::SimTime t_start = common::SimTime::zero();
  };

  [[nodiscard]] common::Bytes per_connection_memory() const;
  [[nodiscard]] common::Bytes base_memory() const;
  [[nodiscard]] common::SimTime class_cpu(QueryClass cls);
  [[nodiscard]] common::SimTime transfer_cpu(common::Bytes bytes) const;

  void on_connection(DbCall* call);
  void execute_body(DbCall* call);
  void after_cpu(DbCall* call);
  void finish_query(DbCall* call);
  void finish(DbCall* call);
  void charge_write_path(QueryClass cls);

  sim::Simulator& sim_;
  cluster::Node& node_;
  DbParams params_;
  common::Rng rng_;
  common::ObjectPool<DbCall> calls_;

  std::unique_ptr<sim::SlotPool> connections_;
  std::unique_ptr<sim::SlotPool> executors_;
  common::Bytes charged_memory_ = 0;

  common::Bytes binlog_fill_ = 0;
  int delayed_pending_ = 0;

  obs::TraceRecorder* trace_ = nullptr;
  bool active_ = true;
  Stats stats_;
};

}  // namespace ah::webstack
