// Tomcat-like application server (tier 2 / middleware).
//
// Two thread pools, mirroring Tomcat 4's connectors:
//   * HTTP connector (minProcessors/maxProcessors/acceptCount/bufferSize):
//     a thread is held for the full lifetime of a request — including all
//     downstream database waits — so under a DB-heavy mix the pool, not the
//     CPU, is the first bottleneck.  The accept queue bounds waiting
//     connections; overflow is a hard rejection (connection refused).
//   * AJP worker pool (AJPminProcessors/AJPmaxProcessors/AJPacceptCount):
//     servlet execution requires a worker; static passthrough does not.
//
// Thread economics: threads beyond min_processors are spawned on demand at
// a CPU cost; every spawned thread holds stack + connector buffer memory
// until the next restart.  This is what penalises "just set everything to
// the maximum": ~1 GiB nodes start paging.
//
// Parameters are read at startup (server.xml), so reconfigure() restarts
// the server: pools reset to min processors, waiters are dropped, and a
// restart CPU burst is charged.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/node.hpp"
#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/object_pool.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/slot_pool.hpp"
#include "webstack/params.hpp"
#include "webstack/request.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

/// Hook for issuing a database query from this node; `done` receives the
/// result.  Wired to a DbTierRouter by the system model.  Invoked once per
/// query, so it is an SBO-required InlineFunction, not a std::function.
using DbQueryFn = common::InlineFunction<
    void(const DbQuery&, cluster::Node& from, DbResultFn done), 48,
    common::SboPolicy::kRequired>;

class AppServer : public Service {
 public:
  struct Stats {
    std::uint64_t served = 0;
    std::uint64_t rejected_http = 0;
    std::uint64_t rejected_ajp = 0;
    std::uint64_t db_queries = 0;
    std::uint64_t threads_spawned = 0;
    /// Requests that reached an inactive (stopped or crashed) server.
    /// fault_recovery_test asserts this stays flat after mark-down — the
    /// health-checked routers must send a dead node nothing.
    std::uint64_t refused = 0;
  };

  AppServer(sim::Simulator& sim, cluster::Node& node, DbQueryFn db_query,
            const AppParams& params);
  ~AppServer() override;

  /// Applies a new configuration (restart semantics; see file comment).
  void reconfigure(const AppParams& params);

  /// Process stop/start for tier reconfiguration.
  void set_active(bool active);
  [[nodiscard]] bool active() const { return active_; }

  void handle(const Request& request, ResponseFn done) override;

  /// Opt-in span tracing (null disables, the default).  Queue wait is the
  /// gap between arrival and the HTTP connector thread grant.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] const AppParams& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int load() const {
    return http_pool_->in_use() + static_cast<int>(http_pool_->queue_length());
  }
  [[nodiscard]] sim::SlotPool& http_pool() { return *http_pool_; }
  [[nodiscard]] sim::SlotPool& ajp_pool() { return *ajp_pool_; }

 private:
  /// Per-request state, pooled so every continuation (pool grants, CPU
  /// completions, DB results) captures only one pointer and stays inside
  /// the InlineFunction inline buffer.
  struct AppCall {
    AppServer* self = nullptr;
    Request request;
    ResponseFn done;
    int remaining = 0;
    Response::Origin origin = Response::Origin::kApp;
    /// Trace instants: arrival and HTTP-thread grant (service start).
    common::SimTime t_enqueue = common::SimTime::zero();
    common::SimTime t_start = common::SimTime::zero();
  };

  /// Connector I/O CPU for moving `bytes` through a `buffer_size` buffer.
  [[nodiscard]] common::SimTime io_cpu(common::Bytes bytes) const;
  /// Charges spawn cost and memory when the pool grows past what has been
  /// spawned so far.  Returns the CPU penalty to add to this request.
  common::SimTime charge_thread_growth(sim::SlotPool& pool, int& spawned,
                                       int min_threads,
                                       common::Bytes per_thread_mem);
  [[nodiscard]] common::Bytes http_thread_memory() const;
  [[nodiscard]] common::Bytes ajp_thread_memory() const;

  void on_http_granted(AppCall* call);
  void run_servlet(AppCall* call);
  void on_ajp_granted(AppCall* call);
  void issue_queries(AppCall* call);
  void on_db_result(AppCall* call, const DbResult& result);
  void respond(AppCall* call);
  void finish(AppCall* call);
  void fail(AppCall* call);
  void release_memory_and_reset();

  sim::Simulator& sim_;
  cluster::Node& node_;
  DbQueryFn db_query_;
  AppParams params_;
  common::ObjectPool<AppCall> calls_;

  std::unique_ptr<sim::SlotPool> http_pool_;
  std::unique_ptr<sim::SlotPool> ajp_pool_;
  int http_spawned_ = 0;
  int ajp_spawned_ = 0;
  common::Bytes charged_memory_ = 0;

  obs::TraceRecorder* trace_ = nullptr;
  bool active_ = true;
  Stats stats_;
};

}  // namespace ah::webstack
