#include "webstack/router.hpp"
#include "common/analysis.hpp"

#include <algorithm>

AH_HOT_PATH_FILE;

namespace ah::webstack {

namespace {
template <typename T>
bool erase_ptr(std::vector<T*>& vec, T* ptr) {
  const auto it = std::find(vec.begin(), vec.end(), ptr);
  if (it == vec.end()) return false;
  vec.erase(it);
  return true;
}

/// Backends whose node is currently marked up (health-checker view).
template <typename T>
std::size_t marked_up_count(const std::vector<T*>& backends) {
  std::size_t healthy = 0;
  for (T* backend : backends) {
    if (backend->node().marked_up()) ++healthy;
  }
  return healthy;
}
}  // namespace

// -- AppTierRouter -----------------------------------------------------------

AppTierRouter::AppTierRouter(cluster::Network& network,
                             cluster::BalancePolicy policy, std::uint64_t seed)
    : network_(network), balancer_(policy, seed) {
  AH_ASSERT_POOLED_CALL(Call);
}

void AppTierRouter::add_backend(AppServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool AppTierRouter::remove_backend(AppServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void AppTierRouter::route(const Request& request, cluster::Node& from,
                          ResponseFn done) {
  if (backends_.empty()) {
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  if (marked_up_count(backends_) == 0) {
    // Whole tier marked down: fail fast instead of queueing on a corpse.
    ++stats_.fast_fails;
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); },
      [this](std::size_t i) { return backends_[i]->node().marked_up(); });
  Call* call = calls_.acquire();
  call->self = this;
  call->backend = backends_[pick];
  call->from = &from;
  call->request = request;
  call->done = std::move(done);
  call->routed_at = network_.simulator().now();
  call->timeout_id = 0;
  const std::uint32_t gen = call->generation;
  network_.send(from, call->backend->node(), kForwardRequestBytes,
                [call, gen] {
                  if (call->generation == gen) call->self->on_forwarded(call);
                });
  if (hop_timeout_ > common::SimTime::zero()) {
    call->timeout_id = network_.simulator().schedule(
        hop_timeout_, [call, gen] {
          if (call->generation == gen) call->self->on_timeout(call);
        });
  }
}

void AppTierRouter::on_forwarded(Call* call) {
  const std::uint32_t gen = call->generation;
  call->backend->handle(call->request, [call, gen](const Response& response) {
    if (call->generation == gen) call->self->on_response(call, response);
  });
}

void AppTierRouter::on_response(Call* call, const Response& response) {
  call->response = response;
  const std::uint32_t gen = call->generation;
  network_.send(call->backend->node(), *call->from,
                std::max<common::Bytes>(128, response.bytes), [call, gen] {
                  if (call->generation == gen) call->self->deliver(call);
                });
}

void AppTierRouter::on_timeout(Call* call) {
  ++stats_.timeouts;
  finish(call, Response{false, Response::Origin::kError, 0});
}

void AppTierRouter::deliver(Call* call) { finish(call, call->response); }

void AppTierRouter::finish(Call* call, const Response& response) {
  if (call->timeout_id != 0) {
    network_.simulator().cancel(call->timeout_id);
    call->timeout_id = 0;
  }
  AH_OBS_RECORD_SPAN(hop_histogram_,
                     network_.simulator().now() - call->routed_at);
  // Invalidate every outstanding continuation (late replies, the timeout),
  // then release the slot before invoking `done` — it may reenter.
  ++call->generation;
  ResponseFn done = std::move(call->done);
  calls_.release(call);
  done(response);
}

// -- DbTierRouter ------------------------------------------------------------

DbTierRouter::DbTierRouter(cluster::Network& network,
                           cluster::BalancePolicy policy, std::uint64_t seed)
    : network_(network), balancer_(policy, seed) {
  AH_ASSERT_POOLED_CALL(Call);
}

void DbTierRouter::add_backend(DbServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool DbTierRouter::remove_backend(DbServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void DbTierRouter::route(const DbQuery& query, cluster::Node& from,
                         DbResultFn done) {
  if (backends_.empty()) {
    done(DbResult{false});
    return;
  }
  if (marked_up_count(backends_) == 0) {
    ++stats_.fast_fails;
    done(DbResult{false});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); },
      [this](std::size_t i) { return backends_[i]->node().marked_up(); });
  Call* call = calls_.acquire();
  call->self = this;
  call->backend = backends_[pick];
  call->from = &from;
  call->query = query;
  call->done = std::move(done);
  call->routed_at = network_.simulator().now();
  call->timeout_id = 0;
  const std::uint32_t gen = call->generation;
  network_.send(from, call->backend->node(), kQueryRequestBytes, [call, gen] {
    if (call->generation == gen) call->self->on_forwarded(call);
  });
  if (hop_timeout_ > common::SimTime::zero()) {
    call->timeout_id = network_.simulator().schedule(
        hop_timeout_, [call, gen] {
          if (call->generation == gen) call->self->on_timeout(call);
        });
  }
}

void DbTierRouter::on_forwarded(Call* call) {
  const std::uint32_t gen = call->generation;
  call->backend->execute(call->query, [call, gen](const DbResult& result) {
    if (call->generation == gen) call->self->on_result(call, result);
  });
}

void DbTierRouter::on_result(Call* call, const DbResult& result) {
  call->result = result;
  const std::uint32_t gen = call->generation;
  network_.send(call->backend->node(), *call->from, call->query.result_bytes,
                [call, gen] {
                  if (call->generation == gen) call->self->deliver(call);
                });
}

void DbTierRouter::on_timeout(Call* call) {
  ++stats_.timeouts;
  finish(call, DbResult{false});
}

void DbTierRouter::deliver(Call* call) { finish(call, call->result); }

void DbTierRouter::finish(Call* call, const DbResult& result) {
  if (call->timeout_id != 0) {
    network_.simulator().cancel(call->timeout_id);
    call->timeout_id = 0;
  }
  AH_OBS_RECORD_SPAN(hop_histogram_,
                     network_.simulator().now() - call->routed_at);
  ++call->generation;
  DbResultFn done = std::move(call->done);
  calls_.release(call);
  done(result);
}

// -- FrontendRouter ----------------------------------------------------------

FrontendRouter::FrontendRouter(sim::Simulator& sim,
                               cluster::BalancePolicy policy,
                               common::SimTime client_latency,
                               std::uint64_t seed)
    : sim_(sim), balancer_(policy, seed), client_latency_(client_latency) {
  AH_ASSERT_POOLED_CALL(Call);
}

void FrontendRouter::add_backend(ProxyServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool FrontendRouter::remove_backend(ProxyServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void FrontendRouter::route(const Request& request, ResponseFn done) {
  if (backends_.empty()) {
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  if (marked_up_count(backends_) == 0) {
    ++stats_.fast_fails;
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); },
      [this](std::size_t i) { return backends_[i]->node().marked_up(); });
  Call* call = calls_.acquire();
  call->self = this;
  call->backend = backends_[pick];
  call->request = request;
  call->done = std::move(done);
  call->routed_at = sim_.now();
  call->timeout_id = 0;
  const std::uint32_t gen = call->generation;
  sim_.schedule(client_latency_, [call, gen] {
    if (call->generation == gen) call->self->on_client_arrived(call);
  });
  if (hop_timeout_ > common::SimTime::zero()) {
    call->timeout_id = sim_.schedule(hop_timeout_, [call, gen] {
      if (call->generation == gen) call->self->on_timeout(call);
    });
  }
}

void FrontendRouter::on_client_arrived(Call* call) {
  const std::uint32_t gen = call->generation;
  call->backend->handle(call->request, [call, gen](const Response& response) {
    if (call->generation == gen) call->self->on_response(call, response);
  });
}

void FrontendRouter::on_response(Call* call, const Response& response) {
  // Response serialization on the proxy's NIC, then client latency.
  call->response = response;
  cluster::Node& node = call->backend->node();
  const std::uint32_t gen = call->generation;
  node.nic().submit(
      node.nic_time(std::max<common::Bytes>(128, response.bytes)),
      [call, gen] {
        if (call->generation == gen) call->self->on_nic_done(call);
      });
}

void FrontendRouter::on_nic_done(Call* call) {
  const std::uint32_t gen = call->generation;
  sim_.schedule(client_latency_, [call, gen] {
    if (call->generation == gen) call->self->deliver(call);
  });
}

void FrontendRouter::on_timeout(Call* call) {
  ++stats_.timeouts;
  finish(call, Response{false, Response::Origin::kError, 0});
}

void FrontendRouter::deliver(Call* call) { finish(call, call->response); }

void FrontendRouter::finish(Call* call, const Response& response) {
  if (call->timeout_id != 0) {
    sim_.cancel(call->timeout_id);
    call->timeout_id = 0;
  }
  AH_OBS_RECORD_SPAN(hop_histogram_, sim_.now() - call->routed_at);
  ++call->generation;
  ResponseFn done = std::move(call->done);
  calls_.release(call);
  done(response);
}

}  // namespace ah::webstack
