#include "webstack/router.hpp"

#include <algorithm>

namespace ah::webstack {

namespace {
template <typename T>
bool erase_ptr(std::vector<T*>& vec, T* ptr) {
  const auto it = std::find(vec.begin(), vec.end(), ptr);
  if (it == vec.end()) return false;
  vec.erase(it);
  return true;
}
}  // namespace

// -- AppTierRouter -----------------------------------------------------------

AppTierRouter::AppTierRouter(cluster::Network& network,
                             cluster::BalancePolicy policy, std::uint64_t seed)
    : network_(network), balancer_(policy, seed) {}

void AppTierRouter::add_backend(AppServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool AppTierRouter::remove_backend(AppServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void AppTierRouter::route(const Request& request, cluster::Node& from,
                          ResponseFn done) {
  if (backends_.empty()) {
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); });
  AppServer* backend = backends_[pick];
  cluster::Node* from_ptr = &from;
  network_.send(
      from, backend->node(), kForwardRequestBytes,
      [this, backend, request, from_ptr, done = std::move(done)]() mutable {
        backend->handle(
            request, [this, backend, from_ptr,
                      done = std::move(done)](const Response& response) {
              network_.send(backend->node(), *from_ptr,
                            std::max<common::Bytes>(128, response.bytes),
                            [response, done = std::move(done)] { done(response); });
            });
      });
}

// -- DbTierRouter ------------------------------------------------------------

DbTierRouter::DbTierRouter(cluster::Network& network,
                           cluster::BalancePolicy policy, std::uint64_t seed)
    : network_(network), balancer_(policy, seed) {}

void DbTierRouter::add_backend(DbServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool DbTierRouter::remove_backend(DbServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void DbTierRouter::route(const DbQuery& query, cluster::Node& from,
                         DbResultFn done) {
  if (backends_.empty()) {
    done(DbResult{false});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); });
  DbServer* backend = backends_[pick];
  cluster::Node* from_ptr = &from;
  network_.send(
      from, backend->node(), kQueryRequestBytes,
      [this, backend, query, from_ptr, done = std::move(done)]() mutable {
        backend->execute(
            query, [this, backend, query, from_ptr,
                    done = std::move(done)](const DbResult& result) {
              network_.send(backend->node(), *from_ptr, query.result_bytes,
                            [result, done = std::move(done)] { done(result); });
            });
      });
}

// -- FrontendRouter ----------------------------------------------------------

FrontendRouter::FrontendRouter(sim::Simulator& sim,
                               cluster::BalancePolicy policy,
                               common::SimTime client_latency,
                               std::uint64_t seed)
    : sim_(sim), balancer_(policy, seed), client_latency_(client_latency) {}

void FrontendRouter::add_backend(ProxyServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool FrontendRouter::remove_backend(ProxyServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void FrontendRouter::route(const Request& request, ResponseFn done) {
  if (backends_.empty()) {
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); });
  ProxyServer* backend = backends_[pick];
  sim_.schedule(client_latency_, [this, backend, request,
                                  done = std::move(done)]() mutable {
    backend->handle(
        request,
        [this, backend, done = std::move(done)](const Response& response) {
          // Response serialization on the proxy's NIC, then client latency.
          cluster::Node& node = backend->node();
          node.nic().submit(
              node.nic_time(std::max<common::Bytes>(128, response.bytes)),
              [this, response, done = std::move(done)]() mutable {
                sim_.schedule(client_latency_,
                              [response, done = std::move(done)] {
                                done(response);
                              });
              });
        });
  });
}

}  // namespace ah::webstack
