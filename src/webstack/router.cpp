#include "webstack/router.hpp"
#include "common/analysis.hpp"

#include <algorithm>

AH_HOT_PATH_FILE;

namespace ah::webstack {

namespace {
template <typename T>
bool erase_ptr(std::vector<T*>& vec, T* ptr) {
  const auto it = std::find(vec.begin(), vec.end(), ptr);
  if (it == vec.end()) return false;
  vec.erase(it);
  return true;
}
}  // namespace

// -- AppTierRouter -----------------------------------------------------------

AppTierRouter::AppTierRouter(cluster::Network& network,
                             cluster::BalancePolicy policy, std::uint64_t seed)
    : network_(network), balancer_(policy, seed) {
  AH_ASSERT_POOLED_CALL(Call);
}

void AppTierRouter::add_backend(AppServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool AppTierRouter::remove_backend(AppServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void AppTierRouter::route(const Request& request, cluster::Node& from,
                          ResponseFn done) {
  if (backends_.empty()) {
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); });
  Call* call = calls_.acquire();
  call->self = this;
  call->backend = backends_[pick];
  call->from = &from;
  call->request = request;
  call->done = std::move(done);
  network_.send(from, call->backend->node(), kForwardRequestBytes,
                [call] { call->self->on_forwarded(call); });
}

void AppTierRouter::on_forwarded(Call* call) {
  call->backend->handle(call->request, [call](const Response& response) {
    call->self->on_response(call, response);
  });
}

void AppTierRouter::on_response(Call* call, const Response& response) {
  call->response = response;
  network_.send(call->backend->node(), *call->from,
                std::max<common::Bytes>(128, response.bytes),
                [call] { call->self->deliver(call); });
}

void AppTierRouter::deliver(Call* call) {
  ResponseFn done = std::move(call->done);
  const Response response = call->response;
  calls_.release(call);
  done(response);
}

// -- DbTierRouter ------------------------------------------------------------

DbTierRouter::DbTierRouter(cluster::Network& network,
                           cluster::BalancePolicy policy, std::uint64_t seed)
    : network_(network), balancer_(policy, seed) {
  AH_ASSERT_POOLED_CALL(Call);
}

void DbTierRouter::add_backend(DbServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool DbTierRouter::remove_backend(DbServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void DbTierRouter::route(const DbQuery& query, cluster::Node& from,
                         DbResultFn done) {
  if (backends_.empty()) {
    done(DbResult{false});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); });
  Call* call = calls_.acquire();
  call->self = this;
  call->backend = backends_[pick];
  call->from = &from;
  call->query = query;
  call->done = std::move(done);
  network_.send(from, call->backend->node(), kQueryRequestBytes,
                [call] { call->self->on_forwarded(call); });
}

void DbTierRouter::on_forwarded(Call* call) {
  call->backend->execute(call->query, [call](const DbResult& result) {
    call->self->on_result(call, result);
  });
}

void DbTierRouter::on_result(Call* call, const DbResult& result) {
  call->result = result;
  network_.send(call->backend->node(), *call->from, call->query.result_bytes,
                [call] { call->self->deliver(call); });
}

void DbTierRouter::deliver(Call* call) {
  DbResultFn done = std::move(call->done);
  const DbResult result = call->result;
  calls_.release(call);
  done(result);
}

// -- FrontendRouter ----------------------------------------------------------

FrontendRouter::FrontendRouter(sim::Simulator& sim,
                               cluster::BalancePolicy policy,
                               common::SimTime client_latency,
                               std::uint64_t seed)
    : sim_(sim), balancer_(policy, seed), client_latency_(client_latency) {
  AH_ASSERT_POOLED_CALL(Call);
}

void FrontendRouter::add_backend(ProxyServer* server) {
  backends_.push_back(server);
  balancer_.reset();
}

bool FrontendRouter::remove_backend(ProxyServer* server) {
  const bool removed = erase_ptr(backends_, server);
  if (removed) balancer_.reset();
  return removed;
}

void FrontendRouter::route(const Request& request, ResponseFn done) {
  if (backends_.empty()) {
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  const std::size_t pick = balancer_.pick(
      backends_.size(),
      [this](std::size_t i) { return static_cast<double>(backends_[i]->load()); });
  Call* call = calls_.acquire();
  call->self = this;
  call->backend = backends_[pick];
  call->request = request;
  call->done = std::move(done);
  sim_.schedule(client_latency_, [call] { call->self->on_client_arrived(call); });
}

void FrontendRouter::on_client_arrived(Call* call) {
  call->backend->handle(call->request, [call](const Response& response) {
    call->self->on_response(call, response);
  });
}

void FrontendRouter::on_response(Call* call, const Response& response) {
  // Response serialization on the proxy's NIC, then client latency.
  call->response = response;
  cluster::Node& node = call->backend->node();
  node.nic().submit(node.nic_time(std::max<common::Bytes>(128, response.bytes)),
                    [call] { call->self->on_nic_done(call); });
}

void FrontendRouter::on_nic_done(Call* call) {
  sim_.schedule(client_latency_, [call] { call->self->deliver(call); });
}

void FrontendRouter::deliver(Call* call) {
  ResponseFn done = std::move(call->done);
  const Response response = call->response;
  calls_.release(call);
  done(response);
}

}  // namespace ah::webstack
