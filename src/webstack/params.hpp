// Canonical catalogue of the 23 tunable parameters (paper Table 3).
//
// Defaults match the paper's "default configuration" column; bounds are the
// limits Harmony may explore (wide enough to contain every tuned value the
// paper reports).  The typed Proxy/App/Db param structs are what the server
// implementations consume; `*_from_values` decodes a flat integer vector in
// catalogue order, which is the representation the tuner works with.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/tier.hpp"
#include "common/analysis.hpp"
#include "common/units.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::webstack {

struct ParamSpec {
  std::string name;
  cluster::TierKind tier;
  std::int64_t default_value;
  std::int64_t min_value;
  std::int64_t max_value;
};

/// The full 23-parameter catalogue in Table-3 order
/// (7 proxy, 7 web/app, 9 database).
[[nodiscard]] const std::vector<ParamSpec>& parameter_catalogue();

/// Catalogue slices per tier (indices into parameter_catalogue()).
[[nodiscard]] std::vector<std::size_t> catalogue_indices_for(
    cluster::TierKind tier);

/// Default values in catalogue order.
[[nodiscard]] std::vector<std::int64_t> default_values();

/// Index of a parameter by name; throws std::out_of_range when unknown.
[[nodiscard]] std::size_t catalogue_index(const std::string& name);

// ---------------------------------------------------------------------------
// Typed views, consumed by the server models.
// ---------------------------------------------------------------------------

struct ProxyParams {
  common::Bytes cache_mem = 8LL * 1024 * 1024;  // cache_mem (MB in catalogue)
  int cache_swap_low = 90;                      // percent
  int cache_swap_high = 95;                     // percent
  common::Bytes maximum_object_size = 4096LL * 1024;        // KB in catalogue
  common::Bytes minimum_object_size = 0;                    // KB in catalogue
  common::Bytes maximum_object_size_in_memory = 8LL * 1024; // KB in catalogue
  int store_objects_per_bucket = 20;
};

struct AppParams {
  int min_processors = 5;
  int max_processors = 20;
  int accept_count = 10;
  common::Bytes buffer_size = 2048;
  int ajp_min_processors = 5;
  int ajp_max_processors = 20;
  int ajp_accept_count = 10;
};

struct DbParams {
  common::Bytes binlog_cache_size = 32768;
  int delayed_insert_limit = 100;
  int max_connections = 100;
  int delayed_queue_size = 1000;
  common::Bytes join_buffer_size = 8388600;
  common::Bytes net_buffer_length = 16384;
  int table_cache = 64;
  int thread_concurrency = 10;  // thread_con
  common::Bytes thread_stack = 65535;
};

/// Decodes a full 23-value vector (catalogue order) into the typed structs.
/// Throws std::invalid_argument on size mismatch.
[[nodiscard]] ProxyParams proxy_from_values(std::span<const std::int64_t> all);
[[nodiscard]] AppParams app_from_values(std::span<const std::int64_t> all);
[[nodiscard]] DbParams db_from_values(std::span<const std::int64_t> all);

/// Encodes typed structs back into a full 23-value vector (catalogue order).
[[nodiscard]] std::vector<std::int64_t> to_values(const ProxyParams& proxy,
                                                  const AppParams& app,
                                                  const DbParams& db);

}  // namespace ah::webstack
