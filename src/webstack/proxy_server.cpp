#include "webstack/proxy_server.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <cassert>

AH_HOT_PATH_FILE;

namespace ah::webstack {

namespace {
/// Fixed size of the proxy's on-disk cache (the testbed dedicated a disk
/// partition to Squid; its size was not a tunable in the paper).
constexpr common::Bytes kDiskCacheBytes = 2LL * 1024 * 1024 * 1024;
/// CPU charged once per restart (config parse, index rebuild).
constexpr auto kRestartCpu = common::SimTime::millis(150);
/// Freshness lifetime of cached TPC-W pages (prices and stock change, so
/// the site serves them with a finite max-age).  Short enough that a
/// configuration which stops admitting objects pays for it within one
/// measured iteration — evaluations stay attributable to the
/// configuration under test.
constexpr auto kObjectTtl = common::SimTime::seconds(180.0);
}  // namespace

ProxyServer::ProxyServer(sim::Simulator& sim, cluster::Node& node,
                         ForwardFn forward, const ProxyParams& params)
    : sim_(sim),
      node_(node),
      forward_(std::move(forward)),
      params_(params),
      mem_cache_(params.cache_mem, params.cache_swap_low,
                 params.cache_swap_high),
      disk_cache_(kDiskCacheBytes, params.cache_swap_low,
                  params.cache_swap_high) {
  AH_ASSERT_POOLED_CALL(ProxyCall);
  charged_memory_ = resident_memory(params_);
  node_.alloc_memory(charged_memory_);
}

ProxyServer::~ProxyServer() {
  if (charged_memory_ > 0) node_.free_memory(charged_memory_);
}

common::Bytes ProxyServer::resident_memory(const ProxyParams& params) const {
  // Squid reserves cache_mem up front, plus the store index: one hash table
  // over the expected object population.  Fewer objects per bucket means
  // more buckets.
  constexpr std::int64_t kExpectedObjects = 64 * 1024;
  constexpr common::Bytes kBucketOverhead = 96;
  const std::int64_t buckets =
      kExpectedObjects / std::max(1, params.store_objects_per_bucket);
  constexpr common::Bytes kBaseProcess = 24LL * 1024 * 1024;
  return kBaseProcess + params.cache_mem + buckets * kBucketOverhead;
}

void ProxyServer::reconfigure(const ProxyParams& params) {
  // Restart: drop the memory cache (volatile), keep the disk cache, charge
  // the restart burst, swap the memory accounting to the new footprint.
  node_.free_memory(charged_memory_);
  params_ = params;
  charged_memory_ = resident_memory(params_);
  node_.alloc_memory(charged_memory_);

  mem_cache_.clear();
  mem_cache_.set_capacity(params_.cache_mem);
  mem_cache_.set_watermarks(params_.cache_swap_low, params_.cache_swap_high);
  disk_cache_.set_watermarks(params_.cache_swap_low, params_.cache_swap_high);

  node_.cpu().submit(kRestartCpu, {});
}

void ProxyServer::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) {
    mem_cache_.clear();
    node_.free_memory(charged_memory_);
    charged_memory_ = 0;
  } else {
    charged_memory_ = resident_memory(params_);
    node_.alloc_memory(charged_memory_);
    node_.cpu().submit(kRestartCpu, {});
  }
}

common::SimTime ProxyServer::lookup_cpu(const Request& request) const {
  // Parsing/forwarding base plus hash-chain scan: expected half-chain walk.
  const auto chain = static_cast<double>(params_.store_objects_per_bucket);
  const auto scan = common::SimTime::micros(
      static_cast<std::int64_t>(0.4 * chain / 2.0));
  return request.profile->proxy_cpu + scan;
}

void ProxyServer::handle(const Request& request, ResponseFn done) {
  assert(request.profile != nullptr);
  if (!active_) {
    ++stats_.errors;
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  if (admission_ != nullptr && !admission_->admit(request.id)) {
    shed(request, std::move(done));
    return;
  }
  ++inflight_;
  ProxyCall* call = calls_.acquire();
  call->self = this;
  call->request = request;
  call->done = std::move(done);
  call->attempt = 0;
  call->shed = false;
  call->t_enqueue = sim_.now();
  call->t_start = call->t_enqueue;

  auto after = [call] { call->self->after_lookup(call); };
  static_assert(sim::Resource::Completion::stores_inline<decltype(after)>(),
                "proxy lookup closure must not allocate");
  node_.cpu().submit(lookup_cpu(request), std::move(after));
}

void ProxyServer::after_lookup(ProxyCall* call) {
  // CPU granted and lookup done: service has started.  The gap back to
  // t_enqueue is the request's wait in the CPU run queue.
  call->t_start = sim_.now();
  const Request& request = call->request;
  if (!request.profile->cacheable) {
    ++stats_.passthrough;
    forward_upstream(call);
    return;
  }
  // Stale-if-error needs the expired copy to still be there when the
  // upstream re-fetch fails, but lookup() evicts on expiry.  With
  // serve-stale on, peek first and only run the evicting lookup() on a
  // fresh entry; an expired one stays resident for serve_stale().
  const bool fresh_only = resilience_.serve_stale;
  if ((!fresh_only || mem_cache_.contains(request.object_id, sim_.now()))) {
    if (const auto size = mem_cache_.lookup(request.object_id, sim_.now());
        size >= 0) {
      ++stats_.mem_hits;
      serve_from_memory(call);
      return;
    }
  }
  if (const auto size = disk_cache_.lookup(request.object_id, sim_.now());
      size >= 0) {
    ++stats_.disk_hits;
    // Hot-object promotion: objects served from disk move into the
    // memory cache (when admitted), so the memory cache converges on
    // the hot set within a warm-up period even after a restart.
    if (size <= params_.maximum_object_size_in_memory) {
      mem_cache_.insert(request.object_id, size, sim_.now() + kObjectTtl);
    }
    serve_from_disk(call, size);
    return;
  }
  ++stats_.misses_forwarded;
  forward_upstream(call);
}

void ProxyServer::serve_from_memory(ProxyCall* call) {
  // Copy-out and socket-push cost; the response leaves via the router's
  // NIC hop.  A memory hit is the cheapest path through the proxy.
  const auto copy_cpu =
      common::SimTime::micros(500 + call->request.response_bytes / 64);
  call->response = Response{true, Response::Origin::kProxyMemory,
                            call->request.response_bytes};
  node_.cpu().submit(copy_cpu, [call] { call->self->finish(call); });
}

void ProxyServer::serve_from_disk(ProxyCall* call, common::Bytes size) {
  call->response = Response{true, Response::Origin::kProxyDisk, size};
  node_.disk().submit(node_.disk_time(size), [call] {
    // Swap-in bookkeeping plus pushing the object through the socket.
    ProxyServer* self = call->self;
    self->node_.cpu().submit(
        common::SimTime::micros(1500 + call->response.bytes / 48),
        [call] { call->self->finish(call); });
  });
}

void ProxyServer::forward_upstream(ProxyCall* call) {
  auto on_upstream = [call](const Response& upstream) {
    call->self->on_upstream(call, upstream);
  };
  static_assert(ResponseFn::stores_inline<decltype(on_upstream)>(),
                "upstream continuation must not allocate");
  forward_(call->request, node_, std::move(on_upstream));
}

void ProxyServer::on_upstream(ProxyCall* call, const Response& upstream) {
  if (!upstream.ok) {
    if (resilience_.retry.allows(call->attempt)) {
      // Bounded exponential backoff with per-request deterministic jitter:
      // a marked-down tier does not get hammered, and recovering capacity
      // is not hit by a synchronized thundering herd of re-forwards.
      const common::SimTime delay =
          resilience_.retry.backoff(call->attempt, call->request.id);
      ++call->attempt;
      ++stats_.upstream_retries;
      sim_.schedule(delay, [call] { call->self->forward_upstream(call); });
      return;
    }
    if (serve_stale(call)) return;
  }
  if (upstream.ok) maybe_cache(call->request, upstream);
  // Relay cost: the proxy shuttles the upstream response through
  // its own socket pair (read from app tier, write to client).
  // Error responses (connection refused upstream) carry no body
  // and cost almost nothing to relay.
  const auto relay_cpu =
      upstream.ok ? common::SimTime::micros(3500 + upstream.bytes / 24)
                  : common::SimTime::micros(200);
  call->response = upstream;
  node_.cpu().submit(relay_cpu, [call] { call->self->finish(call); });
}

bool ProxyServer::serve_stale(ProxyCall* call) {
  if (!resilience_.serve_stale) return false;
  if (!call->request.profile->cacheable) return false;
  const common::Bytes size = mem_cache_.lookup_stale(call->request.object_id);
  if (size < 0) return false;
  ++stats_.stale_served;
  call->response = Response{true, Response::Origin::kProxyMemory, size};
  const auto copy_cpu = common::SimTime::micros(500 + size / 64);
  node_.cpu().submit(copy_cpu, [call] { call->self->finish(call); });
  return true;
}

void ProxyServer::shed(const Request& request, ResponseFn done) {
  ++stats_.shed;
  if (shed_mode_ == ShedMode::kServeStale && request.profile->cacheable) {
    // Any cached copy, fresh or expired, beats an error page during an
    // overload — staleness is the price of staying up.
    const common::Bytes size = mem_cache_.lookup_stale(request.object_id);
    if (size >= 0) {
      ++stats_.shed_stale;
      ++inflight_;
      ProxyCall* call = calls_.acquire();
      call->self = this;
      call->request = request;
      call->done = std::move(done);
      call->attempt = 0;
      call->shed = true;
      call->t_enqueue = sim_.now();
      call->t_start = call->t_enqueue;
      call->response = Response{true, Response::Origin::kProxyMemory, size};
      const auto copy_cpu = common::SimTime::micros(500 + size / 64);
      node_.cpu().submit(copy_cpu, [call] { call->self->finish(call); });
      return;
    }
  }
  // Fast-fail: a deterministic, nearly free rejection.  No CPU is charged
  // — the point of shedding is that the proxy does NOT spend service
  // capacity on the rejected request.
  done(Response{false, Response::Origin::kError, 0});
}

void ProxyServer::maybe_cache(const Request& request,
                              const Response& response) {
  if (!request.profile->cacheable) return;
  const common::Bytes size = response.bytes;
  if (size < params_.minimum_object_size) return;
  if (size <= params_.maximum_object_size_in_memory) {
    mem_cache_.insert(request.object_id, size, sim_.now() + kObjectTtl);
  }
  if (size <= params_.maximum_object_size) {
    // Disk store write happens off the request path (async swap-out);
    // charge the disk but do not delay the response.
    disk_cache_.insert(request.object_id, size, sim_.now() + kObjectTtl);
    node_.disk().submit(node_.disk_time(size), {});
  }
}

void ProxyServer::finish(ProxyCall* call) {
  --inflight_;
  ++stats_.served;
  AH_OBS_TRACE_SPAN(trace_, call->request.id, obs::Hop::kProxy,
                    node_.name().c_str(), call->t_enqueue, call->t_start,
                    sim_.now());
  // Close the control loop on admitted completions only: stale-shed
  // responses skip the full service path and would read as spuriously
  // fast.
  if (!call->shed && admission_ != nullptr) {
    admission_->observe(sim_.now() - call->t_enqueue);
  }
  // Release the slot before invoking the continuation: `done` may reenter
  // this proxy with a fresh request (retry loops), and the slot must be
  // reusable by then.
  ResponseFn done = std::move(call->done);
  const Response response = call->response;
  calls_.release(call);
  done(response);
}

}  // namespace ah::webstack
