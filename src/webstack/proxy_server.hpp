// Squid-like caching proxy (tier 1 / presentation).
//
// Serves cacheable pages from an in-memory LRU cache (capacity = cache_mem)
// or an on-disk cache; everything else is forwarded to the application
// tier.  The tunables and their modelled effects:
//
//   cache_mem                      capacity of the memory cache; larger →
//                                  more memory hits but more node memory
//   cache_swap_low/high            LRU watermarks (near-inert, as the paper
//                                  found on the real Squid)
//   maximum/minimum_object_size    disk-cache admission limits
//   maximum_object_size_in_memory  memory-cache admission limit
//   store_objects_per_bucket       hash-chain length: fewer buckets saves
//                                  index memory, longer chains cost lookup
//                                  CPU
//
// Squid reads these at startup, so applying a new configuration restarts
// the process: the memory cache is lost (the disk cache survives, as on a
// real restart) and a restart CPU burst is charged.
#pragma once

#include <cstdint>

#include "cluster/node.hpp"
#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/object_pool.hpp"
#include "ctrl/admission_controller.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "webstack/lru_cache.hpp"
#include "webstack/params.hpp"
#include "webstack/request.hpp"
#include "webstack/retry_policy.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

/// Forwarding hook: sends a request towards the application tier from the
/// given node; `done` receives the upstream response.  Wired to an
/// AppTierRouter by the system model; a small closure keeps the proxy
/// testable without a full cluster.  Invoked once per forwarded request, so
/// it is an SBO-required InlineFunction, not a std::function.
using ForwardFn = common::InlineFunction<
    void(const Request&, cluster::Node& from, ResponseFn done), 48,
    common::SboPolicy::kRequired>;

class ProxyServer : public Service {
 public:
  struct Stats {
    std::uint64_t served = 0;
    std::uint64_t mem_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t misses_forwarded = 0;     // cacheable but absent
    std::uint64_t passthrough = 0;          // non-cacheable
    std::uint64_t errors = 0;
    std::uint64_t upstream_retries = 0;     // re-forwards after an error
    std::uint64_t stale_served = 0;         // degraded-mode cache hits
    std::uint64_t shed = 0;                 // rejected by admission control
    std::uint64_t shed_stale = 0;           // shed but served a stale copy
  };

  /// What a request rejected by admission control receives.  kFastFail is
  /// an immediate deterministic error (cheapest; the client sees it and
  /// backs off); kServeStale degrades to an expired memory-cache copy when
  /// one exists, falling back to fast-fail on a stale miss.
  enum class ShedMode : std::uint8_t { kFastFail, kServeStale };

  /// Degraded-mode behaviour when the upstream (application tier) errors.
  /// The defaults — no retries, no stale serving — are behaviour-identical
  /// to the fault-unaware proxy, keeping golden outputs stable.
  struct Resilience {
    /// Upstream re-forward schedule; max_retries 0 disables retrying.
    RetryPolicy retry{.max_retries = 0};
    /// When the upstream still fails after retries, serve an expired copy
    /// from the memory cache rather than an error (stale-if-error).
    bool serve_stale = false;
  };

  ProxyServer(sim::Simulator& sim, cluster::Node& node, ForwardFn forward,
              const ProxyParams& params);
  ~ProxyServer() override;

  /// Applies a new configuration: restart semantics (see file comment).
  void reconfigure(const ProxyParams& params);

  /// Process stop/start for tier reconfiguration: an inactive proxy rejects
  /// requests and releases its memory.
  void set_active(bool active);
  [[nodiscard]] bool active() const { return active_; }

  void set_resilience(const Resilience& resilience) {
    resilience_ = resilience;
  }
  [[nodiscard]] const Resilience& resilience() const { return resilience_; }

  /// Opt-in span tracing (null disables, the default).  Spans decompose
  /// queue wait (handle() to after_lookup()) from service time.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attaches an admission controller (null detaches): handle() consults
  /// admit() per request and sheds rejects per `mode`; latencies of
  /// admitted completions feed back via observe().  Shed responses never
  /// feed the controller — they are cheap by construction and would bias
  /// the p95 estimate toward reopening under overload.
  void set_admission(ctrl::AdmissionController* admission, ShedMode mode) {
    admission_ = admission;
    shed_mode_ = mode;
  }
  [[nodiscard]] ctrl::AdmissionController* admission() { return admission_; }

  void handle(const Request& request, ResponseFn done) override;

  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] const ProxyParams& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const LruCache& memory_cache() const { return mem_cache_; }
  [[nodiscard]] const LruCache& disk_cache() const { return disk_cache_; }
  /// In-flight requests (for least-loaded balancing).
  [[nodiscard]] int load() const { return inflight_; }

 private:
  /// Per-request state, pooled so every continuation threaded through the
  /// CPU/disk resources and the upstream forward captures only `call` —
  /// one pointer, always inside the InlineFunction inline buffer.
  struct ProxyCall {
    ProxyServer* self = nullptr;
    Request request;
    ResponseFn done;
    Response response;
    /// Upstream forwards already failed for this request (reset per use —
    /// pool slots are recycled without re-initialisation).
    int attempt = 0;
    /// Rejected by admission control (stale-shed path): excluded from the
    /// controller's latency window in finish().
    bool shed = false;
    /// Trace instants: arrival at the proxy and CPU-grant (service start).
    common::SimTime t_enqueue = common::SimTime::zero();
    common::SimTime t_start = common::SimTime::zero();
  };

  /// CPU demand of the request-parsing + store-index lookup step.
  [[nodiscard]] common::SimTime lookup_cpu(const Request& request) const;
  /// Memory charged for the cache and store index under `params`.
  [[nodiscard]] common::Bytes resident_memory(const ProxyParams& params) const;

  void after_lookup(ProxyCall* call);
  void serve_from_memory(ProxyCall* call);
  void serve_from_disk(ProxyCall* call, common::Bytes size);
  void forward_upstream(ProxyCall* call);
  void on_upstream(ProxyCall* call, const Response& upstream);
  /// Last-resort path after retries are exhausted: serve an expired cached
  /// copy when allowed, else relay the error.  Returns true when handled.
  bool serve_stale(ProxyCall* call);
  void maybe_cache(const Request& request, const Response& response);
  void finish(ProxyCall* call);
  /// Admission-reject path: fast-fail or degrade to a stale copy.
  void shed(const Request& request, ResponseFn done);

  sim::Simulator& sim_;
  cluster::Node& node_;
  ForwardFn forward_;
  ProxyParams params_;
  common::ObjectPool<ProxyCall> calls_;

  LruCache mem_cache_;
  LruCache disk_cache_;

  Resilience resilience_;
  ctrl::AdmissionController* admission_ = nullptr;
  ShedMode shed_mode_ = ShedMode::kFastFail;
  obs::TraceRecorder* trace_ = nullptr;
  bool active_ = true;
  int inflight_ = 0;
  common::Bytes charged_memory_ = 0;
  Stats stats_;
};

}  // namespace ah::webstack
