// Request/response model shared by the three server tiers.
//
// The web stack is workload-agnostic: a request carries a *profile* of
// resource demands (CPU per tier, database query mix, response size) and the
// TPC-W layer maps its 14 interaction types onto such profiles.  Keeping the
// stack independent of TPC-W lets tests drive the servers with synthetic
// profiles directly.
#pragma once

#include <cstdint>
#include <string>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/units.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

/// Database query classes, mirroring what the TPC-W servlets issue.
enum class QueryClass : int {
  kSelectSimple = 0,  // keyed single-table lookup
  kSelectJoin = 1,    // multi-table join (best sellers, search)
  kUpdate = 2,        // transactional write (buy confirm, cart update)
  kInsert = 3,        // row insert (order line, registration)
};

inline constexpr int kQueryClassCount = 4;

/// Static description of one request type's demands.
struct RequestProfile {
  std::string name;

  /// Whether the proxy may cache the response (static/semi-static pages).
  bool cacheable = false;

  /// Mean response size; actual sizes are randomized around this.
  common::Bytes response_bytes = 8 * 1024;

  /// CPU demand at the proxy tier for parsing/forwarding, per request.
  common::SimTime proxy_cpu = common::SimTime::micros(300);

  /// CPU demand of servlet execution at the application tier.
  common::SimTime app_cpu = common::SimTime::millis(3);

  /// Number of database queries of each class issued by the servlet.
  int queries[kQueryClassCount] = {0, 0, 0, 0};

  [[nodiscard]] int total_queries() const {
    int total = 0;
    for (int q : queries) total += q;
    return total;
  }
  [[nodiscard]] bool needs_db() const { return total_queries() > 0; }
  [[nodiscard]] bool has_writes() const {
    return queries[static_cast<int>(QueryClass::kUpdate)] > 0 ||
           queries[static_cast<int>(QueryClass::kInsert)] > 0;
  }
};

/// One in-flight request.
struct Request {
  std::uint64_t id = 0;
  const RequestProfile* profile = nullptr;
  /// Identity of the page/object requested; cache keys are derived from it.
  /// Drawn from a Zipf-like popularity distribution by the workload.
  std::uint64_t object_id = 0;
  /// Realized response size for this request.
  common::Bytes response_bytes = 0;
  /// Time the emulated browser issued the request.
  common::SimTime issued_at = common::SimTime::zero();
};

struct Response {
  bool ok = true;
  /// Where the response was produced (for cache statistics).
  enum class Origin { kProxyMemory, kProxyDisk, kApp, kDb, kError };
  Origin origin = Origin::kApp;
  common::Bytes bytes = 0;
};

/// Response continuation.  A small-buffer InlineFunction rather than
/// std::function: the server tiers park their per-request state in pooled
/// structs and thread single-pointer closures through the event queue, so
/// the continuation always fits inline and the steady-state request path
/// performs no heap allocations.  The 80-byte capacity leaves room for the
/// workload driver's browser closure (Request + bookkeeping, ~72 bytes),
/// the largest capture that crosses this interface.  Move-only: a response
/// callback fires exactly once.  SBO is required: an oversized capture is a
/// compile error, never a silent per-request allocation.
using ResponseFn = common::InlineFunction<void(const Response&), 80,
                                          common::SboPolicy::kRequired>;

/// Anything that can serve a Request asynchronously.
class Service {
 public:
  virtual ~Service() = default;
  /// Serves `request`; `done` fires exactly once, when the response is
  /// ready (or the request was rejected — indicated by !ok).
  virtual void handle(const Request& request, ResponseFn done) = 0;
};

/// One database query as issued by an application server.
struct DbQuery {
  QueryClass cls = QueryClass::kSelectSimple;
  /// Table/index identity for table-cache behaviour.
  std::uint64_t table_id = 0;
  /// Result payload size.
  common::Bytes result_bytes = 2 * 1024;
  /// Identity of the request this query belongs to, so database-hop trace
  /// spans join up with the proxy/app spans of the same request.
  std::uint64_t request_id = 0;
};

struct DbResult {
  bool ok = true;
};

/// Query-result continuation (see ResponseFn for the callable choice).
using DbResultFn = common::InlineFunction<void(const DbResult&), 48,
                                          common::SboPolicy::kRequired>;

/// Anything that can execute a DbQuery asynchronously.
class DbService {
 public:
  virtual ~DbService() = default;
  virtual void execute(const DbQuery& query, DbResultFn done) = 0;
};

}  // namespace ah::webstack
