// Tier routers: pick a backend and model the network round trip.
//
// A router owns the *wiring* between tiers: backend selection (load
// balancing), the forward hop charged to the sender's NIC, and the response
// hop charged to the replier's NIC.  Server objects never talk to each
// other directly, which is what lets the reconfiguration logic retarget a
// node by just removing/adding it here while in-flight requests drain
// naturally.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "common/analysis.hpp"
#include "common/object_pool.hpp"
#include "cluster/network.hpp"
#include "cluster/node.hpp"
#include "webstack/app_server.hpp"
#include "webstack/db_server.hpp"
#include "webstack/proxy_server.hpp"
#include "webstack/request.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

/// Size of a forwarded HTTP request message.
inline constexpr common::Bytes kForwardRequestBytes = 512;
/// Size of a database query message.
inline constexpr common::Bytes kQueryRequestBytes = 384;

/// Routes requests from the proxy tier to the application tier.
class AppTierRouter {
 public:
  AppTierRouter(cluster::Network& network, cluster::BalancePolicy policy,
                std::uint64_t seed = 7);

  void add_backend(AppServer* server);
  bool remove_backend(AppServer* server);
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] const std::vector<AppServer*>& backends() const {
    return backends_;
  }

  /// Sends `request` from node `from` to a selected backend; `done` fires
  /// with the backend's response after the return hop.  With no backends
  /// the request fails immediately.
  void route(const Request& request, cluster::Node& from, ResponseFn done);

 private:
  /// Per-hop state, pooled so the network/backend continuations capture
  /// only one pointer (see ProxyServer::ProxyCall).
  struct Call {
    AppTierRouter* self = nullptr;
    AppServer* backend = nullptr;
    cluster::Node* from = nullptr;
    Request request;
    ResponseFn done;
    Response response;
  };

  void on_forwarded(Call* call);
  void on_response(Call* call, const Response& response);
  void deliver(Call* call);

  cluster::Network& network_;
  cluster::LoadBalancer balancer_;
  std::vector<AppServer*> backends_;
  common::ObjectPool<Call> calls_;
};

/// Routes database queries from the application tier to the database tier.
class DbTierRouter {
 public:
  DbTierRouter(cluster::Network& network, cluster::BalancePolicy policy,
               std::uint64_t seed = 11);

  void add_backend(DbServer* server);
  bool remove_backend(DbServer* server);
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] const std::vector<DbServer*>& backends() const {
    return backends_;
  }

  void route(const DbQuery& query, cluster::Node& from, DbResultFn done);

 private:
  struct Call {
    DbTierRouter* self = nullptr;
    DbServer* backend = nullptr;
    cluster::Node* from = nullptr;
    DbQuery query;
    DbResultFn done;
    DbResult result;
  };

  void on_forwarded(Call* call);
  void on_result(Call* call, const DbResult& result);
  void deliver(Call* call);

  cluster::Network& network_;
  cluster::LoadBalancer balancer_;
  std::vector<DbServer*> backends_;
  common::ObjectPool<Call> calls_;
};

/// Entry point: routes emulated-browser requests to the proxy tier.
/// The client machine is not a simulated node, so the inbound hop is a
/// fixed latency; the response hop charges the proxy's NIC.
class FrontendRouter {
 public:
  FrontendRouter(sim::Simulator& sim, cluster::BalancePolicy policy,
                 common::SimTime client_latency = common::SimTime::micros(300),
                 std::uint64_t seed = 13);

  void add_backend(ProxyServer* server);
  bool remove_backend(ProxyServer* server);
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] const std::vector<ProxyServer*>& backends() const {
    return backends_;
  }

  void route(const Request& request, ResponseFn done);

 private:
  struct Call {
    FrontendRouter* self = nullptr;
    ProxyServer* backend = nullptr;
    Request request;
    ResponseFn done;
    Response response;
  };

  void on_client_arrived(Call* call);
  void on_response(Call* call, const Response& response);
  void on_nic_done(Call* call);
  void deliver(Call* call);

  sim::Simulator& sim_;
  cluster::LoadBalancer balancer_;
  common::SimTime client_latency_;
  std::vector<ProxyServer*> backends_;
  common::ObjectPool<Call> calls_;
};

}  // namespace ah::webstack
