// Tier routers: pick a backend and model the network round trip.
//
// A router owns the *wiring* between tiers: backend selection (load
// balancing), the forward hop charged to the sender's NIC, and the response
// hop charged to the replier's NIC.  Server objects never talk to each
// other directly, which is what lets the reconfiguration logic retarget a
// node by just removing/adding it here while in-flight requests drain
// naturally.
//
// Fault tolerance: each router consults the health marks maintained by
// cluster::HealthChecker (Node::marked_up) when picking a backend, fails
// fast when every backend is marked down, and — when a hop timeout is
// configured — abandons a hop whose reply never arrives (crashed backend,
// dropped message).  Call lifetime under timeouts uses the same
// generation-stamping trick as the event queue: every pooled Call carries a
// generation bumped on release, continuations capture (call, generation)
// and become no-ops once stale, so a late reply can never touch a recycled
// call.  With timeouts disabled and all nodes marked up (the defaults),
// behaviour is bit-identical to the fault-unaware router.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "common/analysis.hpp"
#include "common/object_pool.hpp"
#include "cluster/network.hpp"
#include "cluster/node.hpp"
#include "obs/histogram.hpp"
#include "webstack/app_server.hpp"
#include "webstack/db_server.hpp"
#include "webstack/proxy_server.hpp"
#include "webstack/request.hpp"

AH_HOT_PATH_FILE;

namespace ah::webstack {

/// Size of a forwarded HTTP request message.
inline constexpr common::Bytes kForwardRequestBytes = 512;
/// Size of a database query message.
inline constexpr common::Bytes kQueryRequestBytes = 384;

/// Degradation counters shared by all routers.
struct RouterStats {
  /// Hops abandoned because the reply missed the configured timeout.
  std::uint64_t timeouts = 0;
  /// Requests failed immediately because every backend was marked down.
  std::uint64_t fast_fails = 0;
};

/// Routes requests from the proxy tier to the application tier.
class AppTierRouter {
 public:
  AppTierRouter(cluster::Network& network, cluster::BalancePolicy policy,
                std::uint64_t seed = 7);

  void add_backend(AppServer* server);
  bool remove_backend(AppServer* server);
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] const std::vector<AppServer*>& backends() const {
    return backends_;
  }

  /// Abandon a routed request whose response has not arrived within
  /// `timeout` (zero = wait forever, the default).  The caller sees an
  /// error response; a late reply is discarded.
  void set_hop_timeout(common::SimTime timeout) { hop_timeout_ = timeout; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }

  /// Hop-latency histogram (route() to finish(), i.e. both network legs
  /// plus backend service).  Observation is passive: recording is a pure
  /// counter increment, so attaching a histogram perturbs nothing.
  void set_hop_histogram(obs::Histogram* histogram) {
    hop_histogram_ = histogram;
  }

  /// Sends `request` from node `from` to a selected backend; `done` fires
  /// with the backend's response after the return hop.  With no backends
  /// (or all of them marked down) the request fails immediately.
  void route(const Request& request, cluster::Node& from, ResponseFn done);

 private:
  /// Per-hop state, pooled so the network/backend continuations capture
  /// only one pointer (see ProxyServer::ProxyCall).  `generation` outlives
  /// each use: bumped on release, checked by continuations (stale = no-op).
  struct Call {
    AppTierRouter* self = nullptr;
    AppServer* backend = nullptr;
    cluster::Node* from = nullptr;
    Request request;
    ResponseFn done;
    Response response;
    common::SimTime routed_at = common::SimTime::zero();
    std::uint32_t generation = 0;
    sim::EventId timeout_id = 0;
  };

  void on_forwarded(Call* call);
  void on_response(Call* call, const Response& response);
  void on_timeout(Call* call);
  void deliver(Call* call);
  void finish(Call* call, const Response& response);

  cluster::Network& network_;
  cluster::LoadBalancer balancer_;
  std::vector<AppServer*> backends_;
  common::ObjectPool<Call> calls_;
  common::SimTime hop_timeout_ = common::SimTime::zero();
  obs::Histogram* hop_histogram_ = nullptr;
  RouterStats stats_;
};

/// Routes database queries from the application tier to the database tier.
class DbTierRouter {
 public:
  DbTierRouter(cluster::Network& network, cluster::BalancePolicy policy,
               std::uint64_t seed = 11);

  void add_backend(DbServer* server);
  bool remove_backend(DbServer* server);
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] const std::vector<DbServer*>& backends() const {
    return backends_;
  }

  void set_hop_timeout(common::SimTime timeout) { hop_timeout_ = timeout; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }

  /// Hop-latency histogram (see AppTierRouter::set_hop_histogram).
  void set_hop_histogram(obs::Histogram* histogram) {
    hop_histogram_ = histogram;
  }

  void route(const DbQuery& query, cluster::Node& from, DbResultFn done);

 private:
  struct Call {
    DbTierRouter* self = nullptr;
    DbServer* backend = nullptr;
    cluster::Node* from = nullptr;
    DbQuery query;
    DbResultFn done;
    DbResult result;
    common::SimTime routed_at = common::SimTime::zero();
    std::uint32_t generation = 0;
    sim::EventId timeout_id = 0;
  };

  void on_forwarded(Call* call);
  void on_result(Call* call, const DbResult& result);
  void on_timeout(Call* call);
  void deliver(Call* call);
  void finish(Call* call, const DbResult& result);

  cluster::Network& network_;
  cluster::LoadBalancer balancer_;
  std::vector<DbServer*> backends_;
  common::ObjectPool<Call> calls_;
  common::SimTime hop_timeout_ = common::SimTime::zero();
  obs::Histogram* hop_histogram_ = nullptr;
  RouterStats stats_;
};

/// Entry point: routes emulated-browser requests to the proxy tier.
/// The client machine is not a simulated node, so the inbound hop is a
/// fixed latency; the response hop charges the proxy's NIC.
class FrontendRouter {
 public:
  FrontendRouter(sim::Simulator& sim, cluster::BalancePolicy policy,
                 common::SimTime client_latency = common::SimTime::micros(300),
                 std::uint64_t seed = 13);

  void add_backend(ProxyServer* server);
  bool remove_backend(ProxyServer* server);
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] const std::vector<ProxyServer*>& backends() const {
    return backends_;
  }

  void set_hop_timeout(common::SimTime timeout) { hop_timeout_ = timeout; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }

  /// End-to-end latency histogram: route() to finish(), i.e. the full
  /// client-observed round trip (see AppTierRouter::set_hop_histogram).
  void set_hop_histogram(obs::Histogram* histogram) {
    hop_histogram_ = histogram;
  }

  void route(const Request& request, ResponseFn done);

 private:
  struct Call {
    FrontendRouter* self = nullptr;
    ProxyServer* backend = nullptr;
    Request request;
    ResponseFn done;
    Response response;
    common::SimTime routed_at = common::SimTime::zero();
    std::uint32_t generation = 0;
    sim::EventId timeout_id = 0;
  };

  void on_client_arrived(Call* call);
  void on_response(Call* call, const Response& response);
  void on_nic_done(Call* call);
  void on_timeout(Call* call);
  void deliver(Call* call);
  void finish(Call* call, const Response& response);

  sim::Simulator& sim_;
  cluster::LoadBalancer balancer_;
  common::SimTime client_latency_;
  std::vector<ProxyServer*> backends_;
  common::ObjectPool<Call> calls_;
  common::SimTime hop_timeout_ = common::SimTime::zero();
  obs::Histogram* hop_histogram_ = nullptr;
  RouterStats stats_;
};

}  // namespace ah::webstack
