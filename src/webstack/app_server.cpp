#include "webstack/app_server.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <cassert>

AH_HOT_PATH_FILE;

namespace ah::webstack {

namespace {
/// Base footprint of the JVM + Tomcat with no request threads.
constexpr common::Bytes kBaseProcess = 96LL * 1024 * 1024;
/// Java thread stack (fixed by the JVM, not a Harmony tunable here).
constexpr common::Bytes kThreadStack = 192LL * 1024;
/// CPU to spawn one connector thread on demand.
constexpr auto kThreadSpawnCpu = common::SimTime::millis(2);
/// CPU charged once per restart (JVM warm enough to reuse; container redeploy).
constexpr auto kRestartCpu = common::SimTime::millis(400);
/// CPU per socket read/write syscall on the connector path.
constexpr auto kSyscallCpu = common::SimTime::micros(14);
}  // namespace

AppServer::AppServer(sim::Simulator& sim, cluster::Node& node,
                     DbQueryFn db_query, const AppParams& params)
    : sim_(sim), node_(node), db_query_(std::move(db_query)), params_(params) {
  AH_ASSERT_POOLED_CALL(AppCall);
  AH_LINT_ALLOW(hot_path_alloc, "pool construction: server start only");
  http_pool_ = std::make_unique<sim::SlotPool>(
      sim_, node_.name() + ".http",
      sim::SlotPool::Config{params_.max_processors,
                            static_cast<std::size_t>(params_.accept_count)});
  AH_LINT_ALLOW(hot_path_alloc, "pool construction: server start only");
  ajp_pool_ = std::make_unique<sim::SlotPool>(
      sim_, node_.name() + ".ajp",
      sim::SlotPool::Config{
          params_.ajp_max_processors,
          static_cast<std::size_t>(params_.ajp_accept_count)});
  http_spawned_ = std::min(params_.min_processors, params_.max_processors);
  ajp_spawned_ =
      std::min(params_.ajp_min_processors, params_.ajp_max_processors);
  charged_memory_ = kBaseProcess + http_spawned_ * http_thread_memory() +
                    ajp_spawned_ * ajp_thread_memory();
  node_.alloc_memory(charged_memory_);
}

AppServer::~AppServer() { release_memory_and_reset(); }

common::Bytes AppServer::http_thread_memory() const {
  // Stack plus input and output connector buffers.
  return kThreadStack + 2 * params_.buffer_size;
}

common::Bytes AppServer::ajp_thread_memory() const {
  return kThreadStack + 8 * 1024;  // AJP packet buffer is fixed 8 KiB
}

void AppServer::release_memory_and_reset() {
  if (charged_memory_ > 0) {
    node_.free_memory(charged_memory_);
    charged_memory_ = 0;
  }
}

void AppServer::reconfigure(const AppParams& params) {
  // Restart: pools resize, spawned threads reset to the configured minimum,
  // memory re-charged for the new footprint.  In-flight requests complete
  // under the new limits (SlotPool handles shrink gracefully).
  release_memory_and_reset();
  params_ = params;
  http_pool_->set_slots(params_.max_processors);
  ajp_pool_->set_slots(params_.ajp_max_processors);
  http_spawned_ = std::min(params_.min_processors, params_.max_processors);
  ajp_spawned_ =
      std::min(params_.ajp_min_processors, params_.ajp_max_processors);
  charged_memory_ = kBaseProcess + http_spawned_ * http_thread_memory() +
                    ajp_spawned_ * ajp_thread_memory();
  node_.alloc_memory(charged_memory_);
  node_.cpu().submit(kRestartCpu, {});
}

void AppServer::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) {
    release_memory_and_reset();
  } else {
    http_spawned_ = std::min(params_.min_processors, params_.max_processors);
    ajp_spawned_ =
        std::min(params_.ajp_min_processors, params_.ajp_max_processors);
    charged_memory_ = kBaseProcess + http_spawned_ * http_thread_memory() +
                      ajp_spawned_ * ajp_thread_memory();
    node_.alloc_memory(charged_memory_);
    node_.cpu().submit(kRestartCpu, {});
  }
}

common::SimTime AppServer::io_cpu(common::Bytes bytes) const {
  const std::int64_t syscalls =
      (bytes + params_.buffer_size - 1) / std::max<common::Bytes>(
                                              1, params_.buffer_size);
  return kSyscallCpu * static_cast<double>(std::max<std::int64_t>(1, syscalls)) +
         common::SimTime::micros(bytes / 16384);  // copy cost
}

common::SimTime AppServer::charge_thread_growth(sim::SlotPool& pool,
                                                int& spawned, int min_threads,
                                                common::Bytes per_thread_mem) {
  (void)min_threads;
  common::SimTime penalty = common::SimTime::zero();
  const int in_use = pool.in_use();
  while (spawned < in_use) {
    ++spawned;
    ++stats_.threads_spawned;
    penalty += kThreadSpawnCpu;
    if (active_) {
      node_.alloc_memory(per_thread_mem);
      charged_memory_ += per_thread_mem;
    }
  }
  return penalty;
}

void AppServer::handle(const Request& request, ResponseFn done) {
  assert(request.profile != nullptr);
  if (!active_) {
    ++stats_.refused;
    done(Response{false, Response::Origin::kError, 0});
    return;
  }
  AppCall* call = calls_.acquire();
  call->self = this;
  call->request = request;
  call->done = std::move(done);
  call->t_enqueue = sim_.now();
  call->t_start = call->t_enqueue;

  // The grant closure holds only a non-owning pointer, so when the pool
  // rejects the acquire the discarded closure leaves `call` (and its
  // captured `done`) intact for the rejection path below.
  auto granted = [call] { call->self->on_http_granted(call); };
  static_assert(sim::SlotPool::Granted::stores_inline<decltype(granted)>(),
                "pool-grant closure must not allocate");
  if (!http_pool_->acquire(std::move(granted))) {
    ++stats_.rejected_http;
    fail(call);
  }
}

void AppServer::on_http_granted(AppCall* call) {
  // Connector thread granted: service starts; the gap back to t_enqueue is
  // the accept-queue wait.
  call->t_start = sim_.now();
  const common::SimTime spawn_penalty = charge_thread_growth(
      *http_pool_, http_spawned_, params_.min_processors,
      http_thread_memory());
  // Read the request off the socket, then run the servlet.
  node_.cpu().submit(spawn_penalty + io_cpu(512),
                     [call] { call->self->run_servlet(call); });
}

void AppServer::run_servlet(AppCall* call) {
  // Non-owning grant closure: see handle() for the rejection-path rationale.
  if (!ajp_pool_->acquire([call] { call->self->on_ajp_granted(call); })) {
    ++stats_.rejected_ajp;
    http_pool_->release();
    fail(call);
  }
}

void AppServer::on_ajp_granted(AppCall* call) {
  const common::SimTime spawn_penalty = charge_thread_growth(
      *ajp_pool_, ajp_spawned_, params_.ajp_min_processors,
      ajp_thread_memory());
  call->remaining = call->request.profile->total_queries();
  node_.cpu().submit(spawn_penalty + call->request.profile->app_cpu,
                     [call] { call->self->issue_queries(call); });
}

void AppServer::issue_queries(AppCall* call) {
  const Request& request = call->request;
  if (call->remaining == 0) {
    ajp_pool_->release();
    call->origin = request.profile->needs_db() ? Response::Origin::kDb
                                               : Response::Origin::kApp;
    respond(call);
    return;
  }
  // Walk the per-class counts to find the class of the `remaining`-th query
  // (queries of a class are issued together, classes in enum order).
  int index = request.profile->total_queries() - call->remaining;
  QueryClass cls = QueryClass::kSelectSimple;
  for (int c = 0; c < kQueryClassCount; ++c) {
    if (index < request.profile->queries[c]) {
      cls = static_cast<QueryClass>(c);
      break;
    }
    index -= request.profile->queries[c];
  }

  DbQuery query;
  query.cls = cls;
  query.request_id = request.id;
  // TPC-W touches 8 tables; spread queries over them deterministically from
  // the request identity so the DB table-cache sees a realistic working set.
  query.table_id =
      (request.object_id + static_cast<std::uint64_t>(call->remaining)) % 8;
  switch (cls) {
    case QueryClass::kSelectSimple: query.result_bytes = 1024; break;
    case QueryClass::kSelectJoin:   query.result_bytes = 6 * 1024; break;
    case QueryClass::kUpdate:       query.result_bytes = 128; break;
    case QueryClass::kInsert:       query.result_bytes = 128; break;
  }

  ++stats_.db_queries;
  auto on_result = [call](const DbResult& result) {
    call->self->on_db_result(call, result);
  };
  static_assert(DbResultFn::stores_inline<decltype(on_result)>(),
                "DB-result continuation must not allocate");
  db_query_(query, node_, std::move(on_result));
}

void AppServer::on_db_result(AppCall* call, const DbResult& result) {
  if (!result.ok) {
    ajp_pool_->release();
    http_pool_->release();
    fail(call);
    return;
  }
  --call->remaining;
  issue_queries(call);
}

void AppServer::respond(AppCall* call) {
  // Serialize the generated page back through the connector buffers.
  node_.cpu().submit(io_cpu(call->request.response_bytes),
                     [call] { call->self->finish(call); });
}

void AppServer::finish(AppCall* call) {
  http_pool_->release();
  ++stats_.served;
  AH_OBS_TRACE_SPAN(trace_, call->request.id, obs::Hop::kApp,
                    node_.name().c_str(), call->t_enqueue, call->t_start,
                    sim_.now());
  const Response response{true, call->origin, call->request.response_bytes};
  ResponseFn done = std::move(call->done);
  calls_.release(call);
  done(response);
}

void AppServer::fail(AppCall* call) {
  ResponseFn done = std::move(call->done);
  calls_.release(call);
  done(Response{false, Response::Origin::kError, 0});
}

}  // namespace ah::webstack
