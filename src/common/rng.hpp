// Deterministic pseudo-random number generation.
//
// The simulator needs reproducible randomness that is (a) fast, (b) seedable
// per experiment / per iteration so that independent simulations can run in
// parallel without sharing generator state, and (c) splittable so that each
// subsystem (workload, cache, database) draws from an independent stream.
//
// We use xoshiro256** seeded via splitmix64, the standard recommendation of
// the xoshiro authors.  <random> engines are avoided in hot paths because
// std::mt19937_64 is large and the distributions are not portable across
// standard libraries (which would break golden tests).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/analysis.hpp"

// Every simulated arrival, service draw, and think time samples from here.
AH_HOT_PATH_FILE;

namespace ah::common {

/// splitmix64: used for seeding and for hashing seeds together.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two seed values into one (for deriving per-subsystem streams).
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return ~static_cast<result_type>(0);
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent generator for a named sub-stream.
  [[nodiscard]] constexpr Rng split(std::uint64_t stream_id) {
    return Rng{mix_seed((*this)(), stream_id)};
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.  Uses Lemire-style rejection-free
  /// multiply-shift; slight modulo bias is irrelevant for simulation use but
  /// we reject to keep distributions exact for property tests.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % range);
  }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (no cached second value: determinism
  /// per-call matters more than speed here).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * mag;
  }

  /// Log-normal parameterised by the mean/sigma of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bernoulli draw.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Pareto (heavy tail) with scale xm and shape alpha.
  [[nodiscard]] double pareto(double xm, double alpha) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ah::common
