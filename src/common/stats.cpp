#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/analysis.hpp"

// Monitor sampling calls add() on every tick of the event loop.
AH_HOT_PATH_FILE;

namespace ah::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

double mean_of(std::span<const double> samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return s.sample_stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) return bucket_low(i) + width_ / 2.0;
  }
  return bucket_low(counts_.size() - 1) + width_;
}

}  // namespace ah::common
