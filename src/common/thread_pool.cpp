#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace ah::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Wait for every task BEFORE propagating anything: rethrowing from the
  // first failed future while later tasks still run would let the caller
  // destroy `fn` (and whatever it captures) under running tasks.
  for (auto& future : futures) future.wait();
  // "First exception wins" deterministically: lowest index, not whichever
  // thread happened to throw first on the wall clock.
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace ah::common
