#include "common/log.hpp"

#include <cstdio>

namespace ah::common {

namespace {
constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view tag,
                   std::string_view message) {
  const std::scoped_lock lock(write_mutex_);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(tag.size()),
               tag.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace ah::common
