// Streaming and batch statistics used by metrics collection and reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/analysis.hpp"

// RunningStats::add feeds every monitor sample on the event loop.
AH_HOT_PATH_FILE;

namespace ah::common {

/// Single-pass running statistics (Welford's algorithm): mean, variance,
/// min/max over a stream of samples without storing them.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;         // population variance
  [[nodiscard]] double sample_variance() const;  // unbiased (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile over a copy of the samples (nearest-rank method).
/// q in [0, 1].  Returns 0 for empty input.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Mean of a sample span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> samples);

/// Sample standard deviation of a span (0 for n < 2).
[[nodiscard]] double stddev_of(std::span<const double> samples);

/// Fixed-bucket histogram for latency/utilization distributions.
class Histogram {
 public:
  /// Buckets are [lo + i*width, lo + (i+1)*width); values outside the range
  /// are counted in saturating edge buckets.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Approximate quantile from bucket boundaries.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exponentially-weighted moving average, used for smoothed utilization
/// readings in the reconfiguration monitor.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }
  void reset() { seeded_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace ah::common
