#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ah::common {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_separator = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  print_separator();
  print_row(headers_);
  print_separator();
  for (const auto& row : rows_) print_row(row);
  print_separator();
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

}  // namespace ah::common
