// Annotations and compile-time audits consumed by tools/ah_lint.
//
// The simulator's headline properties — thread-count-independent
// determinism, a zero-allocation steady-state request path, SBO-only
// callables — are cheap to regress silently: one careless std::function or
// stray rand() keeps every test green while the bench numbers drift.  This
// header provides the markers that promote those invariants from runtime
// tests to build-time checks:
//
//   AH_HOT_PATH_FILE        file-level marker; ah_lint applies the
//                           allocation (R1) and pooling (R3) rules to any
//                           file containing it.
//   AH_LINT_ALLOW(rule, reason)
//                           suppresses findings of `rule` on the same line
//                           or the line immediately below.  The reason is
//                           mandatory and should say why the invariant is
//                           safe to relax at this site (cold path, startup
//                           only, ...).
//   AH_ASSERT_POOLED_CALL(T)
//                           static_assert audit for per-request call
//                           structs parked in common::ObjectPool.
//   AH_HOT_ENTRY            statement-level taint seed: marks the enclosing
//                           function (or lambda) as a hot-path entry point;
//                           ah_lint propagates reachability from the seeds
//                           through the call graph (rule hot_path_reach).
//   AH_LAYERING_ALLOW(reason)
//                           suppresses a layering finding on the next line
//                           (a justified exception to the include DAG).
//
// The markers compile to nothing; ah_lint matches them textually.
#pragma once

#include <type_traits>

/// Marks a whole file as request-hot-path.  Place once near the top of the
/// file (after includes), as a statement: `AH_HOT_PATH_FILE;`.
#define AH_HOT_PATH_FILE \
  static_assert(true, "ah-lint: allocation/pooling rules apply to this file")

/// Suppresses ah_lint findings of `rule` on this line or the next one.
/// `rule` is the rule name as printed by `ah_lint --list-rules`; `reason`
/// is a string literal justifying the exception.
#define AH_LINT_ALLOW(rule, reason) \
  static_assert(true, "ah-lint: allow " #rule ": " reason)

/// Statement-level hot-path taint seed.  Place as the first statement of a
/// request/event entry point (`AH_HOT_ENTRY;`): ah_lint marks the enclosing
/// function or lambda as hot and propagates reachability through the call
/// graph, so allocation rules follow the code, not the file annotations.
/// Seed the boundaries where hot traffic ENTERS the system — workload issue
/// loops, timer-driven ticks, and the wiring closures that carry requests
/// across type-erased callbacks — not every function they reach.
#define AH_HOT_ENTRY \
  static_assert(true, "ah-lint: hot-path taint seed for the enclosing function")

/// Suppresses an ah_lint `layering` finding on this line or the next one —
/// a justified exception to the include-layer DAG (see DESIGN.md).
#define AH_LAYERING_ALLOW(reason) \
  static_assert(true, "ah-lint: allow layering: " reason)

/// Marks a file as part of the immutable model layer: state defined here is
/// shared read-only across replicas and work-line threads, so the file must
/// hold no non-const statics and no `mutable` members (ah_lint rule
/// `shared_state`).  Place once near the top: `AH_IMMUTABLE_STATE_FILE;`.
#define AH_IMMUTABLE_STATE_FILE \
  static_assert(true, "ah-lint: shared-state rules apply to this file")

namespace ah::common {

/// Requirements for a per-request call struct held in an ObjectPool.  Pool
/// slots are created once with emplace_back() and then reused WITHOUT
/// destruction between requests (the next user overwrites the fields it
/// needs), so a pooled call must:
///   * default-construct without throwing (slot creation), and
///   * destroy without throwing (pool teardown at end of run), and
///   * be non-polymorphic — a vtable would mean someone expects virtual
///     dispatch on a struct whose dynamic type the pool erases.
/// Trivial destructibility is deliberately NOT required: call structs hold
/// InlineFunction continuations, whose destructor is what guarantees a
/// parked capture is released exactly once.
template <typename T>
inline constexpr bool is_poolable_call_v =
    std::is_nothrow_default_constructible_v<T> &&
    std::is_nothrow_destructible_v<T> && !std::is_polymorphic_v<T>;

}  // namespace ah::common

/// Compile-time audit for pooled per-request call structs (see
/// is_poolable_call_v for the exact requirements and rationale).
#define AH_ASSERT_POOLED_CALL(T)                        \
  static_assert(::ah::common::is_poolable_call_v<T>,    \
                #T " does not satisfy the pooled-call " \
                   "requirements (see common/analysis.hpp)")
