// Growable circular FIFO with storage reuse.
//
// std::deque allocates and frees fixed-size chunks as elements cycle
// through, so a steady-state FIFO (a resource waiting line under load)
// still touches the allocator every few hundred operations.  RingBuffer
// keeps one power-of-two buffer that only ever grows; after warm-up,
// push/pop are allocation-free no matter how many elements have cycled.
//
// T must be default-constructible and move-assignable (the queues hold
// move-only InlineFunction closures).  pop_front() overwrites the vacated
// slot with a default-constructed T so captured resources are dropped as
// eagerly as a deque would have.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/analysis.hpp"

// Request/work queues cycle through this on every enqueue/dequeue.
AH_HOT_PATH_FILE;

namespace ah::common {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }

  void push_back(T value) {
    if (size_ == buffer_.size()) grow();
    buffer_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buffer_[head_];
  }

  [[nodiscard]] T& back() {
    assert(size_ > 0);
    return buffer_[(head_ + size_ - 1) & mask_];
  }

  void pop_front() {
    assert(size_ > 0);
    buffer_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  /// Convenience: move the front element out and pop it.
  [[nodiscard]] T take_front() {
    T value = std::move(front());
    pop_front();
    return value;
  }

  /// Drops all elements; keeps the buffer for reuse.
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) {
      buffer_[(head_ + i) & mask_] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_capacity = buffer_.empty() ? 8 : buffer_.size() * 2;
    std::vector<T> bigger(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(buffer_[(head_ + i) & mask_]);
    }
    buffer_ = std::move(bigger);
    head_ = 0;
    mask_ = new_capacity - 1;
  }

  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ah::common
