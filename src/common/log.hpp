// Minimal leveled logger.
//
// Experiments run thousands of simulated iterations; logging must be cheap
// when disabled (a single atomic level check) and safe when multiple
// experiment threads log concurrently (one mutex around the final write).
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>

#include "common/fmt.hpp"

namespace ah::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Process-wide logger (experiments share it; each line is tagged).
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  void write(LogLevel level, std::string_view tag, std::string_view message);

  template <typename... Args>
  void log(LogLevel level, std::string_view tag, std::string_view fmt,
           const Args&... args) {
    if (!enabled(level)) return;
    write(level, tag, common::format(fmt, args...));
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex write_mutex_;
};

template <typename... Args>
void log_debug(std::string_view tag, std::string_view fmt, const Args&... args) {
  Logger::instance().log(LogLevel::kDebug, tag, fmt, args...);
}

template <typename... Args>
void log_info(std::string_view tag, std::string_view fmt, const Args&... args) {
  Logger::instance().log(LogLevel::kInfo, tag, fmt, args...);
}

template <typename... Args>
void log_warn(std::string_view tag, std::string_view fmt, const Args&... args) {
  Logger::instance().log(LogLevel::kWarn, tag, fmt, args...);
}

template <typename... Args>
void log_error(std::string_view tag, std::string_view fmt, const Args&... args) {
  Logger::instance().log(LogLevel::kError, tag, fmt, args...);
}

}  // namespace ah::common
