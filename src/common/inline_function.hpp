// Small-buffer-optimised move-only callable.
//
// The discrete-event hot path schedules millions of short-lived closures per
// tuning run; `std::function` only inlines very small targets (16 bytes on
// libstdc++), so the typical `[this, request, done]` capture heap-allocates
// on every schedule.  InlineFunction stores any callable up to `Capacity`
// bytes (48 by default — sized for the simulator's largest common closures)
// directly in the object, falling back to the heap only for oversized or
// throwing-move targets.  Move-only on purpose: event/task closures are
// consumed exactly once, and dropping copyability lets the queue hold
// move-only callables (e.g. std::packaged_task) without shared_ptr wrappers.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ah::common {

/// Whether a capture that does not fit the inline buffer may fall back to
/// the heap.  Hot-path callable aliases (sim::EventFn, webstack::ResponseFn,
/// ...) use kRequired so an oversized capture is a compile error instead of
/// a silent allocation regression caught (at best) by zero_alloc_test.
enum class SboPolicy { kRelaxed, kRequired };

template <typename Signature, std::size_t Capacity = 48,
          SboPolicy Policy = SboPolicy::kRelaxed>
class InlineFunction;  // undefined; specialised for function signatures

template <typename R, typename... Args, std::size_t Capacity, SboPolicy Policy>
class InlineFunction<R(Args...), Capacity, Policy> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& callable) {  // NOLINT(runtime/explicit)
    construct<D>(std::forward<F>(callable));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... args) {
    return invoke_(&storage_, std::forward<Args>(args)...);
  }

  // Alloc-free; the text-level call graph taints it via the name it shares
  // with Histogram::reset.
  // AH_LINT_ALLOW(hot_path_reach, "name-share with Histogram::reset")
  void reset() noexcept {
    if (manage_ != nullptr) manage_(&storage_, nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// True when the target lives in the inline buffer (diagnostics/tests).
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>;
  }

 private:
  enum class Op { kDestroy, kMove };

  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(void* self, void* from, Op op);

  // Inline storage requires a nothrow move so that InlineFunction's own
  // move operations stay noexcept (the event heap relocates items freely).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F, typename Arg>
  void construct(Arg&& callable) {
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(&storage_)) F(std::forward<Arg>(callable));
      invoke_ = [](void* self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<F*>(self)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* self, void* from, Op op) {
        if (op == Op::kDestroy) {
          std::launder(reinterpret_cast<F*>(self))->~F();
        } else {
          F* source = std::launder(reinterpret_cast<F*>(from));
          ::new (self) F(std::move(*source));
          source->~F();
        }
      };
    } else {
      static_assert(Policy == SboPolicy::kRelaxed || sizeof(F) == 0,
                    "capture exceeds the inline buffer (or has a throwing "
                    "move) of an SboPolicy::kRequired InlineFunction — "
                    "shrink the capture or park it in a pooled call struct");
      // Heap fallback: the buffer holds a single owning pointer.
      ::new (static_cast<void*>(&storage_))
          F*(new F(std::forward<Arg>(callable)));
      invoke_ = [](void* self, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<F**>(self)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* self, void* from, Op op) {
        if (op == Op::kDestroy) {
          delete *std::launder(reinterpret_cast<F**>(self));
        } else {
          ::new (self) F*(*std::launder(reinterpret_cast<F**>(from)));
        }
      };
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(&storage_, &other.storage_, Op::kMove);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace ah::common
