// Non-owning callable view (a lightweight std::function_ref stand-in).
//
// For hooks that are only invoked during the call that receives them — a
// load probe consulted inside LoadBalancer::pick(), a per-index body handed
// to parallel_for — owning the callable is pure overhead: std::function may
// heap-allocate, and InlineFunction is move-only so it cannot bind a
// temporary lambda at a call site that keeps using it.  FunctionRef is two
// pointers, trivially copyable, and binds any callable (including mutable
// lambdas and plain functions) without taking ownership.
//
// Lifetime rule: a FunctionRef must not outlive the callable it was bound
// to.  Only use it for parameters consumed before the call returns.
#pragma once

#include <type_traits>
#include <utility>

namespace ah::common {

template <typename Signature>
class FunctionRef;  // undefined; specialised for function signatures

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() noexcept = default;
  constexpr FunctionRef(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::remove_reference_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  FunctionRef(F&& callable) noexcept  // NOLINT(runtime/explicit)
      : target_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        invoke_([](void* target, Args&&... args) -> R {
          return (*static_cast<D*>(target))(std::forward<Args>(args)...);
        }) {}

  [[nodiscard]] constexpr explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... args) const {
    return invoke_(target_, std::forward<Args>(args)...);
  }

 private:
  using Invoke = R (*)(void*, Args&&...);

  void* target_ = nullptr;
  Invoke invoke_ = nullptr;
};

}  // namespace ah::common
