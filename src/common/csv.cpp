#include "common/csv.hpp"

#include <stdexcept>

#include "common/fmt.hpp"

namespace ah::common {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path, std::ios::trunc), columns_(columns.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(columns);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument(
        format("CsvWriter: expected {} cells, got {}", columns_,
               cells.size()));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(std::initializer_list<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format("{:.6g}", v));
  write_row(cells);
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string{cell};
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ah::common
