// Minimal std::format stand-in.
//
// The toolchain here (libstdc++ 12) does not ship <format>, so this header
// provides the small subset the project needs: positional-free `{}`
// placeholders with optional `:.Nf` / `:.Ng` / `:>N` / `:<N` specs, formatted
// through ostringstream.  Literal braces are written `{{` / `}}`.
#pragma once

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ah::common {

namespace detail {

inline void apply_spec(std::ostringstream& os, std::string_view spec) {
  // spec is the text between ':' and '}', e.g. ".2f", ">8", "<6", ".3g".
  std::size_t i = 0;
  if (i < spec.size() && (spec[i] == '>' || spec[i] == '<')) {
    const char align = spec[i++];
    std::size_t width = 0;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
      width = width * 10 + static_cast<std::size_t>(spec[i++] - '0');
    }
    os << (align == '>' ? std::right : std::left)
       << std::setw(static_cast<int>(width));
  }
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    int precision = 0;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
      precision = precision * 10 + (spec[i++] - '0');
    }
    os << std::setprecision(precision);
    if (i < spec.size() && spec[i] == 'f') {
      os << std::fixed;
      ++i;
    } else if (i < spec.size() && spec[i] == 'g') {
      os.unsetf(std::ios::floatfield);
      ++i;
    }
  }
  if (i != spec.size()) {
    throw std::invalid_argument("fmt: unsupported format spec");
  }
}

inline void format_impl(std::ostringstream& os, std::string_view fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        os << '{';
        ++i;
        continue;
      }
      throw std::invalid_argument("fmt: more placeholders than arguments");
    }
    if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      os << '}';
      ++i;
      continue;
    }
    os << fmt[i];
  }
}

template <typename T, typename... Rest>
void format_impl(std::ostringstream& os, std::string_view fmt, const T& value,
                 const Rest&... rest) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        os << '{';
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        throw std::invalid_argument("fmt: unbalanced '{'");
      }
      std::string_view spec = fmt.substr(i + 1, close - i - 1);
      if (!spec.empty() && spec.front() == ':') spec.remove_prefix(1);
      const auto saved_flags = os.flags();
      const auto saved_precision = os.precision();
      if (!spec.empty()) apply_spec(os, spec);
      os << value;
      os.flags(saved_flags);
      os.precision(saved_precision);
      format_impl(os, fmt.substr(close + 1), rest...);
      return;
    }
    if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      os << '}';
      ++i;
      continue;
    }
    os << fmt[i];
  }
  // Extra arguments with no remaining placeholders are ignored (std::format
  // allows this as well).
}

}  // namespace detail

/// Formats `fmt` with `{}` placeholders.  Supported specs: `{:.Nf}`,
/// `{:.Ng}`, `{:>N}`, `{:<N}`, and combinations like `{:>8.2f}`.
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  detail::format_impl(os, fmt, args...);
  return os.str();
}

}  // namespace ah::common
