// ASCII table renderer for benchmark output.
//
// Every bench binary reproduces one table/figure from the paper and prints it
// in a shape comparable to the original; this keeps that formatting in one
// place.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ah::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; extra cells are dropped, missing cells are blank.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  [[nodiscard]] static std::string num(double value, int precision = 1);
  [[nodiscard]] static std::string percent(double fraction, int precision = 1);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ah::common
