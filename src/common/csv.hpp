// CSV writer for experiment traces (per-iteration WIPS series etc.).
//
// Bench binaries dump their raw series next to the rendered tables so that
// figures can be re-plotted offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ah::common {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.  Throws
  /// std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Writes one row.  Cell count must equal the column count.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void write_row(std::initializer_list<double> values);

  /// Escapes a cell per RFC 4180 (quotes cells containing , " or newline).
  [[nodiscard]] static std::string escape(std::string_view cell);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace ah::common
