// Fixed-size thread pool for embarrassingly-parallel experiment evaluation.
//
// The Active Harmony simplex initialisation evaluates n+1 independent
// configurations, and the parameter-partitioning strategy runs independent
// work-line simulations; both map onto `parallel_for`.  The pool is
// deliberately simple (single mutex-protected deque): tasks here are whole
// simulations lasting milliseconds to seconds, so queue contention is
// irrelevant and simplicity wins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/inline_function.hpp"

namespace ah::common {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its completion.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // The queue holds move-only callables, so the packaged_task is stored
    // directly — no shared_ptr indirection.
    std::packaged_task<R()> packaged(std::forward<F>(task));
    std::future<R> result = packaged.get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back(std::move(packaged));
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until ALL
  /// tasks finished, even when some throw (so `fn` and its captures never
  /// outlive running tasks).  The first exception in index order is
  /// rethrown; any others are discarded.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  using Task = InlineFunction<void(), 48>;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ah::common
