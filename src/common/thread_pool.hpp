// Fixed-size thread pool for embarrassingly-parallel experiment evaluation.
//
// The Active Harmony simplex initialisation evaluates n+1 independent
// configurations, and the parameter-partitioning strategy runs independent
// work-line simulations; both map onto `parallel_for_each`.  The pool is
// deliberately simple (single mutex-protected deque): tasks here are whole
// simulations lasting milliseconds to seconds, so queue contention is
// irrelevant and simplicity wins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ah::common {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its completion.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete.  Exceptions from tasks propagate (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ah::common
