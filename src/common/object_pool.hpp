// Free-list object pool with stable addresses.
//
// The request hot path parks per-request continuation state (the captured
// `done` callbacks plus the request itself) in pooled structs so that the
// closures threaded through the event queue only carry a single pointer and
// always fit an InlineFunction's inline buffer.  A pool slot is acquired at
// request admission and released when the response callback fires; after
// warm-up the pool reaches the peak concurrency of the server and the
// steady-state request path performs no heap allocations at all.
//
// Addresses are stable (deque-backed), so a T* stays valid across later
// acquires.  Slots are NOT reset between uses: the caller overwrites the
// fields it needs, which avoids destructor/constructor churn for structs
// holding InlineFunction members.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/analysis.hpp"

// acquire()/release() run once per request hop; the pool exists so the rest
// of the hot path never allocates.
AH_HOT_PATH_FILE;

namespace ah::common {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Returns a slot, reusing a released one when available.  The slot keeps
  /// whatever state its previous user left behind.
  [[nodiscard]] T* acquire() {
    if (free_.empty()) return &items_.emplace_back();
    T* slot = free_.back();
    free_.pop_back();
    return slot;
  }

  /// Returns `slot` to the free list.  Must have come from this pool's
  /// acquire(), and must not be released twice.
  void release(T* slot) { free_.push_back(slot); }

  /// Pre-creates slots so even the first requests allocate nothing.
  void reserve(std::size_t n) {
    while (items_.size() < n) free_.push_back(&items_.emplace_back());
  }

  /// Total slots ever created (== peak outstanding + available).
  [[nodiscard]] std::size_t created() const { return items_.size(); }
  [[nodiscard]] std::size_t available() const { return free_.size(); }
  [[nodiscard]] std::size_t outstanding() const {
    return items_.size() - free_.size();
  }

 private:
  // The pool's own backing store; growth stops once warm-up reaches peak
  // concurrency, so the steady state allocates nothing.
  AH_LINT_ALLOW(pooling, "backing store: deque growth never moves slots");
  std::deque<T> items_;   // deque: growth never moves existing slots
  std::vector<T*> free_;
};

}  // namespace ah::common
