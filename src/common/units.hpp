// Strong unit types used throughout the simulator.
//
// Simulated time is kept as an integer number of microseconds so that event
// ordering is exact and experiments are reproducible bit-for-bit across
// platforms.  Helper constructors/accessors keep call sites readable
// (`SimTime::seconds(100)` rather than `100'000'000`).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

#include "common/analysis.hpp"

// SimTime/Bytes arithmetic runs on every event; keep it allocation-free.
AH_HOT_PATH_FILE;

namespace ah::common {

/// A point (or span) in simulated time, in integer microseconds.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t micros) noexcept : micros_(micros) {}

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) noexcept {
    return SimTime{us};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) noexcept {
    return SimTime{ms * 1000};
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const noexcept { return micros_; }
  [[nodiscard]] constexpr double as_millis() const noexcept {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double as_seconds() const noexcept {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime other) noexcept {
    micros_ += other.micros_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) noexcept {
    micros_ -= other.micros_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.micros_ + b.micros_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.micros_ - b.micros_};
  }
  /// Scales a time span by a real factor (e.g. slowdown under contention).
  /// A single double overload avoids int/double ambiguity; spans below
  /// 2^53 µs (≈285 years) scale exactly for integer factors.
  friend constexpr SimTime operator*(SimTime a, double k) noexcept {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(a.micros_) * k)};
  }
  friend constexpr SimTime operator*(double k, SimTime a) noexcept {
    return a * k;
  }
  friend constexpr double operator/(SimTime a, SimTime b) noexcept {
    return static_cast<double>(a.micros_) / static_cast<double>(b.micros_);
  }

 private:
  std::int64_t micros_ = 0;
};

/// Byte counts (object sizes, buffer sizes).  Plain alias: arithmetic on
/// byte counts is pervasive and a strong type would add noise, but the name
/// documents intent at interfaces.
using Bytes = std::int64_t;

constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024;
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024 * 1024;
}

}  // namespace ah::common
