// Feedback-controlled admission: hold a latency SLO by shedding load.
//
// A proportional controller (optionally with a fuzzy deadband, after the
// response-time regulators of Venkatarama & Sekaran's autonomic e-commerce
// work) closes the loop between an observed p95 latency and an admit
// fraction in [min_admit, 1].  Completed-request latencies accumulate in a
// windowed obs::Histogram; every `period` the controller compares the
// window's p95 against the target, nudges the admit fraction against the
// relative error, and resets the window.  The servers consult admit() per
// request and shed the remainder (fast-fail or serve-stale — the shed
// policy belongs to the server, not to this controller).
//
// This is the FAST control loop of the stack: admission reacts within
// seconds, reactive reconfiguration (core::ReconfigController) within tens
// of seconds, and the Harmony parameter tuner across whole measurement
// iterations.  Separating the timescales is what keeps the three loops from
// fighting (see DESIGN.md "Control-loop layering").
//
// Determinism: admit() hashes the request id against the current threshold
// — no RNG state, so the admitted subset is a pure function of (ids, salt,
// fraction) and runs are byte-identical at any thread count.  Everything
// here lives on one line's timeline; a sharded model gets one controller
// per work line.
//
// Hot path: admit() and observe() run once per request and are
// allocation-free; the periodic tick() walks histogram pages only.
#pragma once

#include <cstdint>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/histogram.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::ctrl {

class AdmissionController {
 public:
  struct Config {
    /// The SLO: window p95 at or below this holds the admit fraction.
    common::SimTime target_p95 = common::SimTime::millis(500);
    /// Control period: how often the admit fraction is reconsidered.
    common::SimTime period = common::SimTime::seconds(1.0);
    /// Proportional gain on the relative p95 error.
    double gain = 0.4;
    /// Largest admit-fraction change per tick (slew limit).
    double max_step = 0.15;
    /// Floor of the admit fraction: some traffic always gets through, so
    /// the controller keeps receiving latency samples to recover on.
    double min_admit = 0.05;
    /// Windows with fewer samples are ignored (an idle or fully shed
    /// window carries no p95 signal).
    std::uint64_t min_samples = 16;
    /// Fuzzy band shaping: inside `deadband` relative error the controller
    /// holds (no actuation on noise); between deadband and `outer_band` it
    /// applies half gain; beyond, full gain.  `fuzzy = false` is a plain
    /// proportional controller.
    bool fuzzy = true;
    double deadband = 0.10;
    double outer_band = 0.50;
    /// Hash salt for the admit decision (per-line variety).
    std::uint64_t salt = 0x5ca1ab1e;
  };

  /// Observer fired when the admit fraction actually changes (controller
  /// actuation — the system model uses it to taint measurement windows).
  using ChangeFn = common::InlineFunction<void(double), 48,
                                          common::SboPolicy::kRequired>;

  AdmissionController(sim::Simulator& sim, const Config& config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;
  ~AdmissionController();

  /// Begins periodic control ticks (first one `period` from now).
  void start();
  /// Stops ticking; the current admit fraction stays in force.
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Updates the knobs in place (target, gain, ...).  The admit fraction
  /// carries over — reconfiguring the controller is not an amnesty.
  void set_config(const Config& config);
  [[nodiscard]] const Config& config() const { return config_; }

  void set_change_observer(ChangeFn observer) {
    observer_ = std::move(observer);
  }

  /// Per-request admit decision: deterministic hash of the request id
  /// against the current admit fraction.  Counts the outcome.
  [[nodiscard]] bool admit(std::uint64_t request_id) {
    if (threshold_ == kAdmitAll) {
      ++admitted_;
      return true;
    }
    if (common::mix_seed(request_id, config_.salt) <= threshold_) {
      ++admitted_;
      return true;
    }
    ++shed_;
    return false;
  }

  /// Feeds one completed-request latency into the control window.  Only
  /// admitted completions belong here: shed responses are cheap by
  /// construction and would bias the controller into opening up.
  void observe(common::SimTime latency) {
    AH_OBS_RECORD_SPAN(&window_, latency);
  }

  [[nodiscard]] double admit_fraction() const { return fraction_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Ticks that actually moved the admit fraction.
  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }
  /// Samples in the current (not yet evaluated) window.
  [[nodiscard]] std::uint64_t window_count() const { return window_.count(); }

 private:
  static constexpr std::uint64_t kAdmitAll = ~0ull;

  void tick();
  void set_fraction(double fraction);

  sim::Simulator& sim_;
  Config config_;
  obs::Histogram window_;
  ChangeFn observer_;
  double fraction_ = 1.0;
  std::uint64_t threshold_ = kAdmitAll;
  sim::EventId tick_id_ = 0;
  bool running_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t adjustments_ = 0;
};

}  // namespace ah::ctrl
