#include "ctrl/admission_controller.hpp"

#include <cassert>
#include <cmath>

AH_HOT_PATH_FILE;

namespace ah::ctrl {

AdmissionController::AdmissionController(sim::Simulator& sim,
                                         const Config& config)
    : sim_(sim), config_(config) {
  assert(config_.period > common::SimTime::zero());
  assert(config_.target_p95 > common::SimTime::zero());
  assert(config_.min_admit > 0.0 && config_.min_admit <= 1.0);
  assert(config_.max_step > 0.0);
}

AdmissionController::~AdmissionController() { stop(); }

void AdmissionController::start() {
  if (running_) return;
  running_ = true;
  tick_id_ = sim_.schedule(config_.period, [this] { tick(); });
}

void AdmissionController::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(tick_id_);
  tick_id_ = 0;
}

void AdmissionController::set_config(const Config& config) {
  assert(config.period > common::SimTime::zero());
  assert(config.target_p95 > common::SimTime::zero());
  config_ = config;
  // The admit fraction carries over, but the floor may have risen.
  if (fraction_ < config_.min_admit) set_fraction(config_.min_admit);
}

void AdmissionController::tick() {
  AH_HOT_ENTRY;  // periodic control step driven by the event loop
  ++ticks_;
  if (window_.count() >= config_.min_samples) {
    const double target_us =
        static_cast<double>(config_.target_p95.as_micros());
    const double p95_us = static_cast<double>(window_.p95_us());
    // Relative error: positive when the SLO is breached.
    const double err = (p95_us - target_us) / target_us;
    double gain = config_.gain;
    if (config_.fuzzy) {
      const double mag = std::fabs(err);
      if (mag <= config_.deadband) {
        gain = 0.0;  // hold: don't actuate on noise
      } else if (mag < config_.outer_band) {
        gain *= 0.5;  // gentle correction inside the outer band
      }
    }
    double step = -gain * err;
    if (step > config_.max_step) step = config_.max_step;
    if (step < -config_.max_step) step = -config_.max_step;
    if (step != 0.0) set_fraction(fraction_ + step);
  }
  window_.reset();  // keeps pages: no allocation on later windows
  tick_id_ = sim_.schedule(config_.period, [this] { tick(); });
}

void AdmissionController::set_fraction(double fraction) {
  if (fraction < config_.min_admit) fraction = config_.min_admit;
  if (fraction > 1.0) fraction = 1.0;
  if (fraction == fraction_) return;
  fraction_ = fraction;
  // 2^64 * fraction as the hash acceptance threshold; fraction == 1 maps
  // to the sentinel so a fully open controller never computes the hash.
  threshold_ = fraction_ >= 1.0
                   ? kAdmitAll
                   : static_cast<std::uint64_t>(fraction_ * 0x1.0p64);
  ++adjustments_;
  if (observer_) observer_(fraction_);
}

}  // namespace ah::ctrl
