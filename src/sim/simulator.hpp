// Discrete-event simulation engine.
//
// Single-threaded by design: one Simulator instance owns one virtual
// timeline.  Parallelism in this project comes from running *independent*
// Simulator instances concurrently (one per candidate configuration or work
// line), never from sharing one timeline across threads.
#pragma once

#include <cstdint>

#include "common/analysis.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] common::SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now.  Negative delays clamp to now
  /// (an event can never fire in the past).
  EventId schedule(common::SimTime delay, EventFn fn);

  /// Schedules `fn` at the absolute time `at` (clamped to now).
  EventId schedule_at(common::SimTime at, EventFn fn);

  /// Cancels a pending event; no-op for fired/unknown ids.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or virtual time would pass `until`.
  /// Events at exactly `until` DO fire.  Afterwards now() == min(until,
  /// drain time).  Returns the number of events executed.
  std::uint64_t run_until(common::SimTime until);

  /// Runs until the event queue is empty.
  std::uint64_t run();

  /// Executes at most one event.  Returns false when none remain.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.live_size(); }
  /// Stored events including cancelled-but-unreclaimed slots — the lazy
  /// cancellation debt the calendar queue carries (see EventQueue).
  [[nodiscard]] std::size_t stored_events() const { return queue_.stored_size(); }

 private:
  EventQueue queue_;
  common::SimTime now_ = common::SimTime::zero();
  std::uint64_t executed_ = 0;
};

}  // namespace ah::sim
