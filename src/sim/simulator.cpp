#include "sim/simulator.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

EventId Simulator::schedule(common::SimTime delay, EventFn fn) {
  return schedule_at(now_ + std::max(delay, common::SimTime::zero()),
                     std::move(fn));
}

EventId Simulator::schedule_at(common::SimTime at, EventFn fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

std::uint64_t Simulator::run_until(common::SimTime until) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto entry = queue_.pop();
    now_ = entry.time;
    entry.fn();
    ++count;
  }
  // Advance the clock to the end of the window even if the queue drained
  // early, so subsequent scheduling is relative to the window boundary.
  now_ = std::max(now_, until);
  executed_ += count;
  return count;
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

bool Simulator::step() {
  AH_HOT_ENTRY;  // the event-dispatch loop: every simulated action runs here
  if (queue_.empty()) return false;
  auto entry = queue_.pop();
  now_ = entry.time;
  entry.fn();
  ++executed_;
  return true;
}

}  // namespace ah::sim
