// Pending-event set for the discrete-event simulator.
//
// A hierarchical calendar queue (timer wheel): four levels of 256 buckets
// whose widths grow by a factor of 256 per level, so one structure spans
// 2^32 µs (~71 minutes) of future time at O(1) amortised push/pop; events
// beyond that horizon wait in an overflow list that is folded back in one
// 2^32 µs epoch at a time.  A cursor tracks the tick (µs) the queue has
// drained up to; the ready list holds the events of the cursor's tick in
// FIFO order.  When it empties, the level-0 occupancy bitmap yields the
// next populated one-tick bucket directly, and when a 256-tick block is
// exhausted a bucket from the lowest-populated higher level cascades down.
//
// Storage is a single slab of nodes that doubles as the id slot table;
// buckets, the ready run and the overflow are intrusive singly-linked
// lists threaded through the slab.  Moving an event between levels is a
// pointer splice — the closure payload never moves — and once the slab has
// grown to the peak event population the queue performs no heap
// allocation at all, no matter which buckets future times touch.
//
// Determinism: equal-time events pop in push order.  The wheel preserves
// this without sequence numbers because every list involved is append-only
// in push order — a bucket receives nodes either from `push` (later pushes
// append later) or from a cascade, which distributes a single parent
// bucket's nodes in their stored order into child buckets that are
// provably empty at that moment.  Pop order is therefore byte-identical to
// the previous (time, sequence) binary heap.  Cancellation is lazy:
// cancelled nodes are reaped when their tick is reached, which keeps the
// hot path free of structural repair.
//
// Event ids are generation-stamped slot handles: the low 32 bits index the
// slab, the high 32 bits carry that slot's generation at push time.
// cancel() is then a single array probe (no hash set), and a recycled slot
// can never be confused with the event that used it before — the stale
// id's generation no longer matches.  Closures are stored in a
// small-buffer-optimised InlineFunction, so scheduling a typical
// `[this, ...]` capture performs no heap allocation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/units.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

using EventId = std::uint64_t;
/// Event closures up to 48 bytes are stored inline (move-only).  SBO is
/// *required*: an oversized capture is a compile error, never a silent
/// per-event heap allocation.
using EventFn =
    common::InlineFunction<void(), 48, common::SboPolicy::kRequired>;

class EventQueue {
 public:
  struct Entry {
    common::SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Inserts an event; returns its id (usable with `cancel`).  Ids are
  /// never zero, so 0 is safe as a caller-side "no event" sentinel.
  EventId push(common::SimTime time, EventFn fn);

  /// Marks an event as cancelled.  Returns false when the id is unknown or
  /// already fired (cancelling those is a no-op, not an error).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] common::SimTime next_time();

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Entry pop();

  /// Number of live (pending, non-cancelled) events.  Exact under lazy
  /// cancellation: a cancelled-but-unreaped entry is excluded the moment
  /// cancel() returns, so queue-depth introspection never overcounts.
  [[nodiscard]] std::size_t size() const { return live_count_; }
  /// Historic name for size(); kept for existing call sites.
  [[nodiscard]] std::size_t live_size() const { return live_count_; }
  /// Physical entries still held (live + cancelled-but-unreaped).  The gap
  /// between this and size() is the lazy-cancellation debt.
  [[nodiscard]] std::size_t stored_size() const { return stored_count_; }

 private:
  /// 2^kBucketBits buckets per level; level l buckets span 2^(8l) ticks.
  static constexpr std::size_t kBucketBits = 8;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::size_t kLevels = 4;
  static constexpr std::uint64_t kIndexMask = kBuckets - 1;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Slab node: event payload + id slot + intrusive list link.  The slab
  /// index is the id's low 32 bits, so one array serves as event storage,
  /// slot table and list arena at once.
  struct Node {
    common::SimTime time;
    EventFn fn;
    std::uint32_t generation = 1;  // bumped on pop/cancel; 0 never occurs
    std::uint32_t next = kNil;
    bool cancelled = false;
  };

  struct List {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  struct Wheel {
    std::array<List, kBuckets> buckets;
    /// One bit per bucket; makes "next populated bucket" a word scan.
    std::array<std::uint64_t, kBuckets / 64> occupied{};
  };

  [[nodiscard]] static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  /// Clamps negative times to tick 0; the ready-list insert keeps their
  /// relative order by actual SimTime.
  [[nodiscard]] static std::uint64_t tick_of(common::SimTime time) {
    const std::int64_t us = time.as_micros();
    return us <= 0 ? 0 : static_cast<std::uint64_t>(us);
  }
  /// True when `id` refers to a live (pending, non-cancelled) event.
  [[nodiscard]] bool is_live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < nodes_.size() &&
           nodes_[slot].generation == generation_of(id);
  }

  void append(List& list, std::uint32_t n);
  /// Routes a node to the ready list, a wheel bucket, or the overflow list
  /// according to its tick's distance from the cursor.
  void place(std::uint32_t n);
  /// Inserts into the ready list keeping (time, push-order) sorted; the
  /// common case (at or after every queued time) is an O(1) append.
  void ready_insert(std::uint32_t n);
  /// Reaps cancelled nodes and reloads the ready list from the wheels
  /// until a live node leads it (or everything stored is exhausted).
  void ensure_ready();
  /// Advances the cursor to the next populated tick and loads it into the
  /// ready list.  Returns false when wheels and overflow are all empty.
  bool advance();
  /// Folds the earliest 2^32 µs epoch of overflow nodes back into the
  /// wheels (in stored order, preserving FIFO ties).
  void drain_overflow_epoch();
  /// Next set bucket index >= `from` at `level`, or -1.
  [[nodiscard]] int next_occupied(std::size_t level, std::uint64_t from) const;

  std::array<Wheel, kLevels> wheels_;
  List overflow_;
  /// Events of the cursor's tick (plus late pushes at or before it), in
  /// pop order.
  List ready_;
  /// The tick the queue has drained up to: every stored node with a
  /// strictly smaller tick has been popped or sits in the ready list.
  std::uint64_t cursor_ = 0;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::size_t stored_count_ = 0;
};

}  // namespace ah::sim
