// Pending-event set for the discrete-event simulator.
//
// A binary heap over (time, sequence) keyed events.  The sequence number
// breaks ties so that two events scheduled for the same instant fire in
// scheduling order — this determinism is what makes whole experiments
// reproducible.  Cancellation is lazy: cancelled ids are skipped at pop time,
// which keeps the hot path free of heap rebuilds.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace ah::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  struct Entry {
    common::SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Inserts an event; returns its id (usable with `cancel`).
  EventId push(common::SimTime time, EventFn fn);

  /// Marks an event as cancelled.  Returns false when the id is unknown or
  /// already fired (cancelling those is a no-op, not an error).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_.empty(); }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] common::SimTime next_time();

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Entry pop();

  [[nodiscard]] std::size_t live_size() const { return live_.size(); }

 private:
  struct HeapItem {
    common::SimTime time;
    EventId id;
    EventFn fn;

    // std::*_heap builds a max-heap; invert so the earliest pops first.
    bool operator<(const HeapItem& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Pops cancelled items off the heap head until a live one surfaces.
  void drop_cancelled_head();

  std::vector<HeapItem> heap_;
  std::unordered_set<EventId> live_;       // pending, not cancelled
  std::unordered_set<EventId> cancelled_;  // pending in heap_, cancelled
  EventId next_id_ = 1;
};

}  // namespace ah::sim
