// Pending-event set for the discrete-event simulator.
//
// A binary heap over (time, sequence) keyed events.  The sequence number
// breaks ties so that two events scheduled for the same instant fire in
// scheduling order — this determinism is what makes whole experiments
// reproducible.  Cancellation is lazy: cancelled ids are skipped at pop time,
// which keeps the hot path free of heap rebuilds.
//
// Event ids are generation-stamped slot handles: the low 32 bits index a
// slot table, the high 32 bits carry that slot's generation at push time.
// cancel() is then a single array probe (no hash set), and a recycled slot
// can never be confused with the event that used it before — the stale id's
// generation no longer matches.  Closures are stored in a
// small-buffer-optimised InlineFunction, so scheduling a typical
// `[this, ...]` capture performs no heap allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/units.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

using EventId = std::uint64_t;
/// Event closures up to 48 bytes are stored inline (move-only).  SBO is
/// *required*: an oversized capture is a compile error, never a silent
/// per-event heap allocation.
using EventFn =
    common::InlineFunction<void(), 48, common::SboPolicy::kRequired>;

class EventQueue {
 public:
  struct Entry {
    common::SimTime time;
    EventId id;
    EventFn fn;
  };

  /// Inserts an event; returns its id (usable with `cancel`).  Ids are
  /// never zero, so 0 is safe as a caller-side "no event" sentinel.
  EventId push(common::SimTime time, EventFn fn);

  /// Marks an event as cancelled.  Returns false when the id is unknown or
  /// already fired (cancelling those is a no-op, not an error).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] common::SimTime next_time();

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Entry pop();

  [[nodiscard]] std::size_t live_size() const { return live_count_; }

 private:
  struct HeapItem {
    common::SimTime time;
    std::uint64_t seq;  // monotonic: ties fire in scheduling order
    EventId id;
    EventFn fn;

    // std::*_heap builds a max-heap; invert so the earliest pops first.
    bool operator<(const HeapItem& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Slot {
    std::uint32_t generation = 1;  // bumped on release; 0 never occurs
  };

  [[nodiscard]] static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  /// True when `id` refers to a live (pending, non-cancelled) event.
  [[nodiscard]] bool is_live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() &&
           slots_[slot].generation == generation_of(id);
  }
  /// Releases an id's slot for reuse; stale heap items stop matching.
  void release(EventId id);

  /// Pops cancelled items off the heap head until a live one surfaces.
  void drop_cancelled_head();

  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace ah::sim
