#include "sim/fault_injector.hpp"
#include "common/analysis.hpp"

#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

std::string_view fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:       return "crash";
    case FaultEvent::Kind::kRestart:     return "restart";
    case FaultEvent::Kind::kSlowStart:   return "slow-start";
    case FaultEvent::Kind::kSlowEnd:     return "slow-end";
    case FaultEvent::Kind::kLinkDegrade: return "link-degrade";
    case FaultEvent::Kind::kLinkRestore: return "link-restore";
  }
  return "?";
}

// FaultPlan::parse lives in scenario.cpp: the fault grammar is the
// restricted dialect of the scenario grammar, and both share one engine.

void FaultInjector::arm(const FaultPlan& plan, Handler handler) {
  disarm();
  plan_ = plan;
  handler_ = std::move(handler);
  pending_ids_.reserve(plan_.events.size());
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    pending_ids_.push_back(
        sim_.schedule_at(plan_.events[i].at, [this, i] { fire(i); }));
  }
  remaining_ = plan_.events.size();
}

void FaultInjector::disarm() {
  // Cancelling an already-fired id is a no-op, so the whole list is safe.
  for (const EventId id : pending_ids_) sim_.cancel(id);
  pending_ids_.clear();
  remaining_ = 0;
}

void FaultInjector::fire(std::size_t index) {
  AH_HOT_ENTRY;  // scheduled fault delivery runs on the event loop
  ++fired_;
  if (remaining_ > 0) --remaining_;
  if (handler_) handler_(plan_.events[index]);
}

}  // namespace ah::sim
