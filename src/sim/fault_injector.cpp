#include "sim/fault_injector.hpp"
#include "common/analysis.hpp"

#include <cctype>
#include <charconv>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

std::string_view fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:       return "crash";
    case FaultEvent::Kind::kRestart:     return "restart";
    case FaultEvent::Kind::kSlowStart:   return "slow-start";
    case FaultEvent::Kind::kSlowEnd:     return "slow-end";
    case FaultEvent::Kind::kLinkDegrade: return "link-degrade";
    case FaultEvent::Kind::kLinkRestore: return "link-restore";
  }
  return "?";
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Consumes a prefix of `s` parseable as T; false when nothing parses.
template <typename T>
bool eat_number(std::string_view& s, T& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc{}) return false;
  s.remove_prefix(static_cast<std::size_t>(result.ptr - begin));
  return true;
}

/// Node id or `*` wildcard.
bool eat_node(std::string_view& s, std::uint32_t& out) {
  if (!s.empty() && s.front() == '*') {
    out = kFaultAnyNode;
    s.remove_prefix(1);
    return true;
  }
  return eat_number(s, out);
}

bool eat_literal(std::string_view& s, std::string_view literal) {
  if (s.substr(0, literal.size()) != literal) return false;
  s.remove_prefix(literal.size());
  return true;
}

bool fail(std::string* error, std::string_view entry, const char* why) {
  if (error != nullptr) {
    *error = "bad fault entry '";
    error->append(entry);
    error->append("': ");
    error->append(why);
  }
  return false;
}

bool parse_entry(std::string_view entry, FaultPlan& plan, std::string* error) {
  const std::string_view original = entry;
  const std::size_t colon = entry.find(':');
  if (colon == std::string_view::npos) {
    return fail(error, original, "missing ':'");
  }
  const std::string_view keyword = trim(entry.substr(0, colon));
  std::string_view rest = trim(entry.substr(colon + 1));

  if (keyword == "crash" || keyword == "restart") {
    FaultEvent ev;
    ev.kind = keyword == "crash" ? FaultEvent::Kind::kCrash
                                 : FaultEvent::Kind::kRestart;
    double at = 0.0;
    if (!eat_node(rest, ev.node) || ev.node == kFaultAnyNode ||
        !eat_literal(rest, "@") || !eat_number(rest, at) || !rest.empty()) {
      return fail(error, original, "expected <node>@<seconds>");
    }
    ev.at = common::SimTime::seconds(at);
    plan.events.push_back(ev);
    return true;
  }

  if (keyword == "slow") {
    std::uint32_t node = 0;
    double t0 = 0.0;
    double t1 = 0.0;
    double factor = 0.0;
    if (!eat_node(rest, node) || node == kFaultAnyNode ||
        !eat_literal(rest, "@") || !eat_number(rest, t0) ||
        !eat_literal(rest, "-") || !eat_number(rest, t1) ||
        !eat_literal(rest, "x") || !eat_number(rest, factor) ||
        !rest.empty()) {
      return fail(error, original, "expected <node>@<t0>-<t1>x<factor>");
    }
    if (factor < 1.0 || t1 < t0) {
      return fail(error, original, "factor must be >= 1 and t1 >= t0");
    }
    FaultEvent start;
    start.kind = FaultEvent::Kind::kSlowStart;
    start.at = common::SimTime::seconds(t0);
    start.node = node;
    start.magnitude = factor;
    FaultEvent stop;
    stop.kind = FaultEvent::Kind::kSlowEnd;
    stop.at = common::SimTime::seconds(t1);
    stop.node = node;
    plan.events.push_back(start);
    plan.events.push_back(stop);
    return true;
  }

  if (keyword == "link") {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double t0 = 0.0;
    double t1 = 0.0;
    double drop = 0.0;
    double delay_ms = 0.0;
    if (!eat_node(rest, a) || !eat_literal(rest, "-") || !eat_node(rest, b) ||
        !eat_literal(rest, "@") || !eat_number(rest, t0) ||
        !eat_literal(rest, "-") || !eat_number(rest, t1) ||
        !eat_literal(rest, ",drop=") || !eat_number(rest, drop)) {
      return fail(error, original,
                  "expected <a>-<b>@<t0>-<t1>,drop=<p>[,delay=<ms>ms]");
    }
    if (!rest.empty()) {
      if (!eat_literal(rest, ",delay=") || !eat_number(rest, delay_ms) ||
          !eat_literal(rest, "ms") || !rest.empty()) {
        return fail(error, original, "trailing garbage after drop=");
      }
    }
    if (drop < 0.0 || drop > 1.0 || t1 < t0 || delay_ms < 0.0) {
      return fail(error, original,
                  "need 0 <= drop <= 1, delay >= 0, and t1 >= t0");
    }
    FaultEvent degrade;
    degrade.kind = FaultEvent::Kind::kLinkDegrade;
    degrade.at = common::SimTime::seconds(t0);
    degrade.node = a;
    degrade.peer = b;
    degrade.magnitude = drop;
    degrade.delay = common::SimTime::seconds(delay_ms / 1000.0);
    FaultEvent restore;
    restore.kind = FaultEvent::Kind::kLinkRestore;
    restore.at = common::SimTime::seconds(t1);
    restore.node = a;
    restore.peer = b;
    plan.events.push_back(degrade);
    plan.events.push_back(restore);
    return true;
  }

  return fail(error, original, "unknown keyword");
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view text,
                                          std::string* error) {
  FaultPlan plan;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view entry =
        trim(semi == std::string_view::npos ? text : text.substr(0, semi));
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (entry.empty()) continue;
    if (!parse_entry(entry, plan, error)) return std::nullopt;
  }
  return plan;
}

void FaultInjector::arm(const FaultPlan& plan, Handler handler) {
  disarm();
  plan_ = plan;
  handler_ = std::move(handler);
  pending_ids_.reserve(plan_.events.size());
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    pending_ids_.push_back(
        sim_.schedule_at(plan_.events[i].at, [this, i] { fire(i); }));
  }
  remaining_ = plan_.events.size();
}

void FaultInjector::disarm() {
  // Cancelling an already-fired id is a no-op, so the whole list is safe.
  for (const EventId id : pending_ids_) sim_.cancel(id);
  pending_ids_.clear();
  remaining_ = 0;
}

void FaultInjector::fire(std::size_t index) {
  AH_HOT_ENTRY;  // scheduled fault delivery runs on the event loop
  ++fired_;
  if (remaining_ > 0) --remaining_;
  if (handler_) handler_(plan_.events[index]);
}

}  // namespace ah::sim
