// Scripted, reproducible fault injection.
//
// A FaultPlan is a list of timed fault events — node crash/restart,
// fail-slow windows, link degradation windows — parsed from a compact text
// form or built programmatically.  The FaultInjector schedules every event
// on the ordinary EventQueue, so faults interleave with workload events in
// one deterministic order: the same plan and seed produce byte-identical
// runs at any `--threads` setting, which is what makes recovery-time
// measurements comparable across machines.
//
// The sim layer knows nothing about clusters or web servers: events carry
// opaque node ids and magnitudes, and a handler installed by the layer that
// owns the topology (core::SystemModel) gives them meaning.  That keeps the
// dependency arrow pointing the same way as for every other sim primitive.
//
// Plan text format (entries separated by ';', whitespace ignored, times in
// simulated seconds, node `*` = any node in link entries):
//
//   crash:<node>@<t>                 node stops answering at t
//   restart:<node>@<t>               node returns at t
//   slow:<node>@<t0>-<t1>x<factor>   CPU demand multiplied by factor in window
//   link:<a>-<b>@<t0>-<t1>,drop=<p>[,delay=<ms>ms]
//                                    directed link a->b drops each message
//                                    with probability p and delays survivors
//                                    by <ms> milliseconds during the window
//
// Example: "crash:3@120; restart:3@300; link:*-2@400-460,drop=0.2,delay=5ms"
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

/// Wildcard endpoint in link events: "any node".
inline constexpr std::uint32_t kFaultAnyNode = static_cast<std::uint32_t>(-1);

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,        // node stops answering; in-flight work is dropped
    kRestart,      // node returns to service
    kSlowStart,    // CPU service demand multiplied by `magnitude`
    kSlowEnd,      // fail-slow window closes
    kLinkDegrade,  // link node->peer: drop prob `magnitude`, extra `delay`
    kLinkRestore,  // link returns to normal
  };

  Kind kind = Kind::kCrash;
  common::SimTime at = common::SimTime::zero();
  std::uint32_t node = 0;  // subject node; link source for link events
  std::uint32_t peer = 0;  // link destination (link events only)
  double magnitude = 1.0;  // slow factor or drop probability
  common::SimTime delay = common::SimTime::zero();  // link extra delay
};

[[nodiscard]] std::string_view fault_kind_name(FaultEvent::Kind kind);

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Parses the text format documented above.  Returns std::nullopt on
  /// malformed input; when `error` is non-null it receives a description
  /// with line/column position.  Window entries (slow, link) expand into
  /// start/end event pairs.  Hardened: entries must be time-sorted, a node
  /// cannot crash twice without a restart (nor restart uncrashed), and
  /// slow windows on one node must not overlap.  The scenario superset
  /// grammar (flash/ramp/diurnal/mix/rack/switch) lives in scenario.hpp.
  static std::optional<FaultPlan> parse(std::string_view text,
                                        std::string* error = nullptr);
};

class FaultInjector {
 public:
  /// Receives each fault event at its scheduled time.  SBO-required: the
  /// dispatcher must be a thin trampoline (e.g. `[model](ev){...}`), never
  /// an allocating closure.
  using Handler = common::InlineFunction<void(const FaultEvent&), 48,
                                         common::SboPolicy::kRequired>;

  explicit FaultInjector(Simulator& sim) : sim_(sim) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector() { disarm(); }

  /// Schedules every event of `plan` (absolute times) and installs
  /// `handler`.  A second arm() first disarms the previous plan.  Events
  /// whose time is already past fire immediately, in plan order.
  void arm(const FaultPlan& plan, Handler handler);

  /// Cancels all not-yet-fired events.  Fired ones cannot be taken back.
  void disarm();

  /// True while events are still pending (fired ones no longer count).
  [[nodiscard]] bool armed() const { return remaining_ > 0; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void fire(std::size_t index);

  Simulator& sim_;
  FaultPlan plan_;
  Handler handler_;
  std::vector<EventId> pending_ids_;
  std::size_t remaining_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace ah::sim
