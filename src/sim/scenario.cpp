// Single grammar engine for FaultPlan (fault verbs only) and ScenarioPlan
// (fault verbs + arrival/mix/correlated-failure verbs).  Both entry points
// share the tokenizer, the line/column diagnostics, and the hardening
// sweeps; FaultPlan::parse is the restricted dialect.
#include "sim/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <set>
#include <utility>

namespace ah::sim {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Consumes a prefix of `s` parseable as T; false when nothing parses.
template <typename T>
bool eat_number(std::string_view& s, T& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc{}) return false;
  s.remove_prefix(static_cast<std::size_t>(result.ptr - begin));
  return true;
}

/// Node id or `*` wildcard.
bool eat_node(std::string_view& s, std::uint32_t& out) {
  if (!s.empty() && s.front() == '*') {
    out = kFaultAnyNode;
    s.remove_prefix(1);
    return true;
  }
  return eat_number(s, out);
}

bool eat_literal(std::string_view& s, std::string_view literal) {
  if (s.substr(0, literal.size()) != literal) return false;
  s.remove_prefix(literal.size());
  return true;
}

/// `name` token for mix entries: [alpha_][alnum_]*.
bool eat_identifier(std::string_view& s, std::string_view& out) {
  std::size_t n = 0;
  while (n < s.size() &&
         (std::isalnum(static_cast<unsigned char>(s[n])) || s[n] == '_')) {
    ++n;
  }
  if (n == 0 || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  out = s.substr(0, n);
  s.remove_prefix(n);
  return true;
}

/// `<n+n+...>` member list for rack/switch entries (no wildcard).
bool eat_members(std::string_view& s, std::vector<std::uint32_t>& out) {
  std::uint32_t id = 0;
  if (!eat_number(s, id)) return false;
  out.push_back(id);
  while (!s.empty() && s.front() == '+') {
    s.remove_prefix(1);
    if (!eat_number(s, id)) return false;
    out.push_back(id);
  }
  return true;
}

/// One ';'-separated entry with its byte offset in the full plan text, so
/// diagnostics can point at it even after the sweep reorders events.
struct EntrySpan {
  std::string_view text;
  std::size_t offset = 0;
};

struct Parser {
  Parser(std::string_view full_text, std::string* error_out, bool scenario)
      : full(full_text), error(error_out), scenario_dialect(scenario) {}

  std::string_view full;
  std::string* error;
  bool scenario_dialect;

  ScenarioPlan plan;
  std::vector<EntrySpan> entries;
  /// Originating entry index per fault event (sweep attribution).
  std::vector<std::size_t> event_entry;
  double prev_start_s = 0.0;
  bool have_prev_start = false;

  bool fail(const EntrySpan& e, std::string_view why) {
    if (error != nullptr) {
      std::size_t line = 1;
      std::size_t col = 1;
      for (std::size_t i = 0; i < e.offset && i < full.size(); ++i) {
        if (full[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      *error = "bad plan entry '";
      error->append(e.text);
      error->append("' (line ");
      error->append(std::to_string(line));
      error->append(", col ");
      error->append(std::to_string(col));
      error->append("): ");
      error->append(why);
    }
    return false;
  }

  void push_event(const FaultEvent& ev, std::size_t entry_index) {
    plan.faults.events.push_back(ev);
    event_entry.push_back(entry_index);
  }

  /// Entries must be sorted by their (earliest) start time: an out-of-order
  /// plan is nearly always a typo in a long scenario, and rejecting it
  /// keeps hand-edited plans reviewable top to bottom.
  bool check_order(const EntrySpan& e, double start_s) {
    if (have_prev_start && start_s < prev_start_s) {
      return fail(e, "out-of-order start time (entries must be sorted)");
    }
    prev_start_s = start_s;
    have_prev_start = true;
    return true;
  }

  bool run(std::string_view text);
  bool parse_entry(const EntrySpan& e, std::size_t index);
  bool sweep();
};

bool Parser::parse_entry(const EntrySpan& e, std::size_t index) {
  const std::size_t colon = e.text.find(':');
  if (colon == std::string_view::npos) return fail(e, "missing ':'");
  const std::string_view keyword = trim(e.text.substr(0, colon));
  std::string_view rest = trim(e.text.substr(colon + 1));

  if (keyword == "crash" || keyword == "restart") {
    FaultEvent ev;
    ev.kind = keyword == "crash" ? FaultEvent::Kind::kCrash
                                 : FaultEvent::Kind::kRestart;
    double at = 0.0;
    if (!eat_node(rest, ev.node) || ev.node == kFaultAnyNode ||
        !eat_literal(rest, "@") || !eat_number(rest, at) || !rest.empty()) {
      return fail(e, "expected <node>@<seconds>");
    }
    if (!check_order(e, at)) return false;
    ev.at = common::SimTime::seconds(at);
    push_event(ev, index);
    return true;
  }

  if (keyword == "slow") {
    std::uint32_t node = 0;
    double t0 = 0.0;
    double t1 = 0.0;
    double factor = 0.0;
    if (!eat_node(rest, node) || node == kFaultAnyNode ||
        !eat_literal(rest, "@") || !eat_number(rest, t0) ||
        !eat_literal(rest, "-") || !eat_number(rest, t1) ||
        !eat_literal(rest, "x") || !eat_number(rest, factor) ||
        !rest.empty()) {
      return fail(e, "expected <node>@<t0>-<t1>x<factor>");
    }
    if (factor < 1.0 || t1 < t0) {
      return fail(e, "factor must be >= 1 and t1 >= t0");
    }
    if (!check_order(e, t0)) return false;
    FaultEvent start;
    start.kind = FaultEvent::Kind::kSlowStart;
    start.at = common::SimTime::seconds(t0);
    start.node = node;
    start.magnitude = factor;
    FaultEvent stop;
    stop.kind = FaultEvent::Kind::kSlowEnd;
    stop.at = common::SimTime::seconds(t1);
    stop.node = node;
    push_event(start, index);
    push_event(stop, index);
    return true;
  }

  if (keyword == "link") {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double t0 = 0.0;
    double t1 = 0.0;
    double drop = 0.0;
    double delay_ms = 0.0;
    if (!eat_node(rest, a) || !eat_literal(rest, "-") || !eat_node(rest, b) ||
        !eat_literal(rest, "@") || !eat_number(rest, t0) ||
        !eat_literal(rest, "-") || !eat_number(rest, t1) ||
        !eat_literal(rest, ",drop=") || !eat_number(rest, drop)) {
      return fail(e, "expected <a>-<b>@<t0>-<t1>,drop=<p>[,delay=<ms>ms]");
    }
    if (!rest.empty()) {
      if (!eat_literal(rest, ",delay=") || !eat_number(rest, delay_ms) ||
          !eat_literal(rest, "ms") || !rest.empty()) {
        return fail(e, "trailing garbage after drop=");
      }
    }
    if (drop < 0.0 || drop > 1.0 || t1 < t0 || delay_ms < 0.0) {
      return fail(e, "need 0 <= drop <= 1, delay >= 0, and t1 >= t0");
    }
    if (!check_order(e, t0)) return false;
    FaultEvent degrade;
    degrade.kind = FaultEvent::Kind::kLinkDegrade;
    degrade.at = common::SimTime::seconds(t0);
    degrade.node = a;
    degrade.peer = b;
    degrade.magnitude = drop;
    degrade.delay = common::SimTime::seconds(delay_ms / 1000.0);
    FaultEvent restore;
    restore.kind = FaultEvent::Kind::kLinkRestore;
    restore.at = common::SimTime::seconds(t1);
    restore.node = a;
    restore.peer = b;
    push_event(degrade, index);
    push_event(restore, index);
    return true;
  }

  const bool is_scenario_verb = keyword == "flash" || keyword == "ramp" ||
                                keyword == "diurnal" || keyword == "mix" ||
                                keyword == "rack" || keyword == "switch";
  if (is_scenario_verb && !scenario_dialect) {
    return fail(e, "scenario verb; use ScenarioPlan::parse");
  }

  if (keyword == "flash" || keyword == "ramp") {
    double magnitude = 0.0;
    double t0 = 0.0;
    double t1 = 0.0;
    if (!eat_number(rest, magnitude) || !eat_literal(rest, "@") ||
        !eat_number(rest, t0) || !eat_literal(rest, "-") ||
        !eat_number(rest, t1) || !rest.empty()) {
      return fail(e, "expected <factor>@<t0>-<t1>");
    }
    const bool is_flash = keyword == "flash";
    if (is_flash && magnitude < 1.0) {
      return fail(e, "flash peak must be >= 1");
    }
    if (!is_flash && magnitude <= 0.0) {
      return fail(e, "ramp factor must be > 0");
    }
    if (t1 <= t0) return fail(e, "need t1 > t0");
    if (!check_order(e, t0)) return false;
    ArrivalPhase phase;
    phase.kind =
        is_flash ? ArrivalPhase::Kind::kFlash : ArrivalPhase::Kind::kRamp;
    phase.t0 = common::SimTime::seconds(t0);
    phase.t1 = common::SimTime::seconds(t1);
    phase.magnitude = magnitude;
    plan.arrival.phases.push_back(phase);
    return true;
  }

  if (keyword == "diurnal") {
    double amp = 0.0;
    double t0 = 0.0;
    double t1 = 0.0;
    double period = 0.0;
    if (!eat_number(rest, amp) || !eat_literal(rest, "@") ||
        !eat_number(rest, t0) || !eat_literal(rest, "-") ||
        !eat_number(rest, t1) || !eat_literal(rest, "/") ||
        !eat_number(rest, period) || !rest.empty()) {
      return fail(e, "expected <amplitude>@<t0>-<t1>/<period>");
    }
    if (amp < 0.0 || amp >= 1.0) {
      return fail(e, "amplitude must be in [0, 1)");
    }
    if (period <= 0.0) return fail(e, "period must be > 0");
    if (t1 <= t0) return fail(e, "need t1 > t0");
    if (!check_order(e, t0)) return false;
    ArrivalPhase phase;
    phase.kind = ArrivalPhase::Kind::kDiurnal;
    phase.t0 = common::SimTime::seconds(t0);
    phase.t1 = common::SimTime::seconds(t1);
    phase.magnitude = amp;
    phase.period = common::SimTime::seconds(period);
    plan.arrival.phases.push_back(phase);
    return true;
  }

  if (keyword == "mix") {
    std::string_view name;
    double at = 0.0;
    if (!eat_identifier(rest, name) || !eat_literal(rest, "@") ||
        !eat_number(rest, at) || !rest.empty()) {
      return fail(e, "expected <name>@<seconds>");
    }
    if (!check_order(e, at)) return false;
    MixChange change;
    change.at = common::SimTime::seconds(at);
    change.mix.assign(name);
    plan.mix_changes.push_back(std::move(change));
    return true;
  }

  if (keyword == "rack" || keyword == "switch") {
    std::vector<std::uint32_t> members;
    double t0 = 0.0;
    double t1 = 0.0;
    if (!eat_members(rest, members) || !eat_literal(rest, "@") ||
        !eat_number(rest, t0) || !eat_literal(rest, "-") ||
        !eat_number(rest, t1)) {
      return fail(e, "expected <n+n+...>@<t0>-<t1>");
    }
    std::set<std::uint32_t> unique(members.begin(), members.end());
    if (unique.size() != members.size()) {
      return fail(e, "duplicate node id in member list");
    }
    if (t1 <= t0) return fail(e, "need t1 > t0");
    if (keyword == "rack") {
      if (!rest.empty()) return fail(e, "trailing garbage after window");
      if (!check_order(e, t0)) return false;
      for (const std::uint32_t node : members) {
        FaultEvent crash;
        crash.kind = FaultEvent::Kind::kCrash;
        crash.at = common::SimTime::seconds(t0);
        crash.node = node;
        FaultEvent restart;
        restart.kind = FaultEvent::Kind::kRestart;
        restart.at = common::SimTime::seconds(t1);
        restart.node = node;
        push_event(crash, index);
        push_event(restart, index);
      }
      return true;
    }
    double drop = 0.0;
    double delay_ms = 0.0;
    if (!eat_literal(rest, ",drop=") || !eat_number(rest, drop)) {
      return fail(e, "expected ,drop=<p>[,delay=<ms>ms]");
    }
    if (!rest.empty()) {
      if (!eat_literal(rest, ",delay=") || !eat_number(rest, delay_ms) ||
          !eat_literal(rest, "ms") || !rest.empty()) {
        return fail(e, "trailing garbage after drop=");
      }
    }
    if (drop < 0.0 || drop > 1.0 || delay_ms < 0.0) {
      return fail(e, "need 0 <= drop <= 1 and delay >= 0");
    }
    if (!check_order(e, t0)) return false;
    // A dead switch hurts every link touching its members, both
    // directions.  The member id stays the subject on both event variants,
    // so a sharded model lands each event on the member's own timeline.
    for (const std::uint32_t node : members) {
      for (const bool outbound : {true, false}) {
        FaultEvent degrade;
        degrade.kind = FaultEvent::Kind::kLinkDegrade;
        degrade.at = common::SimTime::seconds(t0);
        degrade.node = outbound ? node : kFaultAnyNode;
        degrade.peer = outbound ? kFaultAnyNode : node;
        degrade.magnitude = drop;
        degrade.delay = common::SimTime::seconds(delay_ms / 1000.0);
        FaultEvent restore;
        restore.kind = FaultEvent::Kind::kLinkRestore;
        restore.at = common::SimTime::seconds(t1);
        restore.node = degrade.node;
        restore.peer = degrade.peer;
        push_event(degrade, index);
        push_event(restore, index);
      }
    }
    return true;
  }

  return fail(e, "unknown keyword");
}

/// Post-parse consistency sweep over the expanded fault events in time
/// order: crash/restart must alternate per node, slow windows per node
/// must not overlap.  Catches duplicate node ids across entries (e.g. a
/// node listed in a rack AND crashed individually inside the window) that
/// entry-local checks cannot see.
bool Parser::sweep() {
  std::vector<std::size_t> order(plan.faults.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return plan.faults.events[a].at < plan.faults.events[b].at;
                   });
  std::set<std::uint32_t> crashed;
  std::set<std::uint32_t> slowed;
  for (const std::size_t i : order) {
    const FaultEvent& ev = plan.faults.events[i];
    const EntrySpan& origin = entries[event_entry[i]];
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        if (!crashed.insert(ev.node).second) {
          return fail(origin, "node crashed twice without a restart");
        }
        break;
      case FaultEvent::Kind::kRestart:
        if (crashed.erase(ev.node) == 0) {
          return fail(origin, "restart of a node that is not crashed");
        }
        break;
      case FaultEvent::Kind::kSlowStart:
        if (!slowed.insert(ev.node).second) {
          return fail(origin, "overlapping slow windows on one node");
        }
        break;
      case FaultEvent::Kind::kSlowEnd:
        slowed.erase(ev.node);
        break;
      case FaultEvent::Kind::kLinkDegrade:
      case FaultEvent::Kind::kLinkRestore:
        break;  // wildcards make link-overlap semantics ambiguous; allowed
    }
  }
  return true;
}

bool Parser::run(std::string_view text) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::size_t end = semi == std::string_view::npos ? text.size() : semi;
    std::size_t lead = pos;
    while (lead < end &&
           std::isspace(static_cast<unsigned char>(text[lead]))) {
      ++lead;
    }
    std::size_t tail = end;
    while (tail > lead &&
           std::isspace(static_cast<unsigned char>(text[tail - 1]))) {
      --tail;
    }
    if (tail > lead) {
      entries.push_back(EntrySpan{text.substr(lead, tail - lead), lead});
    }
    if (semi == std::string_view::npos) break;
    pos = semi + 1;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!parse_entry(entries[i], i)) return false;
  }
  return sweep();
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view text,
                                          std::string* error) {
  Parser parser{text, error, /*scenario_dialect=*/false};
  if (!parser.run(text)) return std::nullopt;
  return std::move(parser.plan.faults);
}

std::optional<ScenarioPlan> ScenarioPlan::parse(std::string_view text,
                                                std::string* error) {
  Parser parser{text, error, /*scenario_dialect=*/true};
  if (!parser.run(text)) return std::nullopt;
  return std::move(parser.plan);
}

}  // namespace ah::sim
