// Queueing resource: k identical servers in front of a FIFO queue.
//
// This is the primitive from which every hardware and software bottleneck in
// the cluster model is built: CPU cores, disk spindles, NIC links, database
// connection slots, and servlet/AJP thread pools are all Resources with
// different capacities and service demands.  Contention, saturation and the
// latency knees that the Active Harmony tuner exploits all emerge from the
// queueing behaviour here rather than from hand-authored response curves.
#pragma once

#include <cstdint>
#include <string>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/ring_buffer.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

class Resource {
 public:
  /// Callback invoked when a job finishes service.  Capacity 16: hot-path
  /// callers park per-request state in a pooled struct and capture a single
  /// pointer, and start_service wraps the Completion in a
  /// [this, on_complete] closure that must still fit the simulator's
  /// 48-byte EventFn inline buffer (sizeof(Completion) = 32 with alignment
  /// and the two dispatch pointers, + 8 for `this` = 40 <= 48).  Oversized
  /// captures (tests) fall back to the heap and still work.
  using Completion = common::InlineFunction<void(), 16>;

  struct Config {
    int servers = 1;
    /// Jobs admitted to the waiting line beyond the ones in service.
    /// Arrivals past this are rejected.  Unlimited by default.
    std::size_t queue_capacity = static_cast<std::size_t>(-1);
    /// Service-time multiplier (>1 = slower).  Lets node speed and software
    /// overheads scale demands without touching every call site.
    double slowdown = 1.0;
  };

  Resource(Simulator& sim, std::string name, Config config);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Handle for a submitted job; 0 is the "no job / rejected" sentinel.
  /// Monotonic per Resource, never reused.
  using JobId = std::uint64_t;

  /// Submits a job with the given service demand.  Returns false (and drops
  /// the job) when the waiting line is full.  `on_complete` fires when the
  /// job finishes service.
  bool submit(common::SimTime demand, Completion on_complete);

  /// Like submit(), but returns the job's id (0 when rejected) and fires
  /// `on_start` at the instant the job enters service — before any of its
  /// service time elapses.  Callers use the start signal to anchor derived
  /// schedules (e.g. the network layer timestamps batched deliveries off
  /// the serialization start).
  JobId submit_job(common::SimTime demand, Completion on_start,
                   Completion on_complete);

  /// Folds `extra` service demand into job `job` iff it is the tail of the
  /// waiting line (not yet started).  Returns false — and folds nothing —
  /// when the job is unknown, already in service, not the tail, or when a
  /// fresh arrival would have been rejected (waiting line at capacity), so
  /// a successful extend is observationally identical to a back-to-back
  /// submit of a second job: the server stays busy for the summed demand.
  bool extend_queued_tail(JobId job, common::SimTime extra);

  /// Changes the number of servers.  Growth starts queued jobs immediately;
  /// shrink lets in-service jobs finish (capacity drops as they complete).
  void set_servers(int servers);

  /// Changes the service-time multiplier for jobs that start from now on.
  void set_slowdown(double slowdown);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int servers() const { return config_.servers; }
  [[nodiscard]] int busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] double slowdown() const { return config_.slowdown; }

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  /// Integral of busy servers over time (server·µs).  Utilization over a
  /// window [t0, t1] with capacity k is
  ///   (busy_integral(t1) - busy_integral(t0)) / (k * (t1 - t0)).
  [[nodiscard]] std::int64_t busy_integral() const;

  /// Convenience: utilization in [0, 1+] since the given reference point
  /// (pass a snapshot of busy_integral() and the snapshot time).
  [[nodiscard]] double utilization_since(std::int64_t integral_at_t0,
                                         common::SimTime t0) const;

  /// Integral of waiting-line length over time (job·µs), for mean queue
  /// length readings.
  [[nodiscard]] std::int64_t queue_integral() const;

  /// Drops all waiting jobs (in-service jobs finish).  Used when a node is
  /// drained for reconfiguration.  Returns the number of dropped jobs.
  std::size_t clear_queue();

 private:
  struct Job {
    common::SimTime demand = common::SimTime::zero();
    JobId id = 0;
    Completion on_start;
    Completion on_complete;
  };

  /// Folds elapsed time into the busy/queue integrals.
  void account_now();
  /// Starts queued jobs while servers are available.
  void start_pending();
  void start_service(Job job);
  void on_service_done(Completion on_complete);

  Simulator& sim_;
  std::string name_;
  Config config_;

  int busy_ = 0;
  common::RingBuffer<Job> queue_;
  JobId next_job_id_ = 1;

  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;

  mutable std::int64_t busy_integral_ = 0;
  mutable std::int64_t queue_integral_ = 0;
  mutable common::SimTime last_account_ = common::SimTime::zero();
};

}  // namespace ah::sim
