#include "sim/slot_pool.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

SlotPool::SlotPool(Simulator& sim, std::string name, Config config)
    : sim_(sim), name_(std::move(name)), config_(config),
      last_account_(sim.now()) {
  assert(config_.slots >= 0);
}

void SlotPool::account_now() {
  const common::SimTime now = sim_.now();
  const std::int64_t elapsed = (now - last_account_).as_micros();
  if (elapsed > 0) {
    busy_integral_ += static_cast<std::int64_t>(in_use_) * elapsed;
    last_account_ = now;
  }
}

bool SlotPool::acquire(Granted on_granted) {
  account_now();
  if (in_use_ < config_.slots) {
    ++in_use_;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
    ++granted_;
    on_granted();
    return true;
  }
  if (waiters_.size() >= config_.queue_capacity) {
    ++rejected_;
    return false;
  }
  waiters_.push_back(std::move(on_granted));
  return true;
}

void SlotPool::release() {
  account_now();
  assert(in_use_ > 0);
  --in_use_;
  grant_next();
}

void SlotPool::set_slots(int slots) {
  assert(slots >= 0);
  account_now();
  config_.slots = slots;
  while (in_use_ < config_.slots && !waiters_.empty()) grant_next();
}

std::int64_t SlotPool::busy_integral() const {
  const_cast<SlotPool*>(this)->account_now();
  return busy_integral_;
}

double SlotPool::utilization_since(std::int64_t integral_at_t0,
                                   common::SimTime t0) const {
  const std::int64_t window = (sim_.now() - t0).as_micros();
  if (window <= 0 || config_.slots <= 0) return 0.0;
  return static_cast<double>(busy_integral() - integral_at_t0) /
         (static_cast<double>(config_.slots) * static_cast<double>(window));
}

std::size_t SlotPool::clear_waiters() {
  account_now();
  const std::size_t dropped = waiters_.size();
  rejected_ += dropped;
  waiters_.clear();
  return dropped;
}

void SlotPool::grant_next() {
  if (waiters_.empty() || in_use_ >= config_.slots) return;
  ++in_use_;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  ++granted_;
  // Deferred so a release() deep in a completion chain cannot reenter the
  // next holder's logic on the same stack.
  sim_.schedule(common::SimTime::zero(), waiters_.take_front());
}

}  // namespace ah::sim
