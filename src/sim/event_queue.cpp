#include "sim/event_queue.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

EventId EventQueue::push(common::SimTime time, EventFn fn) {
  std::uint32_t n;
  if (!free_slots_.empty()) {
    n = free_slots_.back();
    free_slots_.pop_back();
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  Node& node = nodes_[n];
  node.time = time;
  node.fn = std::move(fn);
  node.next = kNil;
  node.cancelled = false;
  const EventId id = (static_cast<EventId>(node.generation) << 32) | n;
  ++live_count_;
  ++stored_count_;
  place(n);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only events still pending can be cancelled; already-fired or already-
  // cancelled ids are a no-op so callers need not track event lifetimes.
  if (!is_live(id)) return false;
  Node& node = nodes_[slot_of(id)];
  // Generation wrap after 2^32 reuses of one slot is accepted: a caller
  // would need to hold an id across four billion pushes into the same slot
  // to see a false match.
  ++node.generation;  // the id dies now; the slot itself recycles at reap
  node.cancelled = true;
  --live_count_;
  return true;
}

void EventQueue::append(List& list, std::uint32_t n) {
  nodes_[n].next = kNil;
  if (list.tail == kNil) {
    list.head = n;
  } else {
    nodes_[list.tail].next = n;
  }
  list.tail = n;
}

void EventQueue::place(std::uint32_t n) {
  const std::uint64_t tick = tick_of(nodes_[n].time);
  if (tick <= cursor_) {
    // At or behind the drain point (same-tick reschedules, or pushes after
    // the cursor peeked ahead of virtual time): joins the ready list.
    ready_insert(n);
    return;
  }
  // The level is the highest digit (base 2^kBucketBits) in which the tick
  // differs from the cursor: all higher digits match, so the bucket is
  // reached before any cascade could disturb it.
  const std::uint64_t diff = tick ^ cursor_;
  const std::size_t level =
      (static_cast<std::size_t>(std::bit_width(diff)) - 1) / kBucketBits;
  if (level >= kLevels) {
    append(overflow_, n);
    return;
  }
  const std::size_t idx = static_cast<std::size_t>(
      (tick >> (level * kBucketBits)) & kIndexMask);
  Wheel& wheel = wheels_[level];
  append(wheel.buckets[idx], n);
  wheel.occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void EventQueue::ready_insert(std::uint32_t n) {
  const common::SimTime t = nodes_[n].time;
  if (ready_.tail == kNil || nodes_[ready_.tail].time <= t) {
    append(ready_, n);  // common case: at or after every queued time
    return;
  }
  // Walk to the first strictly-later node (upper bound), so same-time
  // events keep push order.  Rare path: only pushes that land behind an
  // already-loaded ready list get here, and that list spans one tick.
  std::uint32_t prev = kNil;
  std::uint32_t cur = ready_.head;
  while (cur != kNil && nodes_[cur].time <= t) {
    prev = cur;
    cur = nodes_[cur].next;
  }
  assert(cur != kNil);  // the tail is strictly later, so we stop before it
  nodes_[n].next = cur;
  if (prev == kNil) {
    ready_.head = n;
  } else {
    nodes_[prev].next = n;
  }
}

void EventQueue::ensure_ready() {
  for (;;) {
    while (ready_.head != kNil && nodes_[ready_.head].cancelled) {
      // Reap a lazily-cancelled node: release its closure eagerly and
      // return the slot to the free list.
      const std::uint32_t n = ready_.head;
      ready_.head = nodes_[n].next;
      if (ready_.head == kNil) ready_.tail = kNil;
      nodes_[n].fn = EventFn{};
      free_slots_.push_back(n);
      --stored_count_;
    }
    if (ready_.head != kNil) return;
    if (!advance()) return;  // nothing stored; callers' preconditions apply
  }
}

common::SimTime EventQueue::next_time() {
  ensure_ready();
  assert(ready_.head != kNil);
  return nodes_[ready_.head].time;
}

EventQueue::Entry EventQueue::pop() {
  ensure_ready();
  assert(ready_.head != kNil);
  const std::uint32_t n = ready_.head;
  Node& node = nodes_[n];
  ready_.head = node.next;
  if (ready_.head == kNil) ready_.tail = kNil;
  const EventId id = (static_cast<EventId>(node.generation) << 32) | n;
  ++node.generation;  // retire the id; the slot is free for reuse
  free_slots_.push_back(n);
  --live_count_;
  --stored_count_;
  return Entry{node.time, id, std::move(node.fn)};
}

bool EventQueue::advance() {
  assert(ready_.head == kNil);
  for (;;) {
    // Level 0: the next populated one-tick bucket in the current 256-tick
    // block.  Buckets at or below the cursor's digit are empty (drained or
    // never fillable), so the scan starts one past it.
    if (const int idx = next_occupied(0, (cursor_ & kIndexMask) + 1);
        idx >= 0) {
      const auto b = static_cast<std::size_t>(idx);
      cursor_ = (cursor_ & ~kIndexMask) | static_cast<std::uint64_t>(idx);
      Wheel& wheel = wheels_[0];
      ready_ = wheel.buckets[b];  // whole-list splice: one tick's FIFO run
      wheel.buckets[b] = List{};
      wheel.occupied[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      return true;
    }
    // Block exhausted: cascade one bucket down from the lowest populated
    // higher level.  Redistributing in stored order into provably-empty
    // child buckets preserves FIFO ties end to end.
    bool cascaded = false;
    for (std::size_t level = 1; level < kLevels; ++level) {
      const std::uint64_t cur =
          (cursor_ >> (level * kBucketBits)) & kIndexMask;
      const int idx = next_occupied(level, cur + 1);
      if (idx < 0) continue;
      const auto b = static_cast<std::size_t>(idx);
      const std::uint64_t block_mask = ~std::uint64_t{0}
                                       << ((level + 1) * kBucketBits);
      cursor_ = (cursor_ & block_mask) |
                (static_cast<std::uint64_t>(idx) << (level * kBucketBits));
      Wheel& wheel = wheels_[level];
      std::uint32_t n = wheel.buckets[b].head;
      wheel.buckets[b] = List{};
      wheel.occupied[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      while (n != kNil) {
        const std::uint32_t next = nodes_[n].next;
        place(n);
        n = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) {
      // Nodes whose tick equals the new cursor landed in the ready list
      // and must pop before anything the level-0 scan would find.
      if (ready_.head != kNil) return true;
      continue;
    }
    if (overflow_.head == kNil) return false;
    drain_overflow_epoch();
    if (ready_.head != kNil) return true;
  }
}

void EventQueue::drain_overflow_epoch() {
  constexpr std::size_t kEpochShift = kLevels * kBucketBits;  // 32
  std::uint64_t min_tick = ~std::uint64_t{0};
  for (std::uint32_t n = overflow_.head; n != kNil; n = nodes_[n].next) {
    min_tick = std::min(min_tick, tick_of(nodes_[n].time));
  }
  // Overflow nodes always live in epochs strictly beyond the cursor's, so
  // jumping to the epoch base only moves the cursor forward.
  const std::uint64_t epoch = min_tick >> kEpochShift;
  cursor_ = epoch << kEpochShift;
  // Stable split: the epoch's nodes re-place into the wheels in stored
  // order; later epochs keep their order for the next drain.
  std::uint32_t n = overflow_.head;
  overflow_ = List{};
  while (n != kNil) {
    const std::uint32_t next = nodes_[n].next;
    if (tick_of(nodes_[n].time) >> kEpochShift == epoch) {
      place(n);
    } else {
      append(overflow_, n);
    }
    n = next;
  }
}

int EventQueue::next_occupied(std::size_t level, std::uint64_t from) const {
  if (from >= kBuckets) return -1;
  const auto& occupied = wheels_[level].occupied;
  std::size_t word = static_cast<std::size_t>(from >> 6);
  std::uint64_t bits = occupied[word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(
          (word << 6) | static_cast<std::size_t>(std::countr_zero(bits)));
    }
    if (++word >= occupied.size()) return -1;
    bits = occupied[word];
  }
}

}  // namespace ah::sim
