#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace ah::sim {

EventId EventQueue::push(common::SimTime time, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(HeapItem{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end());
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only events still pending can be cancelled; already-fired or already-
  // cancelled ids are a no-op so callers need not track event lifetimes.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

common::SimTime EventQueue::next_time() {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Entry EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end());
  HeapItem item = std::move(heap_.back());
  heap_.pop_back();
  live_.erase(item.id);
  return Entry{item.time, item.id, std::move(item.fn)};
}

}  // namespace ah::sim
