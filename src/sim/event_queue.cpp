#include "sim/event_queue.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <cassert>

AH_HOT_PATH_FILE;

namespace ah::sim {

EventId EventQueue::push(common::SimTime time, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  const EventId id =
      (static_cast<EventId>(slots_[slot].generation) << 32) | slot;
  heap_.push_back(HeapItem{time, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end());
  ++live_count_;
  return id;
}

void EventQueue::release(EventId id) {
  const std::uint32_t slot = slot_of(id);
  // Generation wrap after 2^32 reuses of one slot is accepted: a caller
  // would need to hold an id across four billion pushes into the same slot
  // to see a false match.
  ++slots_[slot].generation;
  free_slots_.push_back(slot);
  --live_count_;
}

bool EventQueue::cancel(EventId id) {
  // Only events still pending can be cancelled; already-fired or already-
  // cancelled ids are a no-op so callers need not track event lifetimes.
  if (!is_live(id)) return false;
  release(id);  // the heap item goes stale and is dropped lazily
  return true;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && !is_live(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

common::SimTime EventQueue::next_time() {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Entry EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end());
  HeapItem item = std::move(heap_.back());
  heap_.pop_back();
  release(item.id);
  return Entry{item.time, item.id, std::move(item.fn)};
}

}  // namespace ah::sim
