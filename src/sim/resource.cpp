#include "sim/resource.hpp"
#include "common/analysis.hpp"

#include <cassert>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

Resource::Resource(Simulator& sim, std::string name, Config config)
    : sim_(sim), name_(std::move(name)), config_(config),
      last_account_(sim.now()) {
  assert(config_.servers >= 0);
  assert(config_.slowdown > 0.0);
}

void Resource::account_now() {
  const common::SimTime now = sim_.now();
  const std::int64_t elapsed = (now - last_account_).as_micros();
  if (elapsed > 0) {
    busy_integral_ += static_cast<std::int64_t>(busy_) * elapsed;
    queue_integral_ +=
        static_cast<std::int64_t>(queue_.size()) * elapsed;
    last_account_ = now;
  }
}

bool Resource::submit(common::SimTime demand, Completion on_complete) {
  return submit_job(demand, {}, std::move(on_complete)) != 0;
}

Resource::JobId Resource::submit_job(common::SimTime demand,
                                     Completion on_start,
                                     Completion on_complete) {
  account_now();
  const JobId id = next_job_id_++;
  if (busy_ < config_.servers) {
    start_service(Job{demand, id, std::move(on_start), std::move(on_complete)});
    return id;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++rejected_;
    return 0;
  }
  queue_.push_back(Job{demand, id, std::move(on_start), std::move(on_complete)});
  return id;
}

bool Resource::extend_queued_tail(JobId job, common::SimTime extra) {
  if (job == 0 || queue_.empty() || queue_.back().id != job) return false;
  // A fresh arrival would be rejected right now, so folding more work into
  // the tail would smuggle it past the admission check.
  if (queue_.size() >= config_.queue_capacity) return false;
  queue_.back().demand += extra;
  return true;
}

void Resource::set_servers(int servers) {
  assert(servers >= 0);
  account_now();
  config_.servers = servers;
  start_pending();
}

void Resource::set_slowdown(double slowdown) {
  assert(slowdown > 0.0);
  config_.slowdown = slowdown;
}

std::int64_t Resource::busy_integral() const {
  const_cast<Resource*>(this)->account_now();
  return busy_integral_;
}

double Resource::utilization_since(std::int64_t integral_at_t0,
                                   common::SimTime t0) const {
  const std::int64_t window = (sim_.now() - t0).as_micros();
  if (window <= 0 || config_.servers <= 0) return 0.0;
  const std::int64_t busy_time = busy_integral() - integral_at_t0;
  return static_cast<double>(busy_time) /
         (static_cast<double>(config_.servers) * static_cast<double>(window));
}

std::int64_t Resource::queue_integral() const {
  const_cast<Resource*>(this)->account_now();
  return queue_integral_;
}

std::size_t Resource::clear_queue() {
  account_now();
  const std::size_t dropped = queue_.size();
  rejected_ += dropped;
  queue_.clear();
  return dropped;
}

void Resource::start_pending() {
  while (busy_ < config_.servers && !queue_.empty()) {
    start_service(queue_.take_front());
  }
}

void Resource::start_service(Job job) {
  ++busy_;
  const common::SimTime service = job.demand * config_.slowdown;
  // The start signal fires before the completion event is scheduled, so a
  // start hook observes the queue state of the exact service-start instant
  // and any events it schedules order ahead of this job's completion.
  if (job.on_start) job.on_start();
  auto finish = [this, on_complete = std::move(job.on_complete)]() mutable {
    on_service_done(std::move(on_complete));
  };
  static_assert(EventFn::stores_inline<decltype(finish)>(),
                "service-completion closure must not allocate");
  sim_.schedule(service, std::move(finish));
}

void Resource::on_service_done(Completion on_complete) {
  account_now();
  --busy_;
  ++completed_;
  start_pending();
  if (on_complete) on_complete();
}

}  // namespace ah::sim
