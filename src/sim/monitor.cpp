#include "sim/monitor.hpp"
#include "common/analysis.hpp"

#include <cassert>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::sim {

UtilizationMonitor::UtilizationMonitor(Simulator& sim, common::SimTime period,
                                       double ewma_alpha)
    : sim_(sim), period_(period), alpha_(ewma_alpha) {
  assert(period.as_micros() > 0);
}

UtilizationMonitor::~UtilizationMonitor() { stop(); }

std::size_t UtilizationMonitor::add_probe(std::string name, Probe probe) {
  probes_.push_back(
      Entry{std::move(name), std::move(probe), common::Ewma{alpha_}, 0.0});
  return probes_.size() - 1;
}

void UtilizationMonitor::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void UtilizationMonitor::stop() {
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void UtilizationMonitor::sample_now() {
  for (auto& entry : probes_) {
    entry.last_raw = entry.probe();
    entry.ewma.add(entry.last_raw);
  }
  ++samples_;
}

const std::string& UtilizationMonitor::probe_name(std::size_t i) const {
  return probes_.at(i).name;
}

double UtilizationMonitor::smoothed(std::size_t i) const {
  return probes_.at(i).ewma.value();
}

double UtilizationMonitor::last_raw(std::size_t i) const {
  return probes_.at(i).last_raw;
}

void UtilizationMonitor::schedule_next() {
  pending_ = sim_.schedule(period_, [this] {
    AH_HOT_ENTRY;  // periodic sampling tick driven by the event loop
    pending_ = 0;
    if (!running_) return;
    sample_now();
    schedule_next();
  });
}

}  // namespace ah::sim
