// Seeded scenario grammar: faults + arrival modulation + mix drift.
//
// A ScenarioPlan extends the FaultPlan text grammar with the load-side half
// of an overload experiment: arrival-pattern modulation (flash crowds,
// diurnal swells, ramps), workload-mix drift, and correlated failure
// domains (whole racks, shared switches) that expand into the existing
// fault events.  One text string therefore scripts a complete "black
// Friday" run — the flash crowd, the mix shifting toward ordering, and the
// rack that picks that moment to die — reproducibly at any `--threads`
// setting, because everything lands on the ordinary event queues.
//
// Scenario entries, on top of the FaultPlan verbs (fault_injector.hpp):
//
//   flash:<peak>@<t0>-<t1>        arrival rate swells linearly to <peak>x
//                                 at the window midpoint and back to 1x
//   ramp:<factor>@<t0>-<t1>       arrival rate ramps linearly to <factor>x
//                                 across the window and HOLDS it after t1
//   diurnal:<amp>@<t0>-<t1>/<p>   rate swings 1 +/- <amp> sinusoidally
//                                 with period <p> seconds inside the window
//   mix:<name>@<t>                workload mix switches at t (browsing,
//                                 shopping, ordering)
//   rack:<n+n+...>@<t0>-<t1>      correlated outage: every listed node
//                                 crashes at t0 and restarts at t1
//   switch:<n+n+...>@<t0>-<t1>,drop=<p>[,delay=<ms>ms]
//                                 shared-switch degradation: every link
//                                 touching a listed node (both directions)
//                                 drops/delays during the window
//
// Arrival modulation is applied by the workload as a think-time divisor:
// factor 2.0 halves mean think time, roughly doubling offered load.  A
// factor of exactly 1.0 leaves think times bit-identical to an unmodulated
// run, which is what keeps the golden benchmark CSVs stable when no
// scenario is installed.
//
// The parser is the single grammar engine for both dialects —
// FaultPlan::parse accepts only the fault verbs — and is hardened per the
// shared rules: entry start times must be non-decreasing, a node cannot
// crash twice without a restart in between (nor restart uncrashed), slow
// windows on one node must not overlap, and rack/switch member lists must
// not repeat a node.  Errors carry line/column positions.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/analysis.hpp"
#include "common/units.hpp"
#include "sim/fault_injector.hpp"

// ArrivalPhase::factor runs per browser think-time draw; the parser itself
// is cold but lives in scenario.cpp.
AH_HOT_PATH_FILE;

namespace ah::sim {

/// One arrival-modulation window.  Factors multiply, so overlapping phases
/// compose (a diurnal swell under a flash crowd).
struct ArrivalPhase {
  enum class Kind : std::uint8_t {
    kFlash,    // triangular: 1 -> magnitude at midpoint -> 1
    kRamp,     // linear 1 -> magnitude across the window, holds after t1
    kDiurnal,  // 1 + magnitude * sin(2*pi*(now - t0)/period) in the window
  };

  Kind kind = Kind::kFlash;
  common::SimTime t0 = common::SimTime::zero();
  common::SimTime t1 = common::SimTime::zero();
  double magnitude = 1.0;
  common::SimTime period = common::SimTime::zero();  // diurnal only

  /// Rate factor contributed by this phase at `now`; 1.0 outside the
  /// window (ramp holds `magnitude` after t1).  Pure and alloc-free — this
  /// runs per browser think-time draw on the hot path.
  [[nodiscard]] double factor(common::SimTime now) const {
    if (kind == Kind::kRamp && now >= t1) return magnitude;
    if (now < t0 || now >= t1) return 1.0;
    const double span = (t1 - t0).as_seconds();
    const double x = (now - t0).as_seconds() / span;  // 0..1 in window
    switch (kind) {
      case Kind::kFlash: {
        const double tri = x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x);
        return 1.0 + (magnitude - 1.0) * tri;
      }
      case Kind::kRamp:
        return 1.0 + (magnitude - 1.0) * x;
      case Kind::kDiurnal: {
        constexpr double kTwoPi = 6.283185307179586;
        const double t = (now - t0).as_seconds();
        return 1.0 + magnitude * std::sin(kTwoPi * t / period.as_seconds());
      }
    }
    return 1.0;
  }
};

/// Product of all phase factors; an empty modulation is identically 1.0.
struct ArrivalModulation {
  std::vector<ArrivalPhase> phases;

  [[nodiscard]] bool empty() const { return phases.empty(); }

  [[nodiscard]] double factor(common::SimTime now) const {
    double f = 1.0;
    for (const ArrivalPhase& phase : phases) f *= phase.factor(now);
    return f;
  }
};

/// Scheduled workload-mix switch.  The name is resolved by the workload
/// layer (tpcw) at install time; the parser only checks it is an
/// identifier.
struct MixChange {
  common::SimTime at = common::SimTime::zero();
  std::string mix;
};

struct ScenarioPlan {
  FaultPlan faults;
  ArrivalModulation arrival;
  std::vector<MixChange> mix_changes;

  [[nodiscard]] bool empty() const {
    return faults.empty() && arrival.empty() && mix_changes.empty();
  }

  /// Parses the scenario text format documented above (a superset of the
  /// FaultPlan grammar).  Returns std::nullopt on malformed input; when
  /// `error` is non-null it receives a description with line/column.
  static std::optional<ScenarioPlan> parse(std::string_view text,
                                           std::string* error = nullptr);
};

}  // namespace ah::sim
