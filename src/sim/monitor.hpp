// Periodic utilization sampling.
//
// The reconfiguration algorithm (paper Section IV) reacts to *smoothed*
// resource utilization, not instantaneous readings; this monitor samples a
// set of probes on a fixed period and keeps an EWMA per probe.  Probes are
// closures so the monitor needs no knowledge of nodes or resources.
#pragma once

#include <string>
#include <vector>

#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

class UtilizationMonitor {
 public:
  /// A probe returns the utilization accumulated since its previous call,
  /// in [0, 1+] (values above 1 are possible transiently after a capacity
  /// shrink).  Registered once at startup but sampled every monitor period,
  /// so it is a move-only InlineFunction rather than a std::function.
  using Probe = common::InlineFunction<double()>;

  UtilizationMonitor(Simulator& sim, common::SimTime period,
                     double ewma_alpha = 0.3);
  ~UtilizationMonitor();

  UtilizationMonitor(const UtilizationMonitor&) = delete;
  UtilizationMonitor& operator=(const UtilizationMonitor&) = delete;

  /// Registers a probe; returns its index for later reads.
  std::size_t add_probe(std::string name, Probe probe);

  /// Starts (or restarts) periodic sampling.
  void start();
  /// Stops sampling; readings freeze at their last values.
  void stop();

  /// Forces a sample of all probes right now.
  void sample_now();

  [[nodiscard]] std::size_t probe_count() const { return probes_.size(); }
  [[nodiscard]] const std::string& probe_name(std::size_t i) const;
  /// Smoothed (EWMA) utilization of probe i; 0 before the first sample.
  [[nodiscard]] double smoothed(std::size_t i) const;
  /// Most recent raw sample of probe i; 0 before the first sample.
  [[nodiscard]] double last_raw(std::size_t i) const;
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  struct Entry {
    std::string name;
    Probe probe;
    common::Ewma ewma;
    double last_raw = 0.0;
  };

  void schedule_next();

  Simulator& sim_;
  common::SimTime period_;
  double alpha_;
  std::vector<Entry> probes_;
  EventId pending_ = 0;
  bool running_ = false;
  std::uint64_t samples_ = 0;
};

}  // namespace ah::sim
