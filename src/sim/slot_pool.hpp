// Counted slot pool with FIFO waiting and bounded accept queue.
//
// Complements sim::Resource: a Resource serves jobs whose duration is known
// at submit time (CPU bursts, disk transfers), while a SlotPool hands out
// slots that the holder releases explicitly — the right shape for connector
// thread pools and database connection slots, where a thread is held across
// arbitrary downstream waits.  `acceptCount`-style admission control falls
// out of the bounded waiter queue.
#pragma once

#include <cstdint>
#include <string>

#include "common/analysis.hpp"
#include "common/ring_buffer.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::sim {

class SlotPool {
 public:
  /// Grant callback.  Aliased to the simulator's event type so grant_next()
  /// can move a queued waiter straight into sim_.schedule() without
  /// re-wrapping it in another closure (which would both allocate and
  /// overflow the event's inline buffer).
  using Granted = EventFn;

  struct Config {
    int slots = 1;
    /// Waiters admitted beyond the slots in use; acquire() past this fails.
    std::size_t queue_capacity = static_cast<std::size_t>(-1);
  };

  SlotPool(Simulator& sim, std::string name, Config config);

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  /// Requests a slot.  Returns false (rejection) when all slots are taken
  /// and the waiting queue is full; otherwise `on_granted` fires exactly
  /// once — immediately (synchronously) when a slot is free, or later in
  /// FIFO order.  Every grant must be paired with one release().
  bool acquire(Granted on_granted);

  /// Returns a slot; the longest-waiting acquirer (if any) is granted via a
  /// zero-delay event so grant callbacks never run inside release().
  void release();

  /// Re-sizes the pool.  Growth admits waiters immediately; on shrink,
  /// excess holders finish naturally and capacity drops as they release.
  void set_slots(int slots);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int slots() const { return config_.slots; }
  [[nodiscard]] int in_use() const { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }

  [[nodiscard]] std::uint64_t granted() const { return granted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  /// Highest simultaneous in_use observed (drives thread-spawn modelling).
  [[nodiscard]] int peak_in_use() const { return peak_in_use_; }
  void reset_peak() { peak_in_use_ = in_use_; }

  /// Integral of slots-in-use over time (slot·µs); see Resource::busy_integral.
  [[nodiscard]] std::int64_t busy_integral() const;
  [[nodiscard]] double utilization_since(std::int64_t integral_at_t0,
                                         common::SimTime t0) const;

  /// Drops all waiters (they are counted as rejected, their callbacks never
  /// fire).  Used on server restart.  Returns the number dropped.
  std::size_t clear_waiters();

 private:
  void account_now();
  void grant_next();

  Simulator& sim_;
  std::string name_;
  Config config_;

  int in_use_ = 0;
  int peak_in_use_ = 0;
  common::RingBuffer<Granted> waiters_;

  std::uint64_t granted_ = 0;
  std::uint64_t rejected_ = 0;

  mutable std::int64_t busy_integral_ = 0;
  mutable common::SimTime last_account_ = common::SimTime::zero();
};

}  // namespace ah::sim
