// ModelImmutable: the shared read-only layer of a simulated deployment.
//
// A SystemModel splits into two kinds of state.  The immutable layer —
// TPC-W interaction tables, think-time/mix distributions, the Zipf item
// popularity CDF, the 23-entry parameter catalogue metadata, NodeHardware
// profiles and the topology/experiment Configs themselves — is identical
// for every replica of a topology and for every work line inside one model.
// The mutable layer (event queues, pools, routers, RNG streams, histograms)
// is small and strictly per-replica / per-line.
//
// This class captures the immutable layer once and hands it out by
// std::shared_ptr<const ModelImmutable>: k replicas built from the same
// options share one copy instead of duplicating it k times (the popularity
// table alone is ~120 KB per work line at the TPC-W 10k item scale), and a
// const object is safely readable from any number of work-line threads
// without synchronisation.  Enforcement is structural (everything here is
// reached through const accessors) and lint-backed: files marked
// AH_IMMUTABLE_STATE_FILE must not define non-const statics or mutable
// members (ah_lint rule `shared_state`).
#pragma once

#include <cstdint>
#include <memory>

#include "common/analysis.hpp"
#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "harmony/parameter.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/zipf.hpp"
#include "webstack/params.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::core {

class ModelImmutable {
 public:
  /// Prefer make_model_immutable(); the constructor is public so tests can
  /// build odd variants directly.  `popularity` must be non-null.
  ModelImmutable(SystemModel::Config topology, Experiment::Config experiment,
                 std::shared_ptr<const tpcw::ZipfSampler> popularity);

  ModelImmutable(const ModelImmutable&) = delete;
  ModelImmutable& operator=(const ModelImmutable&) = delete;

  /// The topology every replica is built from.  Its `shared` field is
  /// cleared (the immutable layer does not point at itself).
  [[nodiscard]] const SystemModel::Config& topology() const {
    return topology_;
  }
  [[nodiscard]] const Experiment::Config& experiment() const {
    return experiment_;
  }
  [[nodiscard]] const cluster::NodeHardware& hardware() const {
    return topology_.hardware;
  }

  [[nodiscard]] std::size_t line_count() const {
    return topology_.lines.size();
  }
  /// Total nodes a SystemModel built from topology() will create.
  [[nodiscard]] std::size_t node_count() const;

  /// Zipf item-popularity table shared by every line of every replica
  /// (tpcw::ZipfSampler sampling is const and thread-safe).
  [[nodiscard]] const tpcw::ZipfSampler& popularity() const {
    return *popularity_;
  }
  [[nodiscard]] std::shared_ptr<const tpcw::ZipfSampler> popularity_ptr()
      const {
    return popularity_;
  }

  /// The 23-entry parameter catalogue (process-wide immutable table).
  [[nodiscard]] const std::vector<webstack::ParamSpec>& catalogue() const {
    return webstack::parameter_catalogue();
  }
  /// Catalogue default values, computed once instead of per caller.
  [[nodiscard]] const harmony::PointI& catalogue_defaults() const {
    return defaults_;
  }
  /// Standard TPC-W mix for `kind` (process-wide immutable table).
  [[nodiscard]] const tpcw::Mix& mix(tpcw::WorkloadKind kind) const {
    return tpcw::Mix::standard(kind);
  }

 private:
  SystemModel::Config topology_;
  Experiment::Config experiment_;
  std::shared_ptr<const tpcw::ZipfSampler> popularity_;
  harmony::PointI defaults_;
};

/// Builds the immutable layer for (topology, experiment), deriving the
/// popularity table from the experiment's item count and the standard
/// TPC-W Zipf exponent.
[[nodiscard]] std::shared_ptr<const ModelImmutable> make_model_immutable(
    const SystemModel::Config& topology, const Experiment::Config& experiment);

/// As above but adopting an existing popularity table — lets callers that
/// build many immutables over the same item scale (e.g. the per-line
/// evaluators of partitioned tuning) share one CDF across all of them.
[[nodiscard]] std::shared_ptr<const ModelImmutable> make_model_immutable(
    const SystemModel::Config& topology, const Experiment::Config& experiment,
    std::shared_ptr<const tpcw::ZipfSampler> popularity);

}  // namespace ah::core
