// SystemModel: the full simulated deployment.
//
// Builds the cluster (nodes, tiers), one server object of *each* role per
// node, and the routing fabric, organised into one or more "work lines"
// (paper §III.B): a work line is a self-contained slice with at least one
// node per tier and its own routers, so requests entering line g never touch
// another line.  The common single-line topology is just lines = {1 spec}.
//
// Every node eagerly owns a ProxyServer, AppServer and DbServer; only the
// one matching the node's current tier is active and registered in the
// line's routers.  Tier reconfiguration (paper §IV) is then: deregister the
// old role, wait out the configuration cost F (optionally draining first),
// activate the new role, register it.  In-flight requests complete on the
// old role while the switch is pending — the paper's "uninterrupted
// service" property.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/health_checker.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/network.hpp"
#include "harmony/reconfig.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "sim/monitor.hpp"
#include "sim/simulator.hpp"
#include "webstack/app_server.hpp"
#include "webstack/db_server.hpp"
#include "webstack/params.hpp"
#include "webstack/proxy_server.hpp"
#include "webstack/router.hpp"

namespace ah::core {

class SystemModel {
 public:
  struct LineSpec {
    int proxy_nodes = 1;
    int app_nodes = 1;
    int db_nodes = 1;
  };

  struct Config {
    /// One default line.  Spelled as vector(1) rather than {LineSpec{}}:
    /// the initializer_list form trips a gcc-12 -Wmaybe-uninitialized false
    /// positive through the list's compiler-generated backing array.
    std::vector<LineSpec> lines = std::vector<LineSpec>(1);
    cluster::NodeHardware hardware{};
    /// Client -> proxy spreading (the testbed's DNS/IPVS style rotation).
    cluster::BalancePolicy frontend_policy =
        cluster::BalancePolicy::kRoundRobin;
    /// Proxy -> app and app -> db: busyness-based, like mod_jk's balancer
    /// and DB connection pools.  Round-robin here would let one slow
    /// backend accumulate an unbounded queue (no back-pressure).
    cluster::BalancePolicy backend_policy =
        cluster::BalancePolicy::kLeastLoaded;
    /// Utilization sampling period for the reconfiguration monitor.
    common::SimTime monitor_period = common::SimTime::seconds(5.0);
    std::uint64_t seed = 1;
  };

  SystemModel(sim::Simulator& sim, const Config& config);

  SystemModel(const SystemModel&) = delete;
  SystemModel& operator=(const SystemModel&) = delete;

  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }
  /// The configuration this model was built from — lets replica engines
  /// (core::ParallelEvaluator) construct identical independent systems.
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] webstack::FrontendRouter& frontend(std::size_t line);
  [[nodiscard]] cluster::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Node ids belonging to a line, in creation order.
  [[nodiscard]] const std::vector<cluster::NodeId>& line_nodes(
      std::size_t line) const;
  /// Line a node belongs to.
  [[nodiscard]] std::size_t line_of(cluster::NodeId id) const;
  /// All node ids.
  [[nodiscard]] std::vector<cluster::NodeId> all_nodes() const;

  // -- Parameter application -------------------------------------------
  /// Applies a full 23-value vector (catalogue order) to one node — only
  /// the slice for the node's *current* tier takes effect.
  void apply_values_to_node(cluster::NodeId id,
                            std::span<const std::int64_t> values);
  /// Applies the same 23-value vector to every node (parameter
  /// duplication and single-machine-per-tier setups).
  void apply_values_all(std::span<const std::int64_t> values);
  /// Applies a 23-value vector to all nodes of one line (parameter
  /// partitioning: each work line has its own configuration).
  void apply_values_line(std::size_t line,
                         std::span<const std::int64_t> values);

  // -- Server access -----------------------------------------------------
  [[nodiscard]] webstack::ProxyServer& proxy_on(cluster::NodeId id);
  [[nodiscard]] webstack::AppServer& app_on(cluster::NodeId id);
  [[nodiscard]] webstack::DbServer& db_on(cluster::NodeId id);
  /// In-flight jobs on the node's active server.
  [[nodiscard]] int active_load(cluster::NodeId id);

  // -- Reconfiguration ---------------------------------------------------
  /// Moves a node into `to` (paper §IV step 5).  The old role stops taking
  /// traffic immediately; the new role activates after `config_cost`
  /// (plus a drain wait unless `immediate`).  Throws std::logic_error when
  /// the source tier would become empty.
  void move_node(cluster::NodeId id, cluster::TierKind to, bool immediate,
                 common::SimTime config_cost);

  /// True when a move is still pending on the node.
  [[nodiscard]] bool move_in_progress(cluster::NodeId id) const;

  // -- Fault tolerance & injection ----------------------------------------
  /// Degradation machinery switched on by enable_fault_tolerance().  All
  /// defaults are conservative-but-active; a model that never calls
  /// enable_fault_tolerance() behaves bit-identically to the fault-unaware
  /// build.
  struct FaultToleranceConfig {
    cluster::HealthChecker::Config health{};
    /// Per-hop router timeout (zero = wait forever).  Must exceed the
    /// longest legitimate response time or healthy slow requests get cut.
    common::SimTime hop_timeout = common::SimTime::seconds(15.0);
    /// Proxy upstream retry + serve-stale policy.
    webstack::ProxyServer::Resilience proxy = default_proxy_resilience();
    [[nodiscard]] static webstack::ProxyServer::Resilience
    default_proxy_resilience();
  };

  /// Starts health checking and arms per-hop timeouts + proxy resilience on
  /// every line.  Idempotent (later calls just update the knobs).
  void enable_fault_tolerance(const FaultToleranceConfig& config);
  [[nodiscard]] bool fault_tolerance_enabled() const {
    return health_ != nullptr;
  }
  [[nodiscard]] cluster::HealthChecker* health_checker() {
    return health_.get();
  }
  [[nodiscard]] cluster::Network& network() { return *network_; }

  /// Schedules `plan` on this model's timeline; events are applied through
  /// crash_node/restart_node/set_node_fail_slow and the network link-fault
  /// hooks.  Re-installing replaces any previous plan.
  void install_fault_plan(const sim::FaultPlan& plan);

  /// Kills a node: it stops answering health probes, its active role
  /// refuses new requests, and queued hardware/pool work is dropped
  /// through the existing rejection paths (in-service jobs finish; their
  /// late replies are defused by router generations/timeouts).
  void crash_node(cluster::NodeId id);
  /// Brings a crashed node back (restart burst charged by set_active).
  void restart_node(cluster::NodeId id);
  /// Applies a fail-slow CPU multiplier (1.0 = healthy).
  void set_node_fail_slow(cluster::NodeId id, double factor);

  /// Monotonic count of fault events and health-state transitions.
  /// Measurement windows snapshot it before/after to tag windows that
  /// overlapped a disturbance (Experiment::run_iteration).
  [[nodiscard]] std::uint64_t disturbance_count() const {
    return disturbances_;
  }

  // -- Observability ------------------------------------------------------
  /// Unified pull-based metrics registry over this model: network,
  /// scheduler, router, server, pool, monitor and health counters plus the
  /// per-line latency histograms, all registered at construction.
  /// Snapshotting is on demand (cold path); nothing is pushed during
  /// simulation, so the registry is invisible to the timeline.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }

  /// Attaches (nullptr: detaches) a span recorder to every server of every
  /// node.  Off by default; sampling inside the recorder is sequence-based.
  void set_trace_recorder(obs::TraceRecorder* trace);

  /// Per-line latency histograms, always recording (passive observation):
  /// frontend = full client round trip, app/db = tier hop including both
  /// network legs and backend service.
  [[nodiscard]] const obs::Histogram& frontend_latency(std::size_t line) const {
    return lines_.at(line).frontend_latency;
  }
  [[nodiscard]] const obs::Histogram& app_hop_latency(std::size_t line) const {
    return lines_.at(line).app_hop_latency;
  }
  [[nodiscard]] const obs::Histogram& db_hop_latency(std::size_t line) const {
    return lines_.at(line).db_hop_latency;
  }

  // -- Monitoring ---------------------------------------------------------
  [[nodiscard]] sim::UtilizationMonitor& monitor() { return *monitor_; }
  /// Snapshot of per-node readings for harmony::Reconfigurer, using the
  /// monitor's smoothed utilizations: [cpu, disk, nic, memory].
  [[nodiscard]] std::vector<harmony::NodeReading> readings();

  /// Resource-kind order used in readings() / recommended policies.
  static constexpr std::size_t kCpu = 0, kDisk = 1, kNic = 2, kMemory = 3;
  [[nodiscard]] static harmony::ReconfigOptions default_reconfig_options();

 private:
  struct NodeState {
    cluster::NodeId id;
    std::size_t line;
    std::unique_ptr<webstack::ProxyServer> proxy;
    std::unique_ptr<webstack::AppServer> app;
    std::unique_ptr<webstack::DbServer> db;
    // Monitor probe indices: cpu, disk, nic, memory.
    std::size_t probe_base = 0;
    bool moving = false;
  };

  struct Line {
    std::vector<cluster::NodeId> nodes;
    std::unique_ptr<webstack::FrontendRouter> frontend;
    std::unique_ptr<webstack::AppTierRouter> app_router;
    std::unique_ptr<webstack::DbTierRouter> db_router;
    /// Hop-latency histograms fed by the routers (wired after lines_ is
    /// final — the histograms live inside this struct).
    obs::Histogram frontend_latency;
    obs::Histogram app_hop_latency;
    obs::Histogram db_hop_latency;
  };

  cluster::NodeId create_node(std::size_t line, cluster::TierKind tier,
                              const Config& config);
  void register_active(NodeState& state);
  void deregister_active(NodeState& state, cluster::TierKind role);
  void activate_role(cluster::NodeId id, cluster::TierKind role);
  void finish_move(cluster::NodeId id, cluster::TierKind to,
                   common::SimTime config_cost);
  /// FaultInjector dispatcher: maps generic fault events onto this model.
  void apply_fault(const sim::FaultEvent& event);
  /// set_active(on/off) for the role matching the node's current tier.
  void set_role_active(NodeState& state, bool active);
  /// Registers every pull source with metrics_ (end of construction).
  void register_metrics();

  sim::Simulator& sim_;
  Config config_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Network> network_;
  std::unique_ptr<sim::UtilizationMonitor> monitor_;
  std::vector<Line> lines_;
  std::vector<NodeState> nodes_;
  std::unique_ptr<cluster::HealthChecker> health_;
  std::unique_ptr<sim::FaultInjector> injector_;
  obs::Registry metrics_;
  std::uint64_t disturbances_ = 0;
};

}  // namespace ah::core
