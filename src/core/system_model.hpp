// SystemModel: the full simulated deployment.
//
// Builds the cluster (nodes, tiers), the server objects, and the routing
// fabric, organised into one or more "work lines" (paper §III.B): a work
// line is a self-contained slice with at least one node per tier and its
// own routers, so requests entering line g never touch another line.  The
// common single-line topology is just lines = {1 spec}.
//
// The model splits into two layers.  Immutable state — interaction tables,
// mix distributions, the Zipf popularity CDF, catalogue metadata, hardware
// profiles, the Configs — lives in core::ModelImmutable and is shared by
// std::shared_ptr<const> across every replica and line (Config::shared).
// Everything owned here is the mutable layer: event queues, networks,
// routers, pools, RNG streams, histograms — small and strictly per-replica.
//
// Each node owns one server object per role it has ever played; only the
// one matching the node's current tier is active and registered in the
// line's routers.  Roles are created on demand (a db node never pays for a
// proxy's cache index unless it is actually moved into the proxy tier);
// Config::eager_roles restores the historical all-three-up-front layout.
// Tier reconfiguration (paper §IV) is then: deregister the old role, wait
// out the configuration cost F (optionally draining first), activate the
// new role, register it.  In-flight requests complete on the old role while
// the switch is pending — the paper's "uninterrupted service" property.
//
// Timelines.  The legacy constructor runs every line on one caller-owned
// Simulator.  The sharded constructor gives each line its own Simulator,
// network, monitor and (when enabled) health checker / fault injector —
// lines share no mutable state, so run_all_until() can advance them on
// separate ThreadPool threads and merge observations only at the barrier.
// Results are bit-identical at any thread count (see DESIGN.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/health_checker.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/network.hpp"
#include "common/thread_pool.hpp"
#include "ctrl/admission_controller.hpp"
#include "harmony/reconfig.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "sim/monitor.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "tpcw/zipf.hpp"
#include "webstack/app_server.hpp"
#include "webstack/db_server.hpp"
#include "webstack/params.hpp"
#include "webstack/proxy_server.hpp"
#include "webstack/router.hpp"

namespace ah::core {

class ModelImmutable;

class SystemModel {
 public:
  struct LineSpec {
    int proxy_nodes = 1;
    int app_nodes = 1;
    int db_nodes = 1;
  };

  struct Config {
    /// One default line.  Spelled as vector(1) rather than {LineSpec{}}:
    /// the initializer_list form trips a gcc-12 -Wmaybe-uninitialized false
    /// positive through the list's compiler-generated backing array.
    std::vector<LineSpec> lines = std::vector<LineSpec>(1);
    cluster::NodeHardware hardware{};
    /// Client -> proxy spreading (the testbed's DNS/IPVS style rotation).
    cluster::BalancePolicy frontend_policy =
        cluster::BalancePolicy::kRoundRobin;
    /// Proxy -> app and app -> db: busyness-based, like mod_jk's balancer
    /// and DB connection pools.  Round-robin here would let one slow
    /// backend accumulate an unbounded queue (no back-pressure).
    cluster::BalancePolicy backend_policy =
        cluster::BalancePolicy::kLeastLoaded;
    /// Utilization sampling period for the reconfiguration monitor.
    common::SimTime monitor_period = common::SimTime::seconds(5.0);
    std::uint64_t seed = 1;
    /// Shared immutable layer.  Replicas built from the same options point
    /// at one copy (core::ParallelEvaluator fills this in when unset);
    /// null means the model derives everything privately — behaviour is
    /// identical either way, only the memory footprint differs.
    std::shared_ptr<const ModelImmutable> shared;
    /// Construct all three roles per node up front (the pre-sharding
    /// layout).  Kept as the duplicated-model baseline bench_scale
    /// measures the lazy default against.
    bool eager_roles = false;
  };

  /// Legacy single-timeline model: every line runs on `sim`.
  SystemModel(sim::Simulator& sim, const Config& config);

  /// Sharded model: one owned Simulator per work line.  Use
  /// run_all_until()/now() instead of simulator(); set_thread_pool()
  /// enables parallel line execution.
  explicit SystemModel(const Config& config);

  SystemModel(const SystemModel&) = delete;
  SystemModel& operator=(const SystemModel&) = delete;

  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }
  /// The configuration this model was built from — lets replica engines
  /// (core::ParallelEvaluator) construct identical independent systems.
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] webstack::FrontendRouter& frontend(std::size_t line);
  [[nodiscard]] cluster::Cluster& cluster() { return *cluster_; }

  // -- Timelines ----------------------------------------------------------
  /// True when each line owns its own timeline.
  [[nodiscard]] bool sharded() const { return sharded_; }
  /// The single shared timeline.  Throws std::logic_error on a sharded
  /// model — per-line timelines are reached via line_simulator().
  [[nodiscard]] sim::Simulator& simulator();
  /// The timeline line `line` runs on (the shared one in legacy mode).
  [[nodiscard]] sim::Simulator& line_simulator(std::size_t line);
  /// Current virtual time.  On a sharded model this is only meaningful at
  /// run_all_until() barriers, where every line's clock agrees.
  [[nodiscard]] common::SimTime now() const;
  /// Advances every timeline to `until` (inclusive).  With a thread pool
  /// attached, lines run on separate threads; each line's event order is
  /// its own either way, so results are bit-identical at any pool size.
  void run_all_until(common::SimTime until);
  /// Borrows a pool for run_all_until() fan-out (nullptr: run serially).
  /// The pool must outlive this model or be detached before destruction.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }
  /// Shared immutable layer, or null when this model owns its tables.
  [[nodiscard]] const ModelImmutable* immutable() const {
    return config_.shared.get();
  }
  /// Popularity table from the immutable layer (null without one).
  [[nodiscard]] std::shared_ptr<const tpcw::ZipfSampler> shared_popularity()
      const;

  /// Node ids belonging to a line, in creation order.
  [[nodiscard]] const std::vector<cluster::NodeId>& line_nodes(
      std::size_t line) const;
  /// Line a node belongs to.
  [[nodiscard]] std::size_t line_of(cluster::NodeId id) const;
  /// All node ids in creation order.  Cached at construction (the node set
  /// never changes afterwards; tier moves only relabel nodes).
  [[nodiscard]] const std::vector<cluster::NodeId>& all_nodes() const {
    return all_nodes_;
  }

  // -- Parameter application -------------------------------------------
  /// Applies a full 23-value vector (catalogue order) to one node — only
  /// the slice for the node's *current* tier takes effect.
  void apply_values_to_node(cluster::NodeId id,
                            std::span<const std::int64_t> values);
  /// Applies the same 23-value vector to every node (parameter
  /// duplication and single-machine-per-tier setups).
  void apply_values_all(std::span<const std::int64_t> values);
  /// Applies a 23-value vector to all nodes of one line (parameter
  /// partitioning: each work line has its own configuration).
  void apply_values_line(std::size_t line,
                         std::span<const std::int64_t> values);

  // -- Server access -----------------------------------------------------
  /// Role accessors create the role on first touch (see lazy roles above).
  [[nodiscard]] webstack::ProxyServer& proxy_on(cluster::NodeId id);
  [[nodiscard]] webstack::AppServer& app_on(cluster::NodeId id);
  [[nodiscard]] webstack::DbServer& db_on(cluster::NodeId id);
  /// In-flight jobs on the node's active server.
  [[nodiscard]] int active_load(cluster::NodeId id);

  // -- Reconfiguration ---------------------------------------------------
  /// Moves a node into `to` (paper §IV step 5).  The old role stops taking
  /// traffic immediately; the new role activates after `config_cost`
  /// (plus a drain wait unless `immediate`).  Throws std::logic_error when
  /// the source tier would become empty, or on a sharded model (tier
  /// membership is cross-line state; node moves need the single-timeline
  /// mode — sharded models are for parameter tuning at scale).
  void move_node(cluster::NodeId id, cluster::TierKind to, bool immediate,
                 common::SimTime config_cost);

  /// True when a move is still pending on the node.
  [[nodiscard]] bool move_in_progress(cluster::NodeId id) const;

  // -- Fault tolerance & injection ----------------------------------------
  /// Degradation machinery switched on by enable_fault_tolerance().  All
  /// defaults are conservative-but-active; a model that never calls
  /// enable_fault_tolerance() behaves bit-identically to the fault-unaware
  /// build.
  struct FaultToleranceConfig {
    cluster::HealthChecker::Config health{};
    /// Per-hop router timeout (zero = wait forever).  Must exceed the
    /// longest legitimate response time or healthy slow requests get cut.
    common::SimTime hop_timeout = common::SimTime::seconds(15.0);
    /// Proxy upstream retry + serve-stale policy.
    webstack::ProxyServer::Resilience proxy = default_proxy_resilience();
    [[nodiscard]] static webstack::ProxyServer::Resilience
    default_proxy_resilience();
  };

  /// Starts health checking and arms per-hop timeouts + proxy resilience on
  /// every line.  Idempotent (later calls just update the knobs).  On a
  /// sharded model each line gets its own checker scoped to its nodes.
  void enable_fault_tolerance(const FaultToleranceConfig& config);
  [[nodiscard]] bool fault_tolerance_enabled() const {
    return fault_tolerance_enabled_;
  }
  /// Line 0's checker (the only one in legacy mode); null until
  /// enable_fault_tolerance().
  [[nodiscard]] cluster::HealthChecker* health_checker() {
    return shards_[0].health.get();
  }
  /// Line `line`'s checker; null until enable_fault_tolerance().
  [[nodiscard]] cluster::HealthChecker* line_health_checker(std::size_t line);
  /// Line 0's network fabric (the only one in legacy mode).
  [[nodiscard]] cluster::Network& network() { return *shards_[0].network; }
  /// The fabric carrying line `line`'s intra-line messages.
  [[nodiscard]] cluster::Network& line_network(std::size_t line);

  /// Schedules `plan` on this model's timeline(s); events are applied
  /// through crash_node/restart_node/set_node_fail_slow and the network
  /// link-fault hooks.  Re-installing replaces any previous plan.  On a
  /// sharded model events are partitioned by the subject node's line (a
  /// both-ends-wildcard link event lands on every line), keeping fault
  /// plans line-local.
  void install_fault_plan(const sim::FaultPlan& plan);

  /// Installs the fault half of a scenario and keeps the plan around so
  /// workload layers can pick up its arrival modulation and mix drift
  /// (Experiment::apply_scenario does both).  Re-installing replaces the
  /// previous scenario.
  void install_scenario(const sim::ScenarioPlan& plan);
  /// The installed scenario, or null.
  [[nodiscard]] const sim::ScenarioPlan* scenario() const {
    return scenario_.get();
  }

  // -- Overload control ---------------------------------------------------
  /// Feedback-controlled admission at the proxy tier; see
  /// ctrl::AdmissionController for the control law.  A model that never
  /// calls enable_admission_control() behaves bit-identically to one
  /// without the ctrl layer.
  struct OverloadControlConfig {
    ctrl::AdmissionController::Config admission{};
    webstack::ProxyServer::ShedMode shed_mode =
        webstack::ProxyServer::ShedMode::kServeStale;
  };

  /// Starts one admission controller per work line (on the line's own
  /// timeline) and attaches it to every proxy of that line.  Idempotent:
  /// later calls update the knobs and shed mode in place.
  void enable_admission_control(const OverloadControlConfig& config);
  [[nodiscard]] bool admission_control_enabled() const {
    return admission_enabled_;
  }
  /// Line `line`'s admission controller; null until
  /// enable_admission_control().
  [[nodiscard]] ctrl::AdmissionController* line_admission(std::size_t line) {
    return lines_.at(line).admission.get();
  }

  /// Bumps the disturbance counter (controller actuations taint
  /// measurement windows exactly like faults and health transitions do).
  void note_disturbance() {
    disturbances_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Hook fired on every health mark transition as (node, now_up), after
  /// the model's own bookkeeping.  Used by core::ReconfigController's
  /// reactive mode; replace with an empty function to detach.
  void set_health_transition_hook(
      std::function<void(cluster::NodeId, bool)> hook) {
    health_hook_ = std::move(hook);
  }

  /// Kills a node: it stops answering health probes, its active role
  /// refuses new requests, and queued hardware/pool work is dropped
  /// through the existing rejection paths (in-service jobs finish; their
  /// late replies are defused by router generations/timeouts).
  void crash_node(cluster::NodeId id);
  /// Brings a crashed node back (restart burst charged by set_active).
  void restart_node(cluster::NodeId id);
  /// Applies a fail-slow CPU multiplier (1.0 = healthy).
  void set_node_fail_slow(cluster::NodeId id, double factor);

  /// Monotonic count of fault events and health-state transitions.
  /// Measurement windows snapshot it before/after to tag windows that
  /// overlapped a disturbance (Experiment::run_iteration).  Atomic with
  /// relaxed ordering: on a sharded model different lines' events bump it
  /// concurrently; reads at run_all_until() barriers see a stable total.
  [[nodiscard]] std::uint64_t disturbance_count() const {
    return disturbances_.load(std::memory_order_relaxed);
  }

  // -- Observability ------------------------------------------------------
  /// Unified pull-based metrics registry over this model: network,
  /// scheduler, router, server, pool, monitor and health counters plus the
  /// per-line latency histograms, all registered at construction.
  /// Snapshotting is on demand (cold path); nothing is pushed during
  /// simulation, so the registry is invisible to the timeline.  Aggregated
  /// counters sum over shards in line order — snapshots are byte-identical
  /// at any thread count.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }

  /// Attaches (nullptr: detaches) a span recorder to every server of every
  /// node.  Off by default; sampling inside the recorder is sequence-based.
  /// Throws std::logic_error on a sharded model: the recorder's ring is a
  /// single mutable buffer and lines must not share mutable state.
  void set_trace_recorder(obs::TraceRecorder* trace);

  /// Per-line latency histograms, always recording (passive observation):
  /// frontend = full client round trip, app/db = tier hop including both
  /// network legs and backend service.
  [[nodiscard]] const obs::Histogram& frontend_latency(std::size_t line) const {
    return lines_.at(line).frontend_latency;
  }
  [[nodiscard]] const obs::Histogram& app_hop_latency(std::size_t line) const {
    return lines_.at(line).app_hop_latency;
  }
  [[nodiscard]] const obs::Histogram& db_hop_latency(std::size_t line) const {
    return lines_.at(line).db_hop_latency;
  }

  // -- Monitoring ---------------------------------------------------------
  /// Line 0's utilization monitor (the only one in legacy mode).
  [[nodiscard]] sim::UtilizationMonitor& monitor() {
    return *shards_[0].monitor;
  }
  /// Snapshot of per-node readings for harmony::Reconfigurer, using the
  /// monitor's smoothed utilizations: [cpu, disk, nic, memory].
  [[nodiscard]] std::vector<harmony::NodeReading> readings();

  /// Resource-kind order used in readings() / recommended policies.
  static constexpr std::size_t kCpu = 0, kDisk = 1, kNic = 2, kMemory = 3;
  [[nodiscard]] static harmony::ReconfigOptions default_reconfig_options();

 private:
  struct NodeState {
    cluster::NodeId id;
    std::size_t line;
    std::unique_ptr<webstack::ProxyServer> proxy;
    std::unique_ptr<webstack::AppServer> app;
    std::unique_ptr<webstack::DbServer> db;
    // Monitor probe indices (cpu, disk, nic, memory) in the line's monitor.
    std::size_t probe_base = 0;
    bool moving = false;
  };

  struct Line {
    std::vector<cluster::NodeId> nodes;
    std::unique_ptr<webstack::FrontendRouter> frontend;
    std::unique_ptr<webstack::AppTierRouter> app_router;
    std::unique_ptr<webstack::DbTierRouter> db_router;
    /// Hop-latency histograms fed by the routers (wired after lines_ is
    /// final — the histograms live inside this struct).
    obs::Histogram frontend_latency;
    obs::Histogram app_hop_latency;
    obs::Histogram db_hop_latency;
    /// Per-line overload controller (enable_admission_control).
    std::unique_ptr<ctrl::AdmissionController> admission;
  };

  /// One timeline plus the per-timeline services.  Legacy mode has exactly
  /// one (wrapping the caller's Simulator); sharded mode one per line.
  struct Shard {
    sim::Simulator* sim = nullptr;  // owned_sim.get() when owned
    std::unique_ptr<sim::Simulator> owned_sim;
    std::unique_ptr<cluster::Network> network;
    std::unique_ptr<sim::UtilizationMonitor> monitor;
    std::unique_ptr<cluster::HealthChecker> health;
    std::unique_ptr<sim::FaultInjector> injector;
  };

  void build(const Config& config);
  [[nodiscard]] Shard& shard_of_line(std::size_t line) {
    return shards_[sharded_ ? line : 0];
  }

  cluster::NodeId create_node(std::size_t line, cluster::TierKind tier,
                              const Config& config);
  /// Role factories: create on demand with the same arguments (and, for
  /// the db, the same seed) eager construction would have used, inactive
  /// unless the role matches the node's current tier — so lazy and eager
  /// models behave bit-identically.
  webstack::ProxyServer& ensure_proxy(NodeState& state);
  webstack::AppServer& ensure_app(NodeState& state);
  webstack::DbServer& ensure_db(NodeState& state);
  void deactivate_unless_current(NodeState& state, cluster::TierKind role);
  void register_active(NodeState& state);
  void deregister_active(NodeState& state, cluster::TierKind role);
  void finish_move(cluster::NodeId id, cluster::TierKind to,
                   common::SimTime config_cost);
  /// FaultInjector dispatcher: maps generic fault events onto this model.
  /// `shard` routes link faults to the right line's network.
  void apply_fault(std::size_t shard, const sim::FaultEvent& event);
  /// set_active(on/off) for the role matching the node's current tier.
  void set_role_active(NodeState& state, bool active);
  /// Registers every pull source with metrics_ (end of construction).
  void register_metrics();

  Config config_;
  bool sharded_ = false;
  common::ThreadPool* pool_ = nullptr;
  /// Owns the sharded Simulators — declared first so every member that
  /// references a timeline is destroyed before it.
  std::vector<Shard> shards_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::vector<Line> lines_;
  std::vector<NodeState> nodes_;
  std::vector<cluster::NodeId> all_nodes_;
  obs::Registry metrics_;
  std::atomic<std::uint64_t> disturbances_{0};
  bool fault_tolerance_enabled_ = false;
  /// Remembered for roles created after the respective setter ran.
  webstack::ProxyServer::Resilience proxy_resilience_{};
  bool admission_enabled_ = false;
  OverloadControlConfig overload_config_{};
  std::unique_ptr<sim::ScenarioPlan> scenario_;
  std::function<void(cluster::NodeId, bool)> health_hook_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace ah::core
