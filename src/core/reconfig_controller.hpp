// Binds the topology-agnostic reconfiguration algorithm to a SystemModel.
//
// The paper runs the reconfiguration check at a much lower frequency than
// parameter tuning (e.g. every 50 iterations); the experiment loop calls
// `check()` at that cadence.  A positive decision is executed through
// SystemModel::move_node with the configuration cost F from the options.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/system_model.hpp"
#include "harmony/reconfig.hpp"

namespace ah::core {

class ReconfigController {
 public:
  ReconfigController(SystemModel& system, harmony::ReconfigOptions options =
                                              SystemModel::default_reconfig_options());

  /// Runs steps 1-5 on the current monitor readings; executes and returns
  /// the decision when one is made.
  std::optional<harmony::ReconfigDecision> check();

  /// Decisions executed so far.
  [[nodiscard]] const std::vector<harmony::ReconfigDecision>& moves() const {
    return moves_;
  }

  [[nodiscard]] const harmony::Reconfigurer& algorithm() const {
    return reconfigurer_;
  }

 private:
  SystemModel& system_;
  harmony::Reconfigurer reconfigurer_;
  std::vector<harmony::ReconfigDecision> moves_;
};

}  // namespace ah::core
