// Binds the topology-agnostic reconfiguration algorithm to a SystemModel.
//
// The paper runs the reconfiguration check at a much lower frequency than
// parameter tuning (e.g. every 50 iterations); the experiment loop calls
// `check()` at that cadence.  A positive decision is executed through
// SystemModel::move_node with the configuration cost F from the options.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/system_model.hpp"
#include "harmony/reconfig.hpp"

namespace ah::core {

class ReconfigController {
 public:
  /// Reactive mode: instead of merely refusing unsafe donations at the
  /// periodic check(), the controller responds to two event-shaped signals
  /// — a HealthChecker mark-down that leaves a tier under-provisioned, and
  /// a sustained p95 breach reported via observe_p95() — by borrowing the
  /// least-loaded healthy node from another tier for the bottleneck role.
  /// Hysteresis comes from three places: the breach streak (one bad
  /// window never moves a node), the cooldown between reactive moves, and
  /// the existing donor guard (never drain a tier's last healthy node).
  /// This is the MIDDLE control loop: slower than admission control
  /// (seconds), much faster than the Harmony tuner (whole tuning runs).
  struct ReactiveOptions {
    /// p95 above this counts as a breach in observe_p95().
    common::SimTime p95_target = common::SimTime::millis(800);
    /// Consecutive breached observations before a borrow.
    int breach_streak = 3;
    /// Minimum spacing between reactive moves.
    common::SimTime cooldown = common::SimTime::seconds(60.0);
    /// A mark-down that leaves its tier with fewer healthy nodes than this
    /// triggers a borrow.  The default 1 reacts only to a fully-dead tier;
    /// capacity-sensitive deployments raise it.
    std::size_t min_healthy = 1;
    /// Reactive borrows skip the drain wait: the needy tier is on fire.
    bool immediate = true;
    /// Configuration cost F charged for a reactive move (seconds).
    double config_cost_seconds = 4.0;
  };

  ReconfigController(SystemModel& system, harmony::ReconfigOptions options =
                                              SystemModel::default_reconfig_options());

  /// Runs steps 1-5 on the current monitor readings; executes and returns
  /// the decision when one is made.
  std::optional<harmony::ReconfigDecision> check();

  /// Arms reactive mode: installs the health-transition hook on the model
  /// and accepts observe_p95() reports.  Throws std::logic_error on a
  /// sharded model (node moves need the single-timeline mode).
  void enable_reactive(const ReactiveOptions& options);
  [[nodiscard]] bool reactive_enabled() const { return reactive_enabled_; }

  /// Feeds one measured p95 (typically once per measurement bucket).
  /// After `breach_streak` consecutive breaches, borrows a node for the
  /// tier hosting the hottest node.  Returns the executed decision.
  std::optional<harmony::ReconfigDecision> observe_p95(common::SimTime p95);

  /// Moves executed by reactive triggers (subset of moves()).
  [[nodiscard]] std::uint64_t reactive_moves() const {
    return reactive_moves_;
  }

  /// Decisions executed so far.
  [[nodiscard]] const std::vector<harmony::ReconfigDecision>& moves() const {
    return moves_;
  }

  [[nodiscard]] const harmony::Reconfigurer& algorithm() const {
    return reconfigurer_;
  }

 private:
  void on_health_transition(cluster::NodeId id, bool up);
  /// Borrows the least-loaded healthy node from another tier into `needy`
  /// (cooldown + donor guard applied).  Returns the executed decision.
  std::optional<harmony::ReconfigDecision> borrow_into(
      cluster::TierKind needy);

  SystemModel& system_;
  harmony::Reconfigurer reconfigurer_;
  std::vector<harmony::ReconfigDecision> moves_;
  ReactiveOptions reactive_{};
  bool reactive_enabled_ = false;
  int breach_streak_ = 0;
  common::SimTime cooldown_until_ = common::SimTime::zero();
  std::uint64_t reactive_moves_ = 0;
};

}  // namespace ah::core
