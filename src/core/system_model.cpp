#include "core/system_model.hpp"

#include <cassert>
#include <stdexcept>

#include "common/analysis.hpp"
#include "common/log.hpp"
#include "core/model_immutable.hpp"

namespace ah::core {

using cluster::NodeId;
using cluster::TierKind;

namespace {
/// Poll period while waiting for a draining node to empty.
constexpr auto kDrainPoll = common::SimTime::seconds(1.0);
/// Role-dependent Eq.-1 inputs: average per-job remaining processing time
/// (A_k) and per-job migration cost (M_km).  Derived from the simulated
/// service demands: proxy jobs are short, app jobs span DB round trips.
double avg_process_seconds(TierKind tier) {
  switch (tier) {
    case TierKind::kProxy: return 0.010;
    case TierKind::kApp:   return 0.060;
    case TierKind::kDb:    return 0.025;
  }
  return 0.02;
}
double move_cost_seconds(TierKind tier) {
  switch (tier) {
    case TierKind::kProxy: return 0.004;
    case TierKind::kApp:   return 0.020;
    case TierKind::kDb:    return 0.015;
  }
  return 0.01;
}
}  // namespace

SystemModel::SystemModel(sim::Simulator& sim, const Config& config)
    : config_(config), sharded_(false) {
  Shard shard;
  shard.sim = &sim;
  shards_.push_back(std::move(shard));
  build(config);
}

SystemModel::SystemModel(const Config& config)
    : config_(config), sharded_(true) {
  for (std::size_t li = 0; li < config.lines.size(); ++li) {
    Shard shard;
    shard.owned_sim = std::make_unique<sim::Simulator>();
    shard.sim = shard.owned_sim.get();
    shards_.push_back(std::move(shard));
  }
  build(config);
}

void SystemModel::build(const Config& config) {
  if (config.lines.empty()) {
    throw std::invalid_argument("SystemModel: no work lines");
  }
  for (Shard& shard : shards_) {
    shard.network = std::make_unique<cluster::Network>(*shard.sim);
    shard.monitor = std::make_unique<sim::UtilizationMonitor>(
        *shard.sim, config.monitor_period, /*ewma_alpha=*/0.3);
  }
  cluster_ = std::make_unique<cluster::Cluster>(*shards_[0].sim);

  const std::uint64_t seed = config.seed;
  for (std::size_t li = 0; li < config.lines.size(); ++li) {
    Shard& shard = shard_of_line(li);
    Line line;
    line.frontend = std::make_unique<webstack::FrontendRouter>(
        *shard.sim, config.frontend_policy, common::SimTime::micros(300),
        common::mix_seed(seed, li * 3 + 0));
    line.app_router = std::make_unique<webstack::AppTierRouter>(
        *shard.network, config.backend_policy,
        common::mix_seed(seed, li * 3 + 1));
    line.db_router = std::make_unique<webstack::DbTierRouter>(
        *shard.network, config.backend_policy,
        common::mix_seed(seed, li * 3 + 2));
    lines_.push_back(std::move(line));
  }
  for (std::size_t li = 0; li < config.lines.size(); ++li) {
    const LineSpec& spec = config.lines[li];
    if (spec.proxy_nodes < 1 || spec.app_nodes < 1 || spec.db_nodes < 1) {
      throw std::invalid_argument(
          "SystemModel: each line needs >= 1 node per tier");
    }
    for (int i = 0; i < spec.proxy_nodes; ++i) {
      create_node(li, TierKind::kProxy, config);
    }
    for (int i = 0; i < spec.app_nodes; ++i) {
      create_node(li, TierKind::kApp, config);
    }
    for (int i = 0; i < spec.db_nodes; ++i) {
      create_node(li, TierKind::kDb, config);
    }
  }
  // lines_ is final now; the hop histograms live inside the Line structs,
  // so the router pointers are only wired once the vector stops moving.
  for (Line& line : lines_) {
    line.frontend->set_hop_histogram(&line.frontend_latency);
    line.app_router->set_hop_histogram(&line.app_hop_latency);
    line.db_router->set_hop_histogram(&line.db_hop_latency);
  }
  all_nodes_.reserve(nodes_.size());
  for (const NodeState& state : nodes_) all_nodes_.push_back(state.id);
  register_metrics();
  for (Shard& shard : shards_) shard.monitor->start();
}

NodeId SystemModel::create_node(std::size_t line_index, TierKind tier,
                                const Config& config) {
  Shard& shard = shard_of_line(line_index);
  const NodeId id = cluster_->add_node(*shard.sim, config.hardware, tier);
  cluster::Node& node = cluster_->node(id);
  Line& line = lines_[line_index];

  NodeState state;
  state.id = id;
  state.line = line_index;
  nodes_.push_back(std::move(state));
  NodeState& stored = nodes_.back();

  if (config.eager_roles) {
    ensure_proxy(stored);
    ensure_app(stored);
    ensure_db(stored);
  } else {
    switch (tier) {
      case TierKind::kProxy: ensure_proxy(stored); break;
      case TierKind::kApp:   ensure_app(stored); break;
      case TierKind::kDb:    ensure_db(stored); break;
    }
  }

  stored.probe_base = shard.monitor->add_probe(
      node.name() + ".cpu", [&node] { return node.cpu_utilization_probe(); });
  shard.monitor->add_probe(node.name() + ".disk", [&node] {
    return node.disk_utilization_probe();
  });
  shard.monitor->add_probe(node.name() + ".nic", [&node] {
    return node.nic_utilization_probe();
  });
  shard.monitor->add_probe(node.name() + ".mem",
                           [&node] { return node.memory_pressure(); });

  line.nodes.push_back(id);
  register_active(stored);
  return id;
}

webstack::ProxyServer& SystemModel::ensure_proxy(NodeState& state) {
  if (state.proxy == nullptr) {
    Shard& shard = shard_of_line(state.line);
    cluster::Node& node = cluster_->node(state.id);
    webstack::AppTierRouter* app_router = lines_[state.line].app_router.get();
    state.proxy = std::make_unique<webstack::ProxyServer>(
        *shard.sim, node,
        // Mixed hot/cold TU: this builder is construction-time code, but
        // the wiring closure it creates carries every proxy->app hop, so it
        // is seeded instead of whole-file-marking the model builder.
        // AH_LINT_ALLOW(hot_path_reach, "mixed TU: only the closures are hot")
        [app_router](const webstack::Request& request, cluster::Node& from,
                     webstack::ResponseFn done) {
          AH_HOT_ENTRY;  // proxy->app hop: runs once per dynamic request
          app_router->route(request, from, std::move(done));
        },
        webstack::ProxyParams{});
    deactivate_unless_current(state, TierKind::kProxy);
    if (fault_tolerance_enabled_) state.proxy->set_resilience(proxy_resilience_);
    if (admission_enabled_) {
      state.proxy->set_admission(lines_[state.line].admission.get(),
                                 overload_config_.shed_mode);
    }
    if (trace_ != nullptr) state.proxy->set_trace(trace_);
  }
  return *state.proxy;
}

webstack::AppServer& SystemModel::ensure_app(NodeState& state) {
  if (state.app == nullptr) {
    Shard& shard = shard_of_line(state.line);
    cluster::Node& node = cluster_->node(state.id);
    webstack::DbTierRouter* db_router = lines_[state.line].db_router.get();
    state.app = std::make_unique<webstack::AppServer>(
        *shard.sim, node,
        [db_router](const webstack::DbQuery& query, cluster::Node& from,
                    webstack::DbResultFn done) {
          AH_HOT_ENTRY;  // app->db hop: runs once per backend query
          db_router->route(query, from, std::move(done));
        },
        webstack::AppParams{});
    deactivate_unless_current(state, TierKind::kApp);
    if (trace_ != nullptr) state.app->set_trace(trace_);
  }
  return *state.app;
}

webstack::DbServer& SystemModel::ensure_db(NodeState& state) {
  if (state.db == nullptr) {
    Shard& shard = shard_of_line(state.line);
    cluster::Node& node = cluster_->node(state.id);
    state.db = std::make_unique<webstack::DbServer>(
        *shard.sim, node, webstack::DbParams{},
        common::mix_seed(config_.seed, 0x0db + state.id));
    deactivate_unless_current(state, TierKind::kDb);
    if (trace_ != nullptr) state.db->set_trace(trace_);
  }
  return *state.db;
}

void SystemModel::deactivate_unless_current(NodeState& state, TierKind role) {
  if (cluster_->tier_of(state.id) == role) return;
  switch (role) {
    case TierKind::kProxy: state.proxy->set_active(false); break;
    case TierKind::kApp:   state.app->set_active(false); break;
    case TierKind::kDb:    state.db->set_active(false); break;
  }
}

void SystemModel::register_active(NodeState& state) {
  Line& line = lines_[state.line];
  switch (cluster_->tier_of(state.id)) {
    case TierKind::kProxy: line.frontend->add_backend(state.proxy.get()); break;
    case TierKind::kApp:   line.app_router->add_backend(state.app.get()); break;
    case TierKind::kDb:    line.db_router->add_backend(state.db.get()); break;
  }
}

void SystemModel::deregister_active(NodeState& state, TierKind role) {
  Line& line = lines_[state.line];
  switch (role) {
    case TierKind::kProxy: line.frontend->remove_backend(state.proxy.get()); break;
    case TierKind::kApp:   line.app_router->remove_backend(state.app.get()); break;
    case TierKind::kDb:    line.db_router->remove_backend(state.db.get()); break;
  }
}

webstack::FrontendRouter& SystemModel::frontend(std::size_t line) {
  return *lines_.at(line).frontend;
}

sim::Simulator& SystemModel::simulator() {
  if (sharded_) {
    throw std::logic_error(
        "SystemModel: a sharded model has no single timeline; use "
        "line_simulator()/run_all_until()");
  }
  return *shards_[0].sim;
}

sim::Simulator& SystemModel::line_simulator(std::size_t line) {
  if (line >= lines_.size()) {
    throw std::out_of_range("SystemModel::line_simulator: bad line");
  }
  return *shard_of_line(line).sim;
}

common::SimTime SystemModel::now() const {
  // All shard clocks agree at run_all_until() barriers; line 0 stands in.
  return shards_[0].sim->now();
}

void SystemModel::run_all_until(common::SimTime until) {
  if (!sharded_) {
    shards_[0].sim->run_until(until);
    return;
  }
  if (pool_ != nullptr && shards_.size() > 1 && pool_->size() > 1) {
    // Each line's timeline is sequential within its task; which thread
    // runs which line never affects any line's event order, so the merge
    // below the barrier sees bit-identical state at any pool size.
    pool_->parallel_for(shards_.size(), [this, until](std::size_t s) {
      shards_[s].sim->run_until(until);
    });
  } else {
    for (Shard& shard : shards_) shard.sim->run_until(until);
  }
}

std::shared_ptr<const tpcw::ZipfSampler> SystemModel::shared_popularity()
    const {
  return config_.shared != nullptr ? config_.shared->popularity_ptr()
                                   : nullptr;
}

cluster::HealthChecker* SystemModel::line_health_checker(std::size_t line) {
  if (line >= lines_.size()) {
    throw std::out_of_range("SystemModel::line_health_checker: bad line");
  }
  return shard_of_line(line).health.get();
}

cluster::Network& SystemModel::line_network(std::size_t line) {
  if (line >= lines_.size()) {
    throw std::out_of_range("SystemModel::line_network: bad line");
  }
  return *shard_of_line(line).network;
}

const std::vector<NodeId>& SystemModel::line_nodes(std::size_t line) const {
  return lines_.at(line).nodes;
}

std::size_t SystemModel::line_of(NodeId id) const {
  return nodes_.at(id).line;
}

void SystemModel::apply_values_to_node(NodeId id,
                                       std::span<const std::int64_t> values) {
  NodeState& state = nodes_.at(id);
  switch (cluster_->tier_of(id)) {
    case TierKind::kProxy:
      ensure_proxy(state).reconfigure(webstack::proxy_from_values(values));
      break;
    case TierKind::kApp:
      ensure_app(state).reconfigure(webstack::app_from_values(values));
      break;
    case TierKind::kDb:
      ensure_db(state).reconfigure(webstack::db_from_values(values));
      break;
  }
}

void SystemModel::apply_values_all(std::span<const std::int64_t> values) {
  for (const auto& state : nodes_) apply_values_to_node(state.id, values);
}

void SystemModel::apply_values_line(std::size_t line,
                                    std::span<const std::int64_t> values) {
  for (const NodeId id : lines_.at(line).nodes) {
    apply_values_to_node(id, values);
  }
}

webstack::ProxyServer& SystemModel::proxy_on(NodeId id) {
  return ensure_proxy(nodes_.at(id));
}

webstack::AppServer& SystemModel::app_on(NodeId id) {
  return ensure_app(nodes_.at(id));
}

webstack::DbServer& SystemModel::db_on(NodeId id) {
  return ensure_db(nodes_.at(id));
}

int SystemModel::active_load(NodeId id) {
  NodeState& state = nodes_.at(id);
  switch (cluster_->tier_of(id)) {
    case TierKind::kProxy: return state.proxy != nullptr ? state.proxy->load() : 0;
    case TierKind::kApp:   return state.app != nullptr ? state.app->load() : 0;
    case TierKind::kDb:    return state.db != nullptr ? state.db->load() : 0;
  }
  return 0;
}

void SystemModel::move_node(NodeId id, TierKind to, bool immediate,
                            common::SimTime config_cost) {
  if (sharded_) {
    throw std::logic_error(
        "SystemModel: move_node needs the single-timeline mode (tier "
        "membership is cross-line state)");
  }
  NodeState& state = nodes_.at(id);
  if (state.moving) {
    throw std::logic_error("SystemModel: node already being moved");
  }
  const TierKind from = cluster_->tier_of(id);
  if (from == to) return;
  if (cluster_->tier(from).size() <= 1) {
    throw std::logic_error("SystemModel: source tier would become empty");
  }
  state.moving = true;
  deregister_active(state, from);  // stop new traffic right away

  common::log_info("reconfig", "node{} {} -> {} ({})", id,
                   cluster::tier_name(from), cluster::tier_name(to),
                   immediate ? "immediate" : "drain");

  if (immediate) {
    // Existing jobs are migrated to same-tier neighbours (cost M_km was
    // already accounted in the decision); the switch starts now.
    finish_move(id, to, config_cost);
  } else {
    // Wait for in-flight jobs to finish, polling the active server.
    auto poll = std::make_shared<std::function<void()>>();
    *poll = [this, id, to, config_cost, poll] {
      if (active_load(id) > 0) {
        shards_[0].sim->schedule(kDrainPoll, *poll);
      } else {
        finish_move(id, to, config_cost);
      }
    };
    shards_[0].sim->schedule(kDrainPoll, *poll);
  }
}

void SystemModel::finish_move(NodeId id, TierKind to,
                              common::SimTime config_cost) {
  shards_[0].sim->schedule(config_cost, [this, id, to] {
    NodeState& state = nodes_.at(id);
    // The target role is created (inactive) before membership changes, so
    // its activation below charges the same restart burst the eager layout
    // would have.
    switch (to) {
      case TierKind::kProxy: ensure_proxy(state); break;
      case TierKind::kApp:   ensure_app(state); break;
      case TierKind::kDb:    ensure_db(state); break;
    }
    const TierKind from = cluster_->tier_of(id);
    switch (from) {
      case TierKind::kProxy: state.proxy->set_active(false); break;
      case TierKind::kApp:   state.app->set_active(false); break;
      case TierKind::kDb:    state.db->set_active(false); break;
    }
    cluster_->move_node(id, to);
    switch (to) {
      case TierKind::kProxy: state.proxy->set_active(true); break;
      case TierKind::kApp:   state.app->set_active(true); break;
      case TierKind::kDb:    state.db->set_active(true); break;
    }
    register_active(state);
    state.moving = false;
  });
}

bool SystemModel::move_in_progress(NodeId id) const {
  return nodes_.at(id).moving;
}

webstack::ProxyServer::Resilience
SystemModel::FaultToleranceConfig::default_proxy_resilience() {
  webstack::ProxyServer::Resilience resilience;
  // Two quick exponential re-forwards with deterministic jitter, then fall
  // back to stale cache copies: bounded work per failed request, no
  // synchronized retry storm against a recovering tier.
  resilience.retry.base = common::SimTime::millis(500);
  resilience.retry.growth = 2.0;
  resilience.retry.cap = common::SimTime::seconds(5.0);
  resilience.retry.jitter = 0.2;
  resilience.retry.max_retries = 2;
  resilience.serve_stale = true;
  return resilience;
}

void SystemModel::enable_fault_tolerance(const FaultToleranceConfig& config) {
  if (!fault_tolerance_enabled_) {
    fault_tolerance_enabled_ = true;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = shards_[s];
      shard.health = std::make_unique<cluster::HealthChecker>(
          *shard.sim, *cluster_, config.health);
      // A sharded checker probes only its line's nodes: health state stays
      // line-local, and the per-line sums below keep the metric totals.
      if (sharded_) shard.health->set_scope(lines_[s].nodes);
      shard.health->set_transition_observer([this](NodeId id, bool up) {
        disturbances_.fetch_add(1, std::memory_order_relaxed);
        common::log_info("health", "node{} marked {}", id, up ? "up" : "down");
        if (health_hook_) health_hook_(id, up);
      });
      shard.health->start();
    }
    // First enable: the health counters join the registry (PR-5 migration).
    metrics_.add_counter("health.probes_sent", [this] {
      std::uint64_t total = 0;
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) total += shard.health->probes_sent();
      }
      return total;
    });
    metrics_.add_counter("health.transitions", [this] {
      std::uint64_t total = 0;
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) total += shard.health->transitions();
      }
      return total;
    });
    // Probe-budget and mark-down visibility: how much of the probe budget
    // is being burnt (failed_probes), how often it is exhausted into a
    // mark flip (mark_downs/mark_ups), and the durations those flips cost
    // (downtime_us aggregate + nodes_down level).
    metrics_.add_counter("health.failed_probes", [this] {
      std::uint64_t total = 0;
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) total += shard.health->failed_probes();
      }
      return total;
    });
    metrics_.add_counter("health.mark_downs", [this] {
      std::uint64_t total = 0;
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) total += shard.health->mark_downs();
      }
      return total;
    });
    metrics_.add_counter("health.mark_ups", [this] {
      std::uint64_t total = 0;
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) total += shard.health->mark_ups();
      }
      return total;
    });
    metrics_.add_counter("health.downtime_us", [this] {
      common::SimTime total = common::SimTime::zero();
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) {
          total = total + shard.health->total_downtime();
        }
      }
      return static_cast<std::uint64_t>(total.as_micros());
    });
    metrics_.add_gauge("health.nodes_down", [this] {
      int total = 0;
      for (const Shard& shard : shards_) {
        if (shard.health != nullptr) total += shard.health->nodes_down();
      }
      return static_cast<double>(total);
    });
  }
  for (Line& line : lines_) {
    line.frontend->set_hop_timeout(config.hop_timeout);
    line.app_router->set_hop_timeout(config.hop_timeout);
    line.db_router->set_hop_timeout(config.hop_timeout);
  }
  proxy_resilience_ = config.proxy;
  for (NodeState& state : nodes_) {
    if (state.proxy != nullptr) state.proxy->set_resilience(config.proxy);
  }
}

void SystemModel::enable_admission_control(const OverloadControlConfig& config) {
  overload_config_ = config;
  if (!admission_enabled_) {
    admission_enabled_ = true;
    for (std::size_t l = 0; l < lines_.size(); ++l) {
      Line& line = lines_[l];
      line.admission = std::make_unique<ctrl::AdmissionController>(
          *shard_of_line(l).sim, config.admission);
      // Controller actuations taint measurement windows like faults do —
      // a window that straddles an admit-fraction change is not a clean
      // read of the configuration under test.
      line.admission->set_change_observer(
          [this](double) { note_disturbance(); });
      line.admission->start();
    }
    // First enable: the ctrl counters join the registry.  Sums are in line
    // order, so snapshots stay byte-identical at any thread count.
    metrics_.add_counter("ctrl.admitted", [this] {
      std::uint64_t total = 0;
      for (const Line& line : lines_) {
        if (line.admission != nullptr) total += line.admission->admitted();
      }
      return total;
    });
    metrics_.add_counter("ctrl.shed", [this] {
      std::uint64_t total = 0;
      for (const Line& line : lines_) {
        if (line.admission != nullptr) total += line.admission->shed();
      }
      return total;
    });
    metrics_.add_counter("ctrl.ticks", [this] {
      std::uint64_t total = 0;
      for (const Line& line : lines_) {
        if (line.admission != nullptr) total += line.admission->ticks();
      }
      return total;
    });
    metrics_.add_counter("ctrl.adjustments", [this] {
      std::uint64_t total = 0;
      for (const Line& line : lines_) {
        if (line.admission != nullptr) total += line.admission->adjustments();
      }
      return total;
    });
    for (std::size_t l = 0; l < lines_.size(); ++l) {
      ctrl::AdmissionController* controller = lines_[l].admission.get();
      metrics_.add_gauge(
          "line" + std::to_string(l) + ".admit_fraction",
          [controller] { return controller->admit_fraction(); });
    }
  } else {
    for (Line& line : lines_) {
      if (line.admission != nullptr) {
        line.admission->set_config(config.admission);
      }
    }
  }
  for (NodeState& state : nodes_) {
    if (state.proxy != nullptr) {
      state.proxy->set_admission(lines_[state.line].admission.get(),
                                 config.shed_mode);
    }
  }
}

void SystemModel::install_scenario(const sim::ScenarioPlan& plan) {
  scenario_ = std::make_unique<sim::ScenarioPlan>(plan);
  install_fault_plan(scenario_->faults);
}

void SystemModel::install_fault_plan(const sim::FaultPlan& plan) {
  for (Shard& shard : shards_) {
    if (shard.injector == nullptr) {
      shard.injector = std::make_unique<sim::FaultInjector>(*shard.sim);
    }
  }
  if (!sharded_) {
    shards_[0].injector->arm(plan, [this](const sim::FaultEvent& event) {
      apply_fault(0, event);
    });
    return;
  }
  // Partition by the subject node's line so every event fires on the
  // timeline whose state it touches.  Every injector is re-armed (possibly
  // with an empty slice) so a re-install clears stale events everywhere.
  std::vector<sim::FaultPlan> per_line(shards_.size());
  for (const sim::FaultEvent& event : plan.events) {
    const bool is_link = event.kind == sim::FaultEvent::Kind::kLinkDegrade ||
                         event.kind == sim::FaultEvent::Kind::kLinkRestore;
    if (is_link && event.node == sim::kFaultAnyNode &&
        event.peer == sim::kFaultAnyNode) {
      for (sim::FaultPlan& slice : per_line) slice.events.push_back(event);
      continue;
    }
    std::uint32_t subject = event.node;
    if (is_link && subject == sim::kFaultAnyNode) subject = event.peer;
    per_line[line_of(subject)].events.push_back(event);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].injector->arm(
        per_line[s],
        [this, s](const sim::FaultEvent& event) { apply_fault(s, event); });
  }
}

void SystemModel::apply_fault(std::size_t shard, const sim::FaultEvent& event) {
  switch (event.kind) {
    case sim::FaultEvent::Kind::kCrash:
      crash_node(event.node);
      break;
    case sim::FaultEvent::Kind::kRestart:
      restart_node(event.node);
      break;
    case sim::FaultEvent::Kind::kSlowStart:
      set_node_fail_slow(event.node, event.magnitude);
      break;
    case sim::FaultEvent::Kind::kSlowEnd:
      set_node_fail_slow(event.node, 1.0);
      break;
    case sim::FaultEvent::Kind::kLinkDegrade:
      // sim::kFaultAnyNode and cluster::kAnyNode are both ~0u, so ids pass
      // through unchanged.
      disturbances_.fetch_add(1, std::memory_order_relaxed);
      shards_[shard].network->set_link_fault(event.node, event.peer,
                                             event.magnitude, event.delay);
      break;
    case sim::FaultEvent::Kind::kLinkRestore:
      disturbances_.fetch_add(1, std::memory_order_relaxed);
      shards_[shard].network->clear_link_fault(event.node, event.peer);
      break;
  }
}

void SystemModel::set_role_active(NodeState& state, bool active) {
  switch (cluster_->tier_of(state.id)) {
    case TierKind::kProxy: state.proxy->set_active(active); break;
    case TierKind::kApp:   state.app->set_active(active); break;
    case TierKind::kDb:    state.db->set_active(active); break;
  }
}

void SystemModel::crash_node(NodeId id) {
  NodeState& state = nodes_.at(id);
  cluster::Node& node = cluster_->node(id);
  if (!node.alive()) return;
  disturbances_.fetch_add(1, std::memory_order_relaxed);
  node.set_alive(false);
  common::log_info("fault", "node{} crash", id);
  // New requests fail fast at the dead server until the health checker
  // reroutes them; a node mid-move has no registered role to deactivate.
  if (!state.moving) set_role_active(state, false);
  // Drop queued (not yet in-service) work through the existing rejection
  // paths.  Continuations die uninvoked; router generation stamps and hop
  // timeouts are what keep upstream callers from hanging.  In-service
  // hardware jobs finish — a crash cannot un-burn CPU already modelled.
  // Roles the node never played have no pools to clear.
  node.cpu().clear_queue();
  node.disk().clear_queue();
  node.nic().clear_queue();
  if (state.app != nullptr) {
    state.app->http_pool().clear_waiters();
    state.app->ajp_pool().clear_waiters();
  }
  if (state.db != nullptr) {
    state.db->connections().clear_waiters();
    state.db->executors().clear_waiters();
  }
}

void SystemModel::restart_node(NodeId id) {
  NodeState& state = nodes_.at(id);
  cluster::Node& node = cluster_->node(id);
  if (node.alive()) return;
  disturbances_.fetch_add(1, std::memory_order_relaxed);
  node.set_alive(true);
  node.set_fault_slowdown(1.0);
  common::log_info("fault", "node{} restart", id);
  // Reactivation charges the role's restart burst (cold caches, config
  // parse) — recovery is visible in the WIPS series, as on the testbed.
  if (!state.moving) set_role_active(state, true);
}

void SystemModel::set_node_fail_slow(NodeId id, double factor) {
  cluster::Node& node = cluster_->node(id);
  disturbances_.fetch_add(1, std::memory_order_relaxed);
  node.set_fault_slowdown(factor);
  common::log_info("fault", "node{} fail-slow x{}", id, factor);
}

void SystemModel::set_trace_recorder(obs::TraceRecorder* trace) {
  if (sharded_ && trace != nullptr) {
    throw std::logic_error(
        "SystemModel: trace recording shares one mutable ring; use the "
        "single-timeline mode");
  }
  trace_ = trace;
  for (NodeState& state : nodes_) {
    if (state.proxy != nullptr) state.proxy->set_trace(trace);
    if (state.app != nullptr) state.app->set_trace(trace);
    if (state.db != nullptr) state.db->set_trace(trace);
  }
}

void SystemModel::register_metrics() {
  // Network fabric (absorbs the PR-6 NIC batching counters).  Sums run in
  // shard (= line) order, so every aggregate is deterministic.
  metrics_.add_counter("network.messages_sent", [this] {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.network->messages_sent();
    return total;
  });
  metrics_.add_counter("network.messages_dropped", [this] {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.network->messages_dropped();
    }
    return total;
  });
  metrics_.add_counter("network.bytes_sent", [this] {
    common::Bytes bytes = 0;
    for (const Shard& shard : shards_) bytes += shard.network->bytes_sent();
    return bytes > 0 ? static_cast<std::uint64_t>(bytes) : 0u;
  });
  metrics_.add_counter("network.batches_coalesced", [this] {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.network->batches_coalesced();
    }
    return total;
  });
  metrics_.add_counter("network.messages_batched", [this] {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.network->messages_batched();
    }
    return total;
  });

  // Event scheduler: executed work plus the calendar queue's lazy-cancel
  // debt (stored - live slots awaiting reclamation), over all timelines.
  metrics_.add_counter("scheduler.events_executed", [this] {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.sim->events_executed();
    return total;
  });
  metrics_.add_counter("scheduler.pending_events", [this] {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.sim->pending_events();
    return static_cast<std::uint64_t>(total);
  });
  metrics_.add_counter("scheduler.stored_events", [this] {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.sim->stored_events();
    return static_cast<std::uint64_t>(total);
  });

  // Router degradation counters, aggregated over lines (PR-5).
  metrics_.add_counter("routers.timeouts", [this] {
    std::uint64_t total = 0;
    for (const Line& line : lines_) {
      total += line.frontend->stats().timeouts +
               line.app_router->stats().timeouts +
               line.db_router->stats().timeouts;
    }
    return total;
  });
  metrics_.add_counter("routers.fast_fails", [this] {
    std::uint64_t total = 0;
    for (const Line& line : lines_) {
      total += line.frontend->stats().fast_fails +
               line.app_router->stats().fast_fails +
               line.db_router->stats().fast_fails;
    }
    return total;
  });

  // Server stats, aggregated over nodes.  Helper sums one Stats field;
  // never-created roles contribute zero, exactly like eager idle ones.
  const auto proxy_sum =
      [this](std::uint64_t webstack::ProxyServer::Stats::*field) {
        std::uint64_t total = 0;
        for (const NodeState& state : nodes_) {
          if (state.proxy != nullptr) total += state.proxy->stats().*field;
        }
        return total;
      };
  using ProxyStats = webstack::ProxyServer::Stats;
  metrics_.add_counter("proxy.served",
                       [proxy_sum] { return proxy_sum(&ProxyStats::served); });
  metrics_.add_counter("proxy.mem_hits", [proxy_sum] {
    return proxy_sum(&ProxyStats::mem_hits);
  });
  metrics_.add_counter("proxy.disk_hits", [proxy_sum] {
    return proxy_sum(&ProxyStats::disk_hits);
  });
  metrics_.add_counter("proxy.misses_forwarded", [proxy_sum] {
    return proxy_sum(&ProxyStats::misses_forwarded);
  });
  metrics_.add_counter("proxy.errors",
                       [proxy_sum] { return proxy_sum(&ProxyStats::errors); });
  metrics_.add_counter("proxy.upstream_retries", [proxy_sum] {
    return proxy_sum(&ProxyStats::upstream_retries);
  });
  metrics_.add_counter("proxy.stale_served", [proxy_sum] {
    return proxy_sum(&ProxyStats::stale_served);
  });
  metrics_.add_counter("proxy.shed",
                       [proxy_sum] { return proxy_sum(&ProxyStats::shed); });
  metrics_.add_counter("proxy.shed_stale", [proxy_sum] {
    return proxy_sum(&ProxyStats::shed_stale);
  });

  const auto app_sum =
      [this](std::uint64_t webstack::AppServer::Stats::*field) {
        std::uint64_t total = 0;
        for (const NodeState& state : nodes_) {
          if (state.app != nullptr) total += state.app->stats().*field;
        }
        return total;
      };
  using AppStats = webstack::AppServer::Stats;
  metrics_.add_counter("app.served",
                       [app_sum] { return app_sum(&AppStats::served); });
  metrics_.add_counter("app.rejected_http", [app_sum] {
    return app_sum(&AppStats::rejected_http);
  });
  metrics_.add_counter("app.rejected_ajp", [app_sum] {
    return app_sum(&AppStats::rejected_ajp);
  });
  metrics_.add_counter("app.db_queries",
                       [app_sum] { return app_sum(&AppStats::db_queries); });
  metrics_.add_counter("app.threads_spawned", [app_sum] {
    return app_sum(&AppStats::threads_spawned);
  });
  metrics_.add_counter("app.refused",
                       [app_sum] { return app_sum(&AppStats::refused); });

  const auto db_sum = [this](std::uint64_t webstack::DbServer::Stats::*field) {
    std::uint64_t total = 0;
    for (const NodeState& state : nodes_) {
      if (state.db != nullptr) total += state.db->stats().*field;
    }
    return total;
  };
  using DbStats = webstack::DbServer::Stats;
  metrics_.add_counter("db.queries",
                       [db_sum] { return db_sum(&DbStats::queries); });
  metrics_.add_counter("db.table_cache_misses", [db_sum] {
    return db_sum(&DbStats::table_cache_misses);
  });
  metrics_.add_counter("db.binlog_flushes", [db_sum] {
    return db_sum(&DbStats::binlog_flushes);
  });
  metrics_.add_counter("db.delayed_batches", [db_sum] {
    return db_sum(&DbStats::delayed_batches);
  });

  // Pool occupancy (gauges over int accessors — instantaneous values).
  metrics_.add_gauge("pools.app_http.in_use", [this] {
    int total = 0;
    for (const NodeState& state : nodes_) {
      if (state.app != nullptr) total += state.app->http_pool().in_use();
    }
    return static_cast<double>(total);
  });
  metrics_.add_gauge("pools.app_ajp.in_use", [this] {
    int total = 0;
    for (const NodeState& state : nodes_) {
      if (state.app != nullptr) total += state.app->ajp_pool().in_use();
    }
    return static_cast<double>(total);
  });
  metrics_.add_gauge("pools.db_connections.in_use", [this] {
    int total = 0;
    for (const NodeState& state : nodes_) {
      if (state.db != nullptr) total += state.db->connections().in_use();
    }
    return static_cast<double>(total);
  });
  metrics_.add_gauge("pools.db_executors.in_use", [this] {
    int total = 0;
    for (const NodeState& state : nodes_) {
      if (state.db != nullptr) total += state.db->executors().in_use();
    }
    return static_cast<double>(total);
  });

  // Utilization monitor: sample count plus every probe's EWMA.  Shards in
  // line order, probes in node-creation order — the legacy single shard
  // yields exactly the historical sequence.
  metrics_.add_counter("monitor.samples_taken", [this] {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.monitor->samples_taken();
    return total;
  });
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t i = 0; i < shards_[s].monitor->probe_count(); ++i) {
      metrics_.add_gauge("util." + shards_[s].monitor->probe_name(i),
                         [this, s, i] {
                           return shards_[s].monitor->smoothed(i);
                         });
    }
  }

  metrics_.add_counter("faults.disturbances", [this] {
    return disturbances_.load(std::memory_order_relaxed);
  });

  // Per-line latency distributions.
  for (std::size_t li = 0; li < lines_.size(); ++li) {
    const std::string prefix = "line" + std::to_string(li);
    metrics_.add_histogram(prefix + ".frontend_latency",
                           &lines_[li].frontend_latency);
    metrics_.add_histogram(prefix + ".app_hop_latency",
                           &lines_[li].app_hop_latency);
    metrics_.add_histogram(prefix + ".db_hop_latency",
                           &lines_[li].db_hop_latency);
  }
}

std::vector<harmony::NodeReading> SystemModel::readings() {
  std::vector<harmony::NodeReading> out;
  out.reserve(nodes_.size());
  for (auto& state : nodes_) {
    if (state.moving) continue;  // mid-move nodes are neither donors nor hot
    const cluster::Node& node = cluster_->node(state.id);
    // Dead or marked-down nodes carry no usable load signal and must not
    // be chosen as reconfiguration donors; the controller sees the tier's
    // capacity shrink instead (Tier::healthy_count).
    if (!node.alive() || !node.marked_up()) continue;
    const TierKind tier = cluster_->tier_of(state.id);
    const sim::UtilizationMonitor& monitor = *shard_of_line(state.line).monitor;
    harmony::NodeReading reading;
    reading.node_id = state.id;
    reading.tier = static_cast<int>(tier);
    reading.utilization = {
        monitor.smoothed(state.probe_base + kCpu),
        monitor.smoothed(state.probe_base + kDisk),
        monitor.smoothed(state.probe_base + kNic),
        monitor.smoothed(state.probe_base + kMemory),
    };
    reading.jobs = static_cast<double>(active_load(state.id));
    reading.avg_process_seconds = avg_process_seconds(tier);
    reading.move_cost_seconds = move_cost_seconds(tier);
    out.push_back(std::move(reading));
  }
  return out;
}

harmony::ReconfigOptions SystemModel::default_reconfig_options() {
  harmony::ReconfigOptions options;
  options.resources = {
      // cpu: highest urgency weight (paper footnote 3)
      harmony::ResourcePolicy{0.85, 0.30, 4.0},
      // disk
      harmony::ResourcePolicy{0.85, 0.35, 2.0},
      // nic
      harmony::ResourcePolicy{0.85, 0.35, 1.0},
      // memory pressure: loose low bound — every live server holds memory
      harmony::ResourcePolicy{0.97, 0.90, 3.0},
  };
  options.config_cost_seconds = 8.0;
  return options;
}

}  // namespace ah::core
