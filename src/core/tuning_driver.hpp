// TuningDriver: the four cluster-tuning methods of the paper on top of a
// SystemModel + Experiment.
//
//   kNone         no tuning; the default configuration throughout
//                 (Table 4 "None" row)
//   kDefault      one Harmony session over EVERY parameter of EVERY node:
//                 a node contributes its tier's catalogue slice, so the
//                 space has 7·P + 7·A + 9·D dimensions and one global WIPS
//                 figure per iteration (Table 4 "Default method")
//   kDuplication  one 23-dimension session; each tier's representative
//                 values are duplicated onto all nodes of that tier
//                 (Table 4 "Parameter duplication")
//   kPartitioning one 23-dimension session PER WORK LINE, each fed by its
//                 own line-local WIPS — several performance readings per
//                 iteration, and a change in one line cannot perturb the
//                 others' measurements (Table 4 "Parameter partitioning")
//
// The driver records the WIPS series, the best configuration, and the
// convergence iteration for Table 4.
//
// Candidate evaluation runs in one of two modes, selected by
// Options::threads:
//
//   threads == 1  legacy sequential (default): every candidate is measured
//                 back-to-back on the ONE live system — the paper's exact
//                 protocol, state carry-over included.
//   threads != 1  parallel: batches from the tuner's batch protocol
//                 (get_pending / report_performance_batch) are evaluated on
//                 a core::ParallelEvaluator replica set; `threads` sizes
//                 the worker pool (0 = hardware concurrency).  Results are
//                 bit-identical across all thread counts >= 2 because the
//                 replica count — not the thread count — fixes which
//                 timeline measures which candidate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "harmony/server.hpp"
#include "webstack/params.hpp"

namespace ah::core {

enum class TuningMethod { kNone, kDefault, kDuplication, kPartitioning };

[[nodiscard]] std::string_view tuning_method_name(TuningMethod method);

/// Applies a candidate vector in `method` layout to a system:
/// kNone/kDuplication take one 23-value catalogue vector for every node,
/// kDefault takes concatenated per-node tier slices (nodes in
/// `system.all_nodes()` creation order), kPartitioning takes per-line
/// 23-value vectors concatenated in line order.  Throws
/// std::invalid_argument on a layout mismatch.  Thread-safe across
/// *different* SystemModel instances (used by the replica evaluator).
void apply_method_values(SystemModel& system, TuningMethod method,
                         std::span<const std::int64_t> values);

struct TuningResult {
  /// Measured WIPS per iteration (whole system).
  std::vector<double> wips_series;
  /// WIPS of the best configuration as re-measured during the validation
  /// pass (see TuningDriver::run), not the raw in-run observation.
  double validated_wips = 0.0;
  /// Per-iteration applied configurations are implicit in the sessions'
  /// histories; the best is resolved here:
  /// for kDuplication/kNone: one 23-value vector;
  /// for kDefault: concatenated per-node slices;
  /// for kPartitioning: per-line 23-value vectors concatenated.
  harmony::PointI best_configuration;
  double best_wips = 0.0;
  /// First iteration after which no significant improvement occurred
  /// (Table 4 "Iterations"); nullopt when never converged.
  std::optional<std::size_t> converged_at;
  /// Measurement windows thrown away (and re-measured once) because a
  /// fault event or health transition overlapped them — the tuner must not
  /// mistake a crash-induced WIPS dip for a bad candidate configuration.
  std::uint64_t discarded_windows = 0;

  /// Mean/stddev of WIPS over iterations [from, to).
  [[nodiscard]] double mean_wips(std::size_t from, std::size_t to) const;
  [[nodiscard]] double stddev_wips(std::size_t from, std::size_t to) const;
};

class TuningDriver {
 public:
  struct Options {
    TuningMethod method = TuningMethod::kDuplication;
    harmony::SessionOptions session{};
    /// Evaluation workers: 1 = legacy sequential on the live system (the
    /// paper's measurement semantics; the default), 0 = one worker per
    /// hardware thread, N >= 2 = N workers.  Any value != 1 switches to
    /// replica-set evaluation (see header comment) — unless the system is
    /// sharded (one timeline per work line), in which case the sequential
    /// protocol is kept and the workers instead advance the work-line
    /// timelines concurrently inside each measurement window.
    std::size_t threads = 1;
    /// Replica timelines for parallel evaluation; 0 = auto
    /// (min(dimensions + 1, 16), i.e. enough for a full initial simplex).
    /// Deliberately independent of `threads` so the tuning trajectory
    /// never depends on how many workers happened to be available.
    std::size_t replicas = 0;
  };

  TuningDriver(SystemModel& system, Experiment& experiment, Options options);

  /// Runs `iterations` tuning iterations, then validates the top
  /// candidate configurations with `validation_iterations` extra
  /// measured iterations each (a single noisy observation can be inflated
  /// by backlog-drain bursts after a bad configuration; validation
  /// re-measures candidates back-to-back under identical conditions).
  /// Pass 0 to skip validation.  Returns the recorded result with
  /// best_configuration/best_wips resolved from the validation pass.
  TuningResult run(std::size_t iterations,
                   std::size_t validation_iterations = 2);

  /// Applies a best-configuration vector (in the layout `run` produced for
  /// this method) to the system — used to re-measure tuned configurations,
  /// e.g. for the Fig 4 cross-workload study.
  void apply_configuration(const harmony::PointI& configuration);

  /// Rebuilds the Harmony sessions so the search starts from `seed`
  /// (same layout as apply_configuration) instead of the catalogue
  /// defaults — the prediction/warm-start path driven by
  /// harmony::ConfigurationMemory when a known workload returns.
  void restart_sessions(const harmony::PointI& seed);

  [[nodiscard]] harmony::HarmonyServer& server() { return server_; }
  [[nodiscard]] TuningMethod method() const { return options_.method; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  /// Builds the Harmony sessions for the chosen method.  When `seed` is
  /// non-null its values become the sessions' starting configuration.
  void build_sessions(const harmony::PointI* seed = nullptr);
  /// Applies every session's currently-asked configuration to the system.
  void apply_pending();
  /// Reports measured performance to every session.
  void report(const IterationResult& result);
  /// Concatenation of each session's best configuration.
  [[nodiscard]] harmony::PointI concatenated_best() const;

  /// Legacy protocol: one candidate at a time on the live system.
  void explore_sequential(TuningResult& result, std::size_t iterations);
  /// Batch protocol on a ParallelEvaluator replica set.
  void explore_parallel(TuningResult& result, std::size_t iterations);
  /// Replica count for a session of `dimensions` parameters.
  [[nodiscard]] std::size_t replica_count_for(std::size_t dimensions) const;
  /// Convergence bookkeeping + validation pass (shared by both modes).
  void finalize(TuningResult& result, std::size_t validation_iterations);

  SystemModel& system_;
  Experiment& experiment_;
  Options options_;
  harmony::HarmonyServer server_;
  std::vector<harmony::SessionId> sessions_;
};

}  // namespace ah::core
