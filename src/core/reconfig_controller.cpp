#include "core/reconfig_controller.hpp"

namespace ah::core {

ReconfigController::ReconfigController(SystemModel& system,
                                       harmony::ReconfigOptions options)
    : system_(system), reconfigurer_(std::move(options)) {}

std::optional<harmony::ReconfigDecision> ReconfigController::check() {
  const auto readings = system_.readings();
  const auto decision = reconfigurer_.decide(readings);
  if (!decision.has_value()) return std::nullopt;

  // Crashed/marked-down nodes are excluded from readings() but still count
  // toward Tier::size(), so move_node's >=1-member check alone would let a
  // move drain the last *healthy* node out of the donor tier.
  const auto donor_tier = system_.cluster().tier_of(decision->donor_node);
  if (system_.cluster().tier(donor_tier).healthy_count() <= 1) {
    return std::nullopt;
  }

  system_.move_node(
      decision->donor_node,
      static_cast<cluster::TierKind>(decision->to_tier), decision->immediate,
      common::SimTime::seconds(
          reconfigurer_.options().config_cost_seconds));
  moves_.push_back(*decision);
  return decision;
}

}  // namespace ah::core
