#include "core/reconfig_controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace ah::core {

namespace {

/// Bottleneck pressure of one reading: its hottest resource.
double peak_utilization(const harmony::NodeReading& reading) {
  double peak = 0.0;
  for (const double u : reading.utilization) peak = std::max(peak, u);
  return peak;
}

}  // namespace

ReconfigController::ReconfigController(SystemModel& system,
                                       harmony::ReconfigOptions options)
    : system_(system), reconfigurer_(std::move(options)) {}

std::optional<harmony::ReconfigDecision> ReconfigController::check() {
  const auto readings = system_.readings();
  const auto decision = reconfigurer_.decide(readings);
  if (!decision.has_value()) return std::nullopt;

  // Crashed/marked-down nodes are excluded from readings() but still count
  // toward Tier::size(), so move_node's >=1-member check alone would let a
  // move drain the last *healthy* node out of the donor tier.
  const auto donor_tier = system_.cluster().tier_of(decision->donor_node);
  if (system_.cluster().tier(donor_tier).healthy_count() <= 1) {
    return std::nullopt;
  }

  system_.move_node(
      decision->donor_node,
      static_cast<cluster::TierKind>(decision->to_tier), decision->immediate,
      common::SimTime::seconds(
          reconfigurer_.options().config_cost_seconds));
  moves_.push_back(*decision);
  return decision;
}

void ReconfigController::enable_reactive(const ReactiveOptions& options) {
  if (system_.sharded()) {
    throw std::logic_error(
        "reactive reconfiguration needs the single-timeline model "
        "(move_node is cross-line state)");
  }
  reactive_ = options;
  reactive_enabled_ = true;
  breach_streak_ = 0;
  system_.set_health_transition_hook(
      [this](cluster::NodeId id, bool up) { on_health_transition(id, up); });
}

std::optional<harmony::ReconfigDecision> ReconfigController::observe_p95(
    common::SimTime p95) {
  if (!reactive_enabled_) return std::nullopt;
  if (p95 <= reactive_.p95_target) {
    breach_streak_ = 0;
    return std::nullopt;
  }
  if (++breach_streak_ < reactive_.breach_streak) return std::nullopt;
  breach_streak_ = 0;
  // The tier of the hottest node is where the latency is coming from.
  const auto readings = system_.readings();
  const harmony::NodeReading* hottest = nullptr;
  for (const auto& reading : readings) {
    if (hottest == nullptr ||
        peak_utilization(reading) > peak_utilization(*hottest)) {
      hottest = &reading;
    }
  }
  if (hottest == nullptr) return std::nullopt;
  return borrow_into(system_.cluster().tier_of(hottest->node_id));
}

void ReconfigController::on_health_transition(cluster::NodeId id, bool up) {
  if (!reactive_enabled_ || up) return;
  const auto tier = system_.cluster().tier_of(id);
  if (system_.cluster().tier(tier).healthy_count() >= reactive_.min_healthy) {
    return;
  }
  borrow_into(tier);
}

std::optional<harmony::ReconfigDecision> ReconfigController::borrow_into(
    cluster::TierKind needy) {
  if (system_.now() < cooldown_until_) return std::nullopt;
  // Donor: the least-pressured healthy node outside the needy tier whose
  // own tier keeps at least one healthy member after the move.
  const auto readings = system_.readings();
  const harmony::NodeReading* donor = nullptr;
  for (const auto& reading : readings) {
    const auto tier = system_.cluster().tier_of(reading.node_id);
    if (tier == needy) continue;
    if (system_.cluster().tier(tier).healthy_count() <= 1) continue;
    if (system_.move_in_progress(reading.node_id)) continue;
    if (donor == nullptr ||
        peak_utilization(reading) < peak_utilization(*donor)) {
      donor = &reading;
    }
  }
  if (donor == nullptr) return std::nullopt;

  harmony::ReconfigDecision decision;
  decision.donor_node = donor->node_id;
  decision.from_tier = static_cast<int>(system_.cluster().tier_of(donor->node_id));
  decision.to_tier = static_cast<int>(needy);
  decision.cost_seconds = reactive_.config_cost_seconds;
  decision.immediate = reactive_.immediate;
  // No single overloaded node for a tier-level trigger: attribute the
  // move to the needy tier's hottest healthy member when one exists.
  decision.overloaded_node = donor->node_id;
  for (const auto& reading : readings) {
    if (system_.cluster().tier_of(reading.node_id) == needy) {
      decision.overloaded_node = reading.node_id;
      break;
    }
  }

  system_.move_node(decision.donor_node, needy, decision.immediate,
                    common::SimTime::seconds(decision.cost_seconds));
  system_.note_disturbance();
  cooldown_until_ = system_.now() + reactive_.cooldown;
  ++reactive_moves_;
  moves_.push_back(decision);
  return decision;
}

}  // namespace ah::core
