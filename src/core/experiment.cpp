#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>

namespace ah::core {

Experiment::Experiment(SystemModel& system, const Config& config)
    : system_(system), config_(config), workload_(config.workload) {
  const std::size_t lines = system_.line_count();
  assert(lines > 0);
  const int per_line =
      std::max(1, config_.browsers / static_cast<int>(lines));
  for (std::size_t li = 0; li < lines; ++li) {
    meters_.push_back(std::make_unique<tpcw::WipsMeter>());
    tpcw::Workload::Config wc;
    wc.browsers = per_line;
    wc.item_count = config_.item_count;
    wc.seed = common::mix_seed(config_.seed, li);
    // One shared popularity CDF across all lines (and, via the immutable
    // layer, all replicas).  Workload falls back to a private copy when
    // the table's scale does not match.
    wc.shared_popularity = system_.shared_popularity();
    workloads_.push_back(std::make_unique<tpcw::Workload>(
        system_.line_simulator(li), system_.frontend(li),
        &tpcw::Mix::standard(workload_), *meters_.back(), wc));
  }
}

void Experiment::set_workload(tpcw::WorkloadKind kind) {
  workload_ = kind;
  for (auto& workload : workloads_) {
    workload->set_mix(&tpcw::Mix::standard(kind));
  }
}

void Experiment::set_wirt_tracker(tpcw::WirtTracker* tracker) {
  for (auto& workload : workloads_) workload->set_wirt_tracker(tracker);
}

void Experiment::apply_scenario(const sim::ScenarioPlan& plan) {
  system_.install_scenario(plan);
  const sim::ScenarioPlan* installed = system_.scenario();
  for (auto& workload : workloads_) {
    workload->set_arrival_modulation(&installed->arrival);
    workload->apply_mix_schedule(installed->mix_changes);
  }
}

const tpcw::WipsMeter& Experiment::meter(std::size_t line) const {
  return *meters_.at(line);
}

IterationResult Experiment::run_iteration() {
  if (!started_) {
    started_ = true;
    for (auto& workload : workloads_) workload->start();
  }

  // All line timelines agree at iteration boundaries (they are advanced to
  // the same barrier below), so line 0's clock stands in for "now".
  const common::SimTime start = system_.now();
  const common::SimTime measure_from = start + config_.iteration.warmup;
  const common::SimTime measure_to = measure_from + config_.iteration.measure;
  for (auto& meter : meters_) meter->arm(measure_from, measure_to);

  const std::uint64_t disturbances_before = system_.disturbance_count();
  // Advance every line to the window end — concurrently when the model is
  // sharded and a thread pool is attached.  The merge below reads meters in
  // line order, so the result is identical at any thread count.
  system_.run_all_until(start + config_.iteration.total());
  ++iterations_;

  IterationResult result;
  result.disturbed = system_.disturbance_count() != disturbances_before;
  result.line_wips.reserve(meters_.size());
  double latency_weight = 0.0;
  std::uint64_t ok_total = 0;
  std::uint64_t err_total = 0;
  for (const auto& meter : meters_) {
    result.wips += meter->wips();
    result.wips_browse += meter->wips_browse();
    result.wips_order += meter->wips_order();
    result.line_wips.push_back(meter->wips());
    ok_total += meter->completed_ok();
    err_total += meter->errors();
    result.mean_latency_ms +=
        meter->latency_ms().mean() *
        static_cast<double>(meter->completed_ok());
    latency_weight += static_cast<double>(meter->completed_ok());
  }
  if (latency_weight > 0.0) result.mean_latency_ms /= latency_weight;
  // Percentiles need the full distribution, so merge the per-line window
  // histograms (bucket-wise sums — cheap, cold path, once per iteration).
  obs::Histogram window;
  for (const auto& meter : meters_) window.merge(meter->latency_histogram());
  if (window.count() > 0) {
    result.p50_ms = static_cast<double>(window.p50_us()) / 1e3;
    result.p95_ms = static_cast<double>(window.p95_us()) / 1e3;
    result.p99_ms = static_cast<double>(window.p99_us()) / 1e3;
    result.max_ms = static_cast<double>(window.max_us()) / 1e3;
  }
  const std::uint64_t total = ok_total + err_total;
  result.error_ratio =
      total > 0 ? static_cast<double>(err_total) / static_cast<double>(total)
                : 0.0;
  return result;
}

}  // namespace ah::core
