#include "core/model_immutable.hpp"

#include <stdexcept>
#include <utility>

#include "common/analysis.hpp"
#include "tpcw/workload.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::core {

ModelImmutable::ModelImmutable(
    SystemModel::Config topology, Experiment::Config experiment,
    std::shared_ptr<const tpcw::ZipfSampler> popularity)
    : topology_(std::move(topology)),
      experiment_(std::move(experiment)),
      popularity_(std::move(popularity)),
      defaults_(webstack::default_values()) {
  if (popularity_ == nullptr) {
    throw std::invalid_argument("ModelImmutable: popularity table is null");
  }
  // The immutable layer must not point at itself: a self-referential
  // shared_ptr would leak the whole object graph.
  topology_.shared.reset();
}

std::size_t ModelImmutable::node_count() const {
  std::size_t total = 0;
  for (const SystemModel::LineSpec& spec : topology_.lines) {
    total += static_cast<std::size_t>(spec.proxy_nodes) +
             static_cast<std::size_t>(spec.app_nodes) +
             static_cast<std::size_t>(spec.db_nodes);
  }
  return total;
}

std::shared_ptr<const ModelImmutable> make_model_immutable(
    const SystemModel::Config& topology,
    const Experiment::Config& experiment) {
  // The popularity table is a function of the item scale and the standard
  // Zipf exponent alone — the same inputs Workload would use to build its
  // private copy, so sharing it is bit-identical.
  const tpcw::Workload::Config workload_defaults{};
  return make_model_immutable(
      topology, experiment,
      std::make_shared<const tpcw::ZipfSampler>(experiment.item_count,
                                                workload_defaults.zipf_alpha));
}

std::shared_ptr<const ModelImmutable> make_model_immutable(
    const SystemModel::Config& topology, const Experiment::Config& experiment,
    std::shared_ptr<const tpcw::ZipfSampler> popularity) {
  return std::make_shared<const ModelImmutable>(topology, experiment,
                                                std::move(popularity));
}

}  // namespace ah::core
