#include "core/parallel_evaluator.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "core/model_immutable.hpp"

namespace ah::core {

namespace {
// Salt replica seed streams away from the per-line streams Experiment and
// SystemModel derive internally (those use mix_seed(seed, small_index)).
constexpr std::uint64_t kReplicaSalt = 0x7265706c69636173ULL;  // "replicas"
}  // namespace

std::uint64_t ParallelEvaluator::replica_seed(std::uint64_t base,
                                              std::size_t replica) {
  return common::mix_seed(common::mix_seed(base, kReplicaSalt), replica);
}

ParallelEvaluator::ParallelEvaluator(common::ThreadPool& pool,
                                     Options options)
    : pool_(pool), options_(std::move(options)) {
  if (options_.replicas == 0) {
    throw std::invalid_argument("ParallelEvaluator: replicas must be >= 1");
  }
  // All k replicas share one immutable layer (popularity CDF, catalogue
  // defaults, topology) — build it here if the caller did not supply one.
  if (options_.topology.shared == nullptr) {
    options_.topology.shared =
        make_model_immutable(options_.topology, options_.experiment);
  }
  replicas_.reserve(options_.replicas);
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    Replica replica;
    replica.sim = std::make_unique<sim::Simulator>();
    SystemModel::Config topology = options_.topology;
    topology.seed = replica_seed(options_.topology.seed, r);
    replica.system = std::make_unique<SystemModel>(*replica.sim, topology);
    Experiment::Config experiment = options_.experiment;
    experiment.seed = replica_seed(options_.experiment.seed, r);
    replica.experiment =
        std::make_unique<Experiment>(*replica.system, experiment);
    replicas_.push_back(std::move(replica));
  }
}

std::vector<IterationResult> ParallelEvaluator::evaluate(
    std::span<const harmony::PointI> candidates, const ApplyFn& apply) {
  std::vector<IterationResult> results(candidates.size());
  const std::size_t k = replicas_.size();
  const std::size_t active = std::min(k, candidates.size());
  // One pool task per replica; a replica walks its assigned candidates in
  // batch order on its own timeline.  No two tasks touch the same replica
  // or the same results slot, so no synchronisation is needed beyond the
  // parallel_for barrier.
  pool_.parallel_for(active, [&](std::size_t r) {
    Replica& replica = replicas_[r];
    for (std::size_t i = r; i < candidates.size(); i += k) {
      apply(*replica.system, candidates[i]);
      results[i] = replica.experiment->run_iteration();
      if (results[i].disturbed) {
        // A fault or health transition overlapped the window, so the WIPS
        // figure measured the disturbance, not the candidate.  Re-measure
        // once on the same timeline (the retry is part of the replica's
        // deterministic schedule, so results stay thread-count-invariant);
        // if the second window is disturbed too the fault is chronic and
        // the reading is surrendered as-is, still flagged.
        discarded_.fetch_add(1, std::memory_order_relaxed);
        results[i] = replica.experiment->run_iteration();
      }
    }
  });
  evaluations_ += candidates.size();
  return results;
}

}  // namespace ah::core
