// Experiment: the paper's measurement protocol on top of a SystemModel.
//
// One *iteration* (paper §III.A) is warm-up → measure WIPS → cool-down on a
// continuously running system; the Harmony server adjusts parameters
// between iterations.  The Experiment owns one closed-loop TPC-W workload
// and one WIPS meter per work line, re-arms the meters each iteration, and
// advances the shared simulated timeline.
//
// Durations are scaled down from the paper's 100/1000/100 s to keep
// 200-iteration studies fast; the protocol (and the need for warm-up — the
// proxy memory cache restarts cold after every reconfigure) is preserved.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/system_model.hpp"
#include "tpcw/constraints.hpp"
#include "tpcw/metrics.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/workload.hpp"

namespace ah::core {

struct IterationSpec {
  common::SimTime warmup = common::SimTime::seconds(20.0);
  common::SimTime measure = common::SimTime::seconds(60.0);
  common::SimTime cooldown = common::SimTime::seconds(5.0);

  [[nodiscard]] common::SimTime total() const {
    return warmup + measure + cooldown;
  }
};

struct IterationResult {
  double wips = 0.0;         // summed over lines
  double wips_browse = 0.0;
  double wips_order = 0.0;
  double error_ratio = 0.0;  // weighted over lines
  double mean_latency_ms = 0.0;
  /// Exact-rank latency percentiles over all lines' in-window successful
  /// completions (merged per-line histograms; see obs::Histogram).  Zero
  /// when nothing completed in the window.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::vector<double> line_wips;  // per work line
  /// True when a fault event or health transition fired inside the
  /// warm-up/measure/cool-down window — the WIPS figure then reflects the
  /// disturbance, not the candidate configuration, and tuners should
  /// discard or penalise it (paper §III.A assumes a steady plant).
  bool disturbed = false;
};

class Experiment {
 public:
  struct Config {
    IterationSpec iteration{};
    /// Total emulated browsers, split evenly across work lines.
    int browsers = 530;
    tpcw::WorkloadKind workload = tpcw::WorkloadKind::kShopping;
    std::uint64_t item_count = 10000;
    std::uint64_t seed = 2004;
  };

  Experiment(SystemModel& system, const Config& config);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Switches the TPC-W mix; takes effect with each browser's next
  /// interaction (paper Fig 5's workload changes).
  void set_workload(tpcw::WorkloadKind kind);
  [[nodiscard]] tpcw::WorkloadKind workload() const { return workload_; }

  /// Runs one warm-up/measure/cool-down cycle and returns the measured
  /// performance.  Browsers start on the first call and keep running.
  IterationResult run_iteration();

  /// Attaches a WIRT tracker to every work line's browsers (TPC-W
  /// clause 5.5 response-time compliance).  Not owned; nullptr detaches.
  void set_wirt_tracker(tpcw::WirtTracker* tracker);

  /// Installs a full scenario: faults via SystemModel::install_scenario,
  /// arrival modulation and mix drift on every work line's browsers.  The
  /// plan is owned by the model, so the modulation pointers stay valid for
  /// the experiment's lifetime.
  void apply_scenario(const sim::ScenarioPlan& plan);

  [[nodiscard]] std::size_t iterations_run() const { return iterations_; }
  /// The configuration this experiment was built from (replica cloning).
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] SystemModel& system() { return system_; }
  [[nodiscard]] const tpcw::WipsMeter& meter(std::size_t line) const;

 private:
  SystemModel& system_;
  Config config_;
  tpcw::WorkloadKind workload_;

  std::vector<std::unique_ptr<tpcw::WipsMeter>> meters_;
  std::vector<std::unique_ptr<tpcw::Workload>> workloads_;
  bool started_ = false;
  std::size_t iterations_ = 0;
};

}  // namespace ah::core
