// ParallelEvaluator: a replica-set engine for concurrent candidate
// evaluation.
//
// The paper's simplex exploration evaluates n+1 independent configurations
// and the partitioning strategy tunes independent work lines — all of these
// are independent measurements, so they can run concurrently.  One Simulator
// owns one virtual timeline and is strictly single-threaded, so parallelism
// comes from *replicas*: k independent (Simulator, SystemModel, Experiment)
// triples built from the same configs with deterministic per-replica seeds.
//
// Candidate i of a batch always runs on replica i % k, and each replica
// evaluates its assigned candidates in ascending batch order on its own
// timeline.  Both facts depend only on (i, k) — never on the thread count —
// so a batch's results are bit-identical whether the pool has 1, 4, or 64
// threads.  Thread count buys wall-clock speed; replica count fixes the
// measurement semantics.
//
// Measurement-semantics caveat (documented in EXPERIMENTS.md): the paper
// measures every candidate back-to-back on ONE live system, so iteration
// state (warm caches, in-flight sessions) carries over between candidates.
// A replica set intentionally trades that for independence: each replica's
// state evolves only with the candidates it was assigned.  Results are
// statistically equivalent but not bit-identical to the sequential
// protocol, which is why TuningDriver keeps `threads == 1` on the legacy
// single-system path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "harmony/parameter.hpp"
#include "sim/simulator.hpp"

namespace ah::core {

class ParallelEvaluator {
 public:
  struct Options {
    /// Topology every replica is built from (seed is re-salted per replica).
    SystemModel::Config topology{};
    /// Workload/measurement protocol per replica (seed re-salted as well).
    Experiment::Config experiment{};
    /// Number of independent replica timelines (k).  Fixed per evaluator;
    /// results depend on this, never on the pool's thread count.
    std::size_t replicas = 4;
  };

  /// Applies one candidate configuration to a replica's system.  Invoked
  /// concurrently on *different* SystemModels, so it must not touch shared
  /// mutable state.
  using ApplyFn =
      std::function<void(SystemModel&, const harmony::PointI&)>;

  /// Builds the k replicas eagerly.  The pool is borrowed (shared across
  /// evaluators and with any caller-level fan-out) and must outlive this.
  ParallelEvaluator(common::ThreadPool& pool, Options options);

  ParallelEvaluator(const ParallelEvaluator&) = delete;
  ParallelEvaluator& operator=(const ParallelEvaluator&) = delete;

  /// Evaluates a batch: candidate i is applied to replica i % k via
  /// `apply`, one measurement iteration runs on that replica's timeline,
  /// and results come back in candidate order.  Deterministic for a given
  /// (options, batch history) regardless of pool size.
  std::vector<IterationResult> evaluate(
      std::span<const harmony::PointI> candidates, const ApplyFn& apply);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  /// Total candidates evaluated across all batches.
  [[nodiscard]] std::size_t evaluations() const { return evaluations_; }
  /// Measurement windows discarded (and re-run once) because a fault event
  /// or health transition overlapped them.  Atomic: replicas on different
  /// pool threads discard independently.
  [[nodiscard]] std::uint64_t discarded_windows() const {
    return discarded_.load(std::memory_order_relaxed);
  }
  /// Direct replica access (tests, bespoke drivers).
  [[nodiscard]] SystemModel& replica_system(std::size_t r) {
    return *replicas_.at(r).system;
  }
  [[nodiscard]] Experiment& replica_experiment(std::size_t r) {
    return *replicas_.at(r).experiment;
  }

  /// Seed used by replica r for a base seed (deterministic salt).
  [[nodiscard]] static std::uint64_t replica_seed(std::uint64_t base,
                                                  std::size_t replica);

 private:
  struct Replica {
    std::unique_ptr<sim::Simulator> sim;
    std::unique_ptr<SystemModel> system;
    std::unique_ptr<Experiment> experiment;
  };

  common::ThreadPool& pool_;
  Options options_;
  std::vector<Replica> replicas_;
  std::size_t evaluations_ = 0;
  std::atomic<std::uint64_t> discarded_{0};
};

}  // namespace ah::core
