#include "core/tuning_driver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/fmt.hpp"
#include "common/stats.hpp"

namespace ah::core {

std::string_view tuning_method_name(TuningMethod method) {
  switch (method) {
    case TuningMethod::kNone:         return "None (No Tuning)";
    case TuningMethod::kDefault:      return "Default method";
    case TuningMethod::kDuplication:  return "Parameter duplication";
    case TuningMethod::kPartitioning: return "Parameter partitioning";
  }
  return "?";
}

double TuningResult::mean_wips(std::size_t from, std::size_t to) const {
  common::RunningStats stats;
  for (std::size_t i = from; i < to && i < wips_series.size(); ++i) {
    stats.add(wips_series[i]);
  }
  return stats.mean();
}

double TuningResult::stddev_wips(std::size_t from, std::size_t to) const {
  common::RunningStats stats;
  for (std::size_t i = from; i < to && i < wips_series.size(); ++i) {
    stats.add(wips_series[i]);
  }
  return stats.sample_stddev();
}

TuningDriver::TuningDriver(SystemModel& system, Experiment& experiment,
                           Options options)
    : system_(system), experiment_(experiment), options_(options) {
  build_sessions();
}

namespace {

harmony::TunableParameter to_tunable(const webstack::ParamSpec& spec,
                                     const std::string& prefix,
                                     const std::int64_t* seed_value) {
  std::int64_t start = spec.default_value;
  if (seed_value != nullptr) {
    start = std::clamp(*seed_value, spec.min_value, spec.max_value);
  }
  return harmony::TunableParameter{prefix + spec.name, spec.min_value,
                                   spec.max_value, start};
}

}  // namespace

void TuningDriver::build_sessions(const harmony::PointI* seed) {
  const auto& catalogue = webstack::parameter_catalogue();
  std::size_t seed_cursor = 0;
  auto next_seed = [&]() -> const std::int64_t* {
    if (seed == nullptr) return nullptr;
    return &seed->at(seed_cursor++);
  };
  switch (options_.method) {
    case TuningMethod::kNone:
      break;
    case TuningMethod::kDefault: {
      // One global session: every node contributes its tier's slice.
      const auto id = server_.create_session("default", options_.session);
      for (const cluster::NodeId node : system_.all_nodes()) {
        const auto tier = system_.cluster().tier_of(node);
        for (const std::size_t ci : webstack::catalogue_indices_for(tier)) {
          server_.register_parameter(
              id, to_tunable(catalogue[ci],
                             common::format("node{}.", node), next_seed()));
        }
        node_order_.push_back(node);
      }
      server_.start(id);
      sessions_.push_back(id);
      break;
    }
    case TuningMethod::kDuplication: {
      const auto id = server_.create_session("duplication", options_.session);
      for (const auto& spec : catalogue) {
        server_.register_parameter(id, to_tunable(spec, "", next_seed()));
      }
      server_.start(id);
      sessions_.push_back(id);
      break;
    }
    case TuningMethod::kPartitioning: {
      for (std::size_t line = 0; line < system_.line_count(); ++line) {
        const auto id = server_.create_session(
            common::format("workline{}", line), options_.session);
        for (const auto& spec : catalogue) {
          server_.register_parameter(id, to_tunable(spec, "", next_seed()));
        }
        server_.start(id);
        sessions_.push_back(id);
      }
      break;
    }
  }
}

void TuningDriver::restart_sessions(const harmony::PointI& seed) {
  if (options_.method == TuningMethod::kNone) return;
  server_ = harmony::HarmonyServer{};
  sessions_.clear();
  node_order_.clear();
  build_sessions(&seed);  // clamps each value into its parameter's bounds
  // Put the system into the (clamped) remembered state immediately; the
  // rebuilt sessions propose it as their first evaluation.
  apply_pending();
}

void TuningDriver::apply_pending() {
  switch (options_.method) {
    case TuningMethod::kNone:
      return;
    case TuningMethod::kDefault: {
      const harmony::PointI values = server_.get_configuration(sessions_[0]);
      std::size_t offset = 0;
      for (const cluster::NodeId node : node_order_) {
        const auto tier = system_.cluster().tier_of(node);
        const auto indices = webstack::catalogue_indices_for(tier);
        harmony::PointI full = webstack::default_values();
        for (std::size_t i = 0; i < indices.size(); ++i) {
          full[indices[i]] = values.at(offset + i);
        }
        system_.apply_values_to_node(node, full);
        offset += indices.size();
      }
      assert(offset == values.size());
      return;
    }
    case TuningMethod::kDuplication:
      system_.apply_values_all(server_.get_configuration(sessions_[0]));
      return;
    case TuningMethod::kPartitioning:
      for (std::size_t line = 0; line < sessions_.size(); ++line) {
        system_.apply_values_line(line,
                                  server_.get_configuration(sessions_[line]));
      }
      return;
  }
}

void TuningDriver::report(const IterationResult& result) {
  switch (options_.method) {
    case TuningMethod::kNone:
      return;
    case TuningMethod::kDefault:
    case TuningMethod::kDuplication:
      server_.report_performance(sessions_[0], result.wips);
      return;
    case TuningMethod::kPartitioning:
      for (std::size_t line = 0; line < sessions_.size(); ++line) {
        server_.report_performance(sessions_[line],
                                   result.line_wips.at(line));
      }
      return;
  }
}

harmony::PointI TuningDriver::concatenated_best() const {
  harmony::PointI best;
  for (const auto id : sessions_) {
    const harmony::PointI part = server_.best_configuration(id);
    best.insert(best.end(), part.begin(), part.end());
  }
  return best;
}

TuningResult TuningDriver::run(std::size_t iterations,
                               std::size_t validation_iterations) {
  TuningResult result;
  result.wips_series.reserve(iterations);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    apply_pending();
    const IterationResult measured = experiment_.run_iteration();
    result.wips_series.push_back(measured.wips);
    report(measured);
  }

  if (options_.method == TuningMethod::kNone) {
    result.best_configuration = webstack::default_values();
    result.best_wips = result.mean_wips(0, iterations);
    result.validated_wips = result.best_wips;
    result.converged_at = 0;
    return result;
  }

  std::optional<std::size_t> converged = 0;
  for (const auto id : sessions_) {
    const auto c = server_.converged_at(id);
    if (!c.has_value()) {
      converged = std::nullopt;
    } else if (converged.has_value()) {
      converged = std::max(*converged, *c);
    }
  }
  result.converged_at = converged;

  if (validation_iterations == 0 ||
      options_.method == TuningMethod::kPartitioning) {
    // Partitioned sessions are validated as one concatenated candidate
    // below when requested; without validation fall back to the raw best.
    result.best_configuration = concatenated_best();
    double best = 0.0;
    for (const auto id : sessions_) best += server_.best_performance(id);
    result.best_wips = best;
    if (validation_iterations > 0) {
      apply_configuration(result.best_configuration);
      double validated = 0.0;
      for (std::size_t i = 0; i <= validation_iterations; ++i) {
        const double wips = experiment_.run_iteration().wips;
        if (i > 0) validated += wips;  // first post-switch iteration settles
      }
      result.validated_wips =
          validated / static_cast<double>(validation_iterations);
    } else {
      result.validated_wips = result.best_wips;
    }
    return result;
  }

  // Validation pass: the top distinct candidates from the session history
  // are re-measured back-to-back on the live system.  One raw in-run
  // observation can be inflated by state carried over from the previous
  // iteration (e.g. a queue backlog draining), so the raw argmax is not
  // trusted on its own.
  const auto& history = server_.session(sessions_[0]).history();
  std::vector<std::pair<double, const harmony::PointI*>> ranked;
  ranked.reserve(history.size());
  for (const auto& entry : history) {
    ranked.emplace_back(entry.cost, &entry.configuration);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;  // lower cost first
                   });
  std::vector<harmony::PointI> candidates;
  for (const auto& [cost, config] : ranked) {
    if (candidates.size() >= 3) break;
    if (std::find(candidates.begin(), candidates.end(), *config) ==
        candidates.end()) {
      candidates.push_back(*config);
    }
  }

  double best_validated = -1.0;
  for (const auto& candidate : candidates) {
    apply_configuration(candidate);
    double validated = 0.0;
    for (std::size_t i = 0; i <= validation_iterations; ++i) {
      const double wips = experiment_.run_iteration().wips;
      if (i > 0) validated += wips;
    }
    validated /= static_cast<double>(validation_iterations);
    if (validated > best_validated) {
      best_validated = validated;
      result.best_configuration = candidate;
    }
  }
  result.best_wips = server_.best_performance(sessions_[0]);
  result.validated_wips = best_validated;
  return result;
}

void TuningDriver::apply_configuration(const harmony::PointI& configuration) {
  const std::size_t catalogue_size = webstack::parameter_catalogue().size();
  switch (options_.method) {
    case TuningMethod::kNone:
    case TuningMethod::kDuplication: {
      if (configuration.size() != catalogue_size) {
        throw std::invalid_argument("apply_configuration: expected 23 values");
      }
      system_.apply_values_all(configuration);
      return;
    }
    case TuningMethod::kDefault: {
      std::size_t offset = 0;
      for (const cluster::NodeId node : node_order_) {
        const auto tier = system_.cluster().tier_of(node);
        const auto indices = webstack::catalogue_indices_for(tier);
        harmony::PointI full = webstack::default_values();
        for (std::size_t i = 0; i < indices.size(); ++i) {
          full[indices[i]] = configuration.at(offset + i);
        }
        system_.apply_values_to_node(node, full);
        offset += indices.size();
      }
      if (offset != configuration.size()) {
        throw std::invalid_argument("apply_configuration: layout mismatch");
      }
      return;
    }
    case TuningMethod::kPartitioning: {
      if (configuration.size() != catalogue_size * system_.line_count()) {
        throw std::invalid_argument("apply_configuration: layout mismatch");
      }
      for (std::size_t line = 0; line < system_.line_count(); ++line) {
        const harmony::PointI slice(
            configuration.begin() +
                static_cast<std::ptrdiff_t>(line * catalogue_size),
            configuration.begin() +
                static_cast<std::ptrdiff_t>((line + 1) * catalogue_size));
        system_.apply_values_line(line, slice);
      }
      return;
    }
  }
}

}  // namespace ah::core
