#include "core/tuning_driver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/fmt.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/model_immutable.hpp"
#include "core/parallel_evaluator.hpp"

namespace ah::core {

std::string_view tuning_method_name(TuningMethod method) {
  switch (method) {
    case TuningMethod::kNone:         return "None (No Tuning)";
    case TuningMethod::kDefault:      return "Default method";
    case TuningMethod::kDuplication:  return "Parameter duplication";
    case TuningMethod::kPartitioning: return "Parameter partitioning";
  }
  return "?";
}

void apply_method_values(SystemModel& system, TuningMethod method,
                         std::span<const std::int64_t> values) {
  const std::size_t catalogue_size = webstack::parameter_catalogue().size();
  switch (method) {
    case TuningMethod::kNone:
    case TuningMethod::kDuplication: {
      if (values.size() != catalogue_size) {
        throw std::invalid_argument("apply_method_values: expected 23 values");
      }
      system.apply_values_all(values);
      return;
    }
    case TuningMethod::kDefault: {
      // Per-node tier slices, nodes in creation order — the same order
      // build_sessions registered them, and identical on every replica
      // built from the same topology.
      std::size_t offset = 0;
      for (const cluster::NodeId node : system.all_nodes()) {
        const auto tier = system.cluster().tier_of(node);
        const auto indices = webstack::catalogue_indices_for(tier);
        harmony::PointI full = webstack::default_values();
        if (offset + indices.size() > values.size()) {
          throw std::invalid_argument("apply_method_values: layout mismatch");
        }
        for (std::size_t i = 0; i < indices.size(); ++i) {
          full[indices[i]] = values[offset + i];
        }
        system.apply_values_to_node(node, full);
        offset += indices.size();
      }
      if (offset != values.size()) {
        throw std::invalid_argument("apply_method_values: layout mismatch");
      }
      return;
    }
    case TuningMethod::kPartitioning: {
      if (values.size() != catalogue_size * system.line_count()) {
        throw std::invalid_argument("apply_method_values: layout mismatch");
      }
      for (std::size_t line = 0; line < system.line_count(); ++line) {
        system.apply_values_line(line,
                                 values.subspan(line * catalogue_size,
                                                catalogue_size));
      }
      return;
    }
  }
}

double TuningResult::mean_wips(std::size_t from, std::size_t to) const {
  common::RunningStats stats;
  for (std::size_t i = from; i < to && i < wips_series.size(); ++i) {
    stats.add(wips_series[i]);
  }
  return stats.mean();
}

double TuningResult::stddev_wips(std::size_t from, std::size_t to) const {
  common::RunningStats stats;
  for (std::size_t i = from; i < to && i < wips_series.size(); ++i) {
    stats.add(wips_series[i]);
  }
  return stats.sample_stddev();
}

TuningDriver::TuningDriver(SystemModel& system, Experiment& experiment,
                           Options options)
    : system_(system), experiment_(experiment), options_(options) {
  build_sessions();
}

namespace {

harmony::TunableParameter to_tunable(const webstack::ParamSpec& spec,
                                     const std::string& prefix,
                                     const std::int64_t* seed_value) {
  std::int64_t start = spec.default_value;
  if (seed_value != nullptr) {
    start = std::clamp(*seed_value, spec.min_value, spec.max_value);
  }
  return harmony::TunableParameter{prefix + spec.name, spec.min_value,
                                   spec.max_value, start};
}

}  // namespace

void TuningDriver::build_sessions(const harmony::PointI* seed) {
  const auto& catalogue = webstack::parameter_catalogue();
  std::size_t seed_cursor = 0;
  auto next_seed = [&]() -> const std::int64_t* {
    if (seed == nullptr) return nullptr;
    return &seed->at(seed_cursor++);
  };
  switch (options_.method) {
    case TuningMethod::kNone:
      break;
    case TuningMethod::kDefault: {
      // One global session: every node contributes its tier's slice.
      const auto id = server_.create_session("default", options_.session);
      for (const cluster::NodeId node : system_.all_nodes()) {
        const auto tier = system_.cluster().tier_of(node);
        for (const std::size_t ci : webstack::catalogue_indices_for(tier)) {
          server_.register_parameter(
              id, to_tunable(catalogue[ci],
                             common::format("node{}.", node), next_seed()));
        }
      }
      server_.start(id);
      sessions_.push_back(id);
      break;
    }
    case TuningMethod::kDuplication: {
      const auto id = server_.create_session("duplication", options_.session);
      for (const auto& spec : catalogue) {
        server_.register_parameter(id, to_tunable(spec, "", next_seed()));
      }
      server_.start(id);
      sessions_.push_back(id);
      break;
    }
    case TuningMethod::kPartitioning: {
      for (std::size_t line = 0; line < system_.line_count(); ++line) {
        const auto id = server_.create_session(
            common::format("workline{}", line), options_.session);
        for (const auto& spec : catalogue) {
          server_.register_parameter(id, to_tunable(spec, "", next_seed()));
        }
        server_.start(id);
        sessions_.push_back(id);
      }
      break;
    }
  }
}

void TuningDriver::restart_sessions(const harmony::PointI& seed) {
  if (options_.method == TuningMethod::kNone) return;
  server_ = harmony::HarmonyServer{};
  sessions_.clear();
  build_sessions(&seed);  // clamps each value into its parameter's bounds
  // Put the system into the (clamped) remembered state immediately; the
  // rebuilt sessions propose it as their first evaluation.
  apply_pending();
}

void TuningDriver::apply_pending() {
  switch (options_.method) {
    case TuningMethod::kNone:
      return;
    case TuningMethod::kDefault:
    case TuningMethod::kDuplication:
      apply_method_values(system_, options_.method,
                          server_.get_configuration(sessions_[0]));
      return;
    case TuningMethod::kPartitioning:
      for (std::size_t line = 0; line < sessions_.size(); ++line) {
        system_.apply_values_line(line,
                                  server_.get_configuration(sessions_[line]));
      }
      return;
  }
}

void TuningDriver::report(const IterationResult& result) {
  switch (options_.method) {
    case TuningMethod::kNone:
      return;
    case TuningMethod::kDefault:
    case TuningMethod::kDuplication:
      server_.report_performance(sessions_[0], result.wips);
      return;
    case TuningMethod::kPartitioning:
      for (std::size_t line = 0; line < sessions_.size(); ++line) {
        server_.report_performance(sessions_[line],
                                   result.line_wips.at(line));
      }
      return;
  }
}

harmony::PointI TuningDriver::concatenated_best() const {
  harmony::PointI best;
  for (const auto id : sessions_) {
    const harmony::PointI part = server_.best_configuration(id);
    best.insert(best.end(), part.begin(), part.end());
  }
  return best;
}

std::size_t TuningDriver::replica_count_for(std::size_t dimensions) const {
  if (options_.replicas != 0) return options_.replicas;
  // Enough replicas for a full initial simplex (n+1 points), bounded so a
  // 46-dimension default-method session does not build 47 systems.  NEVER
  // derived from `threads`: the replica count decides which timeline
  // measures which candidate, and that must not drift with the machine.
  return std::min<std::size_t>(dimensions + 1, 16);
}

void TuningDriver::explore_sequential(TuningResult& result,
                                      std::size_t iterations) {
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    apply_pending();
    IterationResult measured = experiment_.run_iteration();
    if (measured.disturbed) {
      // A fault/health transition overlapped the window: the reading
      // reflects the disturbance, not the candidate.  Discard and
      // re-measure once; if the fault persists the second reading is used
      // anyway so a flapping node cannot stall the search.
      ++result.discarded_windows;
      measured = experiment_.run_iteration();
    }
    result.wips_series.push_back(measured.wips);
    report(measured);
  }
}

void TuningDriver::explore_parallel(TuningResult& result,
                                    std::size_t iterations) {
  common::ThreadPool pool(options_.threads);  // 0 => hardware concurrency
  const std::size_t catalogue_size = webstack::parameter_catalogue().size();

  if (options_.method == TuningMethod::kPartitioning) {
    // Work lines are independent by construction, so each line tunes on
    // its own single-line replica set fed by line-local WIPS.  Lines run
    // until each has `iterations` evaluations; the recorded whole-system
    // series is the per-evaluation-index sum across lines.
    const SystemModel::Config& topology = system_.config();
    const Experiment::Config& experiment = experiment_.config();
    const std::size_t lines = system_.line_count();
    const int browsers_per_line =
        std::max(1, experiment.browsers / static_cast<int>(lines));
    // Every line's replica set samples the same item scale, so one
    // popularity CDF serves all lines × replicas of the whole exploration.
    const tpcw::Workload::Config workload_defaults{};
    const auto popularity = std::make_shared<const tpcw::ZipfSampler>(
        experiment.item_count, workload_defaults.zipf_alpha);
    std::vector<std::vector<double>> line_series(lines);
    for (std::size_t line = 0; line < lines; ++line) {
      ParallelEvaluator::Options options;
      options.topology = topology;
      options.topology.lines = {topology.lines[line]};
      options.topology.seed = common::mix_seed(topology.seed, line);
      options.experiment = experiment;
      options.experiment.browsers = browsers_per_line;
      options.experiment.seed = common::mix_seed(experiment.seed, line);
      options.topology.shared = make_model_immutable(
          options.topology, options.experiment, popularity);
      options.replicas = replica_count_for(catalogue_size);
      ParallelEvaluator evaluator(pool, options);
      std::vector<double>& series = line_series[line];
      while (series.size() < iterations) {
        const auto pending = server_.get_pending(sessions_[line]);
        const auto evaluated = evaluator.evaluate(
            pending, [](SystemModel& system, const harmony::PointI& values) {
              system.apply_values_all(values);
            });
        std::vector<double> performances;
        performances.reserve(evaluated.size());
        for (const auto& measured : evaluated) {
          performances.push_back(measured.wips);
          series.push_back(measured.wips);
        }
        server_.report_performance_batch(sessions_[line], performances);
      }
      series.resize(iterations);
      result.discarded_windows += evaluator.discarded_windows();
    }
    result.wips_series.assign(iterations, 0.0);
    for (const auto& series : line_series) {
      for (std::size_t i = 0; i < iterations; ++i) {
        result.wips_series[i] += series[i];
      }
    }
    return;
  }

  // kDefault / kDuplication: one session; its pending batch (the whole
  // initial simplex, shrink replacements, or a single probe point) fans
  // out across the replica set.
  const std::size_t dimensions =
      server_.session(sessions_[0]).space().dimensions();
  ParallelEvaluator::Options options;
  options.topology = system_.config();
  options.experiment = experiment_.config();
  options.replicas = replica_count_for(dimensions);
  ParallelEvaluator evaluator(pool, options);
  const TuningMethod method = options_.method;
  const ParallelEvaluator::ApplyFn apply =
      [method](SystemModel& system, const harmony::PointI& values) {
        apply_method_values(system, method, values);
      };
  while (result.wips_series.size() < iterations) {
    const auto pending = server_.get_pending(sessions_[0]);
    const auto evaluated = evaluator.evaluate(pending, apply);
    std::vector<double> performances;
    performances.reserve(evaluated.size());
    for (const auto& measured : evaluated) {
      performances.push_back(measured.wips);
      result.wips_series.push_back(measured.wips);
    }
    server_.report_performance_batch(sessions_[0], performances);
  }
  // The tuner consumes whole batches, so the loop can overshoot by up to
  // batch-1 evaluations; the recorded series is trimmed to the budget
  // (every evaluation was still reported to the session).
  result.wips_series.resize(iterations);
  result.discarded_windows += evaluator.discarded_windows();
}

void TuningDriver::finalize(TuningResult& result,
                            std::size_t validation_iterations) {
  std::optional<std::size_t> converged = 0;
  for (const auto id : sessions_) {
    const auto c = server_.converged_at(id);
    if (!c.has_value()) {
      converged = std::nullopt;
    } else if (converged.has_value()) {
      converged = std::max(*converged, *c);
    }
  }
  result.converged_at = converged;

  if (validation_iterations == 0 ||
      options_.method == TuningMethod::kPartitioning) {
    // Partitioned sessions are validated as one concatenated candidate
    // below when requested; without validation fall back to the raw best.
    result.best_configuration = concatenated_best();
    double best = 0.0;
    for (const auto id : sessions_) best += server_.best_performance(id);
    result.best_wips = best;
    if (validation_iterations > 0) {
      apply_configuration(result.best_configuration);
      double validated = 0.0;
      for (std::size_t i = 0; i <= validation_iterations; ++i) {
        const double wips = experiment_.run_iteration().wips;
        if (i > 0) validated += wips;  // first post-switch iteration settles
      }
      result.validated_wips =
          validated / static_cast<double>(validation_iterations);
    } else {
      result.validated_wips = result.best_wips;
    }
    return;
  }

  // Validation pass: the top distinct candidates from the session history
  // are re-measured back-to-back on the live system.  One raw in-run
  // observation can be inflated by state carried over from the previous
  // iteration (e.g. a queue backlog draining), so the raw argmax is not
  // trusted on its own.
  const auto& history = server_.session(sessions_[0]).history();
  std::vector<std::pair<double, const harmony::PointI*>> ranked;
  ranked.reserve(history.size());
  for (const auto& entry : history) {
    ranked.emplace_back(entry.cost, &entry.configuration);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;  // lower cost first
                   });
  std::vector<harmony::PointI> candidates;
  for (const auto& [cost, config] : ranked) {
    if (candidates.size() >= 3) break;
    if (std::find(candidates.begin(), candidates.end(), *config) ==
        candidates.end()) {
      candidates.push_back(*config);
    }
  }

  double best_validated = -1.0;
  for (const auto& candidate : candidates) {
    apply_configuration(candidate);
    double validated = 0.0;
    for (std::size_t i = 0; i <= validation_iterations; ++i) {
      const double wips = experiment_.run_iteration().wips;
      if (i > 0) validated += wips;
    }
    validated /= static_cast<double>(validation_iterations);
    if (validated > best_validated) {
      best_validated = validated;
      result.best_configuration = candidate;
    }
  }
  result.best_wips = server_.best_performance(sessions_[0]);
  result.validated_wips = best_validated;
}

TuningResult TuningDriver::run(std::size_t iterations,
                               std::size_t validation_iterations) {
  TuningResult result;
  result.wips_series.reserve(iterations);

  // A sharded system parallelises *within* the model — one task per work
  // line inside each run_all_until barrier — so candidates keep the paper's
  // exact sequential back-to-back protocol while threads still buy
  // wall-clock speed.  The pool is attached for the whole run (exploration
  // and validation both advance the timelines) and detached on every exit.
  std::unique_ptr<common::ThreadPool> line_pool;
  if (system_.sharded() && options_.threads != 1) {
    line_pool = std::make_unique<common::ThreadPool>(options_.threads);
    system_.set_thread_pool(line_pool.get());
  }

  if (options_.method == TuningMethod::kNone) {
    explore_sequential(result, iterations);
    result.best_configuration = webstack::default_values();
    result.best_wips = result.mean_wips(0, iterations);
    result.validated_wips = result.best_wips;
    result.converged_at = 0;
    if (line_pool != nullptr) system_.set_thread_pool(nullptr);
    return result;
  }

  if (options_.threads == 1 || system_.sharded()) {
    explore_sequential(result, iterations);
  } else {
    explore_parallel(result, iterations);
  }
  finalize(result, validation_iterations);
  if (line_pool != nullptr) system_.set_thread_pool(nullptr);
  return result;
}

void TuningDriver::apply_configuration(const harmony::PointI& configuration) {
  apply_method_values(system_, options_.method, configuration);
}

}  // namespace ah::core
