#include "tpcw/metrics.hpp"

#include "common/analysis.hpp"

// WipsMeter::record runs once per completed interaction.
AH_HOT_PATH_FILE;

namespace ah::tpcw {

void WipsMeter::arm(common::SimTime start, common::SimTime end) {
  start_ = start;
  end_ = end;
  ok_ = 0;
  browse_ok_ = 0;
  errors_ = 0;
  latency_ms_.reset();
  latency_hist_.reset();
}

void WipsMeter::record(bool ok, bool browse, common::SimTime now,
                       common::SimTime latency) {
  if (now < start_ || now >= end_) return;
  if (!ok) {
    ++errors_;
    return;
  }
  ++ok_;
  if (browse) ++browse_ok_;
  latency_ms_.add(latency.as_millis());
  AH_LINT_ALLOW(obs_hot_path, "meter-owned histogram, always present");
  latency_hist_.record(latency);
}

double WipsMeter::wips() const {
  const double seconds = (end_ - start_).as_seconds();
  return seconds > 0.0 ? static_cast<double>(ok_) / seconds : 0.0;
}

double WipsMeter::wips_browse() const {
  const double seconds = (end_ - start_).as_seconds();
  return seconds > 0.0 ? static_cast<double>(browse_ok_) / seconds : 0.0;
}

double WipsMeter::wips_order() const {
  const double seconds = (end_ - start_).as_seconds();
  return seconds > 0.0 ? static_cast<double>(ok_ - browse_ok_) / seconds : 0.0;
}

double WipsMeter::error_ratio() const {
  const std::uint64_t total = ok_ + errors_;
  return total > 0 ? static_cast<double>(errors_) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace ah::tpcw
