// WIPS measurement (TPC-W primary metric).
//
// The meter counts completed web interactions inside a measurement window
// and derives WIPS = successful completions / window length, together with
// error counts, the browse/order split (WIPSb / WIPSo views), and latency
// statistics.  The warm-up/measure/cool-down protocol of the paper is
// expressed by (re)arming the window each iteration.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/histogram.hpp"

namespace ah::tpcw {

class WipsMeter {
 public:
  /// Arms a measurement window [start, end).  Completions outside it are
  /// ignored.  Resets all counters.
  void arm(common::SimTime start, common::SimTime end);

  /// Records an interaction completion at `now`.
  void record(bool ok, bool browse, common::SimTime now,
              common::SimTime latency);

  [[nodiscard]] common::SimTime window_start() const { return start_; }
  [[nodiscard]] common::SimTime window_end() const { return end_; }

  [[nodiscard]] std::uint64_t completed_ok() const { return ok_; }
  [[nodiscard]] std::uint64_t completed_browse() const { return browse_ok_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }

  /// Successful interactions per second over the armed window.
  [[nodiscard]] double wips() const;
  /// WIPS over Browse-class interactions only.
  [[nodiscard]] double wips_browse() const;
  /// WIPS over Order-class interactions only.
  [[nodiscard]] double wips_order() const;
  /// Fraction of interactions that failed (rejections).
  [[nodiscard]] double error_ratio() const;

  [[nodiscard]] const common::RunningStats& latency_ms() const {
    return latency_ms_;
  }

  /// Full latency distribution of in-window successful completions.
  /// Always on: recording is a counter increment (obs::Histogram), so the
  /// meter stays passive and golden outputs are unaffected.
  [[nodiscard]] const obs::Histogram& latency_histogram() const {
    return latency_hist_;
  }

 private:
  common::SimTime start_ = common::SimTime::zero();
  common::SimTime end_ = common::SimTime::zero();
  std::uint64_t ok_ = 0;
  std::uint64_t browse_ok_ = 0;
  std::uint64_t errors_ = 0;
  common::RunningStats latency_ms_;
  obs::Histogram latency_hist_;
};

}  // namespace ah::tpcw
