#include "tpcw/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/analysis.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::tpcw {

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  if (alpha < 0.0) throw std::invalid_argument("ZipfSampler: alpha < 0");
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("ZipfSampler: n exceeds guide-table range");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;

  // One guide bucket per rank keeps the expected walk length at one step
  // even for strongly skewed alphas (head ranks own many buckets; tail
  // buckets each cover few ranks).
  guide_.resize(n);
  const double buckets = static_cast<double>(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double edge = static_cast<double>(i) / buckets;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), edge);
    guide_[i] = static_cast<std::uint32_t>(it - cdf_.begin());
  }
}

std::uint64_t ZipfSampler::rank_reference(double u) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ah::tpcw
