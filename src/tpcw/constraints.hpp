// TPC-W web-interaction response-time (WIRT) constraints.
//
// The TPC-W specification (clause 5.5) requires that 90% of each web
// interaction's responses complete within a per-interaction limit — a run
// whose WIPS was achieved by starving some interaction class does not
// comply.  This module tracks per-interaction latency samples and checks
// the 90th percentile against the spec limits, which is how a tuned
// configuration is shown to be *valid*, not just fast.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "tpcw/interactions.hpp"

namespace ah::tpcw {

/// Spec table: 90th-percentile limit per interaction, in seconds.
[[nodiscard]] double wirt_limit_seconds(Interaction interaction);

class WirtTracker {
 public:
  struct Result {
    Interaction interaction{};
    std::size_t samples = 0;
    double p90_seconds = 0.0;
    double limit_seconds = 0.0;
    bool compliant = true;  // vacuously true without samples
  };

  /// Records one successful interaction's response time.
  void record(Interaction interaction, common::SimTime latency);

  /// Discards all samples (per-iteration re-arm).
  void reset();

  [[nodiscard]] std::size_t samples(Interaction interaction) const;

  /// Per-interaction compliance snapshot (nearest-rank 90th percentile).
  [[nodiscard]] Result check(Interaction interaction) const;

  /// All 14 interactions.
  [[nodiscard]] std::vector<Result> check_all() const;

  /// True when every interaction with samples meets its limit.
  [[nodiscard]] bool compliant() const;

 private:
  std::array<std::vector<double>, kInteractionCount> latencies_s_;
};

}  // namespace ah::tpcw
