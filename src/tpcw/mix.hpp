// TPC-W workload mixes (paper Table 1).
//
// A Mix assigns each of the 14 interactions a weight; the three standard
// mixes (Browsing / Shopping / Ordering) use the exact percentages of the
// TPC-W specification as reprinted in the paper.  Sampling draws an
// interaction i.i.d. from the mix, which reproduces the stationary
// distribution of the spec's Markov transition matrices.
#pragma once

#include <array>
#include <string_view>

#include "common/analysis.hpp"
#include "common/rng.hpp"
#include "tpcw/interactions.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::tpcw {

enum class WorkloadKind : int { kBrowsing = 0, kShopping = 1, kOrdering = 2 };

inline constexpr int kWorkloadCount = 3;

[[nodiscard]] std::string_view workload_name(WorkloadKind kind);

class Mix {
 public:
  /// Weights need not sum to 1; they are normalized internally.
  /// Throws std::invalid_argument if all weights are zero or any negative.
  explicit Mix(const std::array<double, kInteractionCount>& weights);

  /// The three standard mixes.
  [[nodiscard]] static const Mix& standard(WorkloadKind kind);

  /// Normalized weight of an interaction.
  [[nodiscard]] double weight(Interaction interaction) const;

  /// Aggregate weight of Browse-class interactions (0.95 / 0.80 / 0.50 for
  /// the standard mixes).
  [[nodiscard]] double browse_fraction() const;

  /// Draws an interaction.
  [[nodiscard]] Interaction sample(common::Rng& rng) const;

 private:
  std::array<double, kInteractionCount> weights_{};
  std::array<double, kInteractionCount> cumulative_{};
};

}  // namespace ah::tpcw
