// The 14 TPC-W web interactions and their resource-demand profiles.
//
// Profiles encode how each interaction exercises the three tiers: which
// pages the proxy may cache, how much servlet CPU the page generation
// needs, and the database query mix behind it.  The split follows the
// TPC-W 1.8 specification's page definitions (e.g. Best Sellers is a
// two-join query; Buy Confirm writes order + order-line + updates stock).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/analysis.hpp"
#include "webstack/request.hpp"

AH_IMMUTABLE_STATE_FILE;

namespace ah::tpcw {

enum class Interaction : int {
  kHome = 0,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchRequest,
  kSearchResults,
  kShoppingCart,
  kCustomerRegistration,
  kBuyRequest,
  kBuyConfirm,
  kOrderInquiry,
  kOrderDisplay,
  kAdminRequest,
  kAdminConfirm,
};

inline constexpr int kInteractionCount = 14;

[[nodiscard]] std::string_view interaction_name(Interaction interaction);

/// True for interactions the TPC-W spec classifies as "Browse" (the rest
/// are "Order").
[[nodiscard]] bool is_browse(Interaction interaction);

/// Demand profile for an interaction (shared, immutable).
[[nodiscard]] const webstack::RequestProfile& profile_for(
    Interaction interaction);

/// Number of distinct cacheable objects an interaction's pages span:
/// 1 for single static pages, the item count for product detail, the
/// subject count for listing pages, 0 for non-cacheable interactions.
[[nodiscard]] std::uint64_t object_space(Interaction interaction,
                                         std::uint64_t item_count);

/// Stable object-id encoding: interaction tag in the high bits, page
/// identity in the low bits.
[[nodiscard]] std::uint64_t make_object_id(Interaction interaction,
                                           std::uint64_t sub_id);

}  // namespace ah::tpcw
