// Emulated browsers and the workload driver.
//
// A closed-loop population of emulated browsers (EBs), as in the TPC-W
// remote-browser-emulator: each EB issues one interaction, waits for the
// response, thinks (exponential, mean 7 s), and repeats.  The interaction is
// drawn from the active Mix, which the driver can swap at runtime — that is
// how the changing-workload experiment (paper Fig 5) is expressed.
//
// Cacheable page identities draw from Zipf popularity; their sizes are a
// deterministic function of the page identity, so a page has the same size
// every time it is fetched (a cache would otherwise see phantom updates).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/object_pool.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/histogram.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "tpcw/constraints.hpp"
#include "tpcw/interactions.hpp"
#include "tpcw/metrics.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/zipf.hpp"
#include "webstack/retry_policy.hpp"
#include "webstack/router.hpp"

namespace ah::tpcw {

class Workload {
 public:
  struct Config {
    int browsers = 530;
    std::uint64_t item_count = 10000;  // TPC-W scale factor
    double zipf_alpha = 0.8;
    /// TPC-W specifies a 7 s mean think time; we run 3.5 s with half the
    /// browser population, which offers the same interaction rate while
    /// making response-time changes visible in WIPS at practical browser
    /// counts (documented substitution, see DESIGN.md).
    common::SimTime think_mean = common::SimTime::seconds(3.5);
    common::SimTime think_cap = common::SimTime::seconds(35.0);
    /// A browser whose interaction fails (connection refused at a full
    /// accept queue) retries the same page per this policy, then gives up
    /// and browses on — the TPC-W emulated-browser behaviour of
    /// re-requesting the page.  The defaults (fixed 1.5 s interval, 4
    /// retries, no jitter) are the historical behaviour; fault scenarios
    /// opt into growth/jitter to avoid synchronized retry storms.
    webstack::RetryPolicy retry;
    std::uint64_t seed = 2004;
    /// Optional pre-built item-popularity table.  When it matches
    /// (item_count, zipf_alpha) the workload samples from it instead of
    /// building a private copy — many lines/replicas then share one CDF
    /// (~120 KB at the TPC-W 10k scale).  Sampling draws from the caller's
    /// RNG, so a shared table is bit-identical to a private one.
    std::shared_ptr<const ZipfSampler> shared_popularity;
  };

  Workload(sim::Simulator& sim, webstack::FrontendRouter& frontend,
           const Mix* mix, WipsMeter& meter, const Config& config);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Launches all browsers (staggered over one mean think time so the
  /// closed loop does not start phase-locked).
  void start();

  /// Stops issuing new interactions; in-flight ones complete.
  void stop();

  /// Swaps the active mix; browsers pick it up on their next interaction.
  void set_mix(const Mix* mix);

  /// Attaches scenario arrival modulation (nullptr detaches): mean think
  /// time is divided by the modulation factor at each draw, so a 3x flash
  /// crowd triples the offered interaction rate.  A null or identity
  /// modulation leaves every think-time draw bit-identical to an
  /// unmodulated run (x / 1.0 == x exactly).  Not owned; must outlive the
  /// workload or be detached.
  void set_arrival_modulation(const sim::ArrivalModulation* arrival) {
    arrival_ = arrival;
  }

  /// Schedules the scenario's mix drift: each change swaps to the named
  /// standard mix ("browsing", "shopping", "ordering") at its time.
  /// Throws std::invalid_argument on an unknown mix name.
  void apply_mix_schedule(const std::vector<sim::MixChange>& changes);

  /// Attaches a WIRT tracker: successful interactions report their
  /// response time per interaction class (TPC-W clause 5.5 compliance).
  /// Pass nullptr to detach.  Not owned.
  void set_wirt_tracker(WirtTracker* tracker) { wirt_ = tracker; }
  [[nodiscard]] const Mix* mix() const { return mix_; }

  /// Latency distribution per TPC-W interaction class, over the whole run
  /// (successful interactions only).  Always recording: a histogram record
  /// is a counter increment, so observation stays passive.
  [[nodiscard]] const obs::Histogram& interaction_latency(
      Interaction interaction) const {
    return interaction_latency_[static_cast<std::size_t>(interaction)];
  }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t interactions_issued() const { return issued_; }

  /// The popularity table actually in use (shared or privately owned).
  [[nodiscard]] const ZipfSampler& item_popularity() const {
    return *popularity_;
  }

 private:
  /// Parked state for a backed-off retry: Request + bookkeeping exceeds the
  /// 48-byte EventFn inline buffer, so the scheduled closure captures one
  /// pooled pointer instead (retries are rare — error responses only — but
  /// the SBO-required EventFn makes even the rare path allocation-free).
  struct Retry {
    Workload* self = nullptr;
    std::size_t browser_index = 0;
    webstack::Request request;
    int retries_left = 0;
  };

  void browser_issue(std::size_t browser_index);
  void dispatch(std::size_t browser_index, const webstack::Request& request,
                int retries_left);
  void redispatch(Retry* retry);
  void browser_think(std::size_t browser_index);
  [[nodiscard]] webstack::Request make_request(common::Rng& rng);
  /// Deterministic size for a cacheable page identity.
  [[nodiscard]] common::Bytes object_size(std::uint64_t object_id,
                                          common::Bytes mean) const;

  sim::Simulator& sim_;
  webstack::FrontendRouter& frontend_;
  const Mix* mix_;
  WipsMeter& meter_;
  Config config_;
  /// Scenario arrival modulation; null = unmodulated.
  const sim::ArrivalModulation* arrival_ = nullptr;

  /// Popularity table: a shared read-only CDF when the config supplies a
  /// matching one, otherwise a privately built copy.  popularity_ points at
  /// whichever is active.
  std::shared_ptr<const ZipfSampler> shared_popularity_;
  std::unique_ptr<ZipfSampler> owned_popularity_;
  const ZipfSampler* popularity_ = nullptr;
  common::ObjectPool<Retry> retries_;
  std::vector<common::Rng> browser_rngs_;
  std::array<obs::Histogram, kInteractionCount> interaction_latency_;
  WirtTracker* wirt_ = nullptr;
  bool running_ = false;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t issued_ = 0;
};

}  // namespace ah::tpcw
