#include "tpcw/workload.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/analysis.hpp"

// The browser issue/dispatch/think loop runs once per interaction; only the
// constructor (sampler setup) is cold.
AH_HOT_PATH_FILE;

namespace ah::tpcw {

Workload::Workload(sim::Simulator& sim, webstack::FrontendRouter& frontend,
                   const Mix* mix, WipsMeter& meter, const Config& config)
    : sim_(sim),
      frontend_(frontend),
      mix_(mix),
      meter_(meter),
      config_(config) {
  assert(mix_ != nullptr);
  assert(config_.browsers > 0);
  if (config_.shared_popularity != nullptr &&
      config_.shared_popularity->size() == config_.item_count &&
      config_.shared_popularity->alpha() == config_.zipf_alpha) {
    shared_popularity_ = config_.shared_popularity;
    popularity_ = shared_popularity_.get();
  } else {
    AH_LINT_ALLOW(hot_path_alloc, "one-time sampler construction at startup");
    owned_popularity_ = std::make_unique<ZipfSampler>(config_.item_count,
                                                      config_.zipf_alpha);
    popularity_ = owned_popularity_.get();
  }
  common::Rng seeder(config_.seed);
  browser_rngs_.reserve(static_cast<std::size_t>(config_.browsers));
  for (int i = 0; i < config_.browsers; ++i) {
    browser_rngs_.push_back(seeder.split(static_cast<std::uint64_t>(i)));
  }
}

void Workload::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < browser_rngs_.size(); ++i) {
    // Stagger initial arrivals uniformly over one mean think time.
    const double offset = browser_rngs_[i].uniform() *
                          config_.think_mean.as_seconds();
    sim_.schedule(common::SimTime::seconds(offset),
                  [this, i] { browser_issue(i); });
  }
}

void Workload::stop() { running_ = false; }

void Workload::set_mix(const Mix* mix) {
  assert(mix != nullptr);
  mix_ = mix;
}

common::Bytes Workload::object_size(std::uint64_t object_id,
                                    common::Bytes mean) const {
  // Deterministic per-object size in [0.5, 2.0) × mean, from a hash of the
  // page identity.
  std::uint64_t h = object_id;
  h = common::splitmix64(h);
  const double factor = 0.5 + 1.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return std::max<common::Bytes>(
      512, static_cast<common::Bytes>(static_cast<double>(mean) * factor));
}

webstack::Request Workload::make_request(common::Rng& rng) {
  const Interaction interaction = mix_->sample(rng);
  const auto& profile = profile_for(interaction);

  webstack::Request request;
  request.id = next_request_id_++;
  request.profile = &profile;
  request.issued_at = sim_.now();

  if (profile.cacheable) {
    const std::uint64_t space = object_space(interaction, config_.item_count);
    std::uint64_t sub_id = 0;
    if (interaction == Interaction::kProductDetail) {
      sub_id = popularity_->sample(rng);
    } else if (space > 1) {
      sub_id = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(space) - 1));
    }
    request.object_id = make_object_id(interaction, sub_id);
    request.response_bytes =
        object_size(request.object_id, profile.response_bytes);
  } else {
    // Dynamic pages vary per request.
    request.object_id = make_object_id(interaction, request.id);
    const double factor = 0.6 + 0.8 * rng.uniform();
    request.response_bytes = std::max<common::Bytes>(
        512, static_cast<common::Bytes>(
                 static_cast<double>(profile.response_bytes) * factor));
  }
  return request;
}

void Workload::browser_issue(std::size_t browser_index) {
  AH_HOT_ENTRY;  // per-interaction loop: where load enters the system
  if (!running_) return;
  common::Rng& rng = browser_rngs_[browser_index];
  const webstack::Request request = make_request(rng);
  ++issued_;
  dispatch(browser_index, request, config_.retry.max_retries);
}

void Workload::dispatch(std::size_t browser_index,
                        const webstack::Request& request, int retries_left) {
  const bool browse =
      is_browse(static_cast<Interaction>(request.object_id >> 48));
  const common::SimTime issued_at = request.issued_at;
  auto on_response = [this, browser_index, request, retries_left, browse,
                      issued_at](const webstack::Response& response) {
    // The WIPS meter and per-interaction histograms are the measurement
    // itself (always attached, never null), not optional telemetry sinks.
    AH_LINT_ALLOW(obs_hot_path, "WipsMeter is the required measurement path");
    meter_.record(response.ok, browse, sim_.now(), sim_.now() - issued_at);
    if (response.ok) {
      const auto interaction =
          static_cast<Interaction>(request.object_id >> 48);
      AH_LINT_ALLOW(obs_hot_path, "always-present interaction histogram");
      interaction_latency_[static_cast<std::size_t>(interaction)].record(
          sim_.now() - issued_at);
      if (wirt_ != nullptr) {
        AH_LINT_ALLOW(obs_hot_path, "explicitly null-checked WIRT recorder");
        wirt_->record(interaction, sim_.now() - issued_at);
      }
    }
    if (!response.ok && retries_left > 0 && running_) {
      // Re-request the same page after a back-off, like a user
      // reloading an error page.  The retry keeps the original
      // issue timestamp so latency reflects the user's real wait.
      // The state is parked in a pooled struct: Request + bookkeeping
      // exceeds the EventFn inline buffer, and EventFn requires SBO.
      Retry* retry = retries_.acquire();
      retry->self = this;
      retry->browser_index = browser_index;
      retry->request = request;
      retry->retries_left = retries_left;
      const int attempt = config_.retry.max_retries - retries_left;
      sim_.schedule(config_.retry.backoff(attempt, request.id),
                    [retry] { retry->self->redispatch(retry); });
      return;
    }
    browser_think(browser_index);
  };
  // The browser continuation is the widest closure crossing the ResponseFn
  // interface; if it stops fitting, every request starts allocating.
  static_assert(webstack::ResponseFn::stores_inline<decltype(on_response)>(),
                "browser continuation must not allocate");
  frontend_.route(request, std::move(on_response));
}

void Workload::redispatch(Retry* retry) {
  const std::size_t browser_index = retry->browser_index;
  const webstack::Request request = retry->request;
  const int retries_left = retry->retries_left;
  retries_.release(retry);
  dispatch(browser_index, request, retries_left - 1);
}

void Workload::browser_think(std::size_t browser_index) {
  if (!running_) return;
  common::Rng& rng = browser_rngs_[browser_index];
  // Arrival modulation divides the mean think time: factor 3 = a third of
  // the thinking, three times the offered load.  The division by exactly
  // 1.0 (identity or no modulation) reproduces the unmodulated draw bit
  // for bit.
  double mean_s = config_.think_mean.as_seconds();
  if (arrival_ != nullptr) mean_s /= arrival_->factor(sim_.now());
  const double think =
      std::min(rng.exponential(mean_s), config_.think_cap.as_seconds());
  sim_.schedule(common::SimTime::seconds(think),
                [this, browser_index] { browser_issue(browser_index); });
}

void Workload::apply_mix_schedule(
    const std::vector<sim::MixChange>& changes) {
  for (const sim::MixChange& change : changes) {
    const Mix* mix = nullptr;
    if (change.mix == "browsing") {
      mix = &Mix::standard(WorkloadKind::kBrowsing);
    } else if (change.mix == "shopping") {
      mix = &Mix::standard(WorkloadKind::kShopping);
    } else if (change.mix == "ordering") {
      mix = &Mix::standard(WorkloadKind::kOrdering);
    } else {
      AH_LINT_ALLOW(hot_path_alloc, "cold setup path: error construction");
      throw std::invalid_argument("unknown mix in scenario: " + change.mix);
    }
    sim_.schedule_at(change.at, [this, mix] { set_mix(mix); });
  }
}

}  // namespace ah::tpcw
