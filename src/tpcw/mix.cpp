#include "tpcw/mix.hpp"

#include <stdexcept>

#include "common/analysis.hpp"

AH_IMMUTABLE_STATE_FILE;
// Mix::sample draws the interaction for every request.
AH_HOT_PATH_FILE;

namespace ah::tpcw {

std::string_view workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kBrowsing: return "Browsing";
    case WorkloadKind::kShopping: return "Shopping";
    case WorkloadKind::kOrdering: return "Ordering";
  }
  return "?";
}

Mix::Mix(const std::array<double, kInteractionCount>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Mix: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Mix: all weights zero");
  double cumulative = 0.0;
  for (int i = 0; i < kInteractionCount; ++i) {
    weights_[i] = weights[i] / total;
    cumulative += weights_[i];
    cumulative_[i] = cumulative;
  }
  cumulative_[kInteractionCount - 1] = 1.0;  // guard against rounding
}

const Mix& Mix::standard(WorkloadKind kind) {
  // Paper Table 1, in Interaction enum order:
  //   Home, New Products, Best Sellers, Product Detail, Search Request,
  //   Search Results, Shopping Cart, Customer Registration, Buy Request,
  //   Buy Confirm, Order Inquiry, Order Display, Admin Request,
  //   Admin Confirm.
  static const Mix browsing{{29.00, 11.00, 11.00, 21.00, 12.00, 11.00,
                             2.00, 0.82, 0.75, 0.69, 0.30, 0.25, 0.10,
                             0.09}};
  static const Mix shopping{{16.00, 5.00, 5.00, 17.00, 20.00, 17.00,
                             11.60, 3.00, 2.60, 1.20, 0.75, 0.66, 0.10,
                             0.09}};
  static const Mix ordering{{9.12, 0.46, 0.46, 12.35, 14.53, 13.08,
                             13.53, 12.86, 12.73, 10.18, 0.25, 0.22, 0.12,
                             0.11}};
  switch (kind) {
    case WorkloadKind::kBrowsing: return browsing;
    case WorkloadKind::kShopping: return shopping;
    case WorkloadKind::kOrdering: return ordering;
  }
  return browsing;
}

double Mix::weight(Interaction interaction) const {
  return weights_[static_cast<int>(interaction)];
}

double Mix::browse_fraction() const {
  double total = 0.0;
  for (int i = 0; i < kInteractionCount; ++i) {
    if (is_browse(static_cast<Interaction>(i))) total += weights_[i];
  }
  return total;
}

Interaction Mix::sample(common::Rng& rng) const {
  const double u = rng.uniform();
  for (int i = 0; i < kInteractionCount; ++i) {
    if (u < cumulative_[i]) return static_cast<Interaction>(i);
  }
  return static_cast<Interaction>(kInteractionCount - 1);
}

}  // namespace ah::tpcw
