#include "tpcw/constraints.hpp"

#include "common/analysis.hpp"
#include "common/stats.hpp"

// WirtTracker::record runs once per successful interaction.
AH_HOT_PATH_FILE;

namespace ah::tpcw {

double wirt_limit_seconds(Interaction interaction) {
  // TPC-W v1.8 clause 5.5.1 (seconds, 90th percentile).
  switch (interaction) {
    case Interaction::kHome:                 return 3.0;
    case Interaction::kNewProducts:          return 5.0;
    case Interaction::kBestSellers:          return 5.0;
    case Interaction::kProductDetail:        return 3.0;
    case Interaction::kSearchRequest:        return 3.0;
    case Interaction::kSearchResults:        return 10.0;
    case Interaction::kShoppingCart:         return 3.0;
    case Interaction::kCustomerRegistration: return 3.0;
    case Interaction::kBuyRequest:           return 3.0;
    case Interaction::kBuyConfirm:           return 5.0;
    case Interaction::kOrderInquiry:         return 3.0;
    case Interaction::kOrderDisplay:         return 3.0;
    case Interaction::kAdminRequest:         return 3.0;
    case Interaction::kAdminConfirm:         return 20.0;
  }
  return 3.0;
}

void WirtTracker::record(Interaction interaction, common::SimTime latency) {
  latencies_s_[static_cast<int>(interaction)].push_back(
      latency.as_seconds());
}

void WirtTracker::reset() {
  for (auto& samples : latencies_s_) samples.clear();
}

std::size_t WirtTracker::samples(Interaction interaction) const {
  return latencies_s_[static_cast<int>(interaction)].size();
}

WirtTracker::Result WirtTracker::check(Interaction interaction) const {
  const auto& samples = latencies_s_[static_cast<int>(interaction)];
  Result result;
  result.interaction = interaction;
  result.samples = samples.size();
  result.limit_seconds = wirt_limit_seconds(interaction);
  if (!samples.empty()) {
    result.p90_seconds = common::percentile(samples, 0.90);
    result.compliant = result.p90_seconds <= result.limit_seconds;
  }
  return result;
}

std::vector<WirtTracker::Result> WirtTracker::check_all() const {
  std::vector<Result> results;
  results.reserve(kInteractionCount);
  for (int i = 0; i < kInteractionCount; ++i) {
    results.push_back(check(static_cast<Interaction>(i)));
  }
  return results;
}

bool WirtTracker::compliant() const {
  for (int i = 0; i < kInteractionCount; ++i) {
    if (!check(static_cast<Interaction>(i)).compliant) return false;
  }
  return true;
}

}  // namespace ah::tpcw
