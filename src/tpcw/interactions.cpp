#include "tpcw/interactions.hpp"

#include <array>
#include <cassert>

#include "common/analysis.hpp"

AH_IMMUTABLE_STATE_FILE;
// The profile table is read per request (profile_for in make_request).
AH_HOT_PATH_FILE;

namespace ah::tpcw {

namespace {

using webstack::RequestProfile;
using common::SimTime;

/// Builds the immutable profile table.  Query mixes per the TPC-W page
/// definitions: {simple selects, joins, updates, inserts}.
std::array<RequestProfile, kInteractionCount> build_profiles() {
  std::array<RequestProfile, kInteractionCount> p{};

  auto set = [&](Interaction i, bool cacheable, int resp_kb, int proxy_us,
                 double app_ms, int qs, int qj, int qu, int qi) {
    auto& prof = p[static_cast<int>(i)];
    prof.name = std::string(interaction_name(i));
    prof.cacheable = cacheable;
    prof.response_bytes = static_cast<common::Bytes>(resp_kb) * 1024;
    prof.proxy_cpu = SimTime::micros(proxy_us);
    prof.app_cpu = SimTime::seconds(app_ms / 1000.0);
    prof.queries[0] = qs;
    prof.queries[1] = qj;
    prof.queries[2] = qu;
    prof.queries[3] = qi;
  };

  // Demands are calibrated to the paper's testbed generation (dual
  // 1.67 GHz, Java servlets, MyISAM): page generation costs tens of
  // milliseconds and a closed loop of ~1000 emulated browsers drives the
  // default configuration into the knee of the bottleneck tier.
  //   interaction                 cache  KB  pxy_us app_ms  sel join upd ins
  set(Interaction::kHome,           true, 12, 2500,  12.0,   1,  0,   0,  0);
  set(Interaction::kNewProducts,    true, 16, 2500,  20.0,   1,  1,   0,  0);
  set(Interaction::kBestSellers,    true, 16, 2500,  20.0,   0,  2,   0,  0);
  set(Interaction::kProductDetail,  true, 10, 2500,  12.0,   1,  0,   0,  0);
  set(Interaction::kSearchRequest,  true,  6, 2000,   8.0,   0,  0,   0,  0);
  set(Interaction::kSearchResults, false, 14, 2000,  24.0,   1,  1,   0,  0);
  set(Interaction::kShoppingCart,  false, 10, 2000,  20.0,   2,  0,   1,  0);
  set(Interaction::kCustomerRegistration,
                                    true,  6, 2000,   8.0,   0,  0,   0,  0);
  set(Interaction::kBuyRequest,    false, 10, 2000,  24.0,   2,  0,   1,  1);
  set(Interaction::kBuyConfirm,    false,  8, 2000,  32.0,   2,  0,   2,  2);
  set(Interaction::kOrderInquiry,   true,  5, 2000,   6.0,   0,  0,   0,  0);
  set(Interaction::kOrderDisplay,  false,  9, 2000,  20.0,   2,  1,   0,  0);
  set(Interaction::kAdminRequest,  false,  8, 2000,  16.0,   1,  0,   0,  0);
  set(Interaction::kAdminConfirm,  false,  8, 2000,  24.0,   1,  0,   1,  0);
  return p;
}

const std::array<RequestProfile, kInteractionCount>& profiles() {
  static const auto table = build_profiles();
  return table;
}

/// TPC-W item table subjects (used by New Products / Best Sellers pages).
constexpr std::uint64_t kSubjectCount = 24;

}  // namespace

std::string_view interaction_name(Interaction interaction) {
  switch (interaction) {
    case Interaction::kHome:                 return "Home";
    case Interaction::kNewProducts:          return "New Products";
    case Interaction::kBestSellers:          return "Best Sellers";
    case Interaction::kProductDetail:        return "Product Detail";
    case Interaction::kSearchRequest:        return "Search Request";
    case Interaction::kSearchResults:        return "Search Results";
    case Interaction::kShoppingCart:         return "Shopping Cart";
    case Interaction::kCustomerRegistration: return "Customer Registration";
    case Interaction::kBuyRequest:           return "Buy Request";
    case Interaction::kBuyConfirm:           return "Buy Confirm";
    case Interaction::kOrderInquiry:         return "Order Inquiry";
    case Interaction::kOrderDisplay:         return "Order Display";
    case Interaction::kAdminRequest:         return "Admin Request";
    case Interaction::kAdminConfirm:         return "Admin Confirm";
  }
  return "?";
}

bool is_browse(Interaction interaction) {
  switch (interaction) {
    case Interaction::kHome:
    case Interaction::kNewProducts:
    case Interaction::kBestSellers:
    case Interaction::kProductDetail:
    case Interaction::kSearchRequest:
    case Interaction::kSearchResults:
      return true;
    default:
      return false;
  }
}

const webstack::RequestProfile& profile_for(Interaction interaction) {
  return profiles()[static_cast<int>(interaction)];
}

std::uint64_t object_space(Interaction interaction,
                           std::uint64_t item_count) {
  if (!profile_for(interaction).cacheable) return 0;
  switch (interaction) {
    case Interaction::kProductDetail: return item_count;
    case Interaction::kNewProducts:
    case Interaction::kBestSellers:   return kSubjectCount;
    default:                          return 1;  // single static page
  }
}

std::uint64_t make_object_id(Interaction interaction, std::uint64_t sub_id) {
  return (static_cast<std::uint64_t>(interaction) << 48) | sub_id;
}

}  // namespace ah::tpcw
