// Zipf-distributed popularity sampling.
//
// Web object popularity is heavy-tailed; TPC-W item access concentrates on
// best sellers.  A precomputed CDF over N ranks gives exact,
// platform-independent distributions (important for golden tests).  Sampling
// uses a guide table (indexed inverse CDF): bucket i caches the first rank
// whose CDF can cover draws landing in [i/G, (i+1)/G), so the binary search
// collapses to an O(1) expected lookup plus a short linear walk — while
// returning bit-for-bit the same rank std::lower_bound would.
#pragma once

#include <cstdint>
#include <vector>

#include "common/analysis.hpp"
#include "common/rng.hpp"

AH_IMMUTABLE_STATE_FILE;
// sample()/rank() run once per cacheable request.
AH_HOT_PATH_FILE;

namespace ah::tpcw {

class ZipfSampler {
 public:
  /// P(rank k) ∝ 1 / k^alpha for k in [1, n].  alpha = 0 degenerates to
  /// uniform.  Throws std::invalid_argument for n == 0 or alpha < 0.
  ZipfSampler(std::uint64_t n, double alpha);

  /// Draws a rank in [0, n).
  [[nodiscard]] std::uint64_t sample(common::Rng& rng) const {
    return rank(rng.uniform());
  }

  /// Maps a uniform draw u in [0, 1) to its rank via the guide table.
  /// Exactly equivalent to rank_reference() for every u (the guide bucket
  /// only narrows the search range; the walk re-establishes the
  /// lower_bound condition), just without the binary search.
  [[nodiscard]] std::uint64_t rank(double u) const {
    const auto bucket = static_cast<std::size_t>(
        static_cast<double>(guide_.size()) * u);
    // FP rounding in the bucket index can land one off in either direction;
    // the guards below walk to the exact lower_bound answer regardless.
    std::size_t k = guide_[bucket < guide_.size() ? bucket
                                                  : guide_.size() - 1];
    while (k > 0 && cdf_[k - 1] >= u) --k;
    while (cdf_[k] < u) ++k;
    return k;
  }

  /// The O(log n) binary-search implementation the guide table replaced;
  /// kept as the oracle for equivalence tests.
  [[nodiscard]] std::uint64_t rank_reference(double u) const;

  [[nodiscard]] std::uint64_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Probability mass of rank k (0-based).
  [[nodiscard]] double pmf(std::uint64_t k) const;

 private:
  double alpha_;
  std::vector<double> cdf_;
  /// guide_[i] = lower_bound(cdf_, i / guide_.size()); a draw u in bucket i
  /// can never map to a smaller rank, so the walk starts there.
  std::vector<std::uint32_t> guide_;
};

}  // namespace ah::tpcw
