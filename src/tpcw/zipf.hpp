// Zipf-distributed popularity sampling.
//
// Web object popularity is heavy-tailed; TPC-W item access concentrates on
// best sellers.  A precomputed CDF over N ranks gives O(log N) sampling and
// exact, platform-independent distributions (important for golden tests).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ah::tpcw {

class ZipfSampler {
 public:
  /// P(rank k) ∝ 1 / k^alpha for k in [1, n].  alpha = 0 degenerates to
  /// uniform.  Throws std::invalid_argument for n == 0 or alpha < 0.
  ZipfSampler(std::uint64_t n, double alpha);

  /// Draws a rank in [0, n).
  [[nodiscard]] std::uint64_t sample(common::Rng& rng) const;

  [[nodiscard]] std::uint64_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Probability mass of rank k (0-based).
  [[nodiscard]] double pmf(std::uint64_t k) const;

 private:
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace ah::tpcw
