// Integer-adapted Nelder–Mead simplex tuner (paper §II.B).
//
// The Active Harmony adaptation controller searches the configuration space
// with the Nelder–Mead simplex method, adapted to this domain in two ways:
//
//   1. The objective is only defined on a bounded integer lattice, so every
//      proposed continuous point is *projected* (rounded and clamped) before
//      evaluation, and the measured cost stands in for the continuous value
//      ("simply using the resulting values from the nearest integer point").
//   2. Evaluation is external and asynchronous — one evaluation is one
//      measured iteration of the running system — so the tuner exposes an
//      ask/tell protocol rather than taking a callback.  Batch variants
//      expose all points awaiting evaluation at once (the whole initial
//      simplex, or all shrink replacements), which is what the parallel
//      evaluation in the cluster-tuning experiments exploits.
//
// Costs are minimized; callers maximizing a metric (WIPS) report its
// negation.  The optional extreme-value damping implements the improvement
// the paper proposes in §III.A: proposals that clamp against parameter
// bounds are pulled back toward the centroid instead of sitting on the
// boundary.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "harmony/parameter.hpp"
#include "harmony/tuner.hpp"

namespace ah::harmony {

struct SimplexOptions {
  double reflection = 1.0;   // alpha
  double expansion = 2.0;    // gamma
  double contraction = 0.5;  // beta
  double shrink = 0.5;       // delta
  /// Initial vertex offset as a fraction of each parameter's range
  /// (at least one lattice step).
  double init_scale = 0.25;
  /// Pull bound-clamped proposals toward the centroid (paper §III.A
  /// "slowly approach extreme values" future-work idea; see the ablation
  /// bench).
  bool damp_extremes = false;
  /// Blend factor toward the centroid when damping (0 = no move,
  /// 1 = full collapse onto the centroid).
  double damp_factor = 0.5;
};

class SimplexTuner final : public Tuner {
 public:
  enum class Phase {
    kInit,             // evaluating the initial simplex
    kReflect,          // evaluating a reflection point
    kExpand,           // evaluating an expansion point
    kContract,         // evaluating a contraction point
    kShrink,           // evaluating shrink replacements
  };

  SimplexTuner(ParameterSpace space, SimplexOptions options = {});

  SimplexTuner(const SimplexTuner&) = delete;
  SimplexTuner& operator=(const SimplexTuner&) = delete;

  [[nodiscard]] const ParameterSpace& space() const override {
    return space_;
  }
  [[nodiscard]] Phase phase() const { return phase_; }

  // -- Batch protocol ---------------------------------------------------
  /// All lattice points currently awaiting evaluation (never empty).
  [[nodiscard]] std::vector<PointI> pending() const override;
  /// Reports costs for *all* pending points, in the order `pending()`
  /// returned them, then advances the search.
  void report(std::span<const double> costs) override;

  // -- Sequential protocol ------------------------------------------------
  /// Next single point to evaluate.
  [[nodiscard]] PointI ask() const override;
  /// Cost for the point returned by the previous ask().
  void tell(double cost) override;

  /// Best lattice point seen so far and its cost.  Valid once at least one
  /// cost has been reported.
  [[nodiscard]] const PointI& best() const override { return best_point_; }
  [[nodiscard]] double best_cost() const override { return best_cost_; }

  [[nodiscard]] std::size_t evaluations() const override {
    return evaluations_;
  }
  /// Simplex diameter (max vertex distance in normalized coordinates);
  /// a convergence indicator.
  [[nodiscard]] double diameter() const;

 private:
  struct Vertex {
    PointD x;
    double cost = 0.0;
  };

  /// Projects, optionally damping bound-clamped coordinates toward the
  /// centroid `c`.
  [[nodiscard]] PointD propose(const PointD& raw, const PointD& centroid) const;
  void queue_point(PointD x);
  void advance();
  void sort_vertices();
  [[nodiscard]] PointD centroid_excluding_worst() const;
  void note_best(const PointD& x, double cost);
  void begin_reflection();

  ParameterSpace space_;
  SimplexOptions options_;

  std::vector<Vertex> vertices_;  // sorted by cost ascending once built
  Phase phase_ = Phase::kInit;

  // Points awaiting evaluation, with filled costs.
  std::vector<PointD> pending_points_;
  std::vector<std::optional<double>> pending_costs_;
  std::size_t ask_cursor_ = 0;

  // Step context.
  PointD centroid_;
  PointD reflected_;
  double reflected_cost_ = 0.0;

  PointI best_point_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
  std::size_t evaluations_ = 0;
};

}  // namespace ah::harmony
