#include "harmony/server.hpp"

#include <stdexcept>
#include <vector>

namespace ah::harmony {

SessionId HarmonyServer::create_session(std::string name,
                                        SessionOptions options) {
  sessions_.push_back(Slot{std::move(name), options, {}, nullptr});
  return static_cast<SessionId>(sessions_.size() - 1);
}

HarmonyServer::Slot& HarmonyServer::slot(SessionId id) {
  if (id >= sessions_.size()) {
    throw std::out_of_range("HarmonyServer: unknown session");
  }
  return sessions_[id];
}

const HarmonyServer::Slot& HarmonyServer::slot(SessionId id) const {
  if (id >= sessions_.size()) {
    throw std::out_of_range("HarmonyServer: unknown session");
  }
  return sessions_[id];
}

std::size_t HarmonyServer::register_parameter(SessionId id,
                                              TunableParameter parameter) {
  Slot& s = slot(id);
  if (s.session) {
    throw std::logic_error("HarmonyServer: session already started");
  }
  return s.space.add(std::move(parameter));
}

void HarmonyServer::start(SessionId id) {
  Slot& s = slot(id);
  if (s.session) {
    throw std::logic_error("HarmonyServer: session already started");
  }
  if (s.space.empty()) {
    throw std::logic_error("HarmonyServer: no parameters registered");
  }
  s.session =
      std::make_unique<TuningSession>(s.name, std::move(s.space), s.options);
}

bool HarmonyServer::started(SessionId id) const {
  return slot(id).session != nullptr;
}

const std::string& HarmonyServer::session_name(SessionId id) const {
  return slot(id).name;
}

TuningSession& HarmonyServer::started_session(SessionId id) {
  Slot& s = slot(id);
  if (!s.session) {
    throw std::logic_error("HarmonyServer: session not started");
  }
  return *s.session;
}

const TuningSession& HarmonyServer::started_session(SessionId id) const {
  const Slot& s = slot(id);
  if (!s.session) {
    throw std::logic_error("HarmonyServer: session not started");
  }
  return *s.session;
}

PointI HarmonyServer::get_configuration(SessionId id) const {
  return started_session(id).ask();
}

std::vector<PointI> HarmonyServer::get_pending(SessionId id) const {
  return started_session(id).pending();
}

void HarmonyServer::report_performance(SessionId id, double performance) {
  started_session(id).tell(-performance);
}

void HarmonyServer::report_performance_batch(
    SessionId id, std::span<const double> performances) {
  std::vector<double> costs;
  costs.reserve(performances.size());
  for (const double p : performances) costs.push_back(-p);
  started_session(id).report(costs);
}

PointI HarmonyServer::best_configuration(SessionId id) const {
  return started_session(id).best();
}

double HarmonyServer::best_performance(SessionId id) const {
  return -started_session(id).best_cost();
}

std::size_t HarmonyServer::evaluations(SessionId id) const {
  return started_session(id).evaluations();
}

std::optional<std::size_t> HarmonyServer::converged_at(SessionId id) const {
  return started_session(id).converged_at();
}

TuningSession& HarmonyServer::session(SessionId id) {
  return started_session(id);
}

const TuningSession& HarmonyServer::session(SessionId id) const {
  return started_session(id);
}

}  // namespace ah::harmony
