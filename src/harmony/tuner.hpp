// Abstract tuning kernel.
//
// The Adaptation Controller's kernel is pluggable: the paper uses the
// Nelder-Mead simplex (harmony/simplex.hpp), and related systems it cites
// (Nimrod/O) swap in other search strategies.  This interface is what the
// TuningSession drives; two reference baselines (random search and
// coordinate descent) live in harmony/baselines.hpp and are compared
// against the simplex in `bench_ablation_kernels`.
//
// Protocol (identical to SimplexTuner's):
//   * pending() lists >= 1 lattice points awaiting evaluation;
//   * ask() returns the next one; tell(cost) reports it (lower is better);
//   * report(costs) answers the whole pending batch at once.
#pragma once

#include <span>
#include <vector>

#include "harmony/parameter.hpp"

namespace ah::harmony {

class Tuner {
 public:
  virtual ~Tuner() = default;

  [[nodiscard]] virtual const ParameterSpace& space() const = 0;

  [[nodiscard]] virtual std::vector<PointI> pending() const = 0;
  [[nodiscard]] virtual PointI ask() const = 0;
  virtual void tell(double cost) = 0;
  virtual void report(std::span<const double> costs) = 0;

  [[nodiscard]] virtual const PointI& best() const = 0;
  [[nodiscard]] virtual double best_cost() const = 0;
  [[nodiscard]] virtual std::size_t evaluations() const = 0;
};

}  // namespace ah::harmony
