// A tuning session: one SimplexTuner plus the bookkeeping the experiments
// need — per-iteration history, best-so-far tracking, and the
// "iterations to converge" figure reported in the paper's Table 4.
//
// Convergence is declared when the best cost has not improved by more than
// `improvement_epsilon` (relative) for `patience` consecutive evaluations;
// the convergence iteration is the evaluation index of the last
// improvement.  The session never stops proposing points (Active Harmony
// tunes continuously); convergence is purely an observation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "harmony/baselines.hpp"
#include "harmony/parameter.hpp"
#include "harmony/simplex.hpp"
#include "harmony/tuner.hpp"

namespace ah::harmony {

/// Which search kernel drives the session (the paper uses kSimplex; the
/// baselines exist for the kernel ablation).
enum class TuningKernel { kSimplex, kRandomSearch, kCoordinateDescent };

struct SessionOptions {
  TuningKernel kernel = TuningKernel::kSimplex;
  SimplexOptions simplex;
  CoordinateDescentTuner::Options coordinate;
  std::uint64_t seed = 1;  // used by kRandomSearch
  /// Relative improvement below which an evaluation does not reset the
  /// convergence clock.
  double improvement_epsilon = 0.01;
  /// Evaluations without improvement after which the session counts as
  /// converged.
  std::size_t patience = 25;
};

class TuningSession {
 public:
  struct HistoryEntry {
    PointI configuration;
    double cost = 0.0;
  };

  TuningSession(std::string name, ParameterSpace space,
                SessionOptions options = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ParameterSpace& space() const {
    return tuner_->space();
  }
  [[nodiscard]] Tuner& tuner() { return *tuner_; }

  /// Points awaiting evaluation (>= 1; the whole batch during init/shrink).
  [[nodiscard]] std::vector<PointI> pending() const {
    return tuner_->pending();
  }

  /// Sequential protocol (see Tuner).
  [[nodiscard]] PointI ask() const { return tuner_->ask(); }
  void tell(double cost);

  /// Batch protocol.
  void report(std::span<const double> costs);

  [[nodiscard]] const PointI& best() const { return tuner_->best(); }
  [[nodiscard]] double best_cost() const { return tuner_->best_cost(); }

  [[nodiscard]] const std::vector<HistoryEntry>& history() const {
    return history_;
  }
  [[nodiscard]] std::size_t evaluations() const { return history_.size(); }

  /// Evaluation index of the last significant improvement, once the session
  /// has gone `patience` evaluations without one.
  [[nodiscard]] std::optional<std::size_t> converged_at() const;

 private:
  void observe(const PointI& configuration, double cost);

  std::string name_;
  SessionOptions options_;
  std::unique_ptr<Tuner> tuner_;
  std::vector<HistoryEntry> history_;

  double best_seen_ = 0.0;
  bool has_best_ = false;
  std::size_t last_improvement_ = 0;
};

}  // namespace ah::harmony
