#include "harmony/baselines.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ah::harmony {

// -- RandomSearchTuner -------------------------------------------------------

RandomSearchTuner::RandomSearchTuner(ParameterSpace space, std::uint64_t seed)
    : space_(std::move(space)), rng_(seed) {
  if (space_.empty()) {
    throw std::invalid_argument("RandomSearchTuner: empty parameter space");
  }
  // First evaluation is the default configuration, matching the simplex
  // (every kernel starts from what the administrator deployed).
  current_ = space_.defaults();
}

std::vector<PointI> RandomSearchTuner::pending() const { return {current_}; }

PointI RandomSearchTuner::ask() const { return current_; }

void RandomSearchTuner::tell(double cost) {
  if (!has_best_ || cost < best_cost_) {
    has_best_ = true;
    best_cost_ = cost;
    best_point_ = current_;
  }
  ++evaluations_;
  draw_next();
}

void RandomSearchTuner::report(std::span<const double> costs) {
  for (const double cost : costs) tell(cost);
}

void RandomSearchTuner::draw_next() { current_ = space_.random_point(rng_); }

// -- CoordinateDescentTuner --------------------------------------------------

CoordinateDescentTuner::CoordinateDescentTuner(ParameterSpace space,
                                               Options options)
    : space_(std::move(space)),
      options_(options),
      radius_(options.initial_radius) {
  if (space_.empty()) {
    throw std::invalid_argument(
        "CoordinateDescentTuner: empty parameter space");
  }
  if (options_.probes < 2) {
    throw std::invalid_argument("CoordinateDescentTuner: probes < 2");
  }
  if (options_.initial_radius <= 0.0 || options_.radius_decay <= 0.0 ||
      options_.radius_decay >= 1.0) {
    throw std::invalid_argument("CoordinateDescentTuner: invalid radii");
  }
  incumbent_ = space_.defaults();
  build_probes();
}

void CoordinateDescentTuner::build_probes() {
  probes_.clear();
  probe_costs_.clear();
  probe_cursor_ = 0;

  const auto& param = space_.parameter(dimension_);
  const double range = static_cast<double>(param.range());
  const double lo = std::max(
      static_cast<double>(param.min_value),
      static_cast<double>(incumbent_[dimension_]) - radius_ * range);
  const double hi = std::min(
      static_cast<double>(param.max_value),
      static_cast<double>(incumbent_[dimension_]) + radius_ * range);

  probes_.push_back(incumbent_);  // the incumbent is always re-probed
  for (int p = 0; p < options_.probes - 1; ++p) {
    const double t = options_.probes == 2
                         ? 0.5
                         : static_cast<double>(p) /
                               static_cast<double>(options_.probes - 2);
    PointI probe = incumbent_;
    probe[dimension_] = static_cast<std::int64_t>(std::llround(
        lo + t * (hi - lo)));
    probe = space_.clamp(std::move(probe));
    if (probe != incumbent_) probes_.push_back(std::move(probe));
  }
  // Degenerate ranges can collapse every probe onto the incumbent; the
  // incumbent alone still makes a valid (trivial) sweep.
}

std::vector<PointI> CoordinateDescentTuner::pending() const {
  return {probes_.begin() + static_cast<std::ptrdiff_t>(probe_cursor_),
          probes_.end()};
}

PointI CoordinateDescentTuner::ask() const {
  assert(probe_cursor_ < probes_.size());
  return probes_[probe_cursor_];
}

void CoordinateDescentTuner::tell(double cost) {
  assert(probe_cursor_ < probes_.size());
  probe_costs_.push_back(cost);
  if (!has_best_ || cost < best_cost_) {
    has_best_ = true;
    best_cost_ = cost;
    best_point_ = probes_[probe_cursor_];
  }
  ++evaluations_;
  ++probe_cursor_;
  if (probe_cursor_ == probes_.size()) finish_sweep();
}

void CoordinateDescentTuner::report(std::span<const double> costs) {
  for (const double cost : costs) tell(cost);
}

void CoordinateDescentTuner::finish_sweep() {
  // Fix the best probe of this sweep as the new incumbent value.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < probe_costs_.size(); ++i) {
    if (probe_costs_[i] < probe_costs_[winner]) winner = i;
  }
  incumbent_ = probes_[winner];

  ++dimension_;
  if (dimension_ == space_.dimensions()) {
    dimension_ = 0;
    radius_ *= options_.radius_decay;
    if (radius_ < options_.min_radius) {
      // Re-expand: the environment may have shifted (online tuning never
      // stops), so periodically widen the sweeps again.
      radius_ = options_.initial_radius;
    }
  }
  build_probes();
}

}  // namespace ah::harmony
