// Harmony client API — the application-facing facade.
//
// Real Active Harmony applications link a small client library and talk to
// the (remote, Tcl) Harmony server over a socket:
//
//   harmony_startup();
//   harmony_add_variable("cache_mem", 2, 512, 8);
//   ...
//   while (running) {
//     harmony_request_all();          // fetch the configuration to apply
//     run_one_iteration();
//     harmony_performance_update(w);  // report what it achieved
//   }
//
// HarmonyClient reproduces that call shape over an in-process HarmonyServer
// (the transport is a direct reference; the protocol structs in this header
// document the wire messages a socket transport would carry).  Multiple
// clients may attach to one server — each gets its own session, which is
// exactly the parameter-partitioning deployment of paper §III.B.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harmony/server.hpp"

namespace ah::harmony {

/// Wire-level messages of the client/server protocol (documented for
/// transport implementations; the in-process client bypasses
/// serialization but follows the same state machine).
namespace protocol {

enum class MessageType : std::uint8_t {
  kStartup,            // client -> server: create session
  kAddVariable,        // client -> server: register a tunable
  kStart,              // client -> server: freeze the parameter set
  kRequestAll,         // client -> server: fetch configuration
  kConfiguration,      // server -> client: the values to apply
  kPerformanceUpdate,  // client -> server: observed performance
  kBestRequest,        // client -> server: fetch best-so-far
};

struct Message {
  MessageType type{};
  std::string name;                  // session or variable name
  std::int64_t min_value = 0;        // kAddVariable
  std::int64_t max_value = 0;        // kAddVariable
  std::int64_t default_value = 0;    // kAddVariable
  std::vector<std::int64_t> values;  // kConfiguration
  double performance = 0.0;          // kPerformanceUpdate
};

}  // namespace protocol

class HarmonyClient {
 public:
  /// Attaches to a server.  The server must outlive the client.
  explicit HarmonyClient(HarmonyServer& server);

  /// harmony_startup: opens this client's tuning session.
  /// Throws std::logic_error when called twice.
  void startup(const std::string& application_name,
               SessionOptions options = {});

  /// harmony_add_variable: registers a tunable.  Returns its index.
  /// Must be called between startup() and start().
  std::size_t add_variable(const std::string& name, std::int64_t min_value,
                           std::int64_t max_value,
                           std::int64_t default_value);

  /// Freezes the variable set and starts the tuning session.
  void start();

  /// harmony_request_all: the configuration to apply for the next
  /// iteration.  Values are keyed by variable name.
  [[nodiscard]] std::map<std::string, std::int64_t> request_all() const;

  /// Positional variant of request_all (registration order).
  [[nodiscard]] PointI request_values() const;

  /// harmony_performance_update: reports the performance achieved under
  /// the configuration from the last request (higher is better).
  void performance_update(double performance);

  /// Best configuration and performance seen so far.
  [[nodiscard]] std::map<std::string, std::int64_t> best_all() const;
  [[nodiscard]] double best_performance() const;

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] std::size_t evaluations() const;

 private:
  void require_session() const;
  void require_started() const;
  [[nodiscard]] std::map<std::string, std::int64_t> keyed(
      const PointI& values) const;

  HarmonyServer& server_;
  SessionId session_ = 0;
  bool has_session_ = false;
  bool started_ = false;
  std::vector<std::string> variable_names_;
};

}  // namespace ah::harmony
