#include "harmony/config_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fmt.hpp"

namespace ah::harmony {

void write_configuration(std::ostream& out, const ParameterSpace& space,
                         const PointI& values, const std::string& comment) {
  if (values.size() != space.dimensions()) {
    throw std::invalid_argument("write_configuration: arity mismatch");
  }
  if (!comment.empty()) out << "# " << comment << "\n";
  for (std::size_t i = 0; i < space.dimensions(); ++i) {
    out << space.parameter(i).name << " = " << values[i] << "\n";
  }
}

void save_configuration(const std::string& path, const ParameterSpace& space,
                        const PointI& values, const std::string& comment) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_configuration: cannot open " + path);
  }
  write_configuration(out, space, values, comment);
  if (!out) {
    throw std::runtime_error("save_configuration: write failed: " + path);
  }
}

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

PointI read_configuration(std::istream& in, const ParameterSpace& space) {
  PointI values = space.defaults();
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(common::format(
          "read_configuration: line {}: expected 'name = value'",
          line_number));
    }
    const std::string name = trim(trimmed.substr(0, eq));
    const std::string value_text = trim(trimmed.substr(eq + 1));
    std::size_t index;
    try {
      index = space.index_of(name);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument(common::format(
          "read_configuration: line {}: unknown parameter '{}'",
          line_number, name));
    }
    std::int64_t value;
    try {
      std::size_t consumed = 0;
      value = std::stoll(value_text, &consumed);
      if (consumed != value_text.size()) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::invalid_argument(common::format(
          "read_configuration: line {}: bad value '{}'", line_number,
          value_text));
    }
    const auto& param = space.parameter(index);
    values[index] = std::clamp(value, param.min_value, param.max_value);
  }
  return values;
}

PointI load_configuration(const std::string& path,
                          const ParameterSpace& space) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_configuration: cannot open " + path);
  }
  return read_configuration(in, space);
}

}  // namespace ah::harmony
