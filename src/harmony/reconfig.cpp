#include "harmony/reconfig.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <stdexcept>

namespace ah::harmony {

Reconfigurer::Reconfigurer(ReconfigOptions options)
    : options_(std::move(options)) {
  if (options_.resources.empty()) {
    throw std::invalid_argument("Reconfigurer: no resource policies");
  }
  for (const auto& r : options_.resources) {
    if (r.low_threshold > r.high_threshold) {
      throw std::invalid_argument("Reconfigurer: low threshold > high");
    }
  }
}

double Reconfigurer::urgency(const NodeReading& reading) const {
  assert(reading.utilization.size() == options_.resources.size());
  double degree = 0.0;
  for (std::size_t j = 0; j < options_.resources.size(); ++j) {
    const auto& policy = options_.resources[j];
    if (reading.utilization[j] > policy.high_threshold) {
      degree = std::max(degree, policy.urgency_weight *
                                    (reading.utilization[j] -
                                     policy.high_threshold));
    }
  }
  return degree;
}

std::vector<const NodeReading*> Reconfigurer::overloaded(
    std::span<const NodeReading> readings) const {
  std::vector<const NodeReading*> list;
  for (const auto& r : readings) {
    if (urgency(r) > 0.0) list.push_back(&r);
  }
  // Step 3: most urgent first.  Node id breaks ties deterministically.
  std::stable_sort(list.begin(), list.end(),
                   [this](const NodeReading* a, const NodeReading* b) {
                     const double ua = urgency(*a);
                     const double ub = urgency(*b);
                     if (ua != ub) return ua > ub;
                     return a->node_id < b->node_id;
                   });
  return list;
}

std::vector<const NodeReading*> Reconfigurer::idle(
    std::span<const NodeReading> readings) const {
  std::vector<const NodeReading*> list;
  for (const auto& r : readings) {
    assert(r.utilization.size() == options_.resources.size());
    bool all_low = true;
    for (std::size_t j = 0; j < options_.resources.size(); ++j) {
      if (r.utilization[j] > options_.resources[j].low_threshold) {
        all_low = false;
        break;
      }
    }
    if (all_low) list.push_back(&r);
  }
  return list;
}

double Reconfigurer::move_cost(const NodeReading& donor) const {
  // Eq. 1: F + N_k * M_km - N_k * A_k.
  return options_.config_cost_seconds +
         donor.jobs * donor.move_cost_seconds -
         donor.jobs * donor.avg_process_seconds;
}

std::optional<ReconfigDecision> Reconfigurer::decide(
    std::span<const NodeReading> readings) const {
  const auto hot = overloaded(readings);
  if (hot.empty()) return std::nullopt;
  const auto cold = idle(readings);
  if (cold.empty()) return std::nullopt;

  // Tier populations, for the "at least one node left per tier" rule
  // (step 4(b)).
  std::map<int, int> tier_size;
  for (const auto& r : readings) ++tier_size[r.tier];

  // The paper takes i = Head(L1); when no donor qualifies for it we fall
  // through to the next most urgent node rather than giving up (a natural
  // generalisation — with a single overloaded node the behaviour is
  // identical).
  for (const NodeReading* i : hot) {
    const NodeReading* best_donor = nullptr;
    double best_cost = std::numeric_limits<double>::max();
    for (const NodeReading* k : cold) {
      if (k->tier == i->tier) continue;            // 4(a)
      if (tier_size[k->tier] <= 1) continue;       // 4(b)
      const double cost = move_cost(*k);           // 4(c)
      if (cost < best_cost ||
          (cost == best_cost && best_donor != nullptr &&
           k->node_id < best_donor->node_id)) {
        best_cost = cost;
        best_donor = k;
      }
    }
    if (best_donor != nullptr) {
      return ReconfigDecision{
          i->node_id,      best_donor->node_id, best_donor->tier,
          i->tier,         best_cost,           best_cost <= 0.0};
    }
  }
  return std::nullopt;
}

}  // namespace ah::harmony
