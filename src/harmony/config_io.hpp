// Configuration serialization.
//
// Tuned configurations are operational artifacts: the administrator saves
// the best configuration Harmony found and re-applies it after a restart
// (or ships it to a sister deployment).  The format is a line-oriented
// `name = value` file with `#` comments — the same shape as the server
// configuration files (squid.conf, my.cnf) the values came from, so a
// human can read and hand-edit it.
#pragma once

#include <iosfwd>
#include <string>

#include "harmony/parameter.hpp"

namespace ah::harmony {

/// Writes `values` (aligned with `space`) as "name = value" lines.
void write_configuration(std::ostream& out, const ParameterSpace& space,
                         const PointI& values,
                         const std::string& comment = {});

/// Convenience: writes to a file.  Throws std::runtime_error on I/O error,
/// std::invalid_argument on arity mismatch.
void save_configuration(const std::string& path, const ParameterSpace& space,
                        const PointI& values,
                        const std::string& comment = {});

/// Parses a configuration stream produced by write_configuration (or by
/// hand).  Unknown names throw std::invalid_argument; missing names keep
/// the space's defaults; out-of-bounds values are clamped.
[[nodiscard]] PointI read_configuration(std::istream& in,
                                        const ParameterSpace& space);

/// Convenience: reads from a file.  Throws std::runtime_error when the
/// file cannot be opened.
[[nodiscard]] PointI load_configuration(const std::string& path,
                                        const ParameterSpace& space);

}  // namespace ah::harmony
