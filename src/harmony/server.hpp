// The Harmony server: the client-facing API of the Active Harmony system.
//
// Mirrors the structure of the original (Tcl) Adaptation Controller: tunable
// clients register parameters into a named session, the server proposes
// configurations, clients report observed performance.  Multiple sessions
// run independently — that is exactly the mechanism behind the paper's
// *parameter partitioning* strategy, where each work line gets its own
// tuning server.
//
// Performance convention: clients report a figure where HIGHER IS BETTER
// (WIPS); the server negates it into the minimizing tuner.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harmony/parameter.hpp"
#include "harmony/session.hpp"

namespace ah::harmony {

using SessionId = std::uint32_t;

class HarmonyServer {
 public:
  /// Creates an (empty) session.  Parameters are registered before start().
  SessionId create_session(std::string name, SessionOptions options = {});

  /// Registers a tunable into a not-yet-started session.
  /// Returns the parameter's dimension index within the session.
  std::size_t register_parameter(SessionId id, TunableParameter parameter);

  /// Freezes the parameter set and builds the tuner.
  /// Throws std::logic_error when already started or no parameters exist.
  void start(SessionId id);

  [[nodiscard]] bool started(SessionId id) const;
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] const std::string& session_name(SessionId id) const;

  /// The configuration the client should apply next.
  [[nodiscard]] PointI get_configuration(SessionId id) const;

  /// All configurations awaiting evaluation (batch/parallel clients).
  [[nodiscard]] std::vector<PointI> get_pending(SessionId id) const;

  /// Reports the performance observed under the configuration from
  /// get_configuration() (higher is better).
  void report_performance(SessionId id, double performance);

  /// Batch variant matching get_pending() order.
  void report_performance_batch(SessionId id,
                                std::span<const double> performances);

  /// Best configuration seen and its performance (higher-is-better).
  [[nodiscard]] PointI best_configuration(SessionId id) const;
  [[nodiscard]] double best_performance(SessionId id) const;

  [[nodiscard]] std::size_t evaluations(SessionId id) const;
  [[nodiscard]] std::optional<std::size_t> converged_at(SessionId id) const;

  /// Underlying session (history inspection, tests).
  [[nodiscard]] TuningSession& session(SessionId id);
  [[nodiscard]] const TuningSession& session(SessionId id) const;

 private:
  struct Slot {
    std::string name;
    SessionOptions options;
    ParameterSpace space;                     // building
    std::unique_ptr<TuningSession> session;   // once started
  };

  [[nodiscard]] Slot& slot(SessionId id);
  [[nodiscard]] const Slot& slot(SessionId id) const;
  [[nodiscard]] TuningSession& started_session(SessionId id);
  [[nodiscard]] const TuningSession& started_session(SessionId id) const;

  std::vector<Slot> sessions_;
};

}  // namespace ah::harmony
