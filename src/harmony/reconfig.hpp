// Automatic cluster reconfiguration (paper §IV, Table 5, Figure 6, Eq. 1).
//
// Periodically (every R tuning iterations — much less often than parameter
// tuning), Active Harmony inspects smoothed per-node resource utilization
// and decides whether to re-purpose an under-utilized node into the tier of
// an over-utilized one:
//
//   1. L1 := nodes with ANY resource above its high threshold   (overloaded)
//   2. L2 := nodes with ALL resources at/below their low threshold (idle)
//   3. sort L1 by degree of urgency (resource-priority weighted overload)
//   4. for i = head(L1): pick k in L2 with Tier(k) != Tier(i), whose tier
//      keeps >= 1 node, minimizing  F + N_k*M_km - N_k*A_k   (Eq. 1)
//   5. reconfigure k into Tier(i); immediately when the Eq. 1 value is
//      non-positive (moving k's jobs to a same-tier neighbour m costs less
//      than letting them finish), otherwise after draining.
//
// The module is topology-agnostic: it consumes per-node readings and
// returns a decision; executing the move is the system model's job.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ah::harmony {

/// Per-resource thresholds and urgency weight (paper Table 5: LT_ij, HT_ij
/// plus the footnote's per-resource priority).
struct ResourcePolicy {
  double high_threshold = 0.85;  // HT
  double low_threshold = 0.25;   // LT
  double urgency_weight = 1.0;   // footnote-3 priority (CPU > network, ...)
};

/// One node's monitored state, as sampled by the utilization monitor.
struct NodeReading {
  std::uint32_t node_id = 0;
  int tier = 0;  // opaque tier/group id
  /// Utilization per resource kind, aligned with the policy vector.
  std::vector<double> utilization;
  /// N_k: jobs currently on the node.
  double jobs = 0.0;
  /// A_k: average remaining processing time per job (seconds).
  double avg_process_seconds = 0.0;
  /// M_km: cost to move one job to a same-tier neighbour m (seconds).
  double move_cost_seconds = 0.0;
};

struct ReconfigOptions {
  /// One policy per resource kind (utilization vectors must match).
  std::vector<ResourcePolicy> resources;
  /// F: configuration cost in seconds (restart + role switch).
  double config_cost_seconds = 30.0;
};

struct ReconfigDecision {
  std::uint32_t overloaded_node = 0;  // i: node being relieved
  std::uint32_t donor_node = 0;       // k: node being re-purposed
  int from_tier = 0;                  // Tier(k)
  int to_tier = 0;                    // Tier(i)
  /// Eq. 1 value for the chosen donor.
  double cost_seconds = 0.0;
  /// True when Eq. 1 is non-positive: migrate jobs now rather than drain.
  bool immediate = false;
};

class Reconfigurer {
 public:
  explicit Reconfigurer(ReconfigOptions options);

  /// Runs steps 1-5 on a snapshot of readings.  Returns std::nullopt when
  /// no node is overloaded, no donor qualifies, or tier constraints forbid
  /// every candidate move.
  [[nodiscard]] std::optional<ReconfigDecision> decide(
      std::span<const NodeReading> readings) const;

  /// Step-1 helper: overloaded nodes, sorted by descending urgency.
  [[nodiscard]] std::vector<const NodeReading*> overloaded(
      std::span<const NodeReading> readings) const;

  /// Step-2 helper: idle nodes (all resources at/below low thresholds).
  [[nodiscard]] std::vector<const NodeReading*> idle(
      std::span<const NodeReading> readings) const;

  /// Degree of urgency of one node (0 when not overloaded).
  [[nodiscard]] double urgency(const NodeReading& reading) const;

  /// Eq. 1: F + N_k*M_km - N_k*A_k for a candidate donor.
  [[nodiscard]] double move_cost(const NodeReading& donor) const;

  [[nodiscard]] const ReconfigOptions& options() const { return options_; }

 private:
  ReconfigOptions options_;
};

}  // namespace ah::harmony
