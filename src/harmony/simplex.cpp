#include "harmony/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ah::harmony {

namespace {

PointD axpy(const PointD& base, double factor, const PointD& direction_from,
            const PointD& direction_to) {
  // base + factor * (direction_to - direction_from)
  PointD out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    out[i] = base[i] + factor * (direction_to[i] - direction_from[i]);
  }
  return out;
}

}  // namespace

SimplexTuner::SimplexTuner(ParameterSpace space, SimplexOptions options)
    : space_(std::move(space)), options_(options) {
  if (space_.empty()) {
    throw std::invalid_argument("SimplexTuner: empty parameter space");
  }
  if (options_.reflection <= 0 || options_.expansion <= 1 ||
      options_.contraction <= 0 || options_.contraction >= 1 ||
      options_.shrink <= 0 || options_.shrink >= 1) {
    throw std::invalid_argument("SimplexTuner: invalid coefficients");
  }

  // Initial simplex: the default configuration plus one vertex per
  // dimension, offset by init_scale x range (>= 1 lattice step), flipped
  // toward the side with room.
  const PointI defaults = space_.defaults();
  const PointD d0 = ParameterSpace::to_continuous(defaults);
  queue_point(d0);
  for (std::size_t dim = 0; dim < space_.dimensions(); ++dim) {
    const auto& param = space_.parameter(dim);
    double delta = std::max(
        1.0, options_.init_scale * static_cast<double>(param.range()));
    if (d0[dim] + delta > static_cast<double>(param.max_value)) {
      delta = -delta;
    }
    PointD v = d0;
    v[dim] += delta;
    queue_point(std::move(v));
  }
}

std::vector<PointI> SimplexTuner::pending() const {
  std::vector<PointI> out;
  out.reserve(pending_points_.size());
  for (const auto& p : pending_points_) out.push_back(space_.project(p));
  return out;
}

PointI SimplexTuner::ask() const {
  assert(ask_cursor_ < pending_points_.size());
  return space_.project(pending_points_[ask_cursor_]);
}

void SimplexTuner::tell(double cost) {
  assert(ask_cursor_ < pending_points_.size());
  pending_costs_[ask_cursor_] = cost;
  note_best(pending_points_[ask_cursor_], cost);
  ++evaluations_;
  ++ask_cursor_;
  if (ask_cursor_ == pending_points_.size()) advance();
}

void SimplexTuner::report(std::span<const double> costs) {
  if (costs.size() != pending_points_.size() - ask_cursor_) {
    throw std::invalid_argument("report: cost count != pending count");
  }
  for (const double cost : costs) tell(cost);
}

double SimplexTuner::diameter() const {
  if (vertices_.size() < 2) return 0.0;
  double diameter = 0.0;
  for (std::size_t a = 0; a < vertices_.size(); ++a) {
    for (std::size_t b = a + 1; b < vertices_.size(); ++b) {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < space_.dimensions(); ++i) {
        const double range =
            std::max<double>(1.0, static_cast<double>(space_.parameter(i).range()));
        const double d = (vertices_[a].x[i] - vertices_[b].x[i]) / range;
        dist2 += d * d;
      }
      diameter = std::max(diameter, std::sqrt(dist2));
    }
  }
  return diameter;
}

PointD SimplexTuner::propose(const PointD& raw, const PointD& centroid) const {
  if (!options_.damp_extremes) return raw;
  // Pull bound-clamped coordinates toward the centroid so the simplex
  // approaches boundaries gradually instead of jumping onto them.
  PointD out = raw;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto& param = space_.parameter(i);
    const auto lo = static_cast<double>(param.min_value);
    const auto hi = static_cast<double>(param.max_value);
    if (out[i] < lo || out[i] > hi) {
      const double clamped = std::clamp(out[i], lo, hi);
      out[i] = centroid[i] + options_.damp_factor * (clamped - centroid[i]);
    }
  }
  return out;
}

void SimplexTuner::queue_point(PointD x) {
  pending_points_.push_back(std::move(x));
  pending_costs_.push_back(std::nullopt);
}

void SimplexTuner::sort_vertices() {
  std::stable_sort(vertices_.begin(), vertices_.end(),
                   [](const Vertex& a, const Vertex& b) {
                     return a.cost < b.cost;
                   });
}

PointD SimplexTuner::centroid_excluding_worst() const {
  PointD c(space_.dimensions(), 0.0);
  const std::size_t n = vertices_.size() - 1;  // all but worst
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < c.size(); ++i) c[i] += vertices_[v].x[i];
  }
  for (double& value : c) value /= static_cast<double>(n);
  return c;
}

void SimplexTuner::note_best(const PointD& x, double cost) {
  if (!has_best_ || cost < best_cost_) {
    has_best_ = true;
    best_cost_ = cost;
    best_point_ = space_.project(x);
  }
}

void SimplexTuner::begin_reflection() {
  sort_vertices();
  centroid_ = centroid_excluding_worst();
  const PointD& worst = vertices_.back().x;
  PointD xr = axpy(centroid_, options_.reflection, worst, centroid_);
  phase_ = Phase::kReflect;
  pending_points_.clear();
  pending_costs_.clear();
  ask_cursor_ = 0;
  queue_point(propose(xr, centroid_));
}

void SimplexTuner::advance() {
  switch (phase_) {
    case Phase::kInit: {
      vertices_.reserve(pending_points_.size());
      for (std::size_t i = 0; i < pending_points_.size(); ++i) {
        vertices_.push_back(
            Vertex{std::move(pending_points_[i]), *pending_costs_[i]});
      }
      begin_reflection();
      return;
    }
    case Phase::kReflect: {
      reflected_ = pending_points_[0];
      reflected_cost_ = *pending_costs_[0];
      const double best = vertices_.front().cost;
      const double second_worst = vertices_[vertices_.size() - 2].cost;
      const double worst = vertices_.back().cost;
      if (reflected_cost_ < best) {
        // Try to expand further along the same direction.
        PointD xe = axpy(centroid_, options_.expansion, vertices_.back().x,
                         centroid_);
        phase_ = Phase::kExpand;
        pending_points_.clear();
        pending_costs_.clear();
        ask_cursor_ = 0;
        queue_point(propose(xe, centroid_));
        return;
      }
      if (reflected_cost_ < second_worst) {
        vertices_.back() = Vertex{reflected_, reflected_cost_};
        begin_reflection();
        return;
      }
      // Contract: outside toward the reflected point when it improved on
      // the worst, inside toward the worst otherwise.
      const PointD& towards =
          reflected_cost_ < worst ? reflected_ : vertices_.back().x;
      PointD xc = axpy(centroid_, options_.contraction, centroid_, towards);
      phase_ = Phase::kContract;
      pending_points_.clear();
      pending_costs_.clear();
      ask_cursor_ = 0;
      queue_point(propose(xc, centroid_));
      return;
    }
    case Phase::kExpand: {
      const double expanded_cost = *pending_costs_[0];
      if (expanded_cost < reflected_cost_) {
        vertices_.back() = Vertex{pending_points_[0], expanded_cost};
      } else {
        vertices_.back() = Vertex{reflected_, reflected_cost_};
      }
      begin_reflection();
      return;
    }
    case Phase::kContract: {
      const double contracted_cost = *pending_costs_[0];
      const double reference = std::min(reflected_cost_, vertices_.back().cost);
      if (contracted_cost < reference) {
        vertices_.back() = Vertex{pending_points_[0], contracted_cost};
        begin_reflection();
        return;
      }
      // Multiple contraction (shrink) toward the best vertex.
      phase_ = Phase::kShrink;
      pending_points_.clear();
      pending_costs_.clear();
      ask_cursor_ = 0;
      const PointD& x0 = vertices_.front().x;
      for (std::size_t v = 1; v < vertices_.size(); ++v) {
        PointD xs = axpy(x0, options_.shrink, x0, vertices_[v].x);
        queue_point(std::move(xs));
      }
      return;
    }
    case Phase::kShrink: {
      for (std::size_t i = 0; i < pending_points_.size(); ++i) {
        vertices_[i + 1] =
            Vertex{std::move(pending_points_[i]), *pending_costs_[i]};
      }
      begin_reflection();
      return;
    }
  }
}

}  // namespace ah::harmony
