// Library Specification Layer (paper Figure 2).
//
// "The Library Specification Layer provides a uniform API to library users
//  by integrating different libraries with the same or similar
//  functionality.  This layer uses the Harmony Controller to select among
//  different implementations of the library [and] also monitors the
//  performance of the library to improve the decision for future usage."
//
// An OperationFamily registers N implementations of one operation (the
// paper's example: heap sort vs quick-sort).  Each call is dispatched to an
// implementation chosen by the controller; the caller reports the observed
// cost, and the selection policy converges on the cheapest implementation
// while keeping a small exploration budget so it can track phase changes
// (an implementation that is best on small inputs may lose on large ones —
// families can be keyed by a caller-provided context bucket).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ah::harmony {

class OperationFamily {
 public:
  struct Options {
    /// Fraction of calls spent exploring non-incumbent implementations.
    double explore_rate = 0.10;
    /// EWMA weight for the per-implementation cost estimate.
    double cost_alpha = 0.2;
    /// Number of context buckets (e.g. input-size classes).  Selection
    /// statistics are kept per bucket.
    std::size_t buckets = 1;
    std::uint64_t seed = 1;
  };

  explicit OperationFamily(std::string name)
      : OperationFamily(std::move(name), Options{}) {}
  OperationFamily(std::string name, Options options);

  /// Registers an implementation; returns its index.
  std::size_t register_implementation(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t implementations() const { return impls_.size(); }
  [[nodiscard]] const std::string& implementation_name(std::size_t i) const;

  /// Chooses the implementation for the next call in `bucket`.
  /// Mostly the current-best; sometimes an exploratory pick.
  [[nodiscard]] std::size_t select(std::size_t bucket = 0);

  /// Reports the observed cost of a call that used implementation `impl`
  /// in `bucket` (lower is better; any consistent unit).
  void report(std::size_t impl, double cost, std::size_t bucket = 0);

  /// Current cost estimate (EWMA) of an implementation in a bucket;
  /// negative when never measured.
  [[nodiscard]] double estimated_cost(std::size_t impl,
                                      std::size_t bucket = 0) const;

  /// Implementation currently considered best for a bucket (the one
  /// `select` exploits).  Unmeasured implementations are preferred so every
  /// option is tried at least once.
  [[nodiscard]] std::size_t incumbent(std::size_t bucket = 0) const;

  [[nodiscard]] std::uint64_t calls(std::size_t impl,
                                    std::size_t bucket = 0) const;

 private:
  struct Cell {
    double cost_ewma = -1.0;  // -1 = never measured
    std::uint64_t calls = 0;
  };

  [[nodiscard]] const Cell& cell(std::size_t impl, std::size_t bucket) const;
  [[nodiscard]] Cell& cell(std::size_t impl, std::size_t bucket);

  std::string name_;
  Options options_;
  std::vector<std::string> impls_;
  /// impls_ x buckets matrix, row-major by implementation.
  std::vector<Cell> cells_;
  common::Rng rng_;
};

/// Convenience wrapper: a callable family of implementations with
/// automatic timing/report, for in-process use.
///
///   TunedOperation<void(std::span<int>)> sorter("sort");
///   sorter.add("heap",  [](auto s) { heap_sort(s); });
///   sorter.add("quick", [](auto s) { quick_sort(s); });
///   sorter(my_span);                       // dispatched + learned
///
/// The cost metric is the caller-supplied clock (defaults to a simple
/// invocation counter when no clock is given), so the wrapper works inside
/// the simulator as well as in real code.
template <typename Signature>
class TunedOperation;

template <typename... Args>
class TunedOperation<void(Args...)> {
 public:
  using Impl = std::function<void(Args...)>;
  using Clock = std::function<double()>;

  explicit TunedOperation(std::string name) : family_(std::move(name)) {}
  TunedOperation(std::string name, OperationFamily::Options options)
      : family_(std::move(name), options) {}

  /// Sets the cost clock (e.g. wall-clock seconds or simulated time).
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  std::size_t add(std::string name, Impl impl) {
    impls_.push_back(std::move(impl));
    return family_.register_implementation(std::move(name));
  }

  void operator()(Args... args) { call(0, std::forward<Args>(args)...); }

  /// Invokes in a specific context bucket.
  void call(std::size_t bucket, Args... args) {
    const std::size_t choice = family_.select(bucket);
    const double start = clock_ ? clock_() : 0.0;
    impls_[choice](std::forward<Args>(args)...);
    const double cost = clock_ ? clock_() - start : 1.0;
    family_.report(choice, cost, bucket);
  }

  [[nodiscard]] OperationFamily& family() { return family_; }

 private:
  OperationFamily family_;
  std::vector<Impl> impls_;
  Clock clock_;
};

}  // namespace ah::harmony
