#include "harmony/library_layer.hpp"

#include <cassert>
#include <stdexcept>

namespace ah::harmony {

OperationFamily::OperationFamily(std::string name, Options options)
    : name_(std::move(name)), options_(options), rng_(options.seed) {
  if (options_.buckets == 0) {
    throw std::invalid_argument("OperationFamily: zero buckets");
  }
  if (options_.explore_rate < 0.0 || options_.explore_rate >= 1.0) {
    throw std::invalid_argument("OperationFamily: bad explore_rate");
  }
}

std::size_t OperationFamily::register_implementation(std::string name) {
  impls_.push_back(std::move(name));
  cells_.resize(impls_.size() * options_.buckets);
  return impls_.size() - 1;
}

const std::string& OperationFamily::implementation_name(std::size_t i) const {
  return impls_.at(i);
}

const OperationFamily::Cell& OperationFamily::cell(std::size_t impl,
                                                   std::size_t bucket) const {
  if (impl >= impls_.size() || bucket >= options_.buckets) {
    throw std::out_of_range("OperationFamily: bad impl/bucket");
  }
  return cells_[impl * options_.buckets + bucket];
}

OperationFamily::Cell& OperationFamily::cell(std::size_t impl,
                                             std::size_t bucket) {
  return const_cast<Cell&>(
      static_cast<const OperationFamily*>(this)->cell(impl, bucket));
}

std::size_t OperationFamily::incumbent(std::size_t bucket) const {
  if (impls_.empty()) {
    throw std::logic_error("OperationFamily: no implementations");
  }
  // Unmeasured implementations take priority (try everything once).
  for (std::size_t i = 0; i < impls_.size(); ++i) {
    if (cell(i, bucket).calls == 0) return i;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < impls_.size(); ++i) {
    if (cell(i, bucket).cost_ewma < cell(best, bucket).cost_ewma) best = i;
  }
  return best;
}

std::size_t OperationFamily::select(std::size_t bucket) {
  const std::size_t leader = incumbent(bucket);
  if (impls_.size() > 1 && cell(leader, bucket).calls > 0 &&
      rng_.bernoulli(options_.explore_rate)) {
    // Explore one of the non-incumbent implementations.
    const auto offset = static_cast<std::size_t>(rng_.uniform_int(
        1, static_cast<std::int64_t>(impls_.size()) - 1));
    return (leader + offset) % impls_.size();
  }
  return leader;
}

void OperationFamily::report(std::size_t impl, double cost,
                             std::size_t bucket) {
  Cell& c = cell(impl, bucket);
  c.cost_ewma = c.calls == 0
                    ? cost
                    : options_.cost_alpha * cost +
                          (1.0 - options_.cost_alpha) * c.cost_ewma;
  ++c.calls;
}

double OperationFamily::estimated_cost(std::size_t impl,
                                       std::size_t bucket) const {
  return cell(impl, bucket).cost_ewma;
}

std::uint64_t OperationFamily::calls(std::size_t impl,
                                     std::size_t bucket) const {
  return cell(impl, bucket).calls;
}

}  // namespace ah::harmony
