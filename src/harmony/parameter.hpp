// Tunable parameters and the parameter space.
//
// Active Harmony treats each tunable parameter as one dimension of a
// bounded integer lattice.  A ParameterSpace is an ordered list of such
// dimensions; configurations are integer vectors in lattice order.  The
// space also owns the continuous→lattice projection (round + clamp) that
// adapts the Nelder–Mead simplex to this discrete domain (paper §II.B).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ah::harmony {

struct TunableParameter {
  std::string name;
  std::int64_t min_value = 0;
  std::int64_t max_value = 0;
  std::int64_t default_value = 0;

  [[nodiscard]] std::int64_t range() const { return max_value - min_value; }
  [[nodiscard]] bool contains(std::int64_t v) const {
    return v >= min_value && v <= max_value;
  }
};

/// An integer configuration, in parameter-space order.
using PointI = std::vector<std::int64_t>;
/// A continuous point (internal simplex representation).
using PointD = std::vector<double>;

class ParameterSpace {
 public:
  ParameterSpace() = default;
  explicit ParameterSpace(std::vector<TunableParameter> parameters);

  /// Appends a dimension; returns its index.
  /// Throws std::invalid_argument when bounds are inverted or the default
  /// is out of bounds.
  std::size_t add(TunableParameter parameter);

  [[nodiscard]] std::size_t dimensions() const { return parameters_.size(); }
  [[nodiscard]] bool empty() const { return parameters_.empty(); }
  [[nodiscard]] const TunableParameter& parameter(std::size_t i) const {
    return parameters_.at(i);
  }
  [[nodiscard]] const std::vector<TunableParameter>& parameters() const {
    return parameters_;
  }

  /// Index of a parameter by name; throws std::out_of_range when unknown.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// The default configuration.
  [[nodiscard]] PointI defaults() const;

  /// True when `point` has the right arity and every value is in bounds.
  [[nodiscard]] bool valid(const PointI& point) const;

  /// Projects a continuous point onto the lattice: nearest integer, clamped
  /// to bounds (the paper's adaptation of Nelder–Mead to discrete spaces).
  [[nodiscard]] PointI project(const PointD& point) const;

  /// Clamps an integer point into bounds.
  [[nodiscard]] PointI clamp(PointI point) const;

  /// Uniform random lattice point (used by random-restart tests).
  [[nodiscard]] PointI random_point(common::Rng& rng) const;

  /// Converts to the continuous representation.
  [[nodiscard]] static PointD to_continuous(const PointI& point);

  /// A sub-space over a subset of dimensions (for parameter partitioning).
  /// `indices` are positions in this space; they are recorded so values can
  /// be scattered back via `scatter`.
  [[nodiscard]] ParameterSpace subspace(
      std::span<const std::size_t> indices) const;

  /// Writes `sub_values` (in subspace order, as produced against the result
  /// of `subspace(indices)`) into `full` at the given indices.
  static void scatter(std::span<const std::size_t> indices,
                      const PointI& sub_values, PointI& full);

  /// Reads the values at `indices` out of `full` (inverse of scatter).
  [[nodiscard]] static PointI gather(std::span<const std::size_t> indices,
                                     const PointI& full);

 private:
  std::vector<TunableParameter> parameters_;
};

}  // namespace ah::harmony
