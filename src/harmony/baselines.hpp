// Baseline tuning kernels, for comparison against the simplex.
//
// RandomSearchTuner — uniform sampling of the lattice, keeping the best.
// The weakest sensible baseline: any online tuner must beat it to justify
// its machinery.
//
// CoordinateDescentTuner — classic one-parameter-at-a-time hand-tuning,
// automated: sweep each dimension around the current point (a fixed number
// of probe values across its range), fix the best value, move to the next
// dimension, and loop with a shrinking probe radius.  This mimics what a
// careful administrator does manually and is the natural foil for the
// paper's claim that coupled systems "cannot be tuned for each individual
// component" one knob at a time.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "harmony/tuner.hpp"

namespace ah::harmony {

class RandomSearchTuner final : public Tuner {
 public:
  explicit RandomSearchTuner(ParameterSpace space, std::uint64_t seed = 1);

  [[nodiscard]] const ParameterSpace& space() const override {
    return space_;
  }
  [[nodiscard]] std::vector<PointI> pending() const override;
  [[nodiscard]] PointI ask() const override;
  void tell(double cost) override;
  void report(std::span<const double> costs) override;
  [[nodiscard]] const PointI& best() const override { return best_point_; }
  [[nodiscard]] double best_cost() const override { return best_cost_; }
  [[nodiscard]] std::size_t evaluations() const override {
    return evaluations_;
  }

 private:
  void draw_next();

  ParameterSpace space_;
  common::Rng rng_;
  PointI current_;
  PointI best_point_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
  std::size_t evaluations_ = 0;
};

class CoordinateDescentTuner final : public Tuner {
 public:
  struct Options {
    /// Probe values per sweep of one dimension (including the incumbent).
    int probes = 5;
    /// Initial probe radius as a fraction of each parameter's range.
    double initial_radius = 0.5;
    /// Radius multiplier after every full pass over all dimensions.
    double radius_decay = 0.5;
    /// Smallest radius (fraction of range) before the search re-expands.
    double min_radius = 0.01;
  };

  explicit CoordinateDescentTuner(ParameterSpace space)
      : CoordinateDescentTuner(std::move(space), Options{}) {}
  CoordinateDescentTuner(ParameterSpace space, Options options);

  [[nodiscard]] const ParameterSpace& space() const override {
    return space_;
  }
  [[nodiscard]] std::vector<PointI> pending() const override;
  [[nodiscard]] PointI ask() const override;
  void tell(double cost) override;
  void report(std::span<const double> costs) override;
  [[nodiscard]] const PointI& best() const override { return best_point_; }
  [[nodiscard]] double best_cost() const override { return best_cost_; }
  [[nodiscard]] std::size_t evaluations() const override {
    return evaluations_;
  }

  [[nodiscard]] double radius() const { return radius_; }
  [[nodiscard]] std::size_t current_dimension() const { return dimension_; }

 private:
  /// Builds the probe list for the current dimension around incumbent_.
  void build_probes();
  /// Consumes the finished sweep: fixes the best probe, advances.
  void finish_sweep();

  ParameterSpace space_;
  Options options_;

  PointI incumbent_;
  std::size_t dimension_ = 0;
  double radius_;

  std::vector<PointI> probes_;
  std::vector<double> probe_costs_;
  std::size_t probe_cursor_ = 0;

  PointI best_point_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
  std::size_t evaluations_ = 0;
};

}  // namespace ah::harmony
