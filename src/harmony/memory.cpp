#include "harmony/memory.hpp"

#include <cmath>
#include <limits>

namespace ah::harmony {

double ConfigurationMemory::distance(const Signature& a, const Signature& b) {
  if (a.size() != b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void ConfigurationMemory::remember(Signature signature, PointI configuration,
                                   double performance, std::string label) {
  for (auto& entry : entries_) {
    if (distance(entry.signature, signature) <= match_radius_) {
      if (performance > entry.performance) {
        entry = Entry{std::move(signature), std::move(configuration),
                      performance, std::move(label)};
      }
      return;
    }
  }
  entries_.push_back(Entry{std::move(signature), std::move(configuration),
                           performance, std::move(label)});
}

std::optional<ConfigurationMemory::Entry> ConfigurationMemory::recall(
    const Signature& signature) const {
  const Entry* best = nullptr;
  double best_distance = match_radius_;
  for (const auto& entry : entries_) {
    const double d = distance(entry.signature, signature);
    if (d <= best_distance) {
      best_distance = d;
      best = &entry;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace ah::harmony
