#include "harmony/session.hpp"

#include <cmath>

namespace ah::harmony {

namespace {
std::unique_ptr<Tuner> make_tuner(ParameterSpace space,
                                  const SessionOptions& options) {
  switch (options.kernel) {
    case TuningKernel::kSimplex:
      return std::make_unique<SimplexTuner>(std::move(space),
                                            options.simplex);
    case TuningKernel::kRandomSearch:
      return std::make_unique<RandomSearchTuner>(std::move(space),
                                                 options.seed);
    case TuningKernel::kCoordinateDescent:
      return std::make_unique<CoordinateDescentTuner>(std::move(space),
                                                      options.coordinate);
  }
  return nullptr;
}
}  // namespace

TuningSession::TuningSession(std::string name, ParameterSpace space,
                             SessionOptions options)
    : name_(std::move(name)),
      options_(options),
      tuner_(make_tuner(std::move(space), options)) {}

void TuningSession::tell(double cost) {
  observe(tuner_->ask(), cost);
  tuner_->tell(cost);
}

void TuningSession::report(std::span<const double> costs) {
  for (const double cost : costs) tell(cost);
}

void TuningSession::observe(const PointI& configuration, double cost) {
  history_.push_back(HistoryEntry{configuration, cost});
  const std::size_t index = history_.size() - 1;
  if (!has_best_) {
    has_best_ = true;
    best_seen_ = cost;
    last_improvement_ = index;
    return;
  }
  // Relative improvement against the best seen so far.  Costs may be
  // negative (negated WIPS), so normalize by magnitude.
  const double scale = std::max(1e-12, std::abs(best_seen_));
  if ((best_seen_ - cost) / scale > options_.improvement_epsilon) {
    best_seen_ = cost;
    last_improvement_ = index;
  }
}

std::optional<std::size_t> TuningSession::converged_at() const {
  if (!has_best_) return std::nullopt;
  if (history_.size() - 1 - last_improvement_ >= options_.patience) {
    return last_improvement_;
  }
  return std::nullopt;
}

}  // namespace ah::harmony
