#include "harmony/client.hpp"

#include <stdexcept>

namespace ah::harmony {

HarmonyClient::HarmonyClient(HarmonyServer& server) : server_(server) {}

void HarmonyClient::require_session() const {
  if (!has_session_) {
    throw std::logic_error("HarmonyClient: startup() not called");
  }
}

void HarmonyClient::require_started() const {
  require_session();
  if (!started_) {
    throw std::logic_error("HarmonyClient: start() not called");
  }
}

void HarmonyClient::startup(const std::string& application_name,
                            SessionOptions options) {
  if (has_session_) {
    throw std::logic_error("HarmonyClient: startup() called twice");
  }
  session_ = server_.create_session(application_name, options);
  has_session_ = true;
}

std::size_t HarmonyClient::add_variable(const std::string& name,
                                        std::int64_t min_value,
                                        std::int64_t max_value,
                                        std::int64_t default_value) {
  require_session();
  if (started_) {
    throw std::logic_error(
        "HarmonyClient: add_variable() after start()");
  }
  const auto index = server_.register_parameter(
      session_, TunableParameter{name, min_value, max_value, default_value});
  variable_names_.push_back(name);
  return index;
}

void HarmonyClient::start() {
  require_session();
  if (started_) {
    throw std::logic_error("HarmonyClient: start() called twice");
  }
  server_.start(session_);
  started_ = true;
}

std::map<std::string, std::int64_t> HarmonyClient::keyed(
    const PointI& values) const {
  std::map<std::string, std::int64_t> out;
  for (std::size_t i = 0; i < variable_names_.size(); ++i) {
    out[variable_names_[i]] = values.at(i);
  }
  return out;
}

std::map<std::string, std::int64_t> HarmonyClient::request_all() const {
  require_started();
  return keyed(server_.get_configuration(session_));
}

PointI HarmonyClient::request_values() const {
  require_started();
  return server_.get_configuration(session_);
}

void HarmonyClient::performance_update(double performance) {
  require_started();
  server_.report_performance(session_, performance);
}

std::map<std::string, std::int64_t> HarmonyClient::best_all() const {
  require_started();
  return keyed(server_.best_configuration(session_));
}

double HarmonyClient::best_performance() const {
  require_started();
  return server_.best_performance(session_);
}

std::size_t HarmonyClient::evaluations() const {
  require_started();
  return server_.evaluations(session_);
}

}  // namespace ah::harmony
