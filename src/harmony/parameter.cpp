#include "harmony/parameter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/fmt.hpp"

namespace ah::harmony {

ParameterSpace::ParameterSpace(std::vector<TunableParameter> parameters) {
  for (auto& p : parameters) add(std::move(p));
}

std::size_t ParameterSpace::add(TunableParameter parameter) {
  if (parameter.min_value > parameter.max_value) {
    throw std::invalid_argument(common::format(
        "parameter '{}': min {} > max {}", parameter.name,
        parameter.min_value, parameter.max_value));
  }
  if (!parameter.contains(parameter.default_value)) {
    throw std::invalid_argument(common::format(
        "parameter '{}': default {} outside [{}, {}]", parameter.name,
        parameter.default_value, parameter.min_value, parameter.max_value));
  }
  parameters_.push_back(std::move(parameter));
  return parameters_.size() - 1;
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    if (parameters_[i].name == name) return i;
  }
  throw std::out_of_range("unknown parameter: " + name);
}

PointI ParameterSpace::defaults() const {
  PointI point;
  point.reserve(parameters_.size());
  for (const auto& p : parameters_) point.push_back(p.default_value);
  return point;
}

bool ParameterSpace::valid(const PointI& point) const {
  if (point.size() != parameters_.size()) return false;
  for (std::size_t i = 0; i < point.size(); ++i) {
    if (!parameters_[i].contains(point[i])) return false;
  }
  return true;
}

PointI ParameterSpace::project(const PointD& point) const {
  if (point.size() != parameters_.size()) {
    throw std::invalid_argument("project: arity mismatch");
  }
  PointI out(point.size());
  for (std::size_t i = 0; i < point.size(); ++i) {
    const auto rounded = static_cast<std::int64_t>(std::llround(point[i]));
    out[i] = std::clamp(rounded, parameters_[i].min_value,
                        parameters_[i].max_value);
  }
  return out;
}

PointI ParameterSpace::clamp(PointI point) const {
  if (point.size() != parameters_.size()) {
    throw std::invalid_argument("clamp: arity mismatch");
  }
  for (std::size_t i = 0; i < point.size(); ++i) {
    point[i] = std::clamp(point[i], parameters_[i].min_value,
                          parameters_[i].max_value);
  }
  return point;
}

PointI ParameterSpace::random_point(common::Rng& rng) const {
  PointI point;
  point.reserve(parameters_.size());
  for (const auto& p : parameters_) {
    point.push_back(rng.uniform_int(p.min_value, p.max_value));
  }
  return point;
}

PointD ParameterSpace::to_continuous(const PointI& point) {
  PointD out;
  out.reserve(point.size());
  for (const std::int64_t v : point) out.push_back(static_cast<double>(v));
  return out;
}

ParameterSpace ParameterSpace::subspace(
    std::span<const std::size_t> indices) const {
  ParameterSpace sub;
  for (const std::size_t idx : indices) sub.add(parameters_.at(idx));
  return sub;
}

void ParameterSpace::scatter(std::span<const std::size_t> indices,
                             const PointI& sub_values, PointI& full) {
  if (indices.size() != sub_values.size()) {
    throw std::invalid_argument("scatter: arity mismatch");
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    full.at(indices[i]) = sub_values[i];
  }
}

PointI ParameterSpace::gather(std::span<const std::size_t> indices,
                              const PointI& full) {
  PointI sub;
  sub.reserve(indices.size());
  for (const std::size_t idx : indices) sub.push_back(full.at(idx));
  return sub;
}

}  // namespace ah::harmony
