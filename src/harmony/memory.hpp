// Configuration memory: remember tuned configurations per workload.
//
// Active Harmony's companion work ("Prediction and Adaptation in Active
// Harmony", HPDC'98) keeps a database of past executions so a new run can
// start from a configuration that worked for a similar situation instead
// of from scratch.  This module is that database in miniature: entries map
// a numeric *workload signature* (any feature vector — e.g. [browse
// fraction, offered load]) to the best configuration observed under it.
// `recall` returns the nearest stored signature within a match radius;
// `TuningDriver::restart_sessions` can then seed a fresh simplex from it,
// which is how the changing-workload experiment adapts in a handful of
// iterations instead of re-exploring 24 vertices.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "harmony/parameter.hpp"

namespace ah::harmony {

class ConfigurationMemory {
 public:
  using Signature = std::vector<double>;

  struct Entry {
    Signature signature;
    PointI configuration;
    double performance = 0.0;  // higher is better
    std::string label;
  };

  /// `match_radius` is the maximum (L2) signature distance `recall` will
  /// accept; signatures should be pre-normalized by the caller.
  explicit ConfigurationMemory(double match_radius = 0.25)
      : match_radius_(match_radius) {}

  /// Stores (or upgrades) an entry.  An existing entry with a signature
  /// within the match radius is replaced when the new performance is
  /// higher; otherwise the new entry is appended.
  void remember(Signature signature, PointI configuration,
                double performance, std::string label = {});

  /// Nearest stored entry within the match radius, if any.
  [[nodiscard]] std::optional<Entry> recall(const Signature& signature) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// L2 distance between signatures; infinity on arity mismatch.
  [[nodiscard]] static double distance(const Signature& a, const Signature& b);

 private:
  double match_radius_;
  std::vector<Entry> entries_;
};

}  // namespace ah::harmony
