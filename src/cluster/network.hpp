// Inter-node message transfer.
//
// Transfers charge the sender's NIC (serialization) and add a fixed
// propagation latency; the receiver-side cost is folded into the per-request
// CPU demands of the receiving server.  This keeps each message at one
// queueing interaction, which measurement of the real testbed's 100 Mbps
// switched Ethernet justifies: the switch was never the bottleneck, the
// endpoints were.
//
// Fault injection: a link fault (set_link_fault) makes matching messages
// eligible for probabilistic drop and/or an added propagation delay —
// modelling a flaky switch port or congested uplink.  The drop decision
// draws from a dedicated RNG that is consulted *only* while a matching
// fault is installed, so runs with no faults consume no randomness here
// and stay byte-identical to the pre-fault build.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.hpp"
#include "common/analysis.hpp"
#include "common/object_pool.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

/// Wildcard for link-fault endpoints: matches any node.
inline constexpr NodeId kAnyNode = static_cast<NodeId>(-1);

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim), fault_rng_(0x11fec7) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Sends `bytes` from `from`; invokes `on_delivered` after NIC
  /// serialization plus propagation latency.  Local (same-node) delivery is
  /// free and immediate, matching loopback behaviour.  Returns false when
  /// an installed link fault dropped the message — `on_delivered` is then
  /// destroyed uninvoked, and the caller's hop timeout (if any) is what
  /// eventually notices the loss, exactly as on a real network.
  bool send(Node& from, Node& to, common::Bytes bytes,
            sim::EventFn on_delivered);

  // -- Link faults (driven by sim::FaultInjector) ---------------------------
  /// Degrades the directed link from->to (kAnyNode matches either side):
  /// each matching message is dropped with probability `drop` and any
  /// survivor incurs `extra_delay` on top of propagation latency.
  /// Re-installing an existing pair updates it in place.
  void set_link_fault(NodeId from, NodeId to, double drop,
                      common::SimTime extra_delay);
  /// Restores the directed link from->to.  No-op when not degraded.
  void clear_link_fault(NodeId from, NodeId to);
  [[nodiscard]] bool has_link_faults() const { return !faults_.empty(); }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] common::Bytes bytes_sent() const { return bytes_; }

 private:
  /// In-flight message state, pooled so the NIC-completion closure captures
  /// a single pointer (the delivery callback itself is a full-width EventFn
  /// that would not fit the NIC Resource's inline Completion buffer).
  struct Msg {
    Network* net = nullptr;
    common::SimTime latency = common::SimTime::zero();
    sim::EventFn on_delivered;
  };

  struct LinkFault {
    NodeId from = kAnyNode;
    NodeId to = kAnyNode;
    double drop = 0.0;
    common::SimTime extra_delay = common::SimTime::zero();
  };

  void nic_done(Msg* msg);
  /// First installed fault matching the directed pair, or nullptr.
  [[nodiscard]] const LinkFault* match_fault(NodeId from, NodeId to) const;

  sim::Simulator& sim_;
  common::ObjectPool<Msg> msgs_;
  /// Installed link faults.  Mutated only by (rare) fault events; empty in
  /// steady state, so the per-message check is one branch.
  std::vector<LinkFault> faults_;
  common::Rng fault_rng_;
  std::uint64_t messages_ = 0;
  std::uint64_t dropped_ = 0;
  common::Bytes bytes_ = 0;
};

}  // namespace ah::cluster
