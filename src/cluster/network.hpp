// Inter-node message transfer.
//
// Transfers charge the sender's NIC (serialization) and add a fixed
// propagation latency; the receiver-side cost is folded into the per-request
// CPU demands of the receiving server.  This keeps each message at one
// queueing interaction, which measurement of the real testbed's 100 Mbps
// switched Ethernet justifies: the switch was never the bottleneck, the
// endpoints were.
//
// Destination batching (opt-in): while a message to some node still waits
// at the tail of the sender's NIC queue, further sends to the same
// destination fold their serialization demand into that queued job instead
// of queueing jobs of their own (a fan-out burst costs one NIC queue
// operation instead of N).  When the merged job finally reaches the wire,
// each member's delivery is scheduled at exactly the time the unbatched
// schedule would have produced — serialization start + its prefix of the
// summed demand + its own propagation latency — so observable latencies,
// NIC utilization integrals and rejection behaviour are unchanged.  What
// batching does NOT preserve is the byte-exact pop order of equal-time
// ties: a batched delivery is *pushed* at serialization start rather than
// at its member's completion instant, so an unrelated event scheduled for
// the same microsecond can land on the other side of it.  Replicating the
// unbatched push sequence would need one relay event per member — exactly
// the events batching elides — so tie stability and the saving are
// fundamentally exclusive.  Batching is therefore off by default (golden
// runs stay bit-identical to the unbatched schedule) and enabled
// explicitly (set_destination_batching) for large-scale sweeps where
// event-count, not tie-exactness, is what matters.  The batch window
// closes the moment the job starts serializing (Resource's start signal)
// or anything else joins the NIC queue behind it.
//
// Fault injection: a link fault (set_link_fault) makes matching messages
// eligible for probabilistic drop and/or an added propagation delay —
// modelling a flaky switch port or congested uplink.  The drop decision
// draws from a dedicated RNG that is consulted *only* while a matching
// fault is installed, so runs with no faults consume no randomness here
// and stay byte-identical to the pre-fault build.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.hpp"
#include "common/analysis.hpp"
#include "common/object_pool.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

/// Wildcard for link-fault endpoints: matches any node.
inline constexpr NodeId kAnyNode = static_cast<NodeId>(-1);

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim), fault_rng_(0x11fec7) {
    AH_ASSERT_POOLED_CALL(Msg);
    AH_ASSERT_POOLED_CALL(Batch);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Sends `bytes` from `from`; invokes `on_delivered` after NIC
  /// serialization plus propagation latency.  Local (same-node) delivery is
  /// free and immediate, matching loopback behaviour.  Returns false when
  /// an installed link fault dropped the message — `on_delivered` is then
  /// destroyed uninvoked, and the caller's hop timeout (if any) is what
  /// eventually notices the loss, exactly as on a real network.
  bool send(Node& from, Node& to, common::Bytes bytes,
            sim::EventFn on_delivered);

  // -- Link faults (driven by sim::FaultInjector) ---------------------------
  /// Degrades the directed link from->to (kAnyNode matches either side):
  /// each matching message is dropped with probability `drop` and any
  /// survivor incurs `extra_delay` on top of propagation latency.
  /// Re-installing an existing pair updates it in place.
  void set_link_fault(NodeId from, NodeId to, double drop,
                      common::SimTime extra_delay);
  /// Restores the directed link from->to.  No-op when not degraded.
  void clear_link_fault(NodeId from, NodeId to);
  [[nodiscard]] bool has_link_faults() const { return !faults_.empty(); }

  /// Enables (or disables) destination batching for subsequent sends.  Off
  /// by default: merged jobs keep delivery times exact but not the
  /// byte-exact tie order of the unbatched event schedule (see file
  /// comment).  Disabling stops new windows from opening; an already-open
  /// window still flushes correctly.
  void set_destination_batching(bool enabled) { batching_ = enabled; }
  [[nodiscard]] bool destination_batching() const { return batching_; }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] common::Bytes bytes_sent() const { return bytes_; }
  /// Merged NIC jobs created by destination batching.
  [[nodiscard]] std::uint64_t batches_coalesced() const {
    return batches_coalesced_;
  }
  /// Messages that rode in a merged NIC job (heads included).
  [[nodiscard]] std::uint64_t messages_batched() const {
    return messages_batched_;
  }

 private:
  struct Batch;

  /// In-flight message state, pooled so the NIC-completion closure captures
  /// a single pointer (the delivery callback itself is a full-width EventFn
  /// that would not fit the NIC Resource's inline Completion buffer).
  struct Msg {
    Network* net = nullptr;
    Node* from = nullptr;
    common::SimTime latency = common::SimTime::zero();
    /// Serialization demand of this message alone (batch prefix seed).
    common::SimTime demand = common::SimTime::zero();
    /// Non-null once a second message coalesced onto this queued job.
    Batch* batch = nullptr;
    sim::EventFn on_delivered;
  };

  /// One coalesced member: its delivery fires at serialization start +
  /// prefix (cumulative demand through this member, scaled by the NIC's
  /// slowdown at start) + its own propagation latency — the exact times
  /// the unbatched schedule would have produced.
  struct Member {
    common::SimTime prefix = common::SimTime::zero();
    common::SimTime latency = common::SimTime::zero();
    sim::EventFn on_delivered;
  };

  /// Pooled per-merged-job state; `members` keeps its capacity across
  /// reuses so steady-state batching performs no heap allocation.
  struct Batch {
    common::SimTime cum = common::SimTime::zero();
    std::vector<Member> members;
  };

  /// The still-extendable tail of one sender's NIC queue, if any.
  struct OpenSlot {
    Msg* msg = nullptr;
    sim::Resource::JobId job = 0;
    NodeId to = 0;
  };

  struct LinkFault {
    NodeId from = kAnyNode;
    NodeId to = kAnyNode;
    double drop = 0.0;
    common::SimTime extra_delay = common::SimTime::zero();
  };

  /// Fires when a message's NIC job starts serializing: closes the batch
  /// window and, for merged jobs, schedules every member's delivery.
  void nic_started(Msg* msg);
  void nic_done(Msg* msg);
  /// First installed fault matching the directed pair, or nullptr.
  [[nodiscard]] const LinkFault* match_fault(NodeId from, NodeId to) const;

  sim::Simulator& sim_;
  common::ObjectPool<Msg> msgs_;
  common::ObjectPool<Batch> batches_;
  /// Per sender node id: the extendable NIC-queue tail, if any.
  std::vector<OpenSlot> open_;
  /// Installed link faults.  Mutated only by (rare) fault events; empty in
  /// steady state, so the per-message check is one branch.
  std::vector<LinkFault> faults_;
  common::Rng fault_rng_;
  bool batching_ = false;
  std::uint64_t messages_ = 0;
  std::uint64_t dropped_ = 0;
  common::Bytes bytes_ = 0;
  std::uint64_t batches_coalesced_ = 0;
  std::uint64_t messages_batched_ = 0;
};

}  // namespace ah::cluster
