// Inter-node message transfer.
//
// Transfers charge the sender's NIC (serialization) and add a fixed
// propagation latency; the receiver-side cost is folded into the per-request
// CPU demands of the receiving server.  This keeps each message at one
// queueing interaction, which measurement of the real testbed's 100 Mbps
// switched Ethernet justifies: the switch was never the bottleneck, the
// endpoints were.
#pragma once

#include "cluster/node.hpp"
#include "common/analysis.hpp"
#include "common/object_pool.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `bytes` from `from`; invokes `on_delivered` after NIC
  /// serialization plus propagation latency.  Local (same-node) delivery is
  /// free and immediate, matching loopback behaviour.
  void send(Node& from, Node& to, common::Bytes bytes,
            sim::EventFn on_delivered);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] common::Bytes bytes_sent() const { return bytes_; }

 private:
  /// In-flight message state, pooled so the NIC-completion closure captures
  /// a single pointer (the delivery callback itself is a full-width EventFn
  /// that would not fit the NIC Resource's inline Completion buffer).
  struct Msg {
    Network* net = nullptr;
    common::SimTime latency = common::SimTime::zero();
    sim::EventFn on_delivered;
  };

  void nic_done(Msg* msg);

  sim::Simulator& sim_;
  common::ObjectPool<Msg> msgs_;
  std::uint64_t messages_ = 0;
  common::Bytes bytes_ = 0;
};

}  // namespace ah::cluster
