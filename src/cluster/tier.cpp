#include "cluster/tier.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "common/analysis.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

bool Tier::contains(NodeId id) const {
  return std::find(members_.begin(), members_.end(), id) != members_.end();
}

void Tier::add(NodeId id) {
  assert(!contains(id));
  members_.push_back(id);
  healthy_.push_back(1);
}

bool Tier::remove(NodeId id) {
  const auto it = std::find(members_.begin(), members_.end(), id);
  if (it == members_.end()) return false;
  healthy_.erase(healthy_.begin() + (it - members_.begin()));
  members_.erase(it);
  return true;
}

void Tier::set_member_health(NodeId id, bool healthy) {
  const auto it = std::find(members_.begin(), members_.end(), id);
  if (it == members_.end()) return;
  healthy_[static_cast<std::size_t>(it - members_.begin())] =
      healthy ? std::uint8_t{1} : std::uint8_t{0};
}

bool Tier::member_healthy(NodeId id) const {
  const auto it = std::find(members_.begin(), members_.end(), id);
  if (it == members_.end()) return false;
  return healthy_[static_cast<std::size_t>(it - members_.begin())] != 0;
}

std::size_t Tier::healthy_count() const {
  return static_cast<std::size_t>(
      std::count(healthy_.begin(), healthy_.end(), std::uint8_t{1}));
}

}  // namespace ah::cluster
