#include "cluster/tier.hpp"

#include <algorithm>
#include <cassert>

namespace ah::cluster {

bool Tier::contains(NodeId id) const {
  return std::find(members_.begin(), members_.end(), id) != members_.end();
}

void Tier::add(NodeId id) {
  assert(!contains(id));
  members_.push_back(id);
}

bool Tier::remove(NodeId id) {
  const auto it = std::find(members_.begin(), members_.end(), id);
  if (it == members_.end()) return false;
  members_.erase(it);
  return true;
}

}  // namespace ah::cluster
