#include "cluster/load_balancer.hpp"
#include "common/analysis.hpp"

#include <cassert>
#include <limits>

AH_HOT_PATH_FILE;

namespace ah::cluster {

namespace {

/// Number of backends the mask admits; n when the mask is empty.
std::size_t available_count(std::size_t n, LoadBalancer::AvailFn avail) {
  if (!avail) return n;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (avail(i)) ++count;
  }
  return count;
}

/// Index of the `rank`-th available backend (rank < available count).
std::size_t nth_available(std::size_t n, LoadBalancer::AvailFn avail,
                          std::size_t rank) {
  for (std::size_t i = 0; i < n; ++i) {
    if (avail(i) && rank-- == 0) return i;
  }
  assert(false && "rank out of range");
  return 0;
}

}  // namespace

std::size_t LoadBalancer::pick(std::size_t n, LoadFn load, AvailFn avail) {
  assert(n > 0);
  // A mask that admits nobody is degenerate: ignore it rather than spin.
  // Routers fail fast before picking when the whole tier is marked down.
  const std::size_t h = available_count(n, avail);
  const bool masked = avail && h > 0 && h < n;
  switch (policy_) {
    case BalancePolicy::kRoundRobin: {
      // The cursor counts *picks*, not backend slots: the choice is the
      // (next_ mod h)-th healthy backend.  Each healthy backend therefore
      // receives exactly every h-th request even while others are skipped,
      // and when the mask clears (h == n) the sequence is identical to the
      // unmasked rotation.
      const std::size_t count = masked ? h : n;
      const std::size_t rank = next_ % count;
      ++next_;
      return masked ? nth_available(n, avail, rank) : rank;
    }
    case BalancePolicy::kRandom: {
      // Unmasked draws consume the RNG identically to the pre-fault code,
      // which keeps golden outputs byte-stable when no fault is active.
      const std::size_t rank = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(masked ? h : n) - 1));
      return masked ? nth_available(n, avail, rank) : rank;
    }
    case BalancePolicy::kLeastLoaded: {
      if (!load) return masked ? nth_available(n, avail, 0) : 0;
      std::size_t best = 0;
      double best_load = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < n; ++i) {
        if (masked && !avail(i)) continue;
        const double l = load(i);
        if (l < best_load) {
          best_load = l;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace ah::cluster
