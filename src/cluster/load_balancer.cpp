#include "cluster/load_balancer.hpp"
#include "common/analysis.hpp"

#include <cassert>
#include <limits>

AH_HOT_PATH_FILE;

namespace ah::cluster {

std::size_t LoadBalancer::pick(std::size_t n, LoadFn load) {
  assert(n > 0);
  switch (policy_) {
    case BalancePolicy::kRoundRobin: {
      const std::size_t choice = next_ % n;
      next_ = (next_ + 1) % n;
      return choice;
    }
    case BalancePolicy::kRandom:
      return static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    case BalancePolicy::kLeastLoaded: {
      if (!load) return 0;
      std::size_t best = 0;
      double best_load = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < n; ++i) {
        const double l = load(i);
        if (l < best_load) {
          best_load = l;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace ah::cluster
