// A cluster machine: CPU cores, one disk, one NIC, and a memory budget.
//
// Mirrors the paper's testbed nodes (dual Athlon, 1 GiB RAM, 100 Mbps
// Ethernet).  Hardware contention is modelled with sim::Resource queues;
// memory is a capacity counter whose over-subscription translates into a CPU
// slowdown (paging), which is how "too many threads / too large buffers"
// configurations hurt instead of help — the cliff the tuner must avoid.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/analysis.hpp"
#include "common/units.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

using NodeId = std::uint32_t;

struct NodeHardware {
  int cpu_cores = 2;                         // dual Athlon
  double cpu_speed = 1.0;                    // relative; >1 = faster
  common::Bytes memory = 1024LL * 1024 * 1024;  // 1 GiB
  double disk_mb_per_s = 35.0;               // sequential-ish throughput
  double disk_seek_s = 0.009;                // seek + rotational latency
  double nic_mbit_per_s = 100.0;             // 100 Mbps Ethernet
  common::SimTime nic_latency = common::SimTime::micros(200);
};

class Node {
 public:
  Node(sim::Simulator& sim, NodeId id, std::string name,
       const NodeHardware& hw);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const NodeHardware& hardware() const { return hw_; }

  /// CPU work: `demand` is time on a speed-1.0 core; actual service time is
  /// scaled by node speed and the current paging slowdown.
  [[nodiscard]] sim::Resource& cpu() { return *cpu_; }
  [[nodiscard]] sim::Resource& disk() { return *disk_; }
  [[nodiscard]] sim::Resource& nic() { return *nic_; }

  /// Converts a byte count into disk service time on this node.
  [[nodiscard]] common::SimTime disk_time(common::Bytes bytes) const;
  /// Converts a byte count into NIC serialization time (latency excluded;
  /// the caller adds `hardware().nic_latency` once per message).
  [[nodiscard]] common::SimTime nic_time(common::Bytes bytes) const;

  // -- Memory accounting ----------------------------------------------------
  /// Reserves memory.  Reservations beyond physical capacity are allowed but
  /// engage a paging slowdown on the CPU.
  void alloc_memory(common::Bytes bytes);
  void free_memory(common::Bytes bytes);
  [[nodiscard]] common::Bytes memory_used() const { return memory_used_; }
  /// used / capacity; > 1 when overcommitted.
  [[nodiscard]] double memory_pressure() const;

  // -- Fault state (driven by sim::FaultInjector via the system model) ------
  /// Ground truth used by health probes.  A dead node still exists (its
  /// resources keep draining in-service work) but refuses new requests.
  [[nodiscard]] bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// Routing view maintained by cluster::HealthChecker: lags `alive()` by
  /// the probe thresholds, which is exactly the mark-down/mark-up window
  /// the fault-recovery experiments measure.  Defaults to true so runs
  /// without a health checker behave as before.
  [[nodiscard]] bool marked_up() const { return marked_up_; }
  void set_marked_up(bool up) { marked_up_ = up; }

  /// Fail-slow multiplier (>= 1.0) applied to all CPU service on this node;
  /// models a degraded machine (thermal throttling, a sick disk driver)
  /// that still answers probes.  1.0 = healthy.
  [[nodiscard]] double fault_slowdown() const { return fault_slowdown_; }
  void set_fault_slowdown(double factor);

  // -- Utilization probes (consumed by sim::UtilizationMonitor) -------------
  /// Each call returns utilization since the previous call to the same probe.
  [[nodiscard]] double cpu_utilization_probe();
  [[nodiscard]] double disk_utilization_probe();
  [[nodiscard]] double nic_utilization_probe();

 private:
  /// Re-derives the CPU slowdown from node speed and memory pressure.
  void refresh_cpu_slowdown();

  sim::Simulator& sim_;
  NodeId id_;
  std::string name_;
  NodeHardware hw_;

  std::unique_ptr<sim::Resource> cpu_;
  std::unique_ptr<sim::Resource> disk_;
  std::unique_ptr<sim::Resource> nic_;

  common::Bytes memory_used_ = 0;
  bool alive_ = true;
  bool marked_up_ = true;
  double fault_slowdown_ = 1.0;

  struct ProbeSnapshot {
    std::int64_t integral = 0;
    common::SimTime at = common::SimTime::zero();
  };
  ProbeSnapshot cpu_snap_;
  ProbeSnapshot disk_snap_;
  ProbeSnapshot nic_snap_;
};

}  // namespace ah::cluster
