#include "cluster/cluster.hpp"

#include <stdexcept>

#include "common/analysis.hpp"
#include "common/fmt.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

Cluster::Cluster(sim::Simulator& sim)
    : sim_(sim),
      tiers_{Tier{TierKind::kProxy}, Tier{TierKind::kApp}, Tier{TierKind::kDb}} {}

NodeId Cluster::add_node(const NodeHardware& hw, TierKind tier_kind) {
  return add_node(sim_, hw, tier_kind);
}

NodeId Cluster::add_node(sim::Simulator& sim, const NodeHardware& hw,
                         TierKind tier_kind) {
  const auto id = static_cast<NodeId>(nodes_.size());
  AH_LINT_ALLOW(hot_path_alloc, "topology construction: add_node runs at cluster build time only");
  nodes_.push_back(std::make_unique<Node>(
      sim, id, common::format("node{}", id), hw));
  node_tier_.push_back(tier_kind);
  tiers_[tier_index(tier_kind)].add(id);
  return id;
}

Node& Cluster::node(NodeId id) { return *nodes_.at(id); }

const Node& Cluster::node(NodeId id) const { return *nodes_.at(id); }

TierKind Cluster::tier_of(NodeId id) const { return node_tier_.at(id); }

std::vector<Node*> Cluster::nodes_in(TierKind kind) {
  std::vector<Node*> result;
  for (NodeId id : tier(kind).members()) result.push_back(&node(id));
  return result;
}

void Cluster::move_node(NodeId id, TierKind to) {
  const TierKind from = tier_of(id);
  if (from == to) return;
  if (tier(from).size() <= 1) {
    throw std::logic_error(common::format(
        "move_node: tier '{}' would become empty", tier_name(from)));
  }
  tier(from).remove(id);
  tier(to).add(id);
  node_tier_.at(id) = to;
  if (move_observer_) move_observer_(id, from, to);
}

}  // namespace ah::cluster
