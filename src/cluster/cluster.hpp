// Cluster topology: owns nodes and their tier assignment.
//
// Reconfiguration (paper Section IV) moves a node between tiers; the Cluster
// records membership and raises an observer callback so that the web-stack
// layer can stop/start the right server processes.  The Cluster itself is
// policy-free — deciding *which* node to move is the Harmony reconfiguration
// algorithm's job.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/tier.hpp"
#include "common/analysis.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

class Cluster {
 public:
  explicit Cluster(sim::Simulator& sim);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Creates a node and assigns it to `tier`.  Returns its id.
  NodeId add_node(const NodeHardware& hw, TierKind tier);

  /// As above but placing the node's hardware on an explicit timeline.  A
  /// sharded SystemModel keeps one Cluster for membership (ids, tiers) while
  /// each work line's nodes run on that line's own Simulator.
  NodeId add_node(sim::Simulator& sim, const NodeHardware& hw, TierKind tier);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;

  [[nodiscard]] Tier& tier(TierKind kind) { return tiers_[tier_index(kind)]; }
  [[nodiscard]] const Tier& tier(TierKind kind) const {
    return tiers_[tier_index(kind)];
  }

  /// Tier a node currently belongs to.
  [[nodiscard]] TierKind tier_of(NodeId id) const;

  /// Nodes of a tier in membership order.
  [[nodiscard]] std::vector<Node*> nodes_in(TierKind kind);

  /// Moves `id` to `to`.  Precondition: the source tier keeps >= 1 member
  /// (the paper's step-4(b) safety rule); violating it throws
  /// std::logic_error.  Fires the move observer after membership changes.
  void move_node(NodeId id, TierKind to);

  /// Observer invoked as (node, from, to) after each move.
  AH_LINT_ALLOW(hot_path_alloc, "reconfiguration observer: node moves are rare control-plane events");
  using MoveObserver = std::function<void(NodeId, TierKind, TierKind)>;
  void set_move_observer(MoveObserver observer) {
    move_observer_ = std::move(observer);
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<TierKind> node_tier_;
  std::array<Tier, kTierCount> tiers_;
  MoveObserver move_observer_;
};

}  // namespace ah::cluster
