#include "cluster/node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/analysis.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

namespace {

/// Paging penalty: no effect up to 95% of physical memory, then the CPU
/// slows sharply.  The exponent keeps mild overcommit survivable while
/// making heavy overcommit (e.g. maximal thread counts × maximal buffers)
/// clearly worse than a tuned configuration.
double paging_slowdown(double pressure) {
  if (pressure <= 0.95) return 1.0;
  const double excess = pressure - 0.95;
  return 1.0 + 8.0 * excess + 40.0 * excess * excess;
}

}  // namespace

Node::Node(sim::Simulator& sim, NodeId id, std::string name,
           const NodeHardware& hw)
    : sim_(sim), id_(id), name_(std::move(name)), hw_(hw) {
  assert(hw_.cpu_cores > 0);
  assert(hw_.cpu_speed > 0.0);
  AH_LINT_ALLOW(hot_path_alloc, "node construction: resources allocated once at startup");
  cpu_ = std::make_unique<sim::Resource>(
      sim_, name_ + ".cpu",
      sim::Resource::Config{hw_.cpu_cores, static_cast<std::size_t>(-1),
                            1.0 / hw_.cpu_speed});
  AH_LINT_ALLOW(hot_path_alloc, "node construction: resources allocated once at startup");
  disk_ = std::make_unique<sim::Resource>(
      sim_, name_ + ".disk", sim::Resource::Config{1});
  AH_LINT_ALLOW(hot_path_alloc, "node construction: resources allocated once at startup");
  nic_ = std::make_unique<sim::Resource>(
      sim_, name_ + ".nic", sim::Resource::Config{1});
}

common::SimTime Node::disk_time(common::Bytes bytes) const {
  // Seek/overhead floor plus transfer proportional to size.
  const double seconds =
      hw_.disk_seek_s + static_cast<double>(bytes) / (hw_.disk_mb_per_s * 1e6);
  return common::SimTime::seconds(seconds);
}

common::SimTime Node::nic_time(common::Bytes bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (hw_.nic_mbit_per_s * 1e6);
  return common::SimTime::seconds(seconds);
}

void Node::alloc_memory(common::Bytes bytes) {
  assert(bytes >= 0);
  memory_used_ += bytes;
  refresh_cpu_slowdown();
}

void Node::free_memory(common::Bytes bytes) {
  assert(bytes >= 0);
  memory_used_ = std::max<common::Bytes>(0, memory_used_ - bytes);
  refresh_cpu_slowdown();
}

double Node::memory_pressure() const {
  return static_cast<double>(memory_used_) /
         static_cast<double>(hw_.memory);
}

void Node::set_fault_slowdown(double factor) {
  assert(factor >= 1.0);
  fault_slowdown_ = factor;
  refresh_cpu_slowdown();
}

void Node::refresh_cpu_slowdown() {
  cpu_->set_slowdown(paging_slowdown(memory_pressure()) * fault_slowdown_ /
                     hw_.cpu_speed);
}

double Node::cpu_utilization_probe() {
  const double u = cpu_->utilization_since(cpu_snap_.integral, cpu_snap_.at);
  cpu_snap_ = {cpu_->busy_integral(), sim_.now()};
  return u;
}

double Node::disk_utilization_probe() {
  const double u =
      disk_->utilization_since(disk_snap_.integral, disk_snap_.at);
  disk_snap_ = {disk_->busy_integral(), sim_.now()};
  return u;
}

double Node::nic_utilization_probe() {
  const double u = nic_->utilization_since(nic_snap_.integral, nic_snap_.at);
  nic_snap_ = {nic_->busy_integral(), sim_.now()};
  return u;
}

}  // namespace ah::cluster
