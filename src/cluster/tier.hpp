// Tier taxonomy and membership.
//
// The paper's three-tier architecture: proxy (presentation), application
// (middleware), database (backend).  A Tier is an ordered set of node ids;
// ordering matters because the load balancer's round-robin and the
// "representative node" of the parameter-duplication strategy both refer to
// positions within the tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/node.hpp"
#include "common/analysis.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

enum class TierKind : int { kProxy = 0, kApp = 1, kDb = 2 };

inline constexpr std::size_t kTierCount = 3;

[[nodiscard]] constexpr std::string_view tier_name(TierKind kind) {
  switch (kind) {
    case TierKind::kProxy: return "proxy";
    case TierKind::kApp:   return "app";
    case TierKind::kDb:    return "db";
  }
  return "?";
}

[[nodiscard]] constexpr std::size_t tier_index(TierKind kind) {
  return static_cast<std::size_t>(kind);
}

class Tier {
 public:
  explicit Tier(TierKind kind) : kind_(kind) {}

  [[nodiscard]] TierKind kind() const { return kind_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }

  [[nodiscard]] bool contains(NodeId id) const;

  /// Appends a node (healthy by default).  Precondition: not already a
  /// member.
  void add(NodeId id);

  /// Removes a node.  Returns false when it was not a member.
  bool remove(NodeId id);

  // -- Health view (maintained by cluster::HealthChecker) -------------------
  /// Marks member `id` up/down for capacity accounting.  No-op for
  /// non-members (a node may be marked down while mid-move).
  void set_member_health(NodeId id, bool healthy);
  [[nodiscard]] bool member_healthy(NodeId id) const;
  /// Number of members currently marked up.  The reconfiguration
  /// controller treats this — not size() — as the tier's usable capacity.
  [[nodiscard]] std::size_t healthy_count() const;

 private:
  TierKind kind_;
  std::vector<NodeId> members_;
  /// Parallel to members_: non-zero when the node is marked up.  Byte
  /// elements, not vector<bool>: per-line health checkers on different
  /// work-line threads may write distinct entries concurrently, which a
  /// packed bitfield would turn into a data race on the shared word.
  std::vector<std::uint8_t> healthy_;
};

}  // namespace ah::cluster
