// Backend-selection policies for a tier.
//
// The paper assumes "workload evenly distributed among all the servers in
// the same tier" for parameter duplication, and strict work-line isolation
// for parameter partitioning.  Both are expressible here: kRoundRobin gives
// even spread; the partitioned topology simply gives each work line a
// single-backend balancer.
#pragma once

#include <cstddef>

#include "common/analysis.hpp"
#include "common/function_ref.hpp"
#include "common/rng.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

enum class BalancePolicy { kRoundRobin, kLeastLoaded, kRandom };

class LoadBalancer {
 public:
  /// `load(i)` must return a comparable load figure for backend i (queue
  /// length, connections, ...); only kLeastLoaded consults it.  Consulted
  /// once per routed request and never stored, so it is a non-owning
  /// FunctionRef — callers pass a lambda at the pick() call site with no
  /// allocation and no ownership transfer.
  using LoadFn = common::FunctionRef<double(std::size_t)>;

  /// `avail(i)` must return whether backend i may receive traffic (health
  /// mask from cluster::HealthChecker).  An empty AvailFn means "all
  /// available" and costs nothing — the unmasked fast paths are taken.
  using AvailFn = common::FunctionRef<bool(std::size_t)>;

  explicit LoadBalancer(BalancePolicy policy, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  /// Picks a backend in [0, n).  Precondition: n > 0.  When `avail` is
  /// given, only backends it admits are chosen; round-robin spreads evenly
  /// over the *healthy subset* (the cursor advances one healthy position
  /// per pick, so skipped backends cannot skew the rotation).  If no
  /// backend is available the mask is ignored — callers are expected to
  /// fail fast before picking in that case.
  [[nodiscard]] std::size_t pick(std::size_t n, LoadFn load = {},
                                 AvailFn avail = {});

  [[nodiscard]] BalancePolicy policy() const { return policy_; }

  /// Resets round-robin position (used after tier membership changes so a
  /// stale cursor cannot skew the spread).
  void reset() { next_ = 0; }

 private:
  BalancePolicy policy_;
  std::size_t next_ = 0;
  common::Rng rng_;
};

}  // namespace ah::cluster
