// Backend-selection policies for a tier.
//
// The paper assumes "workload evenly distributed among all the servers in
// the same tier" for parameter duplication, and strict work-line isolation
// for parameter partitioning.  Both are expressible here: kRoundRobin gives
// even spread; the partitioned topology simply gives each work line a
// single-backend balancer.
#pragma once

#include <cstddef>
#include <functional>

#include "common/rng.hpp"

namespace ah::cluster {

enum class BalancePolicy { kRoundRobin, kLeastLoaded, kRandom };

class LoadBalancer {
 public:
  /// `load(i)` must return a comparable load figure for backend i (queue
  /// length, connections, ...); only kLeastLoaded consults it.
  using LoadFn = std::function<double(std::size_t)>;

  explicit LoadBalancer(BalancePolicy policy, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  /// Picks a backend in [0, n).  Precondition: n > 0.
  [[nodiscard]] std::size_t pick(std::size_t n, const LoadFn& load = {});

  [[nodiscard]] BalancePolicy policy() const { return policy_; }

  /// Resets round-robin position (used after tier membership changes so a
  /// stale cursor cannot skew the spread).
  void reset() { next_ = 0; }

 private:
  BalancePolicy policy_;
  std::size_t next_ = 0;
  common::Rng rng_;
};

}  // namespace ah::cluster
