// Backend-selection policies for a tier.
//
// The paper assumes "workload evenly distributed among all the servers in
// the same tier" for parameter duplication, and strict work-line isolation
// for parameter partitioning.  Both are expressible here: kRoundRobin gives
// even spread; the partitioned topology simply gives each work line a
// single-backend balancer.
#pragma once

#include <cstddef>

#include "common/analysis.hpp"
#include "common/function_ref.hpp"
#include "common/rng.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

enum class BalancePolicy { kRoundRobin, kLeastLoaded, kRandom };

class LoadBalancer {
 public:
  /// `load(i)` must return a comparable load figure for backend i (queue
  /// length, connections, ...); only kLeastLoaded consults it.  Consulted
  /// once per routed request and never stored, so it is a non-owning
  /// FunctionRef — callers pass a lambda at the pick() call site with no
  /// allocation and no ownership transfer.
  using LoadFn = common::FunctionRef<double(std::size_t)>;

  explicit LoadBalancer(BalancePolicy policy, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  /// Picks a backend in [0, n).  Precondition: n > 0.
  [[nodiscard]] std::size_t pick(std::size_t n, LoadFn load = {});

  [[nodiscard]] BalancePolicy policy() const { return policy_; }

  /// Resets round-robin position (used after tier membership changes so a
  /// stale cursor cannot skew the spread).
  void reset() { next_ = 0; }

 private:
  BalancePolicy policy_;
  std::size_t next_ = 0;
  common::Rng rng_;
};

}  // namespace ah::cluster
