// Periodic heartbeat probing with hysteresis.
//
// Models the monitoring daemon of the paper's testbed: every `period` the
// checker probes each node's liveness and, after `mark_down_after`
// consecutive failures (resp. `mark_up_after` successes), flips the node's
// routing mark.  The two-threshold hysteresis is what keeps a *flapping*
// node from whipsawing the load balancer — a single missed heartbeat never
// changes routing.  Marks are published in two places consumed on different
// paths: Node::marked_up() (read by routers building the availability mask
// per request) and Tier::set_member_health (read by the reconfiguration
// controller's capacity accounting).
//
// Probes are simulated-time events on the shared EventQueue, so runs remain
// bit-identical across thread counts; the probe itself reads Node::alive()
// synchronously — heartbeat RTT is far below the probe period on the
// testbed's switched Ethernet, so modelling it would add events without
// adding fidelity.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/analysis.hpp"
#include "common/inline_function.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

AH_HOT_PATH_FILE;

namespace ah::cluster {

class HealthChecker {
 public:
  struct Config {
    /// Probe interval; every node is probed once per tick.
    common::SimTime period = common::SimTime::millis(500);
    /// Consecutive failed probes before a node is marked down.
    int mark_down_after = 2;
    /// Consecutive successful probes before a marked-down node returns.
    int mark_up_after = 2;
  };

  /// Worst-case time from a crash to mark-down: the crash can land just
  /// after a probe, then `mark_down_after` more probes must fail.
  [[nodiscard]] static common::SimTime probe_budget(const Config& config) {
    return config.period * static_cast<double>(config.mark_down_after + 1);
  }

  /// Observer fired on each transition as (node, now_up).  Sized like an
  /// EventFn; SBO-required so observers cannot silently allocate.
  using TransitionFn =
      common::InlineFunction<void(NodeId, bool), 48,
                             common::SboPolicy::kRequired>;

  HealthChecker(sim::Simulator& sim, Cluster& cluster, const Config& config);

  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;
  ~HealthChecker();

  /// Begins periodic probing (first tick one period from now).
  void start();
  /// Stops probing; marks are left as they are.
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  void set_transition_observer(TransitionFn observer) {
    observer_ = std::move(observer);
  }

  /// Restricts probing to `nodes` (a work line's slice of the cluster).
  /// Empty means probe every node, the default.  A sharded SystemModel
  /// gives each line's checker that line's nodes so health traffic and
  /// mark flips stay on the line's own timeline.
  void set_scope(std::vector<NodeId> nodes) { scope_ = std::move(nodes); }
  [[nodiscard]] const std::vector<NodeId>& scope() const { return scope_; }

  /// Current routing mark for `id` (true until probing says otherwise).
  [[nodiscard]] bool node_up(NodeId id) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  /// Probes that went unanswered (the probe budget being consumed; every
  /// `mark_down_after`-th consecutive one exhausts it into a mark-down).
  [[nodiscard]] std::uint64_t failed_probes() const { return failed_probes_; }
  [[nodiscard]] std::uint64_t mark_downs() const { return mark_downs_; }
  [[nodiscard]] std::uint64_t mark_ups() const { return mark_ups_; }
  /// Nodes currently marked down.
  [[nodiscard]] int nodes_down() const { return nodes_down_; }
  /// Total marked-down node-time: closed mark-down windows plus the open
  /// ones up to now.  The per-incident mark-down duration the tuner and
  /// the SLA accounting care about, in aggregate.
  [[nodiscard]] common::SimTime total_downtime() const;

 private:
  struct NodeState {
    int consecutive_failures = 0;
    int consecutive_successes = 0;
    bool up = true;
    /// Mark-down instant while down (downtime accounting).
    common::SimTime down_since = common::SimTime::zero();
  };

  void tick();
  void probe(NodeId id, NodeState& state);
  void publish(NodeId id, bool up);

  sim::Simulator& sim_;
  Cluster& cluster_;
  Config config_;
  /// Indexed by NodeId; grown lazily so nodes added mid-run are covered.
  std::vector<NodeState> states_;
  /// Node ids to probe; empty = all cluster nodes.
  std::vector<NodeId> scope_;
  TransitionFn observer_;
  sim::EventId tick_id_ = 0;  // EventQueue ids are never zero
  bool running_ = false;
  std::uint64_t probes_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t failed_probes_ = 0;
  std::uint64_t mark_downs_ = 0;
  std::uint64_t mark_ups_ = 0;
  int nodes_down_ = 0;
  /// Downtime of already-closed mark-down windows.
  common::SimTime closed_downtime_ = common::SimTime::zero();
};

}  // namespace ah::cluster
