#include "cluster/health_checker.hpp"
#include "common/analysis.hpp"

#include <cassert>

AH_HOT_PATH_FILE;

namespace ah::cluster {

HealthChecker::HealthChecker(sim::Simulator& sim, Cluster& cluster,
                             const Config& config)
    : sim_(sim), cluster_(cluster), config_(config) {
  assert(config_.period > common::SimTime::zero());
  assert(config_.mark_down_after >= 1);
  assert(config_.mark_up_after >= 1);
}

HealthChecker::~HealthChecker() { stop(); }

void HealthChecker::start() {
  if (running_) return;
  running_ = true;
  tick_id_ = sim_.schedule(config_.period, [this] { tick(); });
}

void HealthChecker::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(tick_id_);
  tick_id_ = 0;
}

bool HealthChecker::node_up(NodeId id) const {
  if (id >= states_.size()) return true;  // never probed: assumed healthy
  return states_[id].up;
}

void HealthChecker::tick() {
  AH_HOT_ENTRY;  // periodic probe sweep driven by the event loop
  if (states_.size() < cluster_.node_count()) {
    states_.resize(cluster_.node_count());
  }
  if (scope_.empty()) {
    for (NodeId id = 0; id < states_.size(); ++id) {
      probe(id, states_[id]);
    }
  } else {
    for (const NodeId id : scope_) {
      probe(id, states_.at(id));
    }
  }
  tick_id_ = sim_.schedule(config_.period, [this] { tick(); });
}

void HealthChecker::probe(NodeId id, NodeState& state) {
  ++probes_;
  const bool responded = cluster_.node(id).alive();
  if (responded) {
    state.consecutive_failures = 0;
    if (!state.up && ++state.consecutive_successes >= config_.mark_up_after) {
      state.up = true;
      state.consecutive_successes = 0;
      publish(id, true);
    }
  } else {
    ++failed_probes_;
    state.consecutive_successes = 0;
    if (state.up && ++state.consecutive_failures >= config_.mark_down_after) {
      state.up = false;
      state.consecutive_failures = 0;
      publish(id, false);
    }
  }
}

void HealthChecker::publish(NodeId id, bool up) {
  ++transitions_;
  NodeState& state = states_.at(id);
  if (up) {
    ++mark_ups_;
    if (nodes_down_ > 0) --nodes_down_;
    closed_downtime_ = closed_downtime_ + (sim_.now() - state.down_since);
  } else {
    ++mark_downs_;
    ++nodes_down_;
    state.down_since = sim_.now();
  }
  cluster_.node(id).set_marked_up(up);
  cluster_.tier(cluster_.tier_of(id)).set_member_health(id, up);
  if (observer_) observer_(id, up);
}

common::SimTime HealthChecker::total_downtime() const {
  common::SimTime total = closed_downtime_;
  for (const NodeState& state : states_) {
    if (!state.up) total = total + (sim_.now() - state.down_since);
  }
  return total;
}

}  // namespace ah::cluster
