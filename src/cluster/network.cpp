#include "cluster/network.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::cluster {

namespace {
bool endpoint_matches(NodeId pattern, NodeId id) {
  return pattern == kAnyNode || pattern == id;
}
}  // namespace

bool Network::send(Node& from, Node& to, common::Bytes bytes,
                   sim::EventFn on_delivered) {
  ++messages_;
  bytes_ += bytes;
  common::SimTime extra = common::SimTime::zero();
  if (!faults_.empty()) {
    if (const LinkFault* fault = match_fault(from.id(), to.id())) {
      // The drop die is rolled at send time: NIC serialization is still
      // charged (the sender pushed the frame; the network lost it).
      if (fault->drop > 0.0 && fault_rng_.uniform() < fault->drop) {
        ++dropped_;
        from.nic().submit(from.nic_time(bytes), {});
        return false;
      }
      extra = fault->extra_delay;
    }
  }
  if (from.id() == to.id()) {
    // Loopback: treat as immediate (scheduled at now, preserving event
    // ordering but costing no NIC time).
    sim_.schedule(common::SimTime::zero(), std::move(on_delivered));
    return true;
  }
  const common::SimTime demand = from.nic_time(bytes);
  const common::SimTime latency = from.hardware().nic_latency + extra;
  if (!batching_) {
    Msg* msg = msgs_.acquire();
    msg->net = this;
    msg->from = &from;
    msg->latency = latency;
    msg->batch = nullptr;
    msg->on_delivered = std::move(on_delivered);
    auto done = [msg] { msg->net->nic_done(msg); };
    static_assert(sim::Resource::Completion::stores_inline<decltype(done)>(),
                  "NIC completion closure must not allocate");
    if (!from.nic().submit(demand, std::move(done))) msgs_.release(msg);
    return true;
  }
  if (open_.size() <= from.id()) open_.resize(from.id() + 1);
  OpenSlot& slot = open_[from.id()];
  if (slot.msg != nullptr && slot.to == to.id() &&
      from.nic().extend_queued_tail(slot.job, demand)) {
    // Coalesce onto the still-queued tail job to this destination.  The
    // extend only succeeds when a fresh submit would also have been
    // admitted, so batching never smuggles work past the NIC's checks.
    Msg* head = slot.msg;
    Batch* batch = head->batch;
    if (batch == nullptr) {
      batch = batches_.acquire();
      batch->members.clear();
      batch->cum = head->demand;
      batch->members.push_back(
          Member{batch->cum, head->latency, std::move(head->on_delivered)});
      head->batch = batch;
      ++batches_coalesced_;
      ++messages_batched_;  // the head now rides the merged job too
    }
    batch->cum += demand;
    batch->members.push_back(Member{batch->cum, latency, std::move(on_delivered)});
    ++messages_batched_;
    return true;
  }
  Msg* msg = msgs_.acquire();
  msg->net = this;
  msg->from = &from;
  msg->latency = latency;
  msg->demand = demand;
  msg->batch = nullptr;
  msg->on_delivered = std::move(on_delivered);
  auto started = [msg] { msg->net->nic_started(msg); };
  auto done = [msg] { msg->net->nic_done(msg); };
  static_assert(sim::Resource::Completion::stores_inline<decltype(started)>(),
                "NIC start closure must not allocate");
  static_assert(sim::Resource::Completion::stores_inline<decltype(done)>(),
                "NIC completion closure must not allocate");
  // Only a job that actually queued can be extended later; when the NIC is
  // idle the job starts inside submit_job and the window never opens.
  const bool will_queue = from.nic().busy() >= from.nic().servers();
  const sim::Resource::JobId job =
      from.nic().submit_job(demand, std::move(started), std::move(done));
  if (job == 0) {
    // Waiting line full: the message is lost at the sender, same as the
    // plain-submit rejection before batching existed.
    msgs_.release(msg);
    return true;
  }
  if (will_queue) {
    slot = OpenSlot{msg, job, to.id()};
  } else {
    slot = OpenSlot{};
  }
  return true;
}

void Network::nic_started(Msg* msg) {
  OpenSlot& slot = open_[msg->from->id()];
  if (slot.msg == msg) slot = OpenSlot{};  // on the wire: window closed
  Batch* batch = msg->batch;
  if (batch == nullptr) return;
  // Replay the unbatched delivery schedule: member i left the NIC at
  // start + prefix_i (scaled by the slowdown the merged job started
  // under) and arrived one propagation latency later.  Members are
  // scheduled in send order, so equal-time deliveries keep their order.
  const double slow = msg->from->nic().slowdown();
  for (Member& member : batch->members) {
    const common::SimTime serial =
        slow == 1.0 ? member.prefix : member.prefix * slow;
    sim_.schedule(serial + member.latency, std::move(member.on_delivered));
  }
}

void Network::set_link_fault(NodeId from, NodeId to, double drop,
                             common::SimTime extra_delay) {
  for (LinkFault& fault : faults_) {
    if (fault.from == from && fault.to == to) {
      fault.drop = drop;
      fault.extra_delay = extra_delay;
      return;
    }
  }
  faults_.push_back(LinkFault{from, to, drop, extra_delay});
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  faults_.erase(std::remove_if(faults_.begin(), faults_.end(),
                               [&](const LinkFault& fault) {
                                 return fault.from == from && fault.to == to;
                               }),
                faults_.end());
}

const Network::LinkFault* Network::match_fault(NodeId from, NodeId to) const {
  for (const LinkFault& fault : faults_) {
    if (endpoint_matches(fault.from, from) && endpoint_matches(fault.to, to)) {
      return &fault;
    }
  }
  return nullptr;
}

void Network::nic_done(Msg* msg) {
  if (Batch* batch = msg->batch) {
    // Deliveries were scheduled at serialization start; the merged job's
    // completion only returns the pooled state.
    batch->members.clear();
    batches_.release(batch);
    msg->batch = nullptr;
    msgs_.release(msg);
    return;
  }
  const common::SimTime latency = msg->latency;
  sim::EventFn cb = std::move(msg->on_delivered);
  msgs_.release(msg);
  sim_.schedule(latency, std::move(cb));
}

}  // namespace ah::cluster
