#include "cluster/network.hpp"

#include <utility>

namespace ah::cluster {

void Network::send(Node& from, Node& to, common::Bytes bytes,
                   std::function<void()> on_delivered) {
  ++messages_;
  bytes_ += bytes;
  if (from.id() == to.id()) {
    // Loopback: treat as immediate (scheduled at now, preserving event
    // ordering but costing no NIC time).
    sim_.schedule(common::SimTime::zero(), std::move(on_delivered));
    return;
  }
  const common::SimTime latency = from.hardware().nic_latency;
  from.nic().submit(
      from.nic_time(bytes),
      [this, latency, cb = std::move(on_delivered)]() mutable {
        sim_.schedule(latency, std::move(cb));
      });
}

}  // namespace ah::cluster
