#include "cluster/network.hpp"
#include "common/analysis.hpp"

#include <algorithm>
#include <utility>

AH_HOT_PATH_FILE;

namespace ah::cluster {

namespace {
bool endpoint_matches(NodeId pattern, NodeId id) {
  return pattern == kAnyNode || pattern == id;
}
}  // namespace

bool Network::send(Node& from, Node& to, common::Bytes bytes,
                   sim::EventFn on_delivered) {
  ++messages_;
  bytes_ += bytes;
  common::SimTime extra = common::SimTime::zero();
  if (!faults_.empty()) {
    if (const LinkFault* fault = match_fault(from.id(), to.id())) {
      // The drop die is rolled at send time: NIC serialization is still
      // charged (the sender pushed the frame; the network lost it).
      if (fault->drop > 0.0 && fault_rng_.uniform() < fault->drop) {
        ++dropped_;
        from.nic().submit(from.nic_time(bytes), {});
        return false;
      }
      extra = fault->extra_delay;
    }
  }
  if (from.id() == to.id()) {
    // Loopback: treat as immediate (scheduled at now, preserving event
    // ordering but costing no NIC time).
    sim_.schedule(common::SimTime::zero(), std::move(on_delivered));
    return true;
  }
  Msg* msg = msgs_.acquire();
  msg->net = this;
  msg->latency = from.hardware().nic_latency + extra;
  msg->on_delivered = std::move(on_delivered);
  auto done = [msg] { msg->net->nic_done(msg); };
  static_assert(sim::Resource::Completion::stores_inline<decltype(done)>(),
                "NIC completion closure must not allocate");
  from.nic().submit(from.nic_time(bytes), std::move(done));
  return true;
}

void Network::set_link_fault(NodeId from, NodeId to, double drop,
                             common::SimTime extra_delay) {
  for (LinkFault& fault : faults_) {
    if (fault.from == from && fault.to == to) {
      fault.drop = drop;
      fault.extra_delay = extra_delay;
      return;
    }
  }
  faults_.push_back(LinkFault{from, to, drop, extra_delay});
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  faults_.erase(std::remove_if(faults_.begin(), faults_.end(),
                               [&](const LinkFault& fault) {
                                 return fault.from == from && fault.to == to;
                               }),
                faults_.end());
}

const Network::LinkFault* Network::match_fault(NodeId from, NodeId to) const {
  for (const LinkFault& fault : faults_) {
    if (endpoint_matches(fault.from, from) && endpoint_matches(fault.to, to)) {
      return &fault;
    }
  }
  return nullptr;
}

void Network::nic_done(Msg* msg) {
  const common::SimTime latency = msg->latency;
  sim::EventFn cb = std::move(msg->on_delivered);
  msgs_.release(msg);
  sim_.schedule(latency, std::move(cb));
}

}  // namespace ah::cluster
