#include "cluster/network.hpp"
#include "common/analysis.hpp"

#include <utility>

AH_HOT_PATH_FILE;

namespace ah::cluster {

void Network::send(Node& from, Node& to, common::Bytes bytes,
                   sim::EventFn on_delivered) {
  ++messages_;
  bytes_ += bytes;
  if (from.id() == to.id()) {
    // Loopback: treat as immediate (scheduled at now, preserving event
    // ordering but costing no NIC time).
    sim_.schedule(common::SimTime::zero(), std::move(on_delivered));
    return;
  }
  Msg* msg = msgs_.acquire();
  msg->net = this;
  msg->latency = from.hardware().nic_latency;
  msg->on_delivered = std::move(on_delivered);
  auto done = [msg] { msg->net->nic_done(msg); };
  static_assert(sim::Resource::Completion::stores_inline<decltype(done)>(),
                "NIC completion closure must not allocate");
  from.nic().submit(from.nic_time(bytes), std::move(done));
}

void Network::nic_done(Msg* msg) {
  const common::SimTime latency = msg->latency;
  sim::EventFn cb = std::move(msg->on_delivered);
  msgs_.release(msg);
  sim_.schedule(latency, std::move(cb));
}

}  // namespace ah::cluster
