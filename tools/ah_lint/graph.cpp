#include "graph.hpp"

#include <algorithm>
#include <deque>
#include <functional>

namespace ah_lint {

namespace fs = std::filesystem;

namespace {

/// Resolves one include spelling against the include bases: the including
/// file's directory, then every scan root.  Returns npos when the target
/// is not part of the scanned set (system or external headers).
std::size_t resolve_include(
    const Index& index, std::size_t from,
    const std::string& spelling,
    const std::map<std::string, std::size_t>& by_canonical) {
  std::vector<fs::path> bases;
  bases.push_back(index.files[from].path.parent_path());
  bases.push_back(index.roots[index.root_of[from]]);
  for (const fs::path& root : index.roots) bases.push_back(root);
  for (const fs::path& base : bases) {
    std::error_code ec;
    const fs::path candidate = fs::weakly_canonical(base / spelling, ec);
    if (ec) continue;
    const auto it = by_canonical.find(candidate.generic_string());
    if (it != by_canonical.end()) return it->second;
  }
  return IncludeGraph::npos;
}

}  // namespace

IncludeGraph build_include_graph(const Index& index) {
  IncludeGraph graph;
  const std::size_t n = index.files.size();
  graph.edges.resize(n);
  graph.closure.resize(n);
  graph.paired_header.assign(n, IncludeGraph::npos);

  std::map<std::string, std::size_t> by_canonical;
  for (std::size_t i = 0; i < n; ++i) {
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(index.files[i].path, ec);
    if (!ec) by_canonical.emplace(canonical.generic_string(), i);
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [line, spelling] : index.files[i].includes) {
      const std::size_t target =
          resolve_include(index, i, spelling, by_canonical);
      if (target != IncludeGraph::npos) {
        graph.edges[i].emplace_back(target, line);
      }
    }
    if (index.files[i].path.extension() == ".cpp") {
      std::error_code ec;
      fs::path header = index.files[i].path;
      header.replace_extension(".hpp");
      const fs::path canonical = fs::weakly_canonical(header, ec);
      if (!ec) {
        const auto it = by_canonical.find(canonical.generic_string());
        if (it != by_canonical.end()) graph.paired_header[i] = it->second;
      }
    }
  }

  // Transitive closure, cycle-tolerant: iterative worklist per file.
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t>& closed = graph.closure[i];
    std::deque<std::size_t> work{i};
    closed.insert(i);
    while (!work.empty()) {
      const std::size_t cur = work.front();
      work.pop_front();
      for (const auto& [target, line] : graph.edges[cur]) {
        if (closed.insert(target).second) work.push_back(target);
      }
    }
  }

  // Cycle detection: iterative DFS with colors; each cycle reported once,
  // rotated to start at its smallest file index.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::size_t> stack;
  std::set<std::vector<std::size_t>> seen_cycles;
  std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    color[u] = 1;
    stack.push_back(u);
    for (const auto& [v, line] : graph.edges[u]) {
      if (color[v] == 0) {
        dfs(v);
      } else if (color[v] == 1) {
        const auto it = std::find(stack.begin(), stack.end(), v);
        std::vector<std::size_t> cycle(it, stack.end());
        const auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        if (seen_cycles.insert(cycle).second) {
          graph.cycles.push_back(cycle);
        }
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (color[i] == 0) dfs(i);
  }
  std::sort(graph.cycles.begin(), graph.cycles.end());
  return graph;
}

namespace {

/// A call in `from_file` may bind to a function defined in `def_file` only
/// if the definition (or its declaring header) is in the caller's include
/// closure.
bool visible(const IncludeGraph& includes, std::size_t from_file,
             std::size_t def_file) {
  if (includes.closure[from_file].count(def_file) != 0) return true;
  const std::size_t paired = includes.paired_header[def_file];
  return paired != IncludeGraph::npos &&
         includes.closure[from_file].count(paired) != 0;
}

}  // namespace

Taint propagate_taint(const Index& index, const IncludeGraph& includes) {
  Taint taint;
  const std::size_t n = index.functions.size();
  taint.tainted.assign(n, false);
  taint.parent.assign(n, Taint::npos);

  std::deque<std::size_t> work;
  for (std::size_t i = 0; i < n; ++i) {
    if (index.functions[i].hot_entry) {
      taint.tainted[i] = true;
      work.push_back(i);
      ++taint.seed_count;
    }
  }

  while (!work.empty()) {
    const std::size_t cur = work.front();
    work.pop_front();
    const FunctionDef& fn = index.functions[cur];
    auto visit = [&](std::size_t callee) {
      if (!taint.tainted[callee]) {
        taint.tainted[callee] = true;
        taint.parent[callee] = cur;
        work.push_back(callee);
      }
    };
    for (const std::size_t callee : fn.direct_callees) visit(callee);
    for (const std::string& name : fn.calls) {
      const auto it = index.by_name.find(name);
      if (it == index.by_name.end()) continue;
      for (const std::size_t callee : it->second) {
        if (visible(includes, fn.file, index.functions[callee].file)) {
          visit(callee);
        }
      }
    }
  }
  return taint;
}

std::string taint_chain(const Index& index, const Taint& taint,
                        std::size_t fn, std::size_t max_hops) {
  std::vector<std::string> hops;
  for (std::size_t cur = fn; cur != Taint::npos; cur = taint.parent[cur]) {
    hops.push_back(index.functions[cur].display);
  }
  std::reverse(hops.begin(), hops.end());
  std::string out;
  if (hops.size() > max_hops) {
    const std::size_t head = max_hops / 2;
    const std::size_t tail = max_hops - head;
    std::vector<std::string> elided(hops.begin(),
                                    hops.begin() + static_cast<long>(head));
    elided.push_back("...");
    elided.insert(elided.end(), hops.end() - static_cast<long>(tail),
                  hops.end());
    hops = std::move(elided);
  }
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i != 0) out += " -> ";
    out += hops[i];
  }
  return out;
}

}  // namespace ah_lint
