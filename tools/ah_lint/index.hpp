// ah_lint indexing pass: loads every source file once and produces the
// repo-wide facts the rule passes consume — comment/literal-stripped text,
// per-file markers and suppressions, raw `#include` directives, and a
// lightweight symbol table of function definitions (named functions,
// function-like macros, and lambdas) with the names each body calls.
//
// The indexer is deliberately heuristic (no libclang): it brace-matches the
// stripped token stream.  Mis-parses degrade to missing nodes or missing
// edges, never to crashes, and the taint pass is designed so that a missing
// edge shows up as a loud `stale marker` finding rather than silence.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ah_lint {

/// Replaces comments and (unless `keep_literals`) string/char literal
/// contents with spaces, preserving newlines and therefore line numbers.
/// Handles //, /* */, "...", '...', R"delim(...)delim", digit separators
/// (1'000 does not open a char literal), and line comments continued with a
/// trailing backslash.  With `keep_literals`, only comments are blanked —
/// used by checks that must look inside format strings.
std::string strip(const std::string& text, bool keep_literals = false);

std::vector<std::string> split_lines(const std::string& text);

/// One function-shaped node in the call graph: a named function (free
/// function, member, out-of-line member), a function-like macro, or a
/// lambda nested in one of those.
struct FunctionDef {
  std::string name;        ///< unqualified name used for call resolution
  std::string display;     ///< qualified spelling for messages/chains
  std::size_t file = 0;    ///< index into Index::files
  std::size_t name_line = 1;  ///< line of the name (macro/lambda: head)
  std::size_t begin_line = 1; ///< first line of the scanned span
  std::size_t end_line = 1;   ///< last line of the scanned span
  bool is_macro = false;
  bool is_lambda = false;
  bool hot_entry = false;  ///< carries an AH_HOT_ENTRY taint seed
  /// Callee names extracted from this node's own text (nested lambda
  /// bodies excluded — those get their own node).
  std::vector<std::string> calls;
  /// Creation-site edges to nested lambdas: the enclosing function may
  /// invoke (or schedule) the closure it builds, so taint flows in.
  std::vector<std::size_t> direct_callees;
  /// Lines owned by this node and no nested lambda, for span-scoped rule
  /// scans (1-based, sorted).
  std::vector<std::size_t> own_lines;
};

struct FileRecord {
  std::filesystem::path path;  ///< path as discovered (printed in text mode)
  std::string rel;             ///< stable display path: <root-basename>/<rel>
  std::vector<std::string> raw_lines;
  std::vector<std::string> lines;      ///< stripped
  std::vector<std::string> lines_lit;  ///< comment-stripped, literals kept
  bool hot_path = false;   ///< AH_HOT_PATH_FILE;
  bool immutable = false;  ///< AH_IMMUTABLE_STATE_FILE;
  std::size_t hot_path_line = 0;  ///< line of the AH_HOT_PATH_FILE marker
  /// (line, rule) suppressions: AH_LINT_ALLOW / AH_LAYERING_ALLOW.
  std::set<std::pair<std::size_t, std::string>> allows;
  /// Project-form includes as written: (line, "dir/file.hpp").
  std::vector<std::pair<std::size_t, std::string>> includes;
  std::size_t function_count = 0;  ///< named functions defined here
};

struct Index {
  std::vector<FileRecord> files;
  std::vector<FunctionDef> functions;
  /// Call resolution: unqualified name -> indices into `functions`
  /// (named functions and macros; lambdas are reached via direct edges).
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// The directory (or the file's parent, for file arguments) each file
  /// was discovered under; include resolution bases.
  std::vector<std::filesystem::path> roots;
  std::vector<std::size_t> root_of;  ///< per file: index into roots
  bool io_error = false;

  const FileRecord& file_of(const FunctionDef& fn) const {
    return files[fn.file];
  }
};

/// Loads, strips, and parses every .hpp/.cpp under the given paths
/// (directories are walked recursively; the file list is sorted so output
/// is deterministic).
Index build_index(const std::vector<std::filesystem::path>& paths);

}  // namespace ah_lint
