// ah_lint report pass: finding output (text and stable JSON), the
// committed-findings baseline (count-per-(file,rule) tolerance so CI fails
// only on NEW findings), --explain, and the --dump-taint debug view.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph.hpp"
#include "index.hpp"
#include "rules.hpp"

namespace ah_lint {

/// Tolerated finding counts per (rel path, rule), loaded from a baseline
/// file.  Format: one `<count> <rule> <rel>` entry per line, '#' comments.
struct Baseline {
  std::vector<std::pair<std::pair<std::string, std::string>, std::size_t>>
      counts;  ///< ((rel, rule), tolerated count), sorted

  std::size_t tolerated(const std::string& rel, const std::string& rule) const;
};

/// Loads `path`; returns false (and reports to stderr) on I/O or parse
/// errors.
bool load_baseline(const std::string& path, Baseline& out);

/// Writes the current findings as a baseline file (sorted, regenerable).
bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings);

/// Drops the first `tolerated` findings of each (rel, rule) group; what
/// remains is "above baseline" and drives the exit code.  Also returns the
/// number suppressed via `suppressed_out`.
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const Baseline& baseline,
                                    std::size_t& suppressed_out);

/// Text mode: `path:line: [rule] message` per finding on `out`, summary on
/// `err`.
void print_text(std::ostream& out, std::ostream& err,
                const std::vector<Finding>& findings,
                std::size_t files_scanned, std::size_t baseline_suppressed);

/// JSON mode: {"version":1,"rules":[...],"files_scanned":N,"findings":[...]}
/// — rules in registration order, findings keyed by stable rel paths, no
/// environment-dependent content, so diffs and CI artifacts are stable.
void print_json(std::ostream& out, const std::vector<Finding>& findings,
                std::size_t files_scanned);

/// One-line-per-rule catalogue (name + indented summary), as before.
void print_rule_list(std::ostream& out);

/// Full --explain entry for `rule`; returns false for unknown rules.
bool print_explain(std::ostream& out, const std::string& rule);

/// Debug view: `rel: display  [chain]` per tainted function, file order.
void print_taint(std::ostream& out, const Index& index, const Taint& taint);

}  // namespace ah_lint
