// ah_lint graph pass: the repo-wide `#include` graph (resolution against
// the scan roots, transitive closure, cycle detection) and the hot-path
// taint computed over the call graph.
//
// Call edges are name-resolved (no types), then pruned by include
// visibility: a call in file A can only bind to a function defined in a
// file A transitively includes (for out-of-line definitions, whose paired
// header A includes).  This keeps name collisions from leaking taint into
// layers the caller cannot even see.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.hpp"

namespace ah_lint {

struct IncludeGraph {
  /// Per file: resolved project includes as (target file, include line).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> edges;
  /// Per file: transitive include closure (includes the file itself).
  std::vector<std::set<std::size_t>> closure;
  /// Per (cpp) file: index of the same-stem .hpp, or npos.  Used to make
  /// out-of-line definitions visible through their declaring header.
  std::vector<std::size_t> paired_header;
  /// Include cycles (each reported once): file indices in cycle order,
  /// starting from the smallest index.
  std::vector<std::vector<std::size_t>> cycles;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

IncludeGraph build_include_graph(const Index& index);

struct Taint {
  /// Per function: tainted (transitively reachable from an AH_HOT_ENTRY
  /// seed, including the seeds themselves)?
  std::vector<bool> tainted;
  /// Per function: the function it was first reached from (npos for
  /// seeds/untainted) — BFS tree, used to print taint chains.
  std::vector<std::size_t> parent;
  std::size_t seed_count = 0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

Taint propagate_taint(const Index& index, const IncludeGraph& includes);

/// Formats the seed→function chain for a tainted function, e.g.
/// "Workload::browser_issue -> FrontendRouter::route -> lambda@...".
/// Chains longer than `max_hops` elide the middle.
std::string taint_chain(const Index& index, const Taint& taint,
                        std::size_t fn, std::size_t max_hops = 6);

}  // namespace ah_lint
