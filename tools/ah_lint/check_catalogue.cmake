# Fails when `ah_lint --list-rules` and the EXPERIMENTS.md rule catalogue
# drift apart: every rule the binary knows must have a `rule` entry in the
# doc table, and every table row must name a real rule.
#
# Usage: cmake -DLINT_BIN=<ah_lint> -DEXPERIMENTS=<EXPERIMENTS.md>
#              -P check_catalogue.cmake
execute_process(COMMAND ${LINT_BIN} --list-rules
  OUTPUT_VARIABLE lint_out RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "ah_lint --list-rules exited ${lint_rc}")
endif()
file(READ ${EXPERIMENTS} experiments)

# Rule-name lines in --list-rules output are unindented [a-z_]+ lines
# (summaries are indented by four spaces).
string(REGEX MATCHALL "(^|\n)[a-z_]+\n" name_lines "\n${lint_out}")
set(lint_rules "")
foreach(line IN LISTS name_lines)
  string(REGEX REPLACE "[^a-z_]" "" rule "${line}")
  list(APPEND lint_rules ${rule})
endforeach()
if(lint_rules STREQUAL "")
  message(FATAL_ERROR "parsed no rule names from --list-rules output")
endif()

foreach(rule IN LISTS lint_rules)
  if(NOT experiments MATCHES "`${rule}`")
    message(FATAL_ERROR
      "rule `${rule}` (from --list-rules) is missing from the EXPERIMENTS.md "
      "rule catalogue — document it in the table under 'Static enforcement'")
  endif()
endforeach()

# Reverse direction: table rows look like "| `rule` | scope | bans |".
string(REGEX MATCHALL "\\| `[a-z_]+` \\|" doc_rows "${experiments}")
foreach(row IN LISTS doc_rows)
  string(REGEX REPLACE "[^a-z_]" "" rule "${row}")
  list(FIND lint_rules ${rule} found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "EXPERIMENTS.md documents rule `${rule}` which ah_lint --list-rules "
      "does not report — remove the row or register the rule")
  endif()
endforeach()
message(STATUS "catalogue in sync: ${lint_rules}")
