// ah_lint — repo-specific static analysis for the Harmony codebase.
//
// A deliberately small multi-pass analyzer (no libclang): the index pass
// strips comments/literals and brace-matches a lightweight symbol table
// (functions, function-like macros, lambdas) over every scanned file, the
// graph pass builds the repo-wide `#include` graph and propagates hot-path
// taint from AH_HOT_ENTRY seeds through the call graph, and the rule pass
// turns both into findings:
//
//   hot_path_alloc   — no std::function / shared_ptr / make_unique /
//                      new-expressions in AH_HOT_PATH_FILE-annotated files.
//   determinism      — no wall clocks, rand(), random_device, or unordered
//                      containers under sim/ harmony/ webstack/ cluster/.
//   pooling          — no std::deque / std::list in hot-path files.
//   include_hygiene  — no <iostream> in headers.
//   obs_hot_path     — telemetry record calls in hot-path files must go
//                      through the AH_OBS_* macros.
//   shared_state     — AH_IMMUTABLE_STATE_FILE files: no non-const statics,
//                      no `mutable` members.
//   hot_path_reach   — functions transitively reachable from AH_HOT_ENTRY
//                      seeds obey the allocation rules even in unannotated
//                      files; missing/stale AH_HOT_PATH_FILE markers are
//                      findings (the marker set is checked, not trusted).
//   layering         — project includes follow the layer DAG; no upward or
//                      cyclic includes.
//   ptr_order        — pointer identity must not leak into observable order
//                      in determinism-scoped files.
//
// Suppressions: AH_LINT_ALLOW(rule, "reason") on the offending line or the
// line above; AH_LAYERING_ALLOW("reason") for layering.  Rules are
// documented in EXPERIMENTS.md, `--list-rules`, and `--explain <rule>`.
//
// Exit codes: 0 clean, 1 findings (above --baseline, if given), 2 usage or
// I/O error.
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "graph.hpp"
#include "index.hpp"
#include "report.hpp"
#include "rules.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ah_lint [options] <file-or-dir>...\n"
    "  --list-rules            list every rule with a one-line summary\n"
    "  --explain <rule>        print a rule's full rationale and examples\n"
    "  --format=text|json      finding output format (default text)\n"
    "  --baseline <file>       tolerate findings recorded in <file>; exit 1\n"
    "                          only on findings above it\n"
    "  --write-baseline <file> write current findings as a baseline, exit 0\n"
    "  --dump-taint            print hot-path-reachable functions, exit 0\n"
    "Scans .hpp/.cpp files; exits 1 on findings, 2 on usage/I/O errors.\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> paths;
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string explain_rule;
  bool dump_taint = false;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ah_lint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--explain") {
      const char* value = next_value("--explain");
      if (value == nullptr) return 2;
      explain_rule = value;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "ah_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--baseline") {
      const char* value = next_value("--baseline");
      if (value == nullptr) return 2;
      baseline_path = value;
    } else if (arg == "--write-baseline") {
      const char* value = next_value("--write-baseline");
      if (value == nullptr) return 2;
      write_baseline_path = value;
    } else if (arg == "--dump-taint") {
      dump_taint = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ah_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    ah_lint::print_rule_list(std::cout);
    return 0;
  }
  if (!explain_rule.empty()) {
    if (!ah_lint::print_explain(std::cout, explain_rule)) {
      std::cerr << "ah_lint: unknown rule '" << explain_rule
                << "' (see --list-rules)\n";
      return 2;
    }
    return 0;
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  for (const auto& path : paths) {
    if (!std::filesystem::exists(path)) {
      std::cerr << "ah_lint: no such path " << path.string() << "\n";
      return 2;
    }
  }

  const ah_lint::Index index = ah_lint::build_index(paths);
  const ah_lint::IncludeGraph includes = ah_lint::build_include_graph(index);
  const ah_lint::Taint taint = ah_lint::propagate_taint(index, includes);

  if (dump_taint) {
    ah_lint::print_taint(std::cout, index, taint);
    return index.io_error ? 2 : 0;
  }

  std::vector<ah_lint::Finding> findings =
      ah_lint::run_rules(index, includes, taint);

  if (!write_baseline_path.empty()) {
    if (!ah_lint::write_baseline(write_baseline_path, findings)) return 2;
    std::cerr << "ah_lint: wrote baseline (" << findings.size()
              << " finding(s)) to " << write_baseline_path << "\n";
    return index.io_error ? 2 : 0;
  }

  std::size_t baseline_suppressed = 0;
  if (!baseline_path.empty()) {
    ah_lint::Baseline baseline;
    if (!ah_lint::load_baseline(baseline_path, baseline)) return 2;
    findings =
        ah_lint::apply_baseline(findings, baseline, baseline_suppressed);
  }

  if (format == "json") {
    ah_lint::print_json(std::cout, findings, index.files.size());
    std::cerr << "ah_lint: " << findings.size() << " finding(s) in "
              << index.files.size() << " file(s)";
    if (baseline_suppressed != 0) {
      std::cerr << " (" << baseline_suppressed << " within baseline)";
    }
    std::cerr << "\n";
  } else {
    ah_lint::print_text(std::cout, std::cerr, findings, index.files.size(),
                        baseline_suppressed);
  }
  if (index.io_error) return 2;
  return findings.empty() ? 0 : 1;
}
