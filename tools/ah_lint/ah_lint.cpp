// ah_lint — repo-specific static analysis for the Harmony codebase.
//
// A deliberately small token/regex scanner (no libclang): it strips comments
// and literals, then applies four rules that encode the invariants the
// simulator's correctness and benchmark stability depend on.  The rules are
// documented in EXPERIMENTS.md and in `--list-rules`; suppressions use
// AH_LINT_ALLOW(rule, "reason") from src/common/analysis.hpp, placed on the
// offending line or the line immediately above it.
//
//   R1 hot_path_alloc   — no std::function / shared_ptr / make_unique /
//                         new-expressions in AH_HOT_PATH_FILE-annotated files.
//   R2 determinism      — no wall clocks, rand(), random_device, or
//                         unordered containers under sim/ harmony/ webstack/
//                         cluster/ (path-component match, so fixture trees
//                         mirror the layout).
//   R3 pooling          — no std::deque / std::list in hot-path files.
//   R4 include_hygiene  — no <iostream> in headers.
//   R5 obs_hot_path     — telemetry record calls in hot-path files must go
//                         through the AH_OBS_* macros (null-checked,
//                         sampling-gated), never direct method calls.
//   R6 shared_state     — AH_IMMUTABLE_STATE_FILE-annotated files (the
//                         model layer shared read-only across replica and
//                         work-line threads) must not define non-const
//                         statics or `mutable` members.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleDoc {
  const char* name;
  const char* summary;
};

constexpr RuleDoc kRules[] = {
    {"hot_path_alloc",
     "AH_HOT_PATH_FILE files must not use std::function, std::shared_ptr, "
     "std::make_shared, std::make_unique, or new-expressions (::new placement "
     "form is exempt). Use common::InlineFunction, common::FunctionRef, or a "
     "common::ObjectPool call struct."},
    {"determinism",
     "Files under sim/, harmony/, webstack/, or cluster/ must not use "
     "rand()/srand(), std::random_device, system_clock/steady_clock/"
     "high_resolution_clock, or unordered containers (iteration order is "
     "nondeterministic). Randomness comes from common::Rng, time from "
     "sim::Simulator::now()."},
    {"pooling",
     "AH_HOT_PATH_FILE files must not use std::deque or std::list: per-node "
     "and per-chunk allocation on the request path. Use common::ObjectPool, "
     "common::RingBuffer, or std::vector."},
    {"include_hygiene",
     "Headers must not include <iostream>: it drags in the static "
     "initialization of the standard streams into every TU. Use <ostream> or "
     "<iosfwd> in headers and keep <iostream> in .cpp files."},
    {"obs_hot_path",
     "AH_HOT_PATH_FILE files must not call telemetry record methods "
     "(record_us/record_span/record) directly: use AH_OBS_RECORD_US, "
     "AH_OBS_RECORD_SPAN, or AH_OBS_TRACE_SPAN, which null-check the sink "
     "(and gate tracing on the sampling predicate) before touching it."},
    {"shared_state",
     "AH_IMMUTABLE_STATE_FILE files hold model state shared read-only across "
     "replica and work-line threads: no non-const statics (hidden writable "
     "globals race across threads) and no `mutable` members (writes through "
     "const references defeat the shared-const safety argument). Use static "
     "const/constexpr tables, or move the state to the mutable layer."},
};

void list_rules() {
  for (const RuleDoc& rule : kRules) {
    std::cout << rule.name << "\n    " << rule.summary << "\n";
  }
}

/// Replaces comments and string/char literal contents with spaces, preserving
/// newlines (and therefore line numbers).  Handles //, /* */, "...", '...',
/// and R"delim(...)delim".  Digit separators (1'000) do not open a char
/// literal because the preceding character is alphanumeric.
std::string strip(const std::string& text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string out;
  out.reserve(text.size());
  std::string raw_delim;  // the ")delim" closer for the active raw string
  char prev_code = '\0';  // last significant character emitted in kCode

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string when the R abuts the quote.
          if (prev_code == 'R') {
            std::size_t close = text.find('(', i + 1);
            if (close != std::string::npos && close - i <= 17) {
              raw_delim = ")" + text.substr(i + 1, close - i - 1) + "\"";
              state = State::kRaw;
              for (std::size_t j = i; j <= close; ++j) {
                out += text[j] == '\n' ? '\n' : ' ';
              }
              i = close;
              break;
            }
          }
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && !std::isalnum(static_cast<unsigned char>(
                                    prev_code)) && prev_code != '_') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
          if (!std::isspace(static_cast<unsigned char>(c))) prev_code = c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
          prev_code = '\0';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
          prev_code = '\0';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

/// True when any path component is one of the determinism-scoped directories.
bool in_determinism_scope(const fs::path& path) {
  static const std::set<std::string> kDirs = {"sim", "harmony", "webstack",
                                              "cluster"};
  for (const auto& part : path) {
    if (kDirs.count(part.string()) != 0) return true;
  }
  return false;
}

bool is_header(const fs::path& path) { return path.extension() == ".hpp"; }

struct Check {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<Check>& hot_path_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    c.push_back({"hot_path_alloc", std::regex(R"(std\s*::\s*function\b)"),
                 "std::function type-erases through a heap allocation; use "
                 "common::InlineFunction (owning) or common::FunctionRef "
                 "(non-owning)"});
    c.push_back({"hot_path_alloc",
                 std::regex(R"(std\s*::\s*(shared_ptr\b|make_shared\b))"),
                 "shared ownership on the hot path: control-block allocation "
                 "plus atomic refcounts; park state in a pooled call struct"});
    c.push_back({"hot_path_alloc", std::regex(R"(std\s*::\s*make_unique\b)"),
                 "heap allocation in a hot-path file; acquire from a "
                 "common::ObjectPool (or AH_LINT_ALLOW a start-up-only site)"});
    c.push_back({"hot_path_alloc", std::regex(R"((^|[^:_A-Za-z0-9>])new\s)"),
                 "new-expression in a hot-path file; acquire from a "
                 "common::ObjectPool (placement ::new is exempt)"});
    c.push_back({"pooling", std::regex(R"(std\s*::\s*(deque|list)\b)"),
                 "chunk/node-allocating container in a hot-path file; use "
                 "common::ObjectPool, common::RingBuffer, or std::vector"});
    c.push_back({"obs_hot_path",
                 std::regex(R"((\.|->)\s*(record_us|record_span|record)\s*\()"),
                 "direct telemetry record call in a hot-path file; use "
                 "AH_OBS_RECORD_US / AH_OBS_RECORD_SPAN / AH_OBS_TRACE_SPAN "
                 "(null-checked and sampling-gated)"});
    return c;
  }();
  return checks;
}

const std::vector<Check>& determinism_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    c.push_back({"determinism", std::regex(R"((^|[^_A-Za-z0-9])s?rand\s*\()"),
                 "libc rand()/srand() is hidden global state; draw from the "
                 "owning component's common::Rng"});
    c.push_back({"determinism", std::regex(R"(std\s*::\s*random_device\b)"),
                 "std::random_device is nondeterministic; seeds flow from the "
                 "experiment config through common::Rng::split"});
    c.push_back(
        {"determinism",
         std::regex(R"((system_clock|steady_clock|high_resolution_clock)\b)"),
         "wall-clock time in simulated code; use sim::Simulator::now()"});
    c.push_back({"determinism",
                 std::regex(
                     R"(std\s*::\s*unordered_(map|set|multimap|multiset)\b)"),
                 "unordered container: iteration order varies across standard "
                 "libraries and hash seeds; use a sorted container, or "
                 "AH_LINT_ALLOW with a note that iteration order is never "
                 "observed"});
    return c;
  }();
  return checks;
}

const std::vector<Check>& shared_state_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    // `static` not followed by const/constexpr.  static_assert/static_cast
    // never match: no whitespace follows the keyword there.
    c.push_back({"shared_state",
                 std::regex(R"((^|[^_A-Za-z0-9])static\s+(?!const\b|constexpr\b))"),
                 "non-const static in an immutable-layer file: a hidden "
                 "writable global shared by every replica and work-line "
                 "thread; make it static const/constexpr or move it to the "
                 "mutable layer"});
    c.push_back({"shared_state",
                 std::regex(R"((^|[^_A-Za-z0-9])mutable\b)"),
                 "mutable member in an immutable-layer file: writes through "
                 "const references defeat the shared-const thread-safety "
                 "argument; move the state to the mutable layer"});
    return c;
  }();
  return checks;
}

class Linter {
 public:
  void scan_file(const fs::path& path) {
    ++files_scanned_;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      io_error_ = true;
      std::cerr << "ah_lint: cannot read " << path.string() << "\n";
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::vector<std::string> raw_lines = split_lines(raw);
    const std::vector<std::string> lines = split_lines(strip(raw));

    // Suppressions and the hot-path annotation are read from the raw text:
    // both are macros whose tokens survive preprocessing, and scanning raw
    // text keeps the linter independent of how they expand.
    static const std::regex kAllow(R"(AH_LINT_ALLOW\s*\(\s*([A-Za-z_]+))");
    static const std::regex kHotPath(R"(^\s*AH_HOT_PATH_FILE\s*;)");
    static const std::regex kImmutable(R"(^\s*AH_IMMUTABLE_STATE_FILE\s*;)");
    std::set<std::pair<std::size_t, std::string>> allows;  // (line, rule)
    bool hot_path = false;
    bool immutable = false;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      std::smatch match;
      if (std::regex_search(raw_lines[i], match, kAllow)) {
        allows.emplace(i + 1, match[1].str());
      }
      if (std::regex_search(raw_lines[i], kHotPath)) hot_path = true;
      if (std::regex_search(raw_lines[i], kImmutable)) immutable = true;
    }

    std::vector<const std::vector<Check>*> active;
    if (hot_path) active.push_back(&hot_path_checks());
    if (in_determinism_scope(path)) active.push_back(&determinism_checks());
    if (immutable) active.push_back(&shared_state_checks());

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const std::size_t line_no = i + 1;
      auto suppressed = [&](const std::string& rule) {
        return allows.count({line_no, rule}) != 0 ||
               (line_no > 1 && allows.count({line_no - 1, rule}) != 0);
      };
      for (const auto* checks : active) {
        for (const Check& check : *checks) {
          if (std::regex_search(line, check.pattern) &&
              !suppressed(check.rule)) {
            findings_.push_back(
                {path.string(), line_no, check.rule, check.message});
          }
        }
      }
      if (is_header(path)) {
        static const std::regex kIostream(R"(#\s*include\s*<iostream>)");
        if (std::regex_search(line, kIostream) &&
            !suppressed("include_hygiene")) {
          findings_.push_back(
              {path.string(), line_no, "include_hygiene",
               "<iostream> in a header pulls stream static-init into every "
               "TU; use <ostream>/<iosfwd> here, <iostream> in the .cpp"});
        }
      }
    }
  }

  void scan(const fs::path& path) {
    if (fs::is_directory(path)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) scan_file(file);
    } else {
      scan_file(path);
    }
  }

  int report() const {
    for (const Finding& finding : findings_) {
      std::cout << finding.file << ":" << finding.line << ": [" << finding.rule
                << "] " << finding.message << "\n";
    }
    std::cerr << "ah_lint: " << findings_.size() << " finding(s) in "
              << files_scanned_ << " file(s)\n";
    if (io_error_) return 2;
    return findings_.empty() ? 0 : 1;
  }

 private:
  std::vector<Finding> findings_;
  std::size_t files_scanned_ = 0;
  bool io_error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ah_lint [--list-rules] <file-or-dir>...\n"
                   "Scans .hpp/.cpp files; exits 1 on findings.\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ah_lint: unknown option " << arg << "\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: ah_lint [--list-rules] <file-or-dir>...\n";
    return 2;
  }
  Linter linter;
  for (const auto& path : paths) {
    if (!fs::exists(path)) {
      std::cerr << "ah_lint: no such path " << path << "\n";
      return 2;
    }
    linter.scan(path);
  }
  return linter.report();
}
