#include "report.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace ah_lint {

std::size_t Baseline::tolerated(const std::string& rel,
                                const std::string& rule) const {
  const auto key = std::make_pair(rel, rule);
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), key,
      [](const auto& entry, const auto& k) { return entry.first < k; });
  if (it != counts.end() && it->first == key) return it->second;
  return 0;
}

bool load_baseline(const std::string& path, Baseline& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ah_lint: cannot read baseline " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::size_t count = 0;
    std::string rule;
    std::string rel;
    if (!(fields >> count >> rule >> rel)) {
      std::cerr << "ah_lint: bad baseline entry at " << path << ":" << line_no
                << " (want `<count> <rule> <rel>`)\n";
      return false;
    }
    out.counts.push_back({{rel, rule}, count});
  }
  std::sort(out.counts.begin(), out.counts.end());
  return true;
}

bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const Finding& finding : findings) {
    ++counts[{finding.rel, finding.rule}];
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "ah_lint: cannot write baseline " << path << "\n";
    return false;
  }
  out << "# ah_lint findings baseline: tolerated findings per (file, rule).\n"
         "# Regenerate with: ah_lint --write-baseline <this-file> <paths>\n"
         "# CI fails only when a (file, rule) count EXCEEDS its entry here.\n";
  for (const auto& [key, count] : counts) {
    out << count << " " << key.second << " " << key.first << "\n";
  }
  return static_cast<bool>(out);
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const Baseline& baseline,
                                    std::size_t& suppressed_out) {
  std::map<std::pair<std::string, std::string>, std::size_t> used;
  std::vector<Finding> above;
  suppressed_out = 0;
  for (const Finding& finding : findings) {
    const auto key = std::make_pair(finding.rel, finding.rule);
    if (used[key] < baseline.tolerated(finding.rel, finding.rule)) {
      ++used[key];
      ++suppressed_out;
    } else {
      above.push_back(finding);
    }
  }
  return above;
}

void print_text(std::ostream& out, std::ostream& err,
                const std::vector<Finding>& findings,
                std::size_t files_scanned, std::size_t baseline_suppressed) {
  for (const Finding& finding : findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << "] " << finding.message << "\n";
  }
  err << "ah_lint: " << findings.size() << " finding(s) in " << files_scanned
      << " file(s)";
  if (baseline_suppressed != 0) {
    err << " (" << baseline_suppressed << " within baseline)";
  }
  err << "\n";
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void print_json(std::ostream& out, const std::vector<Finding>& findings,
                std::size_t files_scanned) {
  out << "{\n  \"version\": 1,\n  \"rules\": [";
  const std::vector<RuleDoc>& docs = rule_docs();
  for (std::size_t i = 0; i < docs.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << docs[i].name << "\"";
  }
  out << "],\n  \"files_scanned\": " << files_scanned
      << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.rel)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
        << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
}

void print_rule_list(std::ostream& out) {
  for (const RuleDoc& rule : rule_docs()) {
    out << rule.name << "\n    " << rule.summary << "\n";
  }
}

bool print_explain(std::ostream& out, const std::string& rule) {
  for (const RuleDoc& doc : rule_docs()) {
    if (rule == doc.name) {
      out << doc.name << "\n    " << doc.summary << "\n\n" << doc.details
          << "\n";
      return true;
    }
  }
  return false;
}

void print_taint(std::ostream& out, const Index& index, const Taint& taint) {
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    if (!taint.tainted[i]) continue;
    const FunctionDef& fn = index.functions[i];
    out << index.file_of(fn).rel << ": " << fn.display;
    if (fn.hot_entry) {
      out << "  [seed]";
    } else {
      out << "  [" << taint_chain(index, taint, i) << "]";
    }
    out << "\n";
  }
}

}  // namespace ah_lint
