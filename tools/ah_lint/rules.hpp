// ah_lint rule pass: the rule catalogue (names, summaries, --explain
// details, registration order) and the evaluation that turns the index +
// graphs into findings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph.hpp"
#include "index.hpp"

namespace ah_lint {

struct RuleDoc {
  const char* name;
  const char* summary;
  const char* details;  ///< --explain body: rationale, scope, example
};

/// Registration-ordered rule catalogue; the order is the tiebreak for
/// finding output and the order of the JSON `rules` array.
const std::vector<RuleDoc>& rule_docs();

/// Index of `name` in rule_docs(), or npos.
std::size_t rule_registration(const std::string& name);

struct Finding {
  std::string file;  ///< path as discovered (printed in text mode)
  std::string rel;   ///< stable display path (JSON / baselines)
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Runs every rule over the index.  Findings are sorted by
/// (file, line, rule registration order, message).
std::vector<Finding> run_rules(const Index& index,
                               const IncludeGraph& includes,
                               const Taint& taint);

}  // namespace ah_lint
