#include "index.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>

namespace ah_lint {

namespace fs = std::filesystem;

std::string strip(const std::string& text, bool keep_literals) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string out;
  out.reserve(text.size());
  std::string raw_delim;  // the ")delim" closer for the active raw string
  char prev_code = '\0';  // last significant character emitted in kCode

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string when the R abuts the quote.
          if (prev_code == 'R') {
            std::size_t close = text.find('(', i + 1);
            if (close != std::string::npos && close - i <= 17) {
              raw_delim = ")" + text.substr(i + 1, close - i - 1) + "\"";
              state = State::kRaw;
              for (std::size_t j = i; j <= close; ++j) {
                out += keep_literals || text[j] == '\n' ? text[j] : ' ';
              }
              i = close;
              break;
            }
          }
          state = State::kString;
          out += keep_literals ? c : ' ';
        } else if (c == '\'' && !std::isalnum(static_cast<unsigned char>(
                                    prev_code)) && prev_code != '_') {
          state = State::kChar;
          out += keep_literals ? c : ' ';
        } else {
          out += c;
          if (!std::isspace(static_cast<unsigned char>(c))) prev_code = c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else if (c == '\\' && next == '\n') {
          // A line comment whose last character is a backslash continues
          // onto the next physical line (translation phase 2 splices them
          // before comments are recognized) — stay in comment state.
          out += " \n";
          ++i;
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out += keep_literals ? c : ' ';
          if (next != '\0') {
            out += keep_literals || next == '\n' ? next : ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += keep_literals ? c : ' ';
          prev_code = '\0';
        } else {
          out += keep_literals || c == '\n' ? c : ' ';
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) {
            out += keep_literals ? text[i + j] : ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
          prev_code = '\0';
        } else {
          out += keep_literals || c == '\n' ? c : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(text);
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Statement keywords that look like `name(...)` but never name a callable
/// definition or a resolvable callee.
const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "alignas",  "decltype",
      "noexcept", "typeid",   "throw",    "new",      "delete",
      "assert",   "static_assert", "defined", "co_await", "co_return",
      "co_yield"};
  return kKeywords;
}

/// Heuristic single-file parser over the stripped text.  Finds named
/// function definitions at declaration scope (function bodies are skipped
/// wholesale and mined separately for lambdas and call sites).
class FunctionParser {
 public:
  struct Def {
    std::string name;
    std::string display;
    std::size_t name_line = 1;
    std::size_t span_begin = 0;  // char offset: open paren of params
    std::size_t span_end = 0;    // char offset: closing brace of body
    std::size_t begin_line = 1;
    std::size_t end_line = 1;
  };

  explicit FunctionParser(const std::string& text) : text_(text) {}

  std::vector<Def> parse() {
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
      } else if (c == '#') {
        skip_preprocessor_line();
      } else if (ident_start(c) || c == '~' ||
                 (c == ':' && peek(1) == ':')) {
        handle_identifier();
      } else {
        ++i_;
      }
    }
    return defs_;
  }

 private:
  char peek(std::size_t k = 0) const {
    return i_ + k < text_.size() ? text_[i_ + k] : '\0';
  }

  void advance() {
    if (i_ < text_.size()) {
      if (text_[i_] == '\n') ++line_;
      ++i_;
    }
  }

  void skip_ws() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      advance();
    }
  }

  void skip_preprocessor_line() {
    // Directive bodies are parsed from raw lines elsewhere; here we just
    // skip the logical line, honouring backslash continuations.
    while (i_ < text_.size()) {
      if (text_[i_] == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (text_[i_] == '\n') {
        advance();
        return;
      }
      advance();
    }
  }

  void consume_balanced(char open, char close) {
    std::size_t depth = 0;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == open) ++depth;
      if (c == close) {
        advance();
        if (--depth == 0) return;
        continue;
      }
      advance();
    }
  }

  /// Reads an identifier chain: `~Name`, `A::B::C`, a leading `::`, and
  /// `operator` forms.  Leaves i_ just past the chain.
  std::string read_chain() {
    std::string chain;
    if (peek() == ':' && peek(1) == ':') {
      advance();
      advance();
    }
    while (true) {
      if (peek() == '~') {
        chain += '~';
        advance();
      }
      if (!ident_start(peek())) break;
      std::string part;
      while (ident_char(peek())) {
        part += peek();
        advance();
      }
      chain += part;
      if (part == "operator") {
        chain += read_operator_suffix();
        break;
      }
      if (peek() == ':' && peek(1) == ':') {
        chain += "::";
        advance();
        advance();
        continue;
      }
      break;
    }
    return chain;
  }

  std::string read_operator_suffix() {
    skip_ws();
    std::string suffix;
    if (peek() == '(' && peek(1) == ')') {
      advance();
      advance();
      return "()";
    }
    if (peek() == '[' && peek(1) == ']') {
      advance();
      advance();
      return "[]";
    }
    if (ident_start(peek())) {  // conversion operator: `operator bool`
      suffix = " ";
      while (ident_char(peek())) {
        suffix += peek();
        advance();
      }
      return suffix;
    }
    static const std::string kSymbols = "+-*/%^&|~!=<>,";
    while (suffix.size() < 3 && kSymbols.find(peek()) != std::string::npos) {
      suffix += peek();
      advance();
    }
    return suffix;
  }

  /// After the parameter list's `)`: decides declaration vs definition,
  /// consuming qualifiers, ctor init lists, and trailing return types.
  /// Returns '{' (body follows, i_ at the brace), ';', or '\0' (not a
  /// definition; resume scanning at i_).
  char scan_decider() {
    while (i_ < text_.size()) {
      skip_ws();
      const char c = peek();
      if (c == ';') {
        advance();
        return ';';
      }
      if (c == '{') return '{';
      if (c == '=') {  // `= default;` / `= delete;` / `= 0;`
        while (i_ < text_.size() && peek() != ';') advance();
        if (peek() == ';') advance();
        return ';';
      }
      if (c == ':') {  // ctor init list
        advance();
        if (!consume_init_list()) return '\0';
        skip_ws();
        return peek() == '{' ? '{' : '\0';
      }
      if (c == '[' && peek(1) == '[') {  // attribute
        consume_balanced('[', ']');
        continue;
      }
      if (c == '-' && peek(1) == '>') {  // trailing return type
        advance();
        advance();
        if (!consume_trailing_type()) return '\0';
        continue;
      }
      if (ident_start(c)) {
        const std::string tok = read_chain();
        if (tok == "const" || tok == "override" || tok == "final" ||
            tok == "mutable" || tok == "volatile" || tok == "constexpr" ||
            tok == "try") {
          continue;
        }
        if (tok == "noexcept") {
          skip_ws();
          if (peek() == '(') consume_balanced('(', ')');
          continue;
        }
        return '\0';  // unknown token: not a definition
      }
      return '\0';
    }
    return '\0';
  }

  bool consume_init_list() {
    while (i_ < text_.size()) {
      skip_ws();
      if (!ident_start(peek()) && !(peek() == ':' && peek(1) == ':')) {
        return false;
      }
      read_chain();
      skip_ws();
      if (peek() == '<') consume_balanced('<', '>');
      skip_ws();
      if (peek() == '(') {
        consume_balanced('(', ')');
      } else if (peek() == '{') {
        consume_balanced('{', '}');
      } else {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        advance();
        continue;
      }
      return true;
    }
    return false;
  }

  bool consume_trailing_type() {
    while (i_ < text_.size()) {
      skip_ws();
      const char c = peek();
      if (c == '{' || c == ';' || c == '=') return true;
      if (c == '(') {
        consume_balanced('(', ')');
      } else if (c == '<') {
        consume_balanced('<', '>');
      } else if (ident_start(c) || c == ':' || c == '*' || c == '&' ||
                 c == ',') {
        advance();
        while (ident_char(peek()) || peek() == ':') advance();
      } else {
        return false;
      }
    }
    return false;
  }

  void handle_identifier() {
    const std::size_t tok_line = line_;
    const std::string chain = read_chain();
    if (chain.empty()) {
      advance();
      return;
    }
    skip_ws();
    if (peek() != '(') return;  // plain mention; rescan from here
    std::string name = chain;
    const std::size_t sep = chain.rfind("::");
    if (sep != std::string::npos) name = chain.substr(sep + 2);
    if (keyword_set().count(name) != 0 || name.empty()) {
      consume_balanced('(', ')');
      return;
    }
    const std::size_t span_begin = i_;
    consume_balanced('(', ')');
    const std::size_t decider_start = i_;
    const std::size_t decider_line = line_;
    const char decider = scan_decider();
    if (decider != '{') {
      if (decider == '\0') {
        // Not a definition; rewind so the unknown token is rescanned
        // (it may itself start a definition).
        i_ = decider_start;
        line_ = decider_line;
      }
      return;
    }
    Def def;
    def.name = name;
    def.display = chain;
    def.name_line = tok_line;
    def.span_begin = span_begin;
    def.begin_line = tok_line;
    consume_balanced('{', '}');
    def.span_end = i_;
    def.end_line = line_;
    defs_.push_back(std::move(def));
  }

  const std::string& text_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  std::vector<Def> defs_;
};

struct LambdaSpan {
  std::size_t begin = 0;  // offset of the body '{'
  std::size_t end = 0;    // offset just past the matching '}'
  std::size_t head = 0;   // offset of the '['
};

/// Finds lambda bodies inside [begin, end) of the stripped text.  Nested
/// lambdas are reported too (callers rely on interval nesting).
void find_lambdas(const std::string& text, std::size_t begin, std::size_t end,
                  std::vector<LambdaSpan>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    if (text[i] != '[') continue;
    if (i + 1 < end && text[i + 1] == '[') {  // attribute
      while (i < end && text[i] != '\n' && !(text[i] == ']' && i + 1 < end &&
                                             text[i + 1] == ']')) {
        ++i;
      }
      continue;
    }
    // Subscript if the previous significant char is a value.
    std::size_t p = i;
    while (p > begin) {
      --p;
      if (!std::isspace(static_cast<unsigned char>(text[p]))) break;
    }
    if (p != i && (ident_char(text[p]) || text[p] == ')' || text[p] == ']')) {
      continue;
    }
    // Capture list.
    std::size_t j = i;
    std::size_t depth = 0;
    while (j < end) {
      if (text[j] == '[') ++depth;
      if (text[j] == ']' && --depth == 0) break;
      ++j;
    }
    if (j >= end) continue;
    ++j;  // past ']'
    auto skip_space = [&] {
      while (j < end && std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
    };
    auto skip_balanced = [&](char open, char close) {
      std::size_t d = 0;
      while (j < end) {
        if (text[j] == open) ++d;
        if (text[j] == close && --d == 0) {
          ++j;
          return;
        }
        ++j;
      }
    };
    skip_space();
    if (j < end && text[j] == '(') skip_balanced('(', ')');
    // Qualifiers and an optional trailing return before the body.
    while (j < end) {
      skip_space();
      if (j < end && text[j] == '{') break;
      if (j + 1 < end && text[j] == '-' && text[j + 1] == '>') {
        j += 2;
        continue;
      }
      if (j < end && (ident_start(text[j]) || text[j] == ':')) {
        ++j;
        while (j < end && (ident_char(text[j]) || text[j] == ':')) ++j;
        continue;
      }
      if (j < end && text[j] == '(') {
        skip_balanced('(', ')');
        continue;
      }
      if (j < end && text[j] == '<') {
        skip_balanced('<', '>');
        continue;
      }
      break;
    }
    if (j >= end || text[j] != '{') continue;
    LambdaSpan span;
    span.head = i;
    span.begin = j;
    std::size_t d = 0;
    while (j < end) {
      if (text[j] == '{') ++d;
      if (text[j] == '}' && --d == 0) {
        ++j;
        break;
      }
      ++j;
    }
    span.end = j;
    out.push_back(span);
    i = span.begin;  // nested lambdas found by continuing inside the body
  }
}

std::vector<std::size_t> line_offsets(const std::string& text) {
  std::vector<std::size_t> offsets{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') offsets.push_back(i + 1);
  }
  return offsets;
}

std::size_t line_of(const std::vector<std::size_t>& offsets,
                    std::size_t pos) {
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  return static_cast<std::size_t>(it - offsets.begin());
}

/// Extracts callee names (`ident (` in the masked span) into `def.calls`.
void extract_calls(const std::string& text, std::size_t begin,
                   std::size_t end,
                   const std::vector<std::pair<std::size_t, std::size_t>>&
                       masked,
                   FunctionDef& def) {
  std::set<std::string> seen;
  std::size_t i = begin;
  auto in_masked = [&](std::size_t pos) {
    for (const auto& m : masked) {
      if (pos >= m.first && pos < m.second) return true;
    }
    return false;
  };
  while (i < end) {
    if (!ident_start(text[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < end && ident_char(text[i])) ++i;
    std::size_t j = i;
    while (j < end && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j < end && text[j] == '(' && !in_masked(start)) {
      const std::string name = text.substr(start, i - start);
      if (keyword_set().count(name) == 0 && seen.insert(name).second) {
        def.calls.push_back(name);
      }
    }
  }
}

void parse_macros(const FileRecord& record, std::size_t file_idx,
                  std::vector<FunctionDef>& functions) {
  static const std::regex kDefine(
      R"(^\s*#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)\()");
  for (std::size_t i = 0; i < record.raw_lines.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(record.raw_lines[i], match, kDefine)) continue;
    FunctionDef def;
    def.name = match[1].str();
    def.display = def.name;
    def.file = file_idx;
    def.name_line = def.begin_line = i + 1;
    def.is_macro = true;
    std::string body = record.raw_lines[i];
    std::size_t j = i;
    while (j < record.raw_lines.size() && !record.raw_lines[j].empty() &&
           record.raw_lines[j].back() == '\\') {
      ++j;
      if (j < record.raw_lines.size()) body += "\n" + record.raw_lines[j];
    }
    def.end_line = j + 1;
    const std::string stripped = strip(body);
    FunctionDef scratch;
    extract_calls(stripped, 0, stripped.size(), {}, scratch);
    // Drop the macro's own name (the #define head looks like a call).
    for (const std::string& call : scratch.calls) {
      if (call != def.name) def.calls.push_back(call);
    }
    functions.push_back(std::move(def));
  }
}

void parse_file(FileRecord& record, std::size_t file_idx,
                const std::string& stripped, Index& index) {
  const std::vector<std::size_t> offsets = line_offsets(stripped);

  FunctionParser parser(stripped);
  const std::vector<FunctionParser::Def> defs = parser.parse();
  record.function_count = defs.size();

  static const std::regex kHotEntry(R"(\bAH_HOT_ENTRY\b)");

  for (const FunctionParser::Def& def : defs) {
    // Nested lambda spans inside this definition (intervals nest).
    std::vector<LambdaSpan> lambdas;
    find_lambdas(stripped, def.span_begin, def.span_end, lambdas);
    std::sort(lambdas.begin(), lambdas.end(),
              [](const LambdaSpan& a, const LambdaSpan& b) {
                return a.begin < b.begin;
              });

    const std::size_t fn_idx = index.functions.size();
    FunctionDef named;
    named.name = def.name;
    named.display = def.display;
    named.file = file_idx;
    named.name_line = def.name_line;
    named.begin_line = def.begin_line;
    named.end_line = def.end_line;
    index.functions.push_back(std::move(named));

    std::vector<std::size_t> lambda_idx(lambdas.size());
    for (std::size_t li = 0; li < lambdas.size(); ++li) {
      FunctionDef node;
      node.file = file_idx;
      node.is_lambda = true;
      node.name_line = line_of(offsets, lambdas[li].head);
      node.begin_line = line_of(offsets, lambdas[li].begin);
      node.end_line = line_of(offsets, lambdas[li].end == 0
                                           ? lambdas[li].begin
                                           : lambdas[li].end - 1);
      node.display = "lambda@" + record.rel + ":" +
                     std::to_string(node.name_line);
      lambda_idx[li] = index.functions.size();
      index.functions.push_back(std::move(node));
    }

    // Ownership: each node's span minus the spans of lambdas strictly
    // inside it (`>` so a lambda is not its own child).  The named function
    // owns everything else.
    auto children_of = [&](std::size_t begin, std::size_t end) {
      std::vector<std::pair<std::size_t, std::size_t>> spans;
      std::size_t cover = begin;
      for (const LambdaSpan& l : lambdas) {
        if (l.begin > begin && l.end <= end && l.begin >= cover) {
          spans.emplace_back(l.begin, l.end);
          cover = l.end;  // skip lambdas nested inside this child
        }
      }
      return spans;
    };

    auto finish_node = [&](std::size_t idx, std::size_t begin,
                           std::size_t end) {
      FunctionDef& node = index.functions[idx];
      const auto masked = children_of(begin, end);
      extract_calls(stripped, begin, end, masked, node);
      // Direct creation-site edges to immediate lambda children.
      for (std::size_t li = 0; li < lambdas.size(); ++li) {
        for (const auto& m : masked) {
          if (lambdas[li].begin == m.first) {
            node.direct_callees.push_back(lambda_idx[li]);
          }
        }
      }
      // Own lines (for span-scoped rule scans) and the taint seed.
      const std::size_t first = line_of(offsets, begin);
      const std::size_t last = line_of(offsets, end == 0 ? begin : end - 1);
      for (std::size_t ln = first; ln <= last; ++ln) {
        const std::size_t ln_start = offsets[ln - 1];
        bool owned = true;
        for (const auto& m : masked) {
          if (ln_start >= m.first && ln_start < m.second) owned = false;
        }
        if (!owned) continue;
        node.own_lines.push_back(ln);
        if (ln <= record.lines.size() &&
            std::regex_search(record.lines[ln - 1], kHotEntry)) {
          node.hot_entry = true;
        }
      }
    };

    finish_node(fn_idx, def.span_begin, def.span_end);
    for (std::size_t li = 0; li < lambdas.size(); ++li) {
      finish_node(lambda_idx[li], lambdas[li].begin, lambdas[li].end);
    }
  }
}

void load_file(const fs::path& path, std::size_t root_idx,
               const std::string& rel, Index& index) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    index.io_error = true;
    std::cerr << "ah_lint: cannot read " << path.string() << "\n";
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::string stripped = strip(raw);

  FileRecord record;
  record.path = path;
  record.rel = rel;
  record.raw_lines = split_lines(raw);
  record.lines = split_lines(stripped);
  record.lines_lit = split_lines(strip(raw, /*keep_literals=*/true));

  // Suppressions and markers are read from the raw text: they are macros
  // whose tokens survive preprocessing, and scanning raw text keeps the
  // linter independent of how they expand.
  static const std::regex kAllow(R"(AH_LINT_ALLOW\s*\(\s*([A-Za-z_]+))");
  static const std::regex kLayerAllow(R"(AH_LAYERING_ALLOW\s*\()");
  static const std::regex kHotPath(R"(^\s*AH_HOT_PATH_FILE\s*;)");
  static const std::regex kImmutable(R"(^\s*AH_IMMUTABLE_STATE_FILE\s*;)");
  static const std::regex kInclude(R"(#\s*include\s*\"([^\"]+)\")");
  for (std::size_t i = 0; i < record.raw_lines.size(); ++i) {
    const std::string& line = record.raw_lines[i];
    std::smatch match;
    if (std::regex_search(line, match, kAllow)) {
      record.allows.emplace(i + 1, match[1].str());
    }
    if (std::regex_search(line, kLayerAllow)) {
      record.allows.emplace(i + 1, "layering");
    }
    if (std::regex_search(line, kHotPath) && !record.hot_path) {
      record.hot_path = true;
      record.hot_path_line = i + 1;
    }
    if (std::regex_search(line, kImmutable)) record.immutable = true;
    if (std::regex_search(line, match, kInclude)) {
      record.includes.emplace_back(i + 1, match[1].str());
    }
  }

  const std::size_t file_idx = index.files.size();
  index.files.push_back(std::move(record));
  index.root_of.push_back(root_idx);
  parse_macros(index.files[file_idx], file_idx, index.functions);
  parse_file(index.files[file_idx], file_idx, stripped, index);
}

}  // namespace

Index build_index(const std::vector<fs::path>& paths) {
  Index index;
  // (sort key, path, root index, rel display) — sorted for determinism.
  std::vector<std::tuple<std::string, fs::path, std::size_t, std::string>>
      files;
  for (const fs::path& path : paths) {
    if (fs::is_directory(path)) {
      const std::size_t root_idx = index.roots.size();
      index.roots.push_back(path);
      const std::string base = path.filename().string();
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext != ".hpp" && ext != ".cpp") continue;
        const std::string rel =
            (base.empty() ? std::string() : base + "/") +
            entry.path().lexically_relative(path).generic_string();
        files.emplace_back(entry.path().string(), entry.path(), root_idx,
                           rel);
      }
    } else {
      const std::size_t root_idx = index.roots.size();
      index.roots.push_back(path.parent_path());
      files.emplace_back(path.string(), path, root_idx,
                         path.filename().string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& [key, path, root_idx, rel] : files) {
    load_file(path, root_idx, rel, index);
  }
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionDef& fn = index.functions[i];
    if (!fn.is_lambda) index.by_name[fn.name].push_back(i);
  }
  return index;
}

}  // namespace ah_lint
