#include "rules.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <set>

namespace ah_lint {

namespace {

const std::vector<RuleDoc>& docs() {
  static const std::vector<RuleDoc> kDocs = {
      {"hot_path_alloc",
       "AH_HOT_PATH_FILE files must not use std::function, std::shared_ptr, "
       "std::make_shared, std::make_unique, or new-expressions (::new "
       "placement form is exempt). Use common::InlineFunction, "
       "common::FunctionRef, or a common::ObjectPool call struct.",
       "The steady-state request path performs zero heap allocations "
       "(zero_alloc_test); one careless std::function keeps every test green "
       "while allocs/request drifts off zero.  Applies to every line of a "
       "file carrying the AH_HOT_PATH_FILE; marker.  `new(std::nothrow)` and "
       "other `new(`-forms count as new-expressions; placement `::new` (the "
       "repo idiom for SBO buffers) is exempt.\n"
       "  bad:  callback_ = std::function<void()>([this] { tick(); });\n"
       "  good: callback_ = common::InlineFunction<void()>([this] { ... });"},
      {"determinism",
       "Files under sim/, harmony/, webstack/, or cluster/ must not use "
       "rand()/srand(), std::random_device, system_clock/steady_clock/"
       "high_resolution_clock, or unordered containers (iteration order is "
       "nondeterministic). Randomness comes from common::Rng, time from "
       "sim::Simulator::now().",
       "Bit-identical reruns at any --threads value are the foundation the "
       "tuning experiments stand on: Harmony's simplex moves on WIPS deltas, "
       "so nondeterministic noise directly corrupts tuning decisions.  Scope "
       "is by path component (sim/, harmony/, webstack/, cluster/).\n"
       "  bad:  std::unordered_map<int, Node*> nodes_;  // iteration order\n"
       "  good: std::map<int, Node*> nodes_;            // sorted, stable"},
      {"pooling",
       "AH_HOT_PATH_FILE files must not use std::deque or std::list: "
       "per-node and per-chunk allocation on the request path. Use "
       "common::ObjectPool, common::RingBuffer, or std::vector.",
       "std::deque and std::list allocate per chunk/node as they grow, which "
       "reintroduces steady-state allocation through the back door.  Pool "
       "request state in common::ObjectPool, queue in common::RingBuffer.\n"
       "  bad:  std::list<Request> waiting_;\n"
       "  good: common::RingBuffer<Request> waiting_;"},
      {"include_hygiene",
       "Headers must not include <iostream>: it drags in the static "
       "initialization of the standard streams into every TU. Use <ostream> "
       "or <iosfwd> in headers and keep <iostream> in .cpp files.",
       "Every TU that transitively includes <iostream> pays the ios_base "
       "static-init cost and loses the zero-global-state property.\n"
       "  bad:  // widget.hpp\\n#include <iostream>\n"
       "  good: // widget.hpp\\n#include <iosfwd>   // stream by reference"},
      {"obs_hot_path",
       "AH_HOT_PATH_FILE files must not call telemetry record methods "
       "(record_us/record_span/record) directly: use AH_OBS_RECORD_US, "
       "AH_OBS_RECORD_SPAN, or AH_OBS_TRACE_SPAN, which null-check the sink "
       "(and gate tracing on the sampling predicate) before touching it.",
       "Telemetry sinks are optional (null when --metrics is off); the "
       "macros keep the disabled path one branch with no call, so attaching "
       "telemetry cannot perturb the timeline.\n"
       "  bad:  hop_histogram_->record_us(wait);\n"
       "  good: AH_OBS_RECORD_US(hop_histogram_, wait);"},
      {"shared_state",
       "AH_IMMUTABLE_STATE_FILE files hold model state shared read-only "
       "across replica and work-line threads: no non-const statics (hidden "
       "writable globals race across threads) and no `mutable` members "
       "(writes through const references defeat the shared-const safety "
       "argument). Use static const/constexpr tables, or move the state to "
       "the mutable layer.",
       "core::ModelImmutable is shared by std::shared_ptr<const> across "
       "every replica and work line with no synchronisation; the safety "
       "argument is exactly `const after construction`.\n"
       "  bad:  static int call_count = 0;   // racy hidden global\n"
       "  good: static constexpr int kTableSize = 64;"},
      {"hot_path_reach",
       "Functions transitively reachable from an AH_HOT_ENTRY seed through "
       "the call graph must satisfy the hot-path allocation rules even in "
       "unannotated files; files containing reachable code must carry "
       "AH_HOT_PATH_FILE, and marked files must be reachable from a seed "
       "(no stale markers).",
       "The line rules only see files someone remembered to annotate.  This "
       "rule seeds taint at the request/event handlers (AH_HOT_ENTRY; inside "
       "a function or lambda body) and propagates through the indexed call "
       "graph — including into the wiring closures that cross type-erased "
       "callback boundaries — so the marker set is checked against the "
       "graph instead of trusted: a reachable unmarked file is a `missing "
       "marker` finding, a marked file no seed reaches is a `stale marker` "
       "finding, and banned constructs in reachable functions of unmarked "
       "files are flagged with their taint chain.  Call edges are "
       "name-resolved, then pruned by include visibility, so collisions "
       "cannot leak taint into layers the caller cannot see.  For a mixed "
       "hot/cold TU (e.g. a model builder whose wiring lambdas are hot but "
       "whose constructors are not), suppress the file-level finding with "
       "AH_LINT_ALLOW(hot_path_reach, \"...\") — the function-level checks "
       "still apply to the reachable functions.\n"
       "  seed: sim_.schedule(delay, [this] { AH_HOT_ENTRY; tick(); });"},
      {"layering",
       "Project includes must follow the layer DAG: common -> obs/sim -> "
       "ctrl -> cluster -> webstack -> tpcw, harmony -> common only, core "
       "on top. "
       "Upward or cyclic includes are findings; AH_LAYERING_ALLOW(reason) "
       "on the line above grants a justified exception.",
       "The dependency DAG is what keeps the tuner (harmony) system-"
       "agnostic and the simulator (sim) telemetry-free; one convenience "
       "include quietly inverts it.  Allowed includes per layer:\n"
       "  common   -> common\n"
       "  obs      -> obs, common\n"
       "  sim      -> sim, common\n"
       "  ctrl     -> ctrl, sim, obs, common\n"
       "  cluster  -> cluster, sim, common\n"
       "  webstack -> webstack, cluster, ctrl, sim, obs, common\n"
       "  tpcw     -> tpcw, webstack, cluster, sim, obs, common\n"
       "  harmony  -> harmony, common\n"
       "  core     -> (anything)\n"
       "Layer membership is by path component; files outside these "
       "directories (bench/, tools/) are unlayered and exempt.  Include "
       "cycles among project headers are findings regardless of layer."},
      {"ptr_order",
       "Determinism-scoped files must not let pointer identity leak into "
       "observable order: no sorting/comparing containers keyed by pointer "
       "value, no std::hash/std::less over pointer types, no "
       "reinterpret_cast to (u)intptr_t, no %p formatting.",
       "Allocator addresses vary run to run (ASLR, allocation order), so "
       "any pointer-valued ordering or hash seeds nondeterminism that "
       "survives every seed-controlled rerun.  Order by a stable id (node "
       "id, sequence number) instead.\n"
       "  bad:  std::set<Node*> marked_;            // iterates by address\n"
       "  bad:  std::sort(v.begin(), v.end());      // v is vector<T*>\n"
       "  good: std::set<NodeId> marked_;           // stable id order\n"
       "(The sort itself is only flagged through the keyed-container and "
       "hash/less patterns — a vector<T*> sorted with a by-id comparator "
       "is fine.)"},
  };
  return kDocs;
}

struct Check {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<Check>& hot_path_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    c.push_back({"hot_path_alloc", std::regex(R"(std\s*::\s*function\b)"),
                 "std::function type-erases through a heap allocation; use "
                 "common::InlineFunction (owning) or common::FunctionRef "
                 "(non-owning)"});
    c.push_back({"hot_path_alloc",
                 std::regex(R"(std\s*::\s*(shared_ptr\b|make_shared\b))"),
                 "shared ownership on the hot path: control-block allocation "
                 "plus atomic refcounts; park state in a pooled call struct"});
    c.push_back({"hot_path_alloc", std::regex(R"(std\s*::\s*make_unique\b)"),
                 "heap allocation in a hot-path file; acquire from a "
                 "common::ObjectPool (or AH_LINT_ALLOW a start-up-only site)"});
    // `new ` and `new(` both open a new-expression (new(std::nothrow),
    // new(placement) — only the ::new spelling is exempt).
    c.push_back({"hot_path_alloc",
                 std::regex(R"((^|[^:_A-Za-z0-9>])new(\s|\())"),
                 "new-expression in a hot-path file; acquire from a "
                 "common::ObjectPool (placement ::new is exempt)"});
    c.push_back({"pooling", std::regex(R"(std\s*::\s*(deque|list)\b)"),
                 "chunk/node-allocating container in a hot-path file; use "
                 "common::ObjectPool, common::RingBuffer, or std::vector"});
    c.push_back({"obs_hot_path",
                 std::regex(R"((\.|->)\s*(record_us|record_span|record)\s*\()"),
                 "direct telemetry record call in a hot-path file; use "
                 "AH_OBS_RECORD_US / AH_OBS_RECORD_SPAN / AH_OBS_TRACE_SPAN "
                 "(null-checked and sampling-gated)"});
    return c;
  }();
  return checks;
}

/// The subset of the hot-path checks applied function-by-function to
/// taint-reachable code in files without the whole-file marker.
const std::vector<Check>& reach_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    for (const Check& check : hot_path_checks()) {
      if (std::string(check.rule) == "obs_hot_path") continue;
      c.push_back({"hot_path_reach", check.pattern, check.message});
    }
    return c;
  }();
  return checks;
}

const std::vector<Check>& determinism_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    c.push_back({"determinism", std::regex(R"((^|[^_A-Za-z0-9])s?rand\s*\()"),
                 "libc rand()/srand() is hidden global state; draw from the "
                 "owning component's common::Rng"});
    c.push_back({"determinism", std::regex(R"(std\s*::\s*random_device\b)"),
                 "std::random_device is nondeterministic; seeds flow from the "
                 "experiment config through common::Rng::split"});
    c.push_back(
        {"determinism",
         std::regex(R"((system_clock|steady_clock|high_resolution_clock)\b)"),
         "wall-clock time in simulated code; use sim::Simulator::now()"});
    c.push_back({"determinism",
                 std::regex(
                     R"(std\s*::\s*unordered_(map|set|multimap|multiset)\b)"),
                 "unordered container: iteration order varies across standard "
                 "libraries and hash seeds; use a sorted container, or "
                 "AH_LINT_ALLOW with a note that iteration order is never "
                 "observed"});
    return c;
  }();
  return checks;
}

const std::vector<Check>& ptr_order_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    c.push_back({"ptr_order", std::regex(R"(std\s*::\s*hash\s*<[^>]*\*)"),
                 "std::hash over a pointer type hashes the address, which "
                 "varies run to run; hash a stable id instead"});
    c.push_back({"ptr_order",
                 std::regex(
                     R"(std\s*::\s*(map|set|multimap|multiset)\s*<\s*[^,<>]*\*)"),
                 "ordered container keyed by pointer value: iteration order "
                 "is allocation order, not a stable property; key by node "
                 "id / sequence number"});
    c.push_back({"ptr_order", std::regex(R"(std\s*::\s*less\s*<[^>]*\*)"),
                 "std::less over a pointer type compares addresses; compare "
                 "a stable id instead"});
    c.push_back({"ptr_order",
                 std::regex(R"(reinterpret_cast\s*<\s*(std\s*::\s*)?u?intptr_t)"),
                 "pointer-to-integer cast: the integer inherits the "
                 "address's run-to-run variance; derive ordering/hashes "
                 "from stable ids"});
    return c;
  }();
  return checks;
}

const std::vector<Check>& shared_state_checks() {
  static const std::vector<Check> checks = [] {
    std::vector<Check> c;
    // `static` not followed by const/constexpr.  static_assert/static_cast
    // never match: no whitespace follows the keyword there.
    c.push_back({"shared_state",
                 std::regex(R"((^|[^_A-Za-z0-9])static\s+(?!const\b|constexpr\b))"),
                 "non-const static in an immutable-layer file: a hidden "
                 "writable global shared by every replica and work-line "
                 "thread; make it static const/constexpr or move it to the "
                 "mutable layer"});
    c.push_back({"shared_state",
                 std::regex(R"((^|[^_A-Za-z0-9])mutable\b)"),
                 "mutable member in an immutable-layer file: writes through "
                 "const references defeat the shared-const thread-safety "
                 "argument; move the state to the mutable layer"});
    return c;
  }();
  return checks;
}

/// True when any path component is one of the determinism-scoped
/// directories (path-component match, so fixture trees mirror the layout).
bool in_determinism_scope(const std::filesystem::path& path) {
  static const std::set<std::string> kDirs = {"sim", "harmony", "webstack",
                                              "cluster"};
  for (const auto& part : path) {
    if (kDirs.count(part.string()) != 0) return true;
  }
  return false;
}

bool is_header(const std::filesystem::path& path) {
  return path.extension() == ".hpp";
}

/// Layer membership by path component (the LAST recognized component wins,
/// so fixture trees that mirror the layout resolve the same way).
std::string layer_of(const std::filesystem::path& path) {
  static const std::set<std::string> kLayers = {
      "common", "obs",  "sim",  "ctrl",   "cluster",
      "webstack", "tpcw", "core", "harmony"};
  std::string layer;
  for (const auto& part : path) {
    if (kLayers.count(part.string()) != 0) layer = part.string();
  }
  return layer;
}

/// The allowed-include DAG (see the `layering` rule details).
bool layer_edge_allowed(const std::string& from, const std::string& to) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {"common"}},
      {"obs", {"obs", "common"}},
      {"sim", {"sim", "common"}},
      {"ctrl", {"ctrl", "sim", "obs", "common"}},
      {"cluster", {"cluster", "sim", "common"}},
      {"webstack", {"webstack", "cluster", "ctrl", "sim", "obs", "common"}},
      {"tpcw", {"tpcw", "webstack", "cluster", "sim", "obs", "common"}},
      {"harmony", {"harmony", "common"}},
  };
  if (from == "core") return true;
  const auto it = kAllowed.find(from);
  return it != kAllowed.end() && it->second.count(to) != 0;
}

bool suppressed(const FileRecord& file, std::size_t line,
                const std::string& rule) {
  return file.allows.count({line, rule}) != 0 ||
         (line > 1 && file.allows.count({line - 1, rule}) != 0);
}

void add_finding(std::vector<Finding>& findings, const FileRecord& file,
                 std::size_t line, const std::string& rule,
                 std::string message) {
  if (suppressed(file, line, rule)) return;
  findings.push_back({file.path.string(), file.rel, line, rule,
                      std::move(message)});
}

void run_line_rules(const FileRecord& file, std::vector<Finding>& findings) {
  std::vector<const std::vector<Check>*> active;
  if (file.hot_path) active.push_back(&hot_path_checks());
  if (in_determinism_scope(file.path)) {
    active.push_back(&determinism_checks());
    active.push_back(&ptr_order_checks());
  }
  if (file.immutable) active.push_back(&shared_state_checks());

  static const std::regex kIostream(R"(#\s*include\s*<iostream>)");
  static const std::regex kPercentP(R"("[^"]*%p)");
  const bool header = is_header(file.path);
  const bool determinism = in_determinism_scope(file.path);

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& line = file.lines[i];
    const std::size_t line_no = i + 1;
    for (const auto* checks : active) {
      for (const Check& check : *checks) {
        if (std::regex_search(line, check.pattern)) {
          add_finding(findings, file, line_no, check.rule, check.message);
        }
      }
    }
    if (header && std::regex_search(line, kIostream)) {
      add_finding(findings, file, line_no, "include_hygiene",
                  "<iostream> in a header pulls stream static-init into "
                  "every TU; use <ostream>/<iosfwd> here, <iostream> in the "
                  ".cpp");
    }
    // %p lives inside string literals, which the stripped lines blank out;
    // scan the comment-stripped literal-preserving text instead.
    if (determinism && i < file.lines_lit.size() &&
        std::regex_search(file.lines_lit[i], kPercentP)) {
      add_finding(findings, file, line_no, "ptr_order",
                  "%p formats a pointer value, which varies run to run; "
                  "print a stable id instead");
    }
  }
}

void run_hot_path_reach(const Index& index, const Taint& taint,
                        std::vector<Finding>& findings) {
  if (taint.seed_count == 0) return;  // pre-adoption tree: nothing seeded

  // Per file: tainted functions in index order (named and lambdas).
  std::map<std::size_t, std::vector<std::size_t>> tainted_by_file;
  for (std::size_t i = 0; i < index.functions.size(); ++i) {
    if (taint.tainted[i] && !index.functions[i].is_macro) {
      tainted_by_file[index.functions[i].file].push_back(i);
    }
  }

  // A header and its same-stem .cpp are one marker unit for staleness: the
  // header is where the class lives, so its marker is justified whenever
  // the component's code is hot, even if every reached function happens to
  // be defined out of line.
  std::set<std::string> reached_stems;
  for (const auto& [fi, fns] : tainted_by_file) {
    std::filesystem::path stem = index.files[fi].path;
    stem.replace_extension();
    reached_stems.insert(stem.generic_string());
  }

  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const FileRecord& file = index.files[fi];
    const auto it = tainted_by_file.find(fi);
    const bool reached = it != tainted_by_file.end();
    std::filesystem::path stem = file.path;
    stem.replace_extension();
    const bool pair_reached =
        reached_stems.count(stem.generic_string()) != 0;

    if (file.hot_path && !pair_reached && file.function_count > 0) {
      add_finding(findings, file, file.hot_path_line, "hot_path_reach",
                  "stale marker: no function in this file is reachable from "
                  "any AH_HOT_ENTRY seed; seed the file's entry points (or "
                  "drop the marker if the file left the hot path)");
      continue;
    }
    if (!reached || file.hot_path) continue;

    // Reachable code in an unmarked file: function-level checks plus the
    // missing-marker finding.
    const std::size_t first = it->second.front();
    add_finding(findings, file, index.functions[first].name_line,
                "hot_path_reach",
                "missing marker: hot-path-reachable code (" +
                    taint_chain(index, taint, first) +
                    ") but no AH_HOT_PATH_FILE; add the marker, or "
                    "AH_LINT_ALLOW(hot_path_reach, ...) here for a mixed "
                    "hot/cold TU (function-level checks still apply)");
    for (const std::size_t fn_idx : it->second) {
      const FunctionDef& fn = index.functions[fn_idx];
      for (const std::size_t line_no : fn.own_lines) {
        if (line_no == 0 || line_no > file.lines.size()) continue;
        const std::string& line = file.lines[line_no - 1];
        for (const Check& check : reach_checks()) {
          if (std::regex_search(line, check.pattern)) {
            add_finding(findings, file, line_no, "hot_path_reach",
                        std::string(check.message) +
                            " [hot-path-reachable: " +
                            taint_chain(index, taint, fn_idx) + "]");
          }
        }
      }
    }
  }
}

void run_layering(const Index& index, const IncludeGraph& includes,
                  std::vector<Finding>& findings) {
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const FileRecord& file = index.files[fi];
    const std::string from = layer_of(file.path);
    if (from.empty()) continue;  // unlayered (bench/, tools/)
    for (const auto& [target, line] : includes.edges[fi]) {
      const std::string to = layer_of(index.files[target].path);
      if (to.empty()) continue;
      if (!layer_edge_allowed(from, to)) {
        add_finding(findings, file, line, "layering",
                    "include of '" + index.files[target].rel + "' (layer " +
                        to + ") from layer " + from +
                        " inverts the layer DAG (common -> obs/sim -> ctrl "
                        "-> cluster -> webstack -> tpcw; harmony -> common; "
                        "core on top); move the dependency down or "
                        "AH_LAYERING_ALLOW(\"reason\") it");
      }
    }
  }
  for (const std::vector<std::size_t>& cycle : includes.cycles) {
    const std::size_t head = cycle.front();
    std::string path_text;
    for (const std::size_t fi : cycle) {
      path_text += index.files[fi].rel + " -> ";
    }
    path_text += index.files[head].rel;
    // Report at the head file's include that enters the cycle.
    std::size_t line = 1;
    const std::size_t next = cycle.size() > 1 ? cycle[1] : head;
    for (const auto& [target, inc_line] : includes.edges[head]) {
      if (target == next) {
        line = inc_line;
        break;
      }
    }
    add_finding(findings, index.files[head], line, "layering",
                "include cycle among project headers: " + path_text);
  }
}

}  // namespace

const std::vector<RuleDoc>& rule_docs() { return docs(); }

std::size_t rule_registration(const std::string& name) {
  const std::vector<RuleDoc>& all = docs();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (name == all[i].name) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::vector<Finding> run_rules(const Index& index,
                               const IncludeGraph& includes,
                               const Taint& taint) {
  std::vector<Finding> findings;
  for (const FileRecord& file : index.files) {
    run_line_rules(file, findings);
  }
  run_hot_path_reach(index, taint, findings);
  run_layering(index, includes, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              const std::size_t ra = rule_registration(a.rule);
              const std::size_t rb = rule_registration(b.rule);
              if (ra != rb) return ra < rb;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace ah_lint
