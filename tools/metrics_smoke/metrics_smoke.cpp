// metrics_smoke: deterministic end-to-end exercise of the obs subsystem.
//
// Runs a fixed candidate batch through a ParallelEvaluator (2 replicas) and
// writes every replica's full metrics snapshot into one JSON document.  The
// replica engine assigns candidate i to replica i % k and each replica's
// timeline is single-threaded, so the output depends only on the batch —
// never on --threads.  CI runs this binary at --threads 1, 2 and 8 and
// byte-compares all three against the committed golden
// (tests/golden/metrics_smoke.json): any nondeterminism in the simulation,
// the registry's pull closures, or the snapshot formatting shows up as a
// golden diff.
//
// Usage: metrics_smoke [--threads N] [--out metrics.json] [--csv metrics.csv]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/system_model.hpp"
#include "webstack/params.hpp"

namespace {

using namespace ah;

core::Experiment::Config smoke_experiment() {
  core::Experiment::Config config;
  config.browsers = 60;
  config.iteration.warmup = common::SimTime::seconds(4.0);
  config.iteration.measure = common::SimTime::seconds(10.0);
  config.iteration.cooldown = common::SimTime::seconds(1.0);
  config.seed = 7;
  return config;
}

// Deterministic in-bounds candidates: dimension i % 23 moved to mid-range.
std::vector<harmony::PointI> smoke_batch(std::size_t n) {
  const auto& catalogue = webstack::parameter_catalogue();
  std::vector<harmony::PointI> batch;
  for (std::size_t i = 0; i < n; ++i) {
    harmony::PointI point = webstack::default_values();
    const std::size_t d = i % point.size();
    const auto& spec = catalogue[d];
    point[d] = spec.min_value + (spec.max_value - spec.min_value) / 2;
    batch.push_back(std::move(point));
  }
  return batch;
}

bool parse_flag(int& argc, char** argv, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    int used = 0;
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      value = arg + len + 1;
      used = 1;
    } else if (std::strcmp(arg, name) == 0 && i + 1 < argc) {
      value = argv[i + 1];
      used = 2;
    } else {
      continue;
    }
    for (int j = i; j + used <= argc; ++j) argv[j] = argv[j + used];
    argc -= used;
    out = value;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string threads_str;
  std::string out_path = "metrics_smoke.json";
  std::string csv_path;
  std::size_t threads = 1;
  if (parse_flag(argc, argv, "--threads", threads_str)) {
    threads = static_cast<std::size_t>(std::strtoul(threads_str.c_str(),
                                                    nullptr, 10));
  }
  parse_flag(argc, argv, "--out", out_path);
  parse_flag(argc, argv, "--csv", csv_path);
  if (argc > 1) {
    std::fprintf(stderr,
                 "usage: metrics_smoke [--threads N] [--out metrics.json] "
                 "[--csv metrics.csv]\n");
    return 2;
  }

  common::ThreadPool pool(threads);
  core::ParallelEvaluator::Options options;
  options.experiment = smoke_experiment();
  options.replicas = 2;
  core::ParallelEvaluator evaluator(pool, options);
  const auto batch = smoke_batch(4);
  evaluator.evaluate(batch,
                     [](core::SystemModel& system,
                        const harmony::PointI& values) {
                       system.apply_values_all(values);
                     });

  std::string json = "{\n\"replicas\": [\n";
  std::string csv;
  for (std::size_t r = 0; r < evaluator.replica_count(); ++r) {
    const obs::Registry& metrics = evaluator.replica_system(r).metrics();
    if (r > 0) json += ",\n";
    json += metrics.json_string();
    csv += metrics.csv_string();
  }
  json += "]\n}\n";

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "metrics_smoke: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), out);
  const bool closed = std::fclose(out) == 0;
  if (written != json.size() || !closed) {
    std::fprintf(stderr, "metrics_smoke: short write to %s\n",
                 out_path.c_str());
    return 1;
  }
  if (!csv_path.empty()) {
    std::FILE* cout_ = std::fopen(csv_path.c_str(), "w");
    if (cout_ == nullptr ||
        std::fwrite(csv.data(), 1, csv.size(), cout_) != csv.size() ||
        std::fclose(cout_) != 0) {
      std::fprintf(stderr, "metrics_smoke: cannot write %s\n",
                   csv_path.c_str());
      return 1;
    }
  }
  std::printf("metrics_smoke: wrote %s (%zu bytes, %zu replicas)\n",
              out_path.c_str(), json.size(), evaluator.replica_count());
  return 0;
}
