# Runs metrics_smoke at a given thread count and byte-compares its output
# against the committed golden.  Driven by ctest (see tools/CMakeLists.txt);
# passing at THREADS=1/2/8 is the cross-thread determinism acceptance check.
#
# Variables: SMOKE_BIN, THREADS, OUT, GOLDEN.
execute_process(
  COMMAND "${SMOKE_BIN}" --threads "${THREADS}" --out "${OUT}"
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "metrics_smoke --threads ${THREADS} failed (${run_rc})")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT}" "${GOLDEN}"
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "metrics snapshot at --threads ${THREADS} differs from golden "
    "${GOLDEN}; if the simulation intentionally changed, regenerate with: "
    "metrics_smoke --out ${GOLDEN}")
endif()
