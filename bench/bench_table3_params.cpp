// Table 3: tuning results for different workloads.
//
// Prints the default value and the best-configuration value of every one of
// the 23 tunable parameters after tuning each TPC-W mix — the shape of the
// paper's Table 3.  Absolute values differ from the paper's testbed; the
// qualitative patterns to look for are called out underneath the table
// (e.g. ordering grows thread pools, cache knobs grow for cache-friendly
// mixes, cache_swap_low/high wander because they are performance-inert).
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "webstack/params.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t threads = bench::threads_flag(argc, argv);
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 200;
  bench::banner("Table 3: tuned parameter values per workload",
                "Table 3 (Section III.A)");

  const tpcw::WorkloadKind kinds[] = {tpcw::WorkloadKind::kBrowsing,
                                      tpcw::WorkloadKind::kShopping,
                                      tpcw::WorkloadKind::kOrdering};
  harmony::PointI best[3];
  for (int w = 0; w < 3; ++w) {
    std::printf("tuning %s (%zu iterations)...\n",
                std::string(tpcw::workload_name(kinds[w])).c_str(),
                iterations);
  }
  // Independent per-workload studies: fan out with --threads > 1.
  bench::fan_out(threads, 3, [&](std::size_t w) {
    bench::StudySpec spec;
    spec.workload = kinds[w];
    spec.browsers = bench::browsers_for(kinds[w]);
    spec.iterations = iterations;
    best[w] = bench::run_study(spec).tuning.best_configuration;
  });

  common::TextTable table({"Tunable parameter", "Default", "Browsing",
                           "Shopping", "Ordering"});
  const auto& catalogue = webstack::parameter_catalogue();
  cluster::TierKind last_tier = cluster::TierKind::kDb;
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    if (i == 0 || catalogue[i].tier != last_tier) {
      last_tier = catalogue[i].tier;
      const char* header = last_tier == cluster::TierKind::kProxy
                               ? "-- Proxy Server --"
                               : last_tier == cluster::TierKind::kApp
                                     ? "-- Web Server --"
                                     : "-- Database Server --";
      table.add_row({header, "", "", "", ""});
    }
    table.add_row({catalogue[i].name,
                   std::to_string(catalogue[i].default_value),
                   std::to_string(best[0][i]), std::to_string(best[1][i]),
                   std::to_string(best[2][i])});
  }
  table.render(std::cout);

  std::printf(
      "\nPatterns to compare with the paper's Table 3:\n"
      " * proxy cache parameters move for the cache-heavy mixes\n"
      "   (browsing/shopping) but matter little for ordering;\n"
      " * thread-pool and accept-queue parameters grow most under the\n"
      "   ordering mix (DB-latency-bound requests hold threads longer);\n"
      " * binlog_cache_size grows for write-heavy mixes;\n"
      " * cache_swap_low/high and join_buffer_size are performance-inert\n"
      "   (paper Section III.A), so their tuned values wander.\n");
  return 0;
}
