// Figure 4: applying best configurations after 200 iterations to
// different workloads.
//
// For each TPC-W mix (Browsing / Shopping / Ordering) Active Harmony tunes
// the 23 parameters for 200 iterations.  Each best configuration is then
// re-measured under all three workloads, reproducing the paper's 3x3 bar
// matrix, and the improvement-vs-default row of the embedded table
// (paper: 15% / 16% / 5%).
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t threads = bench::threads_flag(argc, argv);
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 200;
  bench::banner("Figure 4: best configurations across workloads",
                "Figure 4 + embedded improvement table (Section III.A)");

  const tpcw::WorkloadKind kinds[] = {tpcw::WorkloadKind::kBrowsing,
                                      tpcw::WorkloadKind::kShopping,
                                      tpcw::WorkloadKind::kOrdering};

  // The three tuning studies and, afterwards, the nine cross-measurements
  // are independent: with --threads > 1 each fans out over a pool.  Every
  // study/measurement keeps its own sequential driver, so the printed
  // numbers are identical at any thread count.

  // Tune per workload.
  harmony::PointI best_configs[3];
  double baselines[3] = {};
  for (int w = 0; w < 3; ++w) {
    std::printf("tuning %s for %zu iterations...\n",
                std::string(tpcw::workload_name(kinds[w])).c_str(),
                iterations);
  }
  bench::fan_out(threads, 3, [&](std::size_t w) {
    bench::StudySpec spec;
    spec.workload = kinds[w];
    spec.browsers = bench::browsers_for(kinds[w]);
    spec.iterations = iterations;
    const auto study = bench::run_study(spec);
    best_configs[w] = study.tuning.best_configuration;
    baselines[w] = study.baseline_wips;
    bench::write_series_csv(
        std::string("fig4_tuning_") +
            std::string(tpcw::workload_name(kinds[w])),
        study.tuning.wips_series);
  });

  // Cross-apply: measured[config][workload].
  double measured[3][3];
  bench::fan_out(threads, 9, [&](std::size_t cell) {
    const std::size_t c = cell / 3;
    const std::size_t w = cell % 3;
    bench::StudySpec spec;
    spec.workload = kinds[w];
    spec.browsers = bench::browsers_for(kinds[w]);
    measured[c][w] = bench::measure_configuration(spec, best_configs[c]);
  });

  std::printf("\nWIPS by (configuration tuned for) x (workload run):\n");
  common::TextTable matrix({"configuration \\ workload", "Browsing",
                            "Shopping", "Ordering"});
  matrix.add_row({"default", common::TextTable::num(baselines[0], 1),
                  common::TextTable::num(baselines[1], 1),
                  common::TextTable::num(baselines[2], 1)});
  for (int c = 0; c < 3; ++c) {
    matrix.add_row({"tuned for " + std::string(tpcw::workload_name(kinds[c])),
                    common::TextTable::num(measured[c][0], 1),
                    common::TextTable::num(measured[c][1], 1),
                    common::TextTable::num(measured[c][2], 1)});
  }
  matrix.render(std::cout);

  std::printf("\nImprovement of the natively-tuned configuration over the\n"
              "default configuration (paper: 15%% / 16%% / 5%%):\n");
  common::TextTable improvements({"", "Browsing", "Shopping", "Ordering"});
  std::vector<std::string> cells{"improvement"};
  for (int w = 0; w < 3; ++w) {
    cells.push_back(common::TextTable::percent(
        (measured[w][w] - baselines[w]) / baselines[w], 1));
  }
  improvements.add_row(cells);
  improvements.render(std::cout);

  std::printf("\nCross-workload penalty (native config vs foreign config,\n"
              "positive = the workload's own configuration wins):\n");
  common::TextTable penalty({"workload", "vs other config 1",
                             "vs other config 2"});
  for (int w = 0; w < 3; ++w) {
    std::vector<std::string> row{
        std::string(tpcw::workload_name(kinds[w]))};
    for (int c = 0; c < 3; ++c) {
      if (c == w) continue;
      row.push_back(common::TextTable::percent(
          (measured[w][w] - measured[c][w]) /
              std::max(1e-9, measured[c][w]),
          1));
    }
    penalty.add_row(row);
  }
  penalty.render(std::cout);
  return 0;
}
