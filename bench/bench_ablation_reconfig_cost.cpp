// Ablation: the Eq. 1 reconfiguration cost model.
//
//   F + N_k * M_km - N_k * A_k          (paper Section IV, Equation 1)
//
// Part 1 sweeps the donor's job count and prints the decision boundary
// between "reconfigure immediately" (migrate jobs to a same-tier
// neighbour) and "wait for drain".  Part 2 measures the throughput dip of
// both execution styles on the live system, demonstrating why the model
// prefers immediate migration exactly when Eq. 1 is non-positive.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/reconfig_controller.hpp"
#include "harmony/reconfig.hpp"

namespace {

using namespace ah;

double run_move_style(bool immediate, std::vector<double>* dip_series) {
  sim::Simulator sim;
  core::SystemModel::Config config;
  config.lines = {core::SystemModel::LineSpec{4, 2, 3}};
  core::SystemModel system(sim, config);
  core::Experiment::Config experiment_config;
  experiment_config.browsers = 2 * bench::kBrowsersPerLine;
  experiment_config.workload = tpcw::WorkloadKind::kOrdering;
  core::Experiment experiment(system, experiment_config);
  for (int i = 0; i < 6; ++i) experiment.run_iteration();

  const auto donor =
      system.cluster().tier(cluster::TierKind::kProxy).members()[0];
  system.move_node(donor, cluster::TierKind::kApp, immediate,
                   common::SimTime::seconds(8.0));
  common::RunningStats after;
  for (int i = 0; i < 10; ++i) {
    const double wips = experiment.run_iteration().wips;
    if (dip_series != nullptr) dip_series->push_back(wips);
    if (i >= 4) after.add(wips);
  }
  return after.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_flag(argc, argv);
  bench::banner("Ablation: Eq. 1 reconfiguration cost model",
                "Equation 1 + Figure 6 step 4(c) (Section IV)");

  // Part 1: decision boundary sweep.
  harmony::ReconfigOptions options = core::SystemModel::default_reconfig_options();
  harmony::Reconfigurer reconfigurer(options);
  std::printf("F = %.1f s, A_k = 0.060 s/job, M_km = 0.020 s/job\n\n",
              options.config_cost_seconds);
  common::TextTable sweep({"jobs on donor (N_k)", "Eq. 1 (s)", "decision"});
  for (const double jobs : {0.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0}) {
    harmony::NodeReading donor;
    donor.jobs = jobs;
    donor.avg_process_seconds = 0.060;
    donor.move_cost_seconds = 0.020;
    donor.utilization = {0, 0, 0, 0};
    const double cost = reconfigurer.move_cost(donor);
    sweep.add_row({common::TextTable::num(jobs, 0),
                   common::TextTable::num(cost, 2),
                   cost <= 0.0 ? "reconfigure immediately"
                               : "wait for drain"});
  }
  sweep.render(std::cout);

  // Part 2: live comparison of the two execution styles.
  std::printf("\nlive comparison (4 proxies + 2 apps, ordering mix, one\n"
              "proxy re-purposed to the app tier):\n");
  // The two execution styles are independent systems: fan out when asked.
  std::vector<double> immediate_series;
  std::vector<double> drain_series;
  double immediate = 0.0;
  double drained = 0.0;
  bench::fan_out(threads, 2, [&](std::size_t i) {
    if (i == 0) {
      immediate = run_move_style(true, &immediate_series);
    } else {
      drained = run_move_style(false, &drain_series);
    }
  });
  common::TextTable live({"style", "settled WIPS", "iter 1 after move",
                          "iter 2 after move"});
  live.add_row({"immediate", common::TextTable::num(immediate, 1),
                common::TextTable::num(immediate_series[0], 1),
                common::TextTable::num(immediate_series[1], 1)});
  live.add_row({"wait for drain", common::TextTable::num(drained, 1),
                common::TextTable::num(drain_series[0], 1),
                common::TextTable::num(drain_series[1], 1)});
  live.render(std::cout);
  std::printf(
      "\nBoth styles settle at the same rebalanced throughput; they differ\n"
      "in the transition iterations, which is precisely the cost that\n"
      "Eq. 1 weighs (migrating N_k jobs now vs letting them finish).\n");
  return 0;
}
