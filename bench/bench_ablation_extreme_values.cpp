// Ablation: extreme-value damping in the simplex kernel.
//
// Section III.A observes "higher variation in system throughput in a
// browsing workload ... because the tuning server sometimes uses a
// configuration that consists of parameters with extreme values", and
// proposes modifying the kernel to approach boundaries gradually.  The
// SimplexOptions::damp_extremes flag implements that proposal; this
// ablation compares tuning with and without it on the browsing mix.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t threads = bench::threads_flag(argc, argv);
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 120;
  bench::banner("Ablation: extreme-value damping (paper future work)",
                "Section III.A (variance discussion)");

  // The damped and undamped studies are independent: fan out when asked.
  bench::StudyResult studies[2];
  bench::fan_out(threads, 2, [&](std::size_t i) {
    bench::StudySpec spec;
    spec.workload = tpcw::WorkloadKind::kBrowsing;
    spec.browsers = bench::browsers_for(tpcw::WorkloadKind::kBrowsing);
    spec.iterations = iterations;
    spec.session.simplex.damp_extremes = i == 1;
    studies[i] = bench::run_study(spec);
  });

  common::TextTable table({"kernel", "best WIPS", "mean WIPS",
                           "stddev (2nd half)", "worst iteration"});
  for (const bool damped : {false, true}) {
    const auto& study = studies[damped ? 1 : 0];
    double worst = 1e300;
    common::RunningStats all;
    for (const double wips : study.tuning.wips_series) {
      worst = std::min(worst, wips);
      all.add(wips);
    }
    table.add_row({damped ? "damped (proposed)" : "plain Nelder-Mead",
                   common::TextTable::num(study.tuning.validated_wips, 1),
                   common::TextTable::num(all.mean(), 1),
                   common::TextTable::num(
                       study.tuning.stddev_wips(iterations / 2, iterations),
                       1),
                   common::TextTable::num(worst, 1)});
    bench::write_series_csv(
        damped ? "ablation_damped" : "ablation_undamped",
        study.tuning.wips_series);
  }
  table.render(std::cout);
  std::printf(
      "\nThe damped kernel trades a little exploration for fewer\n"
      "catastrophic iterations (higher worst-iteration WIPS, lower\n"
      "deviation) — the behaviour the paper anticipated when proposing to\n"
      "approach extreme values only when performance gains warrant it.\n");
  return 0;
}
