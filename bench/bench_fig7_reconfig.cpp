// Figure 7: automatic cluster reconfiguration experiments.
//
// (a) Six proxy/app nodes start as 4 proxies + 2 app servers.  The workload
//     begins as browsing and switches to ordering at iteration 90; the
//     reconfiguration check runs once right after iteration 100 and moves a
//     node from the proxy tier to the application tier.  Paper: ~62%
//     throughput improvement.
// (b) The dual: 2 proxies + 4 app servers under a browsing workload; the
//     check after iteration 100 moves an app node to the proxy tier.
//     Paper: ~70% improvement.
//
// The database tier is provisioned out of the way in both cases (the
// imbalance under study is proxy vs app).  A shortened iteration count is
// used by default; pass `<pre> <post>` to change phase lengths.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/fmt.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/reconfig_controller.hpp"

namespace {

using namespace ah;

struct CaseResult {
  double before = 0.0;        // mean WIPS in the window before the check
  double after = 0.0;         // mean WIPS once the move settled
  std::string move = "(none)";
  std::vector<double> series;
};

CaseResult run_case(int proxies, int apps, tpcw::WorkloadKind initial,
                    std::optional<tpcw::WorkloadKind> switch_to,
                    std::size_t switch_at, std::size_t check_at,
                    std::size_t total, bool tuned_config) {
  sim::Simulator sim;
  core::SystemModel::Config config;
  config.lines = {core::SystemModel::LineSpec{proxies, apps, 3}};
  core::SystemModel system(sim, config);
  // Parameter tuning runs alongside reconfiguration in the paper.  Case
  // (a) models the post-tuning state (app CPU is then the binding
  // resource under ordering); case (b) models the pre-tuning state, where
  // the default cache configuration makes the proxy disk path the binding
  // resource under browsing.
  if (tuned_config) {
    system.apply_values_all(bench::tuned_reference_configuration());
  }

  core::Experiment::Config experiment_config;
  // The Fig 7 experiments run the cluster well past the two-node tier's
  // capacity so the load imbalance (not parameter tuning) dominates.
  experiment_config.browsers = 2600;
  experiment_config.workload = initial;
  core::Experiment experiment(system, experiment_config);
  // Thresholds are per-deployment inputs (paper Table 5: LT_ij / HT_ij).
  // On this cluster every proxy also relays the full request stream, so a
  // donor-eligible "lightly loaded" node sits below ~60-65% rather than
  // the conservative defaults.
  harmony::ReconfigOptions reconfig_options =
      core::SystemModel::default_reconfig_options();
  reconfig_options.resources[core::SystemModel::kCpu].low_threshold = 0.60;
  reconfig_options.resources[core::SystemModel::kDisk].low_threshold = 0.60;
  reconfig_options.resources[core::SystemModel::kNic].low_threshold = 0.50;
  core::ReconfigController controller(system, reconfig_options);

  CaseResult result;
  common::RunningStats before;
  common::RunningStats after;
  for (std::size_t i = 0; i < total; ++i) {
    if (switch_to.has_value() && i == switch_at) {
      experiment.set_workload(*switch_to);
    }
    const auto iteration = experiment.run_iteration();
    result.series.push_back(iteration.wips);
    if (i + 1 == check_at) {
      const auto decision = controller.check();
      if (decision.has_value()) {
        result.move = common::format(
            "node{} {} -> {} ({})", decision->donor_node,
            cluster::tier_name(
                static_cast<cluster::TierKind>(decision->from_tier)),
            cluster::tier_name(
                static_cast<cluster::TierKind>(decision->to_tier)),
            decision->immediate ? "immediate" : "after drain");
      }
    }
    // Windows: the 8 iterations before the check (but after any workload
    // switch settled), and the last 8 iterations of the run.
    if (i + 1 <= check_at && i + 1 > check_at - 8 &&
        (!switch_to.has_value() || i >= switch_at + 2)) {
      before.add(iteration.wips);
    }
    if (i + 8 >= total) after.add(iteration.wips);
  }
  result.before = before.mean();
  result.after = after.mean();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = ah::bench::threads_flag(argc, argv);
  const std::size_t check_at = argc > 1 ? std::stoul(argv[1]) : 25;
  const std::size_t total = argc > 2 ? std::stoul(argv[2]) : 45;
  bench::banner("Figure 7: automatic cluster reconfiguration",
                "Figure 7(a) and 7(b) (Section IV)");

  std::printf("case (a): 4 proxies + 2 app servers, browsing -> ordering\n");
  std::printf("case (b): 2 proxies + 4 app servers, browsing throughout\n");
  // The two cases are independent systems: fan out with --threads > 1.
  CaseResult results[2];
  ah::bench::fan_out(threads, 2, [&](std::size_t c) {
    results[c] =
        c == 0 ? run_case(4, 2, tpcw::WorkloadKind::kBrowsing,
                          tpcw::WorkloadKind::kOrdering,
                          /*switch_at=*/check_at - 10, check_at, total,
                          /*tuned_config=*/true)
               : run_case(2, 4, tpcw::WorkloadKind::kBrowsing, std::nullopt,
                          0, check_at, total, /*tuned_config=*/false);
  });
  const auto& a = results[0];
  const auto& b = results[1];
  bench::write_series_csv("fig7a_series", a.series);
  bench::write_series_csv("fig7b_series", b.series);

  common::TextTable table({"case", "move", "WIPS before", "WIPS after",
                           "improvement", "paper"});
  table.add_row({"(a) proxy -> app", a.move,
                 common::TextTable::num(a.before, 1),
                 common::TextTable::num(a.after, 1),
                 common::TextTable::percent((a.after - a.before) /
                                                std::max(1e-9, a.before),
                                            1),
                 "~62%"});
  table.add_row({"(b) app -> proxy", b.move,
                 common::TextTable::num(b.before, 1),
                 common::TextTable::num(b.after, 1),
                 common::TextTable::percent((b.after - b.before) /
                                                std::max(1e-9, b.before),
                                            1),
                 "~70%"});
  table.render(std::cout);
  std::printf(
      "\nThe two cases are duals (paper Section IV): whichever tier the\n"
      "workload overloads, the under-utilized tier donates a node, and\n"
      "throughput recovers without taking the system down.\n");
  return 0;
}
