// Micro-benchmarks of the simulation and tuning primitives
// (google-benchmark).  These are engineering benchmarks, not paper
// reproductions: they track the cost of the hot paths that determine how
// many tuning iterations per wall-clock second the harness sustains.
#include <benchmark/benchmark.h>

#include <malloc.h>  // malloc_usable_size (glibc)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "cluster/node.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/system_model.hpp"
#include "harmony/simplex.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/zipf.hpp"
#include "core/model_immutable.hpp"
#include "webstack/lru_cache.hpp"
#include "webstack/params.hpp"

// ---------------------------------------------------------------------------
// Live-heap accounting for the bytes-per-replica column (same hook as
// bench_scale: add/subtract malloc_usable_size of every live allocation).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::int64_t> g_live_bytes{0};

void track_bytes(void* p) {
  g_live_bytes.fetch_add(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
}
}  // namespace

// gcc pairs the inlined malloc/aligned_alloc in these replacements with
// the free() in the replaced delete and flags a mismatch; the pairing is
// by construction correct (glibc free accepts both).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    track_bytes(p);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) {
    track_bytes(p);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace ah;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.push(common::SimTime::micros(rng.uniform_int(0, 1'000'000)),
                 [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

// The pattern resource timeouts produce: most scheduled events are
// cancelled before they fire.  This is the case the generation-stamped
// lazy-cancel design targets (O(1) cancel, no hash-set bookkeeping).
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  std::vector<sim::EventId> ids;
  ids.reserve(n);
  for (auto _ : state) {
    sim::EventQueue queue;
    ids.clear();
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(queue.push(
          common::SimTime::micros(rng.uniform_int(0, 1'000'000)), [] {}));
    }
    // Cancel 7 of every 8 events (timeout armed, request completed first).
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 8 != 0) benchmark::DoNotOptimize(queue.cancel(ids[i]));
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int hops = 0;
    std::function<void()> hop = [&] {
      if (++hops < 10000) sim.schedule(common::SimTime::micros(1), hop);
    };
    sim.schedule(common::SimTime::micros(1), hop);
    sim.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_ResourceSubmitComplete(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Resource resource(sim, "cpu", {.servers = 2});
    for (int i = 0; i < 1000; ++i) {
      resource.submit(common::SimTime::micros(10), {});
    }
    sim.run();
    benchmark::DoNotOptimize(resource.completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_ResourceSubmitComplete);

void BM_LruCacheMixedOps(benchmark::State& state) {
  webstack::LruCache cache(8LL * 1024 * 1024);
  common::Rng rng(7);
  for (auto _ : state) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 4095));
    if (cache.lookup(key) < 0) cache.insert(key, 4096 + (key % 8192));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheMixedOps);

void BM_MixSampling(benchmark::State& state) {
  const auto& mix = tpcw::Mix::standard(tpcw::WorkloadKind::kShopping);
  common::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MixSampling);

void BM_ZipfSampling(benchmark::State& state) {
  tpcw::ZipfSampler zipf(10000, 0.8);
  common::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSampling);

void BM_SimplexStep(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  harmony::ParameterSpace space;
  for (std::size_t d = 0; d < dims; ++d) {
    space.add({"x" + std::to_string(d), 0, 100000, 50000});
  }
  harmony::SimplexTuner tuner(std::move(space));
  common::Rng rng(1);
  for (auto _ : state) {
    const auto point = tuner.ask();
    double cost = 0;
    for (const auto v : point) cost += static_cast<double>(v);
    tuner.tell(cost + rng.uniform());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimplexStep)->Arg(4)->Arg(23)->Arg(46);

void BM_FullTuningIteration(benchmark::State& state) {
  sim::Simulator sim;
  core::SystemModel system(sim, {});
  core::Experiment::Config config;
  config.browsers = 530;
  config.workload = tpcw::WorkloadKind::kShopping;
  core::Experiment experiment(system, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_iteration().wips);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullTuningIteration)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Parallel candidate evaluation: iterations/sec vs pool size.
// ---------------------------------------------------------------------------

struct ScalingSample {
  double iterations_per_sec = 0.0;
};
std::map<std::size_t, ScalingSample> g_scaling;  // threads -> rate

constexpr std::size_t kScalingReplicas = 8;
constexpr std::size_t kScalingBatch = 24;  // duplication simplex: 23 + 1

// A batch of in-bounds perturbations of the default 23-value configuration
// (the shape of the simplex exploration phase).
std::vector<harmony::PointI> scaling_batch() {
  const auto& catalogue = webstack::parameter_catalogue();
  const harmony::PointI defaults = webstack::default_values();
  std::vector<harmony::PointI> batch;
  for (std::size_t i = 0; i < kScalingBatch; ++i) {
    harmony::PointI point = defaults;
    const std::size_t d = i % point.size();
    const auto& spec = catalogue[d];
    const std::int64_t step =
        std::max<std::int64_t>(1, (spec.max_value - spec.min_value) / 8);
    point[d] = std::clamp(
        spec.default_value + static_cast<std::int64_t>(i / point.size() + 1) *
                                 step,
        spec.min_value, spec.max_value);
    batch.push_back(std::move(point));
  }
  return batch;
}

void BM_ParallelEvaluatorScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  common::ThreadPool pool(threads);
  core::ParallelEvaluator::Options options;
  options.experiment.browsers = 200;
  options.experiment.workload = tpcw::WorkloadKind::kShopping;
  options.experiment.iteration.warmup = common::SimTime::seconds(5.0);
  options.experiment.iteration.measure = common::SimTime::seconds(20.0);
  options.replicas = kScalingReplicas;
  core::ParallelEvaluator evaluator(pool, options);
  const auto batch = scaling_batch();
  const auto apply = [](core::SystemModel& system,
                        const harmony::PointI& values) {
    system.apply_values_all(values);
  };
  std::size_t evaluations = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto results = evaluator.evaluate(batch, apply);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    evaluations += results.size();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  if (seconds > 0.0) {
    g_scaling[threads].iterations_per_sec =
        static_cast<double>(evaluations) / seconds;
  }
}
BENCHMARK(BM_ParallelEvaluatorScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Bytes-per-replica: quantifies the sharing win of the immutable model
// layer in the same file as the thread-scaling it enables.  Duplicated is
// the pre-sharing replica layout (eager all-roles nodes, a private
// popularity CDF per workload); shared is the current default (lazy roles,
// one ModelImmutable amortised over the replicas).  Exact live-heap
// deltas — host-independent, meaningful even when the speedup column is
// not ("valid": false).
struct ReplicaBytes {
  double duplicated = 0.0;
  double shared = 0.0;
};

ReplicaBytes measure_replica_bytes() {
  core::Experiment::Config experiment;
  experiment.browsers = 200;  // the scaling benchmark's population
  const auto build_all = [&experiment](bool shared_layer) {
    core::SystemModel::Config topology;
    const std::int64_t before = g_live_bytes.load(std::memory_order_relaxed);
    std::shared_ptr<const core::ModelImmutable> layer;
    if (shared_layer) {
      layer = core::make_model_immutable(topology, experiment);
    } else {
      topology.eager_roles = true;
    }
    std::vector<std::unique_ptr<core::SystemModel>> systems;
    std::vector<std::unique_ptr<core::Experiment>> experiments;
    for (std::size_t r = 0; r < kScalingReplicas; ++r) {
      core::SystemModel::Config config = topology;
      config.shared = layer;
      systems.push_back(std::make_unique<core::SystemModel>(config));
      experiments.push_back(
          std::make_unique<core::Experiment>(*systems.back(), experiment));
    }
    const std::int64_t after = g_live_bytes.load(std::memory_order_relaxed);
    return static_cast<double>(after - before) /
           static_cast<double>(kScalingReplicas);
  };
  ReplicaBytes bytes;
  bytes.duplicated = build_all(/*shared_layer=*/false);
  bytes.shared = build_all(/*shared_layer=*/true);
  return bytes;
}

// Dumps the scaling sweep as BENCH_parallel.json so the repo records the
// threads -> iterations/sec trajectory alongside the reproduction CSVs.
void write_parallel_json() {
  if (g_scaling.empty()) return;  // benchmark filtered out
  const ReplicaBytes replica_bytes = measure_replica_bytes();
  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out == nullptr) return;
  const unsigned hw = std::thread::hardware_concurrency();
  const double base = g_scaling.count(1) != 0
                          ? g_scaling.at(1).iterations_per_sec
                          : 0.0;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"BM_ParallelEvaluatorScaling\",\n");
  std::fprintf(out, "  \"metric\": \"tuning iterations per second\",\n");
  std::fprintf(out, "  \"replicas\": %zu,\n", kScalingReplicas);
  std::fprintf(out, "  \"candidates_per_batch\": %zu,\n", kScalingBatch);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out, "  \"valid\": %s,\n", hw > 1 ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"wall-clock speedup is bounded by "
               "hardware_concurrency on the recording machine; valid=false "
               "means a single-core host, where speedup <= 1.0 is "
               "meaningless.  bytes_per_replica is host-independent\",\n");
  std::fprintf(out, "  \"bytes_per_replica\": {\n");
  std::fprintf(out,
               "    \"duplicated\": %.0f,\n    \"shared\": %.0f,\n"
               "    \"reduction_ratio\": %.2f\n  },\n",
               replica_bytes.duplicated, replica_bytes.shared,
               replica_bytes.shared > 0.0
                   ? replica_bytes.duplicated / replica_bytes.shared
                   : 0.0);
  std::fprintf(out, "  \"results\": [\n");
  std::size_t written = 0;
  for (const auto& [threads, sample] : g_scaling) {
    std::fprintf(
        out,
        "    {\"threads\": %zu, \"iterations_per_sec\": %.3f, "
        "\"speedup_vs_1_thread\": %.3f}%s\n",
        threads, sample.iterations_per_sec,
        base > 0.0 ? sample.iterations_per_sec / base : 0.0,
        ++written < g_scaling.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_parallel.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "*** WARNING: hardware_concurrency=%u on this host. ***\n"
                 "*** BM_ParallelEvaluatorScaling cannot show real     ***\n"
                 "*** speedup; BENCH_parallel.json will carry          ***\n"
                 "*** \"valid\": false.                                  ***\n",
                 std::thread::hardware_concurrency());
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_parallel_json();
  return 0;
}
