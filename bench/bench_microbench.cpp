// Micro-benchmarks of the simulation and tuning primitives
// (google-benchmark).  These are engineering benchmarks, not paper
// reproductions: they track the cost of the hot paths that determine how
// many tuning iterations per wall-clock second the harness sustains.
#include <benchmark/benchmark.h>

#include "cluster/node.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "harmony/simplex.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/zipf.hpp"
#include "webstack/lru_cache.hpp"

namespace {

using namespace ah;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.push(common::SimTime::micros(rng.uniform_int(0, 1'000'000)),
                 [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int hops = 0;
    std::function<void()> hop = [&] {
      if (++hops < 10000) sim.schedule(common::SimTime::micros(1), hop);
    };
    sim.schedule(common::SimTime::micros(1), hop);
    sim.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_ResourceSubmitComplete(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Resource resource(sim, "cpu", {.servers = 2});
    for (int i = 0; i < 1000; ++i) {
      resource.submit(common::SimTime::micros(10), {});
    }
    sim.run();
    benchmark::DoNotOptimize(resource.completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_ResourceSubmitComplete);

void BM_LruCacheMixedOps(benchmark::State& state) {
  webstack::LruCache cache(8LL * 1024 * 1024);
  common::Rng rng(7);
  for (auto _ : state) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 4095));
    if (cache.lookup(key) < 0) cache.insert(key, 4096 + (key % 8192));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheMixedOps);

void BM_MixSampling(benchmark::State& state) {
  const auto& mix = tpcw::Mix::standard(tpcw::WorkloadKind::kShopping);
  common::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MixSampling);

void BM_ZipfSampling(benchmark::State& state) {
  tpcw::ZipfSampler zipf(10000, 0.8);
  common::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSampling);

void BM_SimplexStep(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  harmony::ParameterSpace space;
  for (std::size_t d = 0; d < dims; ++d) {
    space.add({"x" + std::to_string(d), 0, 100000, 50000});
  }
  harmony::SimplexTuner tuner(std::move(space));
  common::Rng rng(1);
  for (auto _ : state) {
    const auto point = tuner.ask();
    double cost = 0;
    for (const auto v : point) cost += static_cast<double>(v);
    tuner.tell(cost + rng.uniform());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimplexStep)->Arg(4)->Arg(23)->Arg(46);

void BM_FullTuningIteration(benchmark::State& state) {
  sim::Simulator sim;
  core::SystemModel system(sim, {});
  core::Experiment::Config config;
  config.browsers = 530;
  config.workload = tpcw::WorkloadKind::kShopping;
  core::Experiment experiment(system, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_iteration().wips);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullTuningIteration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
