// Table 1: TPC-W benchmark workloads.
//
// Regenerates the paper's Table 1 by sampling each standard mix and
// printing specified vs generated percentages per web interaction, plus the
// Browse/Order aggregate rows.  This validates that the workload generator
// reproduces the mix the evaluation depends on.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "tpcw/mix.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  // Accepted for CLI uniformity; the three mixes sample one shared RNG
  // stream (the draws are order-dependent), so there is nothing to fan out
  // without changing the generated percentages.
  (void)bench::threads_flag(argc, argv);
  bench::banner("Table 1: TPC-W benchmark workloads",
                "Table 1 (workload mix definition)");

  constexpr int kDraws = 500000;
  common::Rng rng(1);

  // Sample all three mixes.
  double generated[tpcw::kWorkloadCount][tpcw::kInteractionCount] = {};
  for (int w = 0; w < tpcw::kWorkloadCount; ++w) {
    const auto& mix =
        tpcw::Mix::standard(static_cast<tpcw::WorkloadKind>(w));
    for (int i = 0; i < kDraws; ++i) {
      ++generated[w][static_cast<int>(mix.sample(rng))];
    }
    for (double& g : generated[w]) g = g / kDraws * 100.0;
  }

  common::TextTable table({"Web Interaction", "Browsing spec", "gen",
                           "Shopping spec", "gen", "Ordering spec", "gen"});
  auto row = [&](tpcw::Interaction interaction) {
    const int idx = static_cast<int>(interaction);
    std::vector<std::string> cells;
    cells.push_back(std::string(tpcw::interaction_name(interaction)));
    for (int w = 0; w < tpcw::kWorkloadCount; ++w) {
      const auto& mix =
          tpcw::Mix::standard(static_cast<tpcw::WorkloadKind>(w));
      cells.push_back(
          common::TextTable::percent(mix.weight(interaction), 2));
      cells.push_back(common::TextTable::num(generated[w][idx], 2) + "%");
    }
    table.add_row(cells);
  };

  // Browse aggregate first, as in the paper's layout.
  {
    std::vector<std::string> cells{"Browse"};
    for (int w = 0; w < tpcw::kWorkloadCount; ++w) {
      const auto& mix =
          tpcw::Mix::standard(static_cast<tpcw::WorkloadKind>(w));
      double gen_browse = 0.0;
      for (int i = 0; i < tpcw::kInteractionCount; ++i) {
        if (tpcw::is_browse(static_cast<tpcw::Interaction>(i))) {
          gen_browse += generated[w][i];
        }
      }
      cells.push_back(common::TextTable::percent(mix.browse_fraction(), 0));
      cells.push_back(common::TextTable::num(gen_browse, 2) + "%");
    }
    table.add_row(cells);
  }
  for (const auto interaction :
       {tpcw::Interaction::kHome, tpcw::Interaction::kNewProducts,
        tpcw::Interaction::kBestSellers, tpcw::Interaction::kProductDetail,
        tpcw::Interaction::kSearchRequest,
        tpcw::Interaction::kSearchResults}) {
    row(interaction);
  }
  {
    std::vector<std::string> cells{"Order"};
    for (int w = 0; w < tpcw::kWorkloadCount; ++w) {
      const auto& mix =
          tpcw::Mix::standard(static_cast<tpcw::WorkloadKind>(w));
      double gen_order = 0.0;
      for (int i = 0; i < tpcw::kInteractionCount; ++i) {
        if (!tpcw::is_browse(static_cast<tpcw::Interaction>(i))) {
          gen_order += generated[w][i];
        }
      }
      cells.push_back(
          common::TextTable::percent(1.0 - mix.browse_fraction(), 0));
      cells.push_back(common::TextTable::num(gen_order, 2) + "%");
    }
    table.add_row(cells);
  }
  for (const auto interaction :
       {tpcw::Interaction::kShoppingCart,
        tpcw::Interaction::kCustomerRegistration,
        tpcw::Interaction::kBuyRequest, tpcw::Interaction::kBuyConfirm,
        tpcw::Interaction::kOrderInquiry, tpcw::Interaction::kOrderDisplay,
        tpcw::Interaction::kAdminRequest,
        tpcw::Interaction::kAdminConfirm}) {
    row(interaction);
  }

  table.render(std::cout);
  return 0;
}
