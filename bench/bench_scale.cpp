// Cluster-scale benchmark: how the sharded per-line timelines and the
// shared immutable model layer change what one process can hold.
//
// Two questions, two sections:
//
//   * scale sweep   — events/sec and resident bytes per node as the
//                     cluster grows from 1 work line (8 nodes) to 128
//                     (1024 nodes), each size driven at 1/4/8 worker
//                     threads.  Per-line event order is thread-count
//                     independent, so every cell computes identical
//                     virtual histories; only the wall clock moves.
//   * sharing win   — resident bytes per replica when 8 replica systems
//                     are built the pre-sharding way (eager all-roles
//                     nodes, private tables) vs the current way (lazy
//                     roles, one shared ModelImmutable + popularity CDF).
//
// Resident bytes are tracked with a global operator-new/delete hook that
// adds/subtracts malloc_usable_size() of every live allocation — exact
// live-heap accounting, immune to allocator free-list retention.
//
// Results land in BENCH_scale.json.  Wall-clock speedup is bounded by the
// recording host: when hardware_concurrency <= 1 the thread sweep cannot
// show real scaling and the JSON is marked "valid": false.
//
// Usage: bench_scale [--smoke]
//   --smoke    two small sizes, one short iteration (registered as a
//              ctest); numbers are not meaningful.
#include <malloc.h>  // malloc_usable_size (glibc)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/model_immutable.hpp"
#include "core/system_model.hpp"

// ---------------------------------------------------------------------------
// Live-heap accounting (operator new/delete replacements).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::int64_t> g_live_bytes{0};

std::int64_t live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

void track(void* p) {
  g_live_bytes.fetch_add(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
}
}  // namespace

// gcc pairs the inlined malloc/aligned_alloc in these replacements with
// the free() in the replaced delete and flags a mismatch; the pairing is
// by construction correct (glibc free accepts both).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    track(p);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) {
    track(p);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace ah;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// 8 nodes per work line (3 proxy + 3 app + 2 db): the smallest line shape
// with redundancy in every tier, so 128 lines = 1024 nodes.
constexpr core::SystemModel::LineSpec kLineShape{3, 3, 2};
constexpr std::size_t kNodesPerLine = 8;
constexpr int kBrowsersPerLine = 100;

core::SystemModel::Config topology_for(std::size_t lines) {
  core::SystemModel::Config config;
  config.lines.assign(lines, kLineShape);
  return config;
}

core::Experiment::Config experiment_for(std::size_t lines) {
  core::Experiment::Config config;
  config.browsers = static_cast<int>(lines) * kBrowsersPerLine;
  config.iteration.warmup = common::SimTime::seconds(5.0);
  config.iteration.measure = common::SimTime::seconds(20.0);
  config.iteration.cooldown = common::SimTime::seconds(2.0);
  return config;
}

// ---------------------------------------------------------------------------
// Section 1: events/sec and bytes/node vs cluster size.
// ---------------------------------------------------------------------------

struct ThreadSample {
  std::size_t threads = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

struct ScalePoint {
  std::size_t lines = 0;
  std::size_t nodes = 0;
  std::int64_t model_bytes = 0;   // SystemModel + Experiment, fully built
  double bytes_per_node = 0.0;
  std::vector<ThreadSample> samples;
};

ScalePoint run_scale_point(std::size_t lines,
                           const std::vector<std::size_t>& thread_counts,
                           std::size_t iterations) {
  ScalePoint point;
  point.lines = lines;

  // Resident footprint: everything a fully wired model + workload holds.
  {
    const std::int64_t before = live_bytes();
    core::SystemModel system(topology_for(lines));
    core::Experiment experiment(system, experiment_for(lines));
    point.model_bytes = live_bytes() - before;
    point.nodes = system.cluster().node_count();
  }
  point.bytes_per_node = static_cast<double>(point.model_bytes) /
                         static_cast<double>(point.nodes);

  // Throughput: a fresh system per thread count runs the identical virtual
  // history (per-line order is thread-independent), so cells differ only
  // in wall clock.
  for (const std::size_t threads : thread_counts) {
    core::SystemModel system(topology_for(lines));
    std::unique_ptr<common::ThreadPool> pool;
    if (threads > 1) {
      pool = std::make_unique<common::ThreadPool>(threads);
      system.set_thread_pool(pool.get());
    }
    core::Experiment experiment(system, experiment_for(lines));
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
      experiment.run_iteration();
    }
    const double wall = seconds_since(start);
    system.set_thread_pool(nullptr);

    ThreadSample sample;
    sample.threads = threads;
    for (std::size_t li = 0; li < lines; ++li) {
      sample.events += system.line_simulator(li).events_executed();
    }
    sample.wall_seconds = wall;
    sample.events_per_sec =
        wall > 0.0 ? static_cast<double>(sample.events) / wall : 0.0;
    point.samples.push_back(sample);
  }
  return point;
}

// ---------------------------------------------------------------------------
// Section 2: bytes/replica, duplicated-model baseline vs shared layer.
// ---------------------------------------------------------------------------

struct SharingSample {
  std::int64_t total_bytes = 0;
  double bytes_per_replica = 0.0;
};

constexpr std::size_t kSharingReplicas = 8;

/// Builds `kSharingReplicas` single-line replica systems (SystemModel +
/// Experiment, the core::ParallelEvaluator unit) and returns the live-heap
/// cost.  `shared_layer` false reproduces the pre-sharing layout: every
/// node eagerly owns all three roles and every workload derives a private
/// popularity CDF.  True is the current default: lazy roles plus one
/// ModelImmutable (built inside the measured region, amortised over the
/// replicas — that is the honest marginal cost).
SharingSample build_replicas(bool shared_layer) {
  core::SystemModel::Config topology;  // default single line, 3 nodes
  const core::Experiment::Config experiment = experiment_for(1);

  const std::int64_t before = live_bytes();
  std::shared_ptr<const core::ModelImmutable> layer;
  if (shared_layer) {
    layer = core::make_model_immutable(topology, experiment);
  } else {
    topology.eager_roles = true;
  }
  std::vector<std::unique_ptr<core::SystemModel>> systems;
  std::vector<std::unique_ptr<core::Experiment>> experiments;
  for (std::size_t r = 0; r < kSharingReplicas; ++r) {
    core::SystemModel::Config config = topology;
    config.shared = layer;
    systems.push_back(std::make_unique<core::SystemModel>(config));
    experiments.push_back(
        std::make_unique<core::Experiment>(*systems.back(), experiment));
  }

  SharingSample sample;
  sample.total_bytes = live_bytes() - before;
  sample.bytes_per_replica = static_cast<double>(sample.total_bytes) /
                             static_cast<double>(kSharingReplicas);
  return sample;
}

// ---------------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------------

void write_json(const std::vector<ScalePoint>& points,
                const SharingSample& duplicated, const SharingSample& shared,
                std::size_t iterations, bool valid, bool smoke) {
  std::FILE* out = std::fopen("BENCH_scale.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scale.json\n");
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_scale\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"valid\": %s,\n", valid ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"events/sec cells are wall-clock bound; with "
               "hardware_concurrency <= 1 the thread sweep cannot show real "
               "scaling (valid=false).  bytes figures are exact live-heap "
               "deltas and host-independent\",\n");
  std::fprintf(out, "  \"line_shape\": \"3 proxy + 3 app + 2 db\",\n");
  std::fprintf(out, "  \"browsers_per_line\": %d,\n", kBrowsersPerLine);
  std::fprintf(out, "  \"iterations_per_cell\": %zu,\n", iterations);
  std::fprintf(out, "  \"scale\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(out,
                 "    {\"lines\": %zu, \"nodes\": %zu, "
                 "\"model_bytes\": %lld, \"bytes_per_node\": %.0f,\n",
                 p.lines, p.nodes, static_cast<long long>(p.model_bytes),
                 p.bytes_per_node);
    std::fprintf(out, "     \"threads\": [\n");
    const double base = p.samples.empty() ? 0.0 : p.samples[0].events_per_sec;
    for (std::size_t t = 0; t < p.samples.size(); ++t) {
      const ThreadSample& s = p.samples[t];
      std::fprintf(out,
                   "       {\"threads\": %zu, \"events\": %llu, "
                   "\"wall_seconds\": %.3f, \"events_per_sec\": %.0f, "
                   "\"speedup_vs_1_thread\": %.3f}%s\n",
                   s.threads, static_cast<unsigned long long>(s.events),
                   s.wall_seconds, s.events_per_sec,
                   base > 0.0 ? s.events_per_sec / base : 0.0,
                   t + 1 < p.samples.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"sharing\": {\n");
  std::fprintf(out, "    \"replicas\": %zu,\n", kSharingReplicas);
  std::fprintf(out, "    \"topology\": \"1 line x (1 proxy + 1 app + 1 db)\",\n");
  std::fprintf(out,
               "    \"duplicated\": {\"layout\": \"eager roles, private "
               "tables (pre-sharing)\", \"total_bytes\": %lld, "
               "\"bytes_per_replica\": %.0f},\n",
               static_cast<long long>(duplicated.total_bytes),
               duplicated.bytes_per_replica);
  std::fprintf(out,
               "    \"shared\": {\"layout\": \"lazy roles, one "
               "ModelImmutable + popularity CDF\", \"total_bytes\": %lld, "
               "\"bytes_per_replica\": %.0f},\n",
               static_cast<long long>(shared.total_bytes),
               shared.bytes_per_replica);
  std::fprintf(out, "    \"reduction_ratio\": %.2f\n",
               shared.bytes_per_replica > 0.0
                   ? duplicated.bytes_per_replica / shared.bytes_per_replica
                   : 0.0);
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_scale.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const bool valid = hw > 1;
  if (!valid) {
    std::fprintf(stderr,
                 "*** WARNING: hardware_concurrency=%u on this host. ***\n"
                 "*** The 1/4/8-thread events/sec cells cannot show real  ***\n"
                 "*** scaling; BENCH_scale.json carries \"valid\": false.   "
                 "***\n",
                 hw);
  }

  const std::vector<std::size_t> line_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 8, 32, 128};
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 4, 8};
  const std::size_t iterations = smoke ? 1 : 2;

  std::printf("bench_scale%s\n", smoke ? " (--smoke)" : "");
  std::printf("== scale sweep: %zu nodes/line, %d browsers/line ==\n",
              kNodesPerLine, kBrowsersPerLine);
  std::vector<ScalePoint> points;
  for (const std::size_t lines : line_counts) {
    points.push_back(run_scale_point(lines, thread_counts, iterations));
    const ScalePoint& p = points.back();
    std::printf("  %4zu lines (%4zu nodes): %8.1f KiB/node |", p.lines,
                p.nodes, p.bytes_per_node / 1024.0);
    for (const ThreadSample& s : p.samples) {
      std::printf("  t=%zu %9.0f ev/s", s.threads, s.events_per_sec);
    }
    std::printf("\n");
  }

  std::printf("== sharing win: %zu replicas, duplicated vs shared ==\n",
              kSharingReplicas);
  const SharingSample duplicated = build_replicas(/*shared_layer=*/false);
  const SharingSample shared = build_replicas(/*shared_layer=*/true);
  std::printf(
      "  duplicated %10.1f KiB/replica | shared %10.1f KiB/replica | "
      "%.2fx reduction\n",
      duplicated.bytes_per_replica / 1024.0,
      shared.bytes_per_replica / 1024.0,
      shared.bytes_per_replica > 0.0
          ? duplicated.bytes_per_replica / shared.bytes_per_replica
          : 0.0);

  write_json(points, duplicated, shared, iterations, valid, smoke);
  return 0;
}
