// Fault-recovery benchmark: goodput trajectory through a scripted crash.
//
// Drives a 2-proxy/2-app/2-db cluster under the Shopping mix with fault
// tolerance enabled, crashes one db node mid-run (the tier that actually
// bottlenecks this mix, so the dip is visible) and restarts it later,
// and samples WIPS in fixed buckets across the whole timeline.  Reported:
//
//   * healthy baseline WIPS        — mean bucket WIPS before the crash
//   * detection time               — crash until the victim is marked down
//   * outage goodput ratio         — mean outage-bucket WIPS / baseline
//   * recovery time                — restart until a bucket is back within
//                                    90 % of baseline
//
// The scenario is fully scripted (sim::FaultPlan) and single-timeline, so
// every number is deterministic for a given seed.  Results land in
// BENCH_fault_recovery.json.
//
// Usage: bench_fault_recovery [--smoke] [--metrics <path>] [--trace <path>]
//   --smoke    compressed timeline for the ctest smoke run.
//   --metrics  write the end-of-run registry snapshot (JSON).
//   --trace    write the run's span CSV (proxy/app/db hops).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/system_model.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "tpcw/metrics.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/workload.hpp"

namespace {

using namespace ah;

struct Scenario {
  double bucket_s = 10.0;
  double crash_at_s = 120.0;
  double restart_at_s = 300.0;
  double end_s = 480.0;
};

struct Bucket {
  double start_s = 0.0;
  double wips = 0.0;
  double p95_ms = 0.0;
  bool victim_marked_up = true;
};

void print_latency(std::FILE* out, const char* key, const ah::obs::Histogram& h,
                   const char* suffix) {
  std::fprintf(out,
               "  \"%s\": {\"count\": %llu, \"p50_ms\": %.3f, "
               "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f}%s\n",
               key, static_cast<unsigned long long>(h.count()),
               static_cast<double>(h.p50_us()) / 1e3,
               static_cast<double>(h.p95_us()) / 1e3,
               static_cast<double>(h.p99_us()) / 1e3,
               static_cast<double>(h.max_us()) / 1e3, suffix);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::string_flag(argc, argv, "--metrics");
  const std::string trace_path = bench::string_flag(argc, argv, "--trace");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Scenario scenario;
  if (smoke) {
    scenario.bucket_s = 5.0;
    scenario.crash_at_s = 30.0;
    scenario.restart_at_s = 60.0;
    scenario.end_s = 100.0;
  }

  sim::Simulator sim;
  core::SystemModel::Config topology;
  topology.lines = {core::SystemModel::LineSpec{2, 2, 2}};
  core::SystemModel system(sim, topology);
  system.enable_fault_tolerance({});
  obs::TraceRecorder trace;
  if (!trace_path.empty()) system.set_trace_recorder(&trace);

  const auto victim =
      system.cluster().tier(cluster::TierKind::kDb).members()[1];
  const std::string plan_text =
      "crash:" + std::to_string(victim) + "@" +
      std::to_string(scenario.crash_at_s) + "; restart:" +
      std::to_string(victim) + "@" + std::to_string(scenario.restart_at_s);
  const auto plan = sim::FaultPlan::parse(plan_text);
  if (!plan.has_value()) {
    std::fprintf(stderr, "internal: bad fault plan '%s'\n", plan_text.c_str());
    return 1;
  }
  system.install_fault_plan(*plan);

  tpcw::WipsMeter meter;
  tpcw::Workload::Config workload_config;
  workload_config.browsers = smoke ? 120 : 900;
  tpcw::Workload workload(sim, system.frontend(0),
                          &tpcw::Mix::standard(tpcw::WorkloadKind::kShopping),
                          meter, workload_config);
  workload.start();

  std::printf("bench_fault_recovery%s: crash db node %u @%.0fs, "
              "restart @%.0fs\n",
              smoke ? " (--smoke)" : "", victim, scenario.crash_at_s,
              scenario.restart_at_s);

  std::vector<Bucket> buckets;
  double detection_s = -1.0;
  // Latency distributions merged across bucket windows: whole run plus the
  // healthy (pre-crash) and outage (crash..restart) phases separately.
  obs::Histogram latency_all;
  obs::Histogram latency_healthy;
  obs::Histogram latency_outage;
  for (double t = 0.0; t < scenario.end_s; t += scenario.bucket_s) {
    meter.arm(common::SimTime::seconds(t),
              common::SimTime::seconds(t + scenario.bucket_s));
    sim.run_until(common::SimTime::seconds(t + scenario.bucket_s));
    Bucket bucket;
    bucket.start_s = t;
    bucket.wips = meter.wips();
    const obs::Histogram& window = meter.latency_histogram();
    bucket.p95_ms = static_cast<double>(window.p95_us()) / 1e3;
    latency_all.merge(window);
    if (t + scenario.bucket_s <= scenario.crash_at_s) {
      latency_healthy.merge(window);
    } else if (t >= scenario.crash_at_s &&
               t + scenario.bucket_s <= scenario.restart_at_s) {
      latency_outage.merge(window);
    }
    bucket.victim_marked_up = system.cluster().node(victim).marked_up();
    if (detection_s < 0.0 && !bucket.victim_marked_up) {
      // Bucket granularity; the true mark-down is inside this bucket.
      detection_s = t + scenario.bucket_s - scenario.crash_at_s;
    }
    buckets.push_back(bucket);
  }

  // Baseline: all full buckets before the crash, skipping the first two
  // (cache warm-up).
  double baseline = 0.0;
  int baseline_count = 0;
  for (const Bucket& bucket : buckets) {
    if (bucket.start_s + scenario.bucket_s > scenario.crash_at_s) break;
    if (bucket.start_s < 2.0 * scenario.bucket_s) continue;
    baseline += bucket.wips;
    ++baseline_count;
  }
  if (baseline_count > 0) baseline /= baseline_count;

  double outage = 0.0;
  int outage_count = 0;
  for (const Bucket& bucket : buckets) {
    if (bucket.start_s < scenario.crash_at_s ||
        bucket.start_s + scenario.bucket_s > scenario.restart_at_s) {
      continue;
    }
    outage += bucket.wips;
    ++outage_count;
  }
  if (outage_count > 0) outage /= outage_count;

  double recovery_s = -1.0;
  for (const Bucket& bucket : buckets) {
    if (bucket.start_s < scenario.restart_at_s) continue;
    if (baseline > 0.0 && bucket.wips >= 0.9 * baseline) {
      recovery_s = bucket.start_s + scenario.bucket_s - scenario.restart_at_s;
      break;
    }
  }

  std::printf("  baseline %.1f WIPS, outage %.1f WIPS (%.0f%%), "
              "detected in %.1fs, recovered in %.1fs\n",
              baseline, outage,
              baseline > 0.0 ? 100.0 * outage / baseline : 0.0, detection_s,
              recovery_s);

  std::FILE* out = std::fopen("BENCH_fault_recovery.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault_recovery.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_fault_recovery\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"topology\": \"1 line x (2 proxy + 2 app + 2 db)\",\n");
  std::fprintf(out, "  \"browsers\": %d,\n", workload_config.browsers);
  std::fprintf(out, "  \"fault_plan\": \"%s\",\n", plan_text.c_str());
  std::fprintf(out, "  \"baseline_wips\": %.2f,\n", baseline);
  std::fprintf(out, "  \"outage_wips\": %.2f,\n", outage);
  std::fprintf(out, "  \"outage_goodput_ratio\": %.3f,\n",
               baseline > 0.0 ? outage / baseline : 0.0);
  std::fprintf(out, "  \"detection_seconds\": %.1f,\n", detection_s);
  std::fprintf(out, "  \"recovery_seconds\": %.1f,\n", recovery_s);
  print_latency(out, "latency", latency_all, ",");
  print_latency(out, "latency_healthy", latency_healthy, ",");
  print_latency(out, "latency_outage", latency_outage, ",");
  std::fprintf(out, "  \"buckets\": [\n");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    std::fprintf(out,
                 "    {\"t\": %.0f, \"wips\": %.2f, \"p95_ms\": %.2f, "
                 "\"victim_up\": %s}%s\n",
                 buckets[i].start_s, buckets[i].wips, buckets[i].p95_ms,
                 buckets[i].victim_marked_up ? "true" : "false",
                 i + 1 < buckets.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fault_recovery.json\n");

  if (!metrics_path.empty() && !system.metrics().write_json(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  if (!trace_path.empty() && !trace.write_csv(trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }

  // Smoke sanity: the scenario must actually have degraded and recovered.
  if (detection_s < 0.0) {
    std::fprintf(stderr, "FAIL: victim never marked down\n");
    return 1;
  }
  if (recovery_s < 0.0) {
    std::fprintf(stderr, "FAIL: goodput never recovered to 90%% baseline\n");
    return 1;
  }
  return 0;
}
