// Figure 3: possible outcomes for a simplex method step.
//
// The paper's Figure 3 illustrates the step types of the Nelder-Mead
// kernel.  This bench exercises the integer-adapted implementation on
// reference objectives and reports (a) how often each step outcome occurs
// and (b) the convergence trace, demonstrating the "slips down the valley"
// behaviour the paper describes.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "harmony/simplex.hpp"

namespace {

using ah::harmony::ParameterSpace;
using ah::harmony::PointI;
using ah::harmony::SimplexTuner;

ParameterSpace box(std::int64_t lo, std::int64_t hi, std::int64_t def,
                   std::size_t dims) {
  ParameterSpace space;
  for (std::size_t d = 0; d < dims; ++d) {
    space.add({"x" + std::to_string(d), lo, hi, def});
  }
  return space;
}

struct Trace {
  std::map<SimplexTuner::Phase, int> phase_counts;
  std::vector<double> best_costs;
  double final_best = 0.0;
};

template <typename Objective>
Trace run(SimplexTuner& tuner, Objective objective, std::size_t evals) {
  Trace trace;
  for (std::size_t i = 0; i < evals; ++i) {
    ++trace.phase_counts[tuner.phase()];
    tuner.tell(objective(tuner.ask()));
    trace.best_costs.push_back(tuner.best_cost());
  }
  trace.final_best = tuner.best_cost();
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t threads = bench::threads_flag(argc, argv);
  bench::banner("Figure 3: simplex method step outcomes",
                "Figure 3 (Nelder-Mead kernel of the Adaptation Controller)");

  struct Case {
    const char* name;
    std::size_t dims;
    std::function<double(const PointI&)> objective;
  };
  const std::vector<Case> cases{
      {"sphere-3d (minimum at 100,100,100)", 3,
       [](const PointI& p) {
         double sum = 0;
         for (const auto v : p) {
           const double d = static_cast<double>(v) - 100.0;
           sum += d * d;
         }
         return sum;
       }},
      {"rosenbrock-2d (valley search)", 2,
       [](const PointI& p) {
         const double x = static_cast<double>(p[0]) / 100.0;
         const double y = static_cast<double>(p[1]) / 100.0;
         return 100.0 * (y - x * x) * (y - x * x) + (1.0 - x) * (1.0 - x);
       }},
      {"ridge-5d (anisotropic)", 5,
       [](const PointI& p) {
         double sum = 0;
         for (std::size_t d = 0; d < p.size(); ++d) {
           const double v = static_cast<double>(p[d]) - 50.0;
           sum += (static_cast<double>(d) + 1.0) * v * v;
         }
         return sum;
       }},
  };

  // Each objective is an independent tuner instance: fan out when asked.
  std::vector<Trace> traces(cases.size());
  bench::fan_out(threads, cases.size(), [&](std::size_t i) {
    SimplexTuner tuner(box(-500, 500, 400, cases[i].dims));
    traces[i] = run(tuner, cases[i].objective, 200 * cases[i].dims);
  });

  common::TextTable table({"objective", "evals", "init", "reflect", "expand",
                           "contract", "shrink", "best cost"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& test_case = cases[i];
    const auto& trace = traces[i];
    auto count = [&](SimplexTuner::Phase phase) {
      const auto it = trace.phase_counts.find(phase);
      return it == trace.phase_counts.end() ? 0 : it->second;
    };
    table.add_row({test_case.name,
                   std::to_string(200 * test_case.dims),
                   std::to_string(count(SimplexTuner::Phase::kInit)),
                   std::to_string(count(SimplexTuner::Phase::kReflect)),
                   std::to_string(count(SimplexTuner::Phase::kExpand)),
                   std::to_string(count(SimplexTuner::Phase::kContract)),
                   std::to_string(count(SimplexTuner::Phase::kShrink)),
                   common::TextTable::num(trace.final_best, 3)});
    bench::write_series_csv(
        std::string("fig3_") + (test_case.dims == 2 ? "rosenbrock"
                                : test_case.dims == 3 ? "sphere" : "ridge"),
        trace.best_costs);
  }
  table.render(std::cout);
  std::printf("\nAll step types of Figure 3 (reflection, contraction,\n"
              "multiple contraction) plus expansion are exercised; the\n"
              "declining 'best cost' column shows the simplex slipping down\n"
              "the valley toward the minimum.\n");
  return 0;
}
