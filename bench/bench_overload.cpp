// Overload benchmark: goodput-vs-p95 tradeoff under a flash crowd with a
// correlated failure, admission controller off vs on.
//
// One scripted scenario (sim::ScenarioPlan) drives every run: the arrival
// rate swells to 3x through a flash window, and mid-flash a "rack" holding
// one app and one db node crashes and later restarts.  The same seed and
// timeline are replayed once with admission control disabled and once per
// p95 target, so the only difference between curve points is the control
// law.  Shed requests fall back to stale cache copies (ShedMode::
// kServeStale), so shedding trades freshness — not goodput — for latency.
//
// Reported per curve point (BENCH_overload.json):
//
//   * flash goodput (WIPS)       — mean bucket WIPS inside the flash window
//   * flash p95 (ms)             — browser-observed, merged flash buckets
//   * shed / stale fractions     — how much the controller refused, and how
//                                  much of that was absorbed by stale serves
//   * min admit fraction         — deepest cut the control loop made
//
// Deterministic: single timeline, fixed seed, everything scripted.
//
// Usage: bench_overload [--smoke] [--metrics <path>]
//   --smoke    compressed timeline for the ctest smoke run.
//   --metrics  write the controller-on end-of-run registry snapshot (JSON).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/system_model.hpp"
#include "obs/histogram.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "tpcw/metrics.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/workload.hpp"

namespace {

using namespace ah;

struct Timeline {
  double bucket_s = 10.0;
  double flash_t0 = 120.0;
  double flash_t1 = 300.0;
  double flash_peak = 3.0;
  double rack_t0 = 160.0;
  double rack_t1 = 240.0;
  double end_s = 360.0;
  int browsers = 900;
};

struct Bucket {
  double start_s = 0.0;
  double wips = 0.0;
  double p95_ms = 0.0;
  double admit_fraction = 1.0;
};

struct RunResult {
  double target_ms = 0.0;  // 0 = controller off
  std::vector<Bucket> buckets;
  double baseline_wips = 0.0;  // pre-flash, warm buckets
  double flash_wips = 0.0;     // mean bucket WIPS inside the flash window
  double flash_p95_ms = 0.0;   // merged flash-window distribution
  double peak_wips = 0.0;      // best single bucket anywhere in the run
  double shed_fraction = 0.0;
  double stale_fraction = 0.0;  // stale serves / shed requests
  double min_admit = 1.0;
};

RunResult run_once(const Timeline& tl, double target_ms, bool write_metrics,
                   const std::string& metrics_path) {
  sim::Simulator sim;
  core::SystemModel::Config topology;
  topology.lines = {core::SystemModel::LineSpec{2, 2, 2}};
  core::SystemModel system(sim, topology);
  system.enable_fault_tolerance({});
  if (target_ms > 0.0) {
    core::SystemModel::OverloadControlConfig control;
    control.admission.target_p95 =
        common::SimTime::millis(static_cast<std::int64_t>(target_ms));
    control.shed_mode = webstack::ProxyServer::ShedMode::kServeStale;
    system.enable_admission_control(control);
  }

  // The correlated failure domain: one app and one db node share the rack.
  const auto app_victim =
      system.cluster().tier(cluster::TierKind::kApp).members()[1];
  const auto db_victim =
      system.cluster().tier(cluster::TierKind::kDb).members()[1];
  char plan_text[160];
  std::snprintf(plan_text, sizeof(plan_text),
                "flash:%.1f@%.0f-%.0f; rack:%u+%u@%.0f-%.0f", tl.flash_peak,
                tl.flash_t0, tl.flash_t1, app_victim, db_victim, tl.rack_t0,
                tl.rack_t1);
  std::string error;
  const auto plan = sim::ScenarioPlan::parse(plan_text, &error);
  if (!plan.has_value()) {
    std::fprintf(stderr, "internal: bad scenario '%s': %s\n", plan_text,
                 error.c_str());
    std::exit(1);
  }
  system.install_scenario(*plan);

  tpcw::WipsMeter meter;
  tpcw::Workload::Config workload_config;
  workload_config.browsers = tl.browsers;
  // A reloading user keeps the original issue timestamp, so a fast-failed
  // shed that eventually succeeds records its whole back-off as latency and
  // swamps the p95 the controller is actually holding.  Shed responses are
  // final here: the stale path absorbs cacheable traffic, failures count
  // against goodput.
  workload_config.retry.max_retries = 0;
  tpcw::Workload workload(sim, system.frontend(0),
                          &tpcw::Mix::standard(tpcw::WorkloadKind::kShopping),
                          meter, workload_config);
  workload.set_arrival_modulation(&system.scenario()->arrival);
  workload.apply_mix_schedule(system.scenario()->mix_changes);
  workload.start();

  RunResult result;
  result.target_ms = target_ms;
  obs::Histogram flash_latency;
  double baseline = 0.0, flash = 0.0;
  int baseline_count = 0, flash_count = 0;
  for (double t = 0.0; t < tl.end_s; t += tl.bucket_s) {
    meter.arm(common::SimTime::seconds(t),
              common::SimTime::seconds(t + tl.bucket_s));
    sim.run_until(common::SimTime::seconds(t + tl.bucket_s));
    Bucket bucket;
    bucket.start_s = t;
    bucket.wips = meter.wips();
    bucket.p95_ms =
        static_cast<double>(meter.latency_histogram().p95_us()) / 1e3;
    ctrl::AdmissionController* admission = system.line_admission(0);
    bucket.admit_fraction =
        admission != nullptr ? admission->admit_fraction() : 1.0;
    result.min_admit = std::min(result.min_admit, bucket.admit_fraction);
    result.peak_wips = std::max(result.peak_wips, bucket.wips);
    // Warm pre-flash buckets (skip two for cache warm-up) vs flash window.
    if (t >= 2.0 * tl.bucket_s && t + tl.bucket_s <= tl.flash_t0) {
      baseline += bucket.wips;
      ++baseline_count;
    } else if (t >= tl.flash_t0 && t + tl.bucket_s <= tl.flash_t1) {
      flash += bucket.wips;
      ++flash_count;
      flash_latency.merge(meter.latency_histogram());
    }
    result.buckets.push_back(bucket);
  }
  if (baseline_count > 0) result.baseline_wips = baseline / baseline_count;
  if (flash_count > 0) result.flash_wips = flash / flash_count;
  result.flash_p95_ms = static_cast<double>(flash_latency.p95_us()) / 1e3;

  const obs::Registry& metrics = system.metrics();
  const std::uint64_t admitted = metrics.counter_value("ctrl.admitted");
  const std::uint64_t shed = metrics.counter_value("ctrl.shed");
  const std::uint64_t stale = metrics.counter_value("proxy.shed_stale");
  if (admitted + shed > 0) {
    result.shed_fraction =
        static_cast<double>(shed) / static_cast<double>(admitted + shed);
  }
  if (shed > 0) {
    result.stale_fraction =
        static_cast<double>(stale) / static_cast<double>(shed);
  }
  if (write_metrics && !metrics_path.empty() &&
      !system.metrics().write_json(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::string_flag(argc, argv, "--metrics");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Timeline tl;
  if (smoke) {
    tl.bucket_s = 5.0;
    tl.flash_t0 = 30.0;
    tl.flash_t1 = 80.0;
    tl.rack_t0 = 40.0;
    tl.rack_t1 = 65.0;
    tl.end_s = 100.0;
    tl.browsers = 600;
  }

  // Curve: controller off (0), then tightening p95 targets.
  const std::vector<double> targets =
      smoke ? std::vector<double>{0.0, 400.0}
            : std::vector<double>{0.0, 1500.0, 800.0, 400.0};

  std::printf("bench_overload%s: flash x%.1f @%.0f-%.0fs, rack outage "
              "@%.0f-%.0fs, %d browsers\n",
              smoke ? " (--smoke)" : "", tl.flash_peak, tl.flash_t0,
              tl.flash_t1, tl.rack_t0, tl.rack_t1, tl.browsers);

  std::vector<RunResult> runs;
  for (double target : targets) {
    // The tightest target's registry snapshot is the interesting one.
    const bool last = target == targets.back();
    runs.push_back(run_once(tl, target, last, metrics_path));
    const RunResult& r = runs.back();
    std::printf("  target %6.0fms: flash %.1f WIPS, p95 %.0fms, shed %.1f%%, "
                "admit floor %.2f\n",
                r.target_ms, r.flash_wips, r.flash_p95_ms,
                100.0 * r.shed_fraction, r.min_admit);
  }

  std::FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_overload\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"topology\": \"1 line x (2 proxy + 2 app + 2 db)\",\n");
  std::fprintf(out, "  \"browsers\": %d,\n", tl.browsers);
  std::fprintf(out, "  \"flash\": {\"peak\": %.1f, \"t0\": %.0f, "
                    "\"t1\": %.0f},\n",
               tl.flash_peak, tl.flash_t0, tl.flash_t1);
  std::fprintf(out, "  \"rack_outage\": {\"t0\": %.0f, \"t1\": %.0f},\n",
               tl.rack_t0, tl.rack_t1);
  std::fprintf(out, "  \"curve\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(out,
                 "    {\"target_ms\": %.0f, \"flash_goodput_wips\": %.2f, "
                 "\"flash_p95_ms\": %.2f, \"baseline_wips\": %.2f, "
                 "\"peak_wips\": %.2f, \"shed_fraction\": %.4f, "
                 "\"stale_fraction\": %.4f, \"min_admit\": %.3f}%s\n",
                 r.target_ms, r.flash_wips, r.flash_p95_ms, r.baseline_wips,
                 r.peak_wips, r.shed_fraction, r.stale_fraction, r.min_admit,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(out, "    {\"target_ms\": %.0f, \"buckets\": [\n",
                 r.target_ms);
    for (std::size_t b = 0; b < r.buckets.size(); ++b) {
      std::fprintf(out,
                   "      {\"t\": %.0f, \"wips\": %.2f, \"p95_ms\": %.2f, "
                   "\"admit\": %.3f}%s\n",
                   r.buckets[b].start_s, r.buckets[b].wips,
                   r.buckets[b].p95_ms, r.buckets[b].admit_fraction,
                   b + 1 < r.buckets.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_overload.json\n");

  // Sanity gates.  Smoke checks wiring; the full run checks the tradeoff
  // claim itself: with the controller on, the flash-window p95 stays near
  // the target while goodput stays within 85% of the uncontrolled peak.
  const RunResult& off = runs.front();
  if (off.flash_wips <= 0.0 || off.flash_p95_ms <= 0.0) {
    std::fprintf(stderr, "FAIL: controller-off run produced no flash data\n");
    return 1;
  }
  for (const RunResult& r : runs) {
    if (r.target_ms == 0.0) continue;
    if (r.shed_fraction <= 0.0) {
      std::fprintf(stderr, "FAIL: target %.0fms never shed under overload\n",
                   r.target_ms);
      return 1;
    }
  }
  if (!smoke) {
    // The tradeoff claim: some operating point both holds its p95 target
    // (within 25% — the controller sees proxy latency, the meter sees the
    // browser's) and keeps >= 85% of the goodput the uncontrolled system
    // managed through the same flash.  Tighter points on the curve are
    // allowed to trade goodput away; that is the curve's whole story.
    bool tradeoff_met = false;
    for (const RunResult& r : runs) {
      if (r.target_ms == 0.0 || off.flash_p95_ms <= r.target_ms) continue;
      if (r.flash_p95_ms <= 1.25 * r.target_ms &&
          r.flash_wips >= 0.85 * off.flash_wips) {
        tradeoff_met = true;
      }
    }
    if (!tradeoff_met) {
      std::fprintf(stderr,
                   "FAIL: no target held p95 while keeping 85%% of the "
                   "uncontrolled flash goodput (%.1f WIPS, p95 %.0fms)\n",
                   off.flash_wips, off.flash_p95_ms);
      return 1;
    }
  }
  return 0;
}
