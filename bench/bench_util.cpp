#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/csv.hpp"
#include "common/fmt.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "webstack/params.hpp"

namespace ah::bench {

namespace {

core::Experiment::Config experiment_config(const StudySpec& spec) {
  core::Experiment::Config config;
  config.browsers = spec.browsers;
  config.workload = spec.workload;
  config.seed = spec.seed;
  return config;
}

}  // namespace

int browsers_for(tpcw::WorkloadKind workload) {
  switch (workload) {
    case tpcw::WorkloadKind::kBrowsing: return 530;
    case tpcw::WorkloadKind::kShopping: return 680;
    case tpcw::WorkloadKind::kOrdering: return 530;
  }
  return kBrowsersPerLine;
}

namespace {

std::size_t parse_threads(const char* text) {
  std::size_t parsed = 0;
  std::size_t consumed = 0;
  try {
    parsed = std::stoul(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || text[consumed] != '\0') {
    std::fprintf(stderr,
                 "error: --threads requires a non-negative integer, got "
                 "'%s'\n",
                 text);
    std::exit(2);
  }
  return parsed;
}

}  // namespace

std::size_t threads_flag(int& argc, char** argv) {
  std::size_t threads = 1;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads requires a value\n");
        std::exit(2);
      }
      threads = parse_threads(argv[++i]);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = parse_threads(arg + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return threads;
}

std::string string_flag(int& argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", name);
        std::exit(2);
      }
      value = argv[++i];
    } else if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
      value = arg + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

void fan_out(std::size_t threads, std::size_t n,
             const std::function<void(std::size_t)>& fn) {
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  common::ThreadPool pool(threads);
  pool.parallel_for(n, fn);
}

StudyResult run_study(const StudySpec& spec) {
  StudyResult result;
  {
    sim::Simulator sim;
    core::SystemModel system(sim, spec.topology);
    core::Experiment experiment(system, experiment_config(spec));
    core::TuningDriver driver(system, experiment,
                              {spec.method, spec.session});
    result.tuning = driver.run(spec.iterations);
  }
  {
    // Baseline: identical system, no tuning, a few iterations to settle.
    sim::Simulator sim;
    core::SystemModel system(sim, spec.topology);
    core::Experiment experiment(system, experiment_config(spec));
    common::RunningStats stats;
    for (std::size_t i = 0; i < 5; ++i) {
      const auto iteration = experiment.run_iteration();
      if (i >= 2) stats.add(iteration.wips);
    }
    result.baseline_wips = stats.mean();
  }
  return result;
}

double measure_configuration(const StudySpec& spec,
                             const harmony::PointI& configuration,
                             std::size_t iterations,
                             std::size_t warmup_iters) {
  sim::Simulator sim;
  core::SystemModel system(sim, spec.topology);
  core::Experiment experiment(system, experiment_config(spec));
  core::TuningDriver driver(system, experiment, {spec.method, spec.session});
  driver.apply_configuration(configuration);
  common::RunningStats stats;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto iteration = experiment.run_iteration();
    if (i >= warmup_iters) stats.add(iteration.wips);
  }
  return stats.mean();
}

std::string write_series_csv(const std::string& name,
                             const std::vector<double>& series) {
  const std::string path = "harmony_bench_" + name + ".csv";
  common::CsvWriter csv(path, {"iteration", "wips"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    csv.write_row({static_cast<double>(i), series[i]});
  }
  return path;
}

std::size_t iterations_to_quality(const std::vector<double>& series,
                                  double baseline, double target,
                                  double quality, std::size_t window) {
  const double threshold = baseline + quality * (target - baseline);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const std::size_t from = i + 1 >= window ? i + 1 - window : 0;
    common::RunningStats stats;
    for (std::size_t j = from; j <= i; ++j) stats.add(series[j]);
    if (stats.count() >= std::min(window, i + 1) &&
        stats.mean() >= threshold) {
      return i;
    }
  }
  return series.size();
}

harmony::PointI tuned_reference_configuration() {
  webstack::ProxyParams proxy;
  proxy.cache_mem = 24LL * 1024 * 1024;
  proxy.maximum_object_size_in_memory = 64LL * 1024;
  webstack::AppParams app;
  app.min_processors = 32;
  app.max_processors = 128;
  app.accept_count = 150;
  app.buffer_size = 8192;
  app.ajp_min_processors = 32;
  app.ajp_max_processors = 160;
  app.ajp_accept_count = 300;
  webstack::DbParams db;
  db.binlog_cache_size = 284672;
  db.max_connections = 700;
  db.table_cache = 900;
  db.thread_concurrency = 80;
  db.net_buffer_length = 34816;
  return webstack::to_values(proxy, app, db);
}

void banner(const std::string& title, const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_reference.c_str());
  std::printf("  (Chung & Hollingsworth, \"Automated Cluster-Based Web\n");
  std::printf("   Service Performance Tuning\", HPDC 2004)\n");
  std::printf("==============================================================\n\n");
}

}  // namespace ah::bench
