// Shared machinery for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper.  They
// all follow the same recipe: build a SystemModel + Experiment, optionally
// run a TuningDriver for N iterations, then print a table in the shape of
// the original and dump the raw per-iteration series as CSV next to the
// binary (harmony_bench_*.csv) for offline re-plotting.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"
#include "tpcw/mix.hpp"

namespace ah::bench {

/// Default emulated-browser population for single-work-line studies
/// (chosen so the default configuration sits at the knee of the bottleneck
/// tier; see DESIGN.md calibration notes).
inline constexpr int kBrowsersPerLine = 530;

/// Per-mix emulated-browser population.  TPC-W scales the EB population to
/// the mix under test; these values put each mix's *default* configuration
/// at the saturation depth the paper reports (browsing and ordering bind
/// hard, shopping sits at the knee of the proxy disk path).
[[nodiscard]] int browsers_for(tpcw::WorkloadKind workload);

/// Extracts a `--threads N` / `--threads=N` flag from argv (removing it so
/// positional arguments keep their usual indices) and returns N.  Default 1
/// (sequential, paper-exact ordering); 0 = hardware concurrency.  Bench
/// drivers use it to fan independent table cells out over a thread pool —
/// each cell's own driver stays sequential, so printed numbers and CSVs are
/// identical at any thread count.
std::size_t threads_flag(int& argc, char** argv);

/// Extracts a string-valued `--name VALUE` / `--name=VALUE` flag from argv
/// (removing it, like threads_flag).  Returns the empty string when the
/// flag is absent.  Used for the telemetry opt-ins: `--metrics <path>`
/// (registry snapshot) and `--trace <path>` (span CSV).
std::string string_flag(int& argc, char** argv, const char* name);

/// Runs fn(0) .. fn(n-1): in order on the calling thread when threads == 1,
/// otherwise fanned out over a pool of `threads` workers (0 = hardware
/// concurrency).  Callers pass independent cells only, so results are the
/// same either way; exceptions propagate (first index wins).
void fan_out(std::size_t threads, std::size_t n,
             const std::function<void(std::size_t)>& fn);

/// One self-contained tuning study.
struct StudySpec {
  core::SystemModel::Config topology{};
  tpcw::WorkloadKind workload = tpcw::WorkloadKind::kShopping;
  core::TuningMethod method = core::TuningMethod::kDuplication;
  std::size_t iterations = 200;
  int browsers = kBrowsersPerLine;
  std::uint64_t seed = 2004;
  harmony::SessionOptions session{};
};

struct StudyResult {
  core::TuningResult tuning;
  /// Mean WIPS of a fresh run under the default configuration (baseline).
  double baseline_wips = 0.0;
};

/// Runs a tuning study from scratch (fresh simulator) and separately
/// measures the default-configuration baseline on an identical system.
StudyResult run_study(const StudySpec& spec);

/// Measures mean WIPS of a fixed configuration vector (layout must match
/// `method` on this topology) over `iterations`, discarding `warmup_iters`.
double measure_configuration(const StudySpec& spec,
                             const harmony::PointI& configuration,
                             std::size_t iterations = 6,
                             std::size_t warmup_iters = 2);

/// Writes a WIPS series as CSV ("iteration,wips") into the working
/// directory; returns the path.
std::string write_series_csv(const std::string& name,
                             const std::vector<double>& series);

/// Prints the standard bench banner.
void banner(const std::string& title, const std::string& paper_reference);

/// First iteration whose trailing `window`-iteration mean reaches
/// baseline + quality x (target - baseline); the "iterations" figure of
/// Table 4 (how quickly a method delivers most of its eventual gain).
/// Returns the series length when never reached.
std::size_t iterations_to_quality(const std::vector<double>& series,
                                  double baseline, double target,
                                  double quality = 0.9,
                                  std::size_t window = 5);

/// A reference well-tuned 23-value configuration (Table-3 "Ordering"
/// column spirit): bigger caches, large thread pools, large DB buffers.
/// Used by experiments that study something other than parameter tuning
/// (e.g. Fig 7 reconfiguration, which the paper runs with tuning active).
harmony::PointI tuned_reference_configuration();

}  // namespace ah::bench
