// Ablation: tuning kernels.
//
// The Adaptation Controller's kernel is the integer-adapted Nelder-Mead
// simplex (paper §II.B).  This ablation pits it against two baselines on
// the browsing mix:
//
//   random search       — uniform lattice sampling (any tuner must beat it)
//   coordinate descent  — automated one-knob-at-a-time hand-tuning, the
//                         strategy the paper argues cannot cope with a
//                         coupled multi-tier system
//
// All kernels get the same iteration budget and the same validation pass.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t threads = bench::threads_flag(argc, argv);
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 150;
  bench::banner("Ablation: tuning kernels (simplex vs baselines)",
                "Section II.B (the Nelder-Mead kernel choice)");

  struct Row {
    const char* name;
    harmony::TuningKernel kernel;
  };
  const std::vector<Row> rows{
      {"Nelder-Mead simplex (paper)", harmony::TuningKernel::kSimplex},
      {"coordinate descent", harmony::TuningKernel::kCoordinateDescent},
      {"random search", harmony::TuningKernel::kRandomSearch},
  };

  // Independent per-kernel studies: fan out with --threads > 1.
  std::vector<bench::StudyResult> studies(rows.size());
  for (const auto& row : rows) {
    std::printf("running %s (%zu iterations)...\n", row.name, iterations);
  }
  bench::fan_out(threads, rows.size(), [&](std::size_t i) {
    bench::StudySpec spec;
    spec.workload = tpcw::WorkloadKind::kBrowsing;
    spec.browsers = bench::browsers_for(tpcw::WorkloadKind::kBrowsing);
    spec.iterations = iterations;
    spec.session.kernel = rows[i].kernel;
    studies[i] = bench::run_study(spec);
  });

  common::TextTable table({"kernel", "validated WIPS", "mean WIPS (2nd half)",
                           "stddev (2nd half)", "iters to 90% of gain"});
  double baseline = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& study = studies[i];
    baseline = study.baseline_wips;
    const std::size_t reached = bench::iterations_to_quality(
        study.tuning.wips_series, study.baseline_wips,
        study.tuning.validated_wips);
    table.add_row(
        {row.name, common::TextTable::num(study.tuning.validated_wips, 1),
         common::TextTable::num(
             study.tuning.mean_wips(iterations / 2, iterations), 1),
         common::TextTable::num(
             study.tuning.stddev_wips(iterations / 2, iterations), 1),
         reached >= iterations ? "> " + std::to_string(iterations)
                               : std::to_string(reached)});
    bench::write_series_csv(std::string("kernels_") + row.name,
                            study.tuning.wips_series);
  }
  table.render(std::cout);
  std::printf("\n(default configuration baseline: %.1f WIPS)\n", baseline);
  std::printf(
      "\nExpected shape: the simplex reaches the highest validated WIPS;\n"
      "random search wastes most iterations on poor configurations (low\n"
      "mean, high deviation); coordinate descent improves steadily but is\n"
      "slower to combine knobs that must move together (threads + accept\n"
      "queue + DB buffers).\n");
  return 0;
}
