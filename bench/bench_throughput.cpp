// End-to-end simulation-throughput benchmark.
//
// The quantity that bounds how many Harmony iterations the harness can
// afford is simulated-requests-per-second of wall clock: every tuning
// iteration replays 1200 s of TPC-W traffic against n+1 simplex candidate
// configurations (paper §III).  This bench drives a full 3-tier cluster
// (SystemModel + Workload) under the three standard mixes and reports
//
//   * events/sec        — discrete events executed per wall-clock second
//   * requests/sec      — simulated web interactions per wall-clock second
//   * wall s per sim s  — how much wall clock one simulated second costs
//
// plus two micro sections (Zipf sampling, LRU cache churn) and a
// per-request heap-allocation count measured with a global operator-new
// hook, so the three hot-path optimisations this bench was built to track
// (zero-allocation request path, slab-backed LRU, O(1) Zipf sampling) each
// have a number.  Results land in BENCH_throughput.json in the working
// directory, with the pre-optimisation baseline embedded for comparison.
//
// Usage: bench_throughput [--smoke] [--metrics <path>] [--trace <path>]
//   --smoke    seconds-long run exercising the full wiring + JSON emission
//              (registered as a ctest); numbers are not meaningful.
//   --metrics  write the Shopping run's full registry snapshot (JSON).
//   --trace    write the Shopping run's span CSV (proxy/app/db hops).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/system_model.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tpcw/metrics.hpp"
#include "tpcw/mix.hpp"
#include "tpcw/workload.hpp"
#include "tpcw/zipf.hpp"
#include "webstack/lru_cache.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (requests-path allocation audit).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace ah;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Pre-optimisation baseline, re-measured on the recording host at the seed
// of this PR (binary-heap EventQueue, per-message NIC scheduling; the
// request path, LRU and Zipf paths already carry the previous PR's
// optimisations).  Median of three full runs per mix.  Re-measured numbers
// land in "after"; keeping the baseline in-source makes the JSON
// self-contained and the speedup claims auditable.
// ---------------------------------------------------------------------------

struct EndToEndNumbers {
  double events_per_sec = 0.0;
  double requests_per_sec = 0.0;
  double wall_per_sim_second = 0.0;
};

struct BaselineNumbers {
  double zipf_samples_per_sec = 0.0;
  double lru_ops_per_sec = 0.0;
  double event_queue_ops_per_sec = 0.0;
  double allocs_per_request = 0.0;
  EndToEndNumbers mixes[3];  // Browsing, Shopping, Ordering
};

constexpr BaselineNumbers kBaseline = {
    /*zipf_samples_per_sec=*/76.5e6,
    /*lru_ops_per_sec=*/18.0e6,
    /*event_queue_ops_per_sec=*/3.3e6,
    /*allocs_per_request=*/0.0,  // zero-allocation path landed one PR earlier
    {
        /*Browsing=*/{3341611, 292774, 0.000359},
        /*Shopping=*/{2952276, 189098, 0.000789},
        /*Ordering=*/{2906820, 109984, 0.001184},
    },
};

// ---------------------------------------------------------------------------
// Section 1: Zipf sampling throughput.
// ---------------------------------------------------------------------------

double bench_zipf(std::uint64_t draws) {
  tpcw::ZipfSampler zipf(10000, 0.8);
  common::Rng rng(3);
  std::uint64_t sink = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < draws; ++i) sink += zipf.sample(rng);
  const double elapsed = seconds_since(start);
  // Keep the loop from being optimised out.
  if (sink == 0xdeadbeef) std::printf("!");
  return static_cast<double>(draws) / elapsed;
}

// ---------------------------------------------------------------------------
// Section 2: LRU cache churn (the proxy memory-cache access pattern).
// ---------------------------------------------------------------------------

double bench_lru(std::uint64_t ops) {
  webstack::LruCache cache(8LL * 1024 * 1024);
  common::Rng rng(7);
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 4095));
    if (cache.lookup(key) < 0) cache.insert(key, 4096 + (key % 8192));
  }
  const double elapsed = seconds_since(start);
  if (cache.hits() == 0xdeadbeef) std::printf("!");
  return static_cast<double>(ops) / elapsed;
}

// ---------------------------------------------------------------------------
// Section 3: BM_EventQueueMixed — scheduler push/pop/cancel throughput.
//
// Drives sim::EventQueue directly with the operation blend the cluster
// simulation produces: a steady population of pending events (think timers,
// service completions, propagation latencies), every pop followed by a
// replacement push at a simulation-realistic delta, and the router's
// timeout pattern (a timeout armed per request, ~90 % cancelled before it
// fires).  Deltas are drawn from a fixed-seed mixture so consecutive runs
// exercise identical schedules; the reported rate counts individual queue
// operations (push + pop + cancel).  This isolates scheduler regressions
// from the end-to-end number, which also moves with workload-model changes.
// ---------------------------------------------------------------------------

double bench_event_queue(std::uint64_t iterations) {
  sim::EventQueue q;
  common::Rng rng(11);
  common::SimTime now = common::SimTime::zero();

  const auto draw_delta = [&rng]() -> common::SimTime {
    const double u = rng.uniform();
    if (u < 0.45) {  // CPU/disk/NIC service completion
      return common::SimTime::micros(10 + rng.uniform_int(0, 1990));
    }
    if (u < 0.70) {  // propagation latency + queueing
      return common::SimTime::micros(200 + rng.uniform_int(0, 4800));
    }
    // Think time: exponential, mean 7 s (TPC-W).
    return common::SimTime::seconds(-7.0 * std::log(1.0 - rng.uniform()));
  };

  // Steady-state population: one pending event per emulated browser.
  for (int i = 0; i < 530; ++i) q.push(draw_delta(), [] {});

  std::vector<sim::EventId> timeouts;
  std::size_t timeout_head = 0;
  std::uint64_t ops = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    now = q.next_time();
    q.pop();
    q.push(now + draw_delta(), [] {});
    ops += 2;
    if (i % 3 == 0) {
      timeouts.push_back(q.push(now + common::SimTime::millis(500), [] {}));
      ++ops;
      if (timeout_head < timeouts.size() && rng.uniform() < 0.9) {
        q.cancel(timeouts[timeout_head++]);
        ++ops;
      }
      if (timeout_head > 4096) {  // compact the cancelled prefix
        timeouts.erase(timeouts.begin(),
                       timeouts.begin() +
                           static_cast<std::ptrdiff_t>(timeout_head));
        timeout_head = 0;
      }
    }
  }
  const double elapsed = seconds_since(start);
  if (q.live_size() == 0xdeadbeef) std::printf("!");
  return static_cast<double>(ops) / elapsed;
}

// ---------------------------------------------------------------------------
// Sections 4+5: full 3-tier cluster under a TPC-W mix.
// ---------------------------------------------------------------------------

/// In-window latency percentiles (exact-rank, from the meter's histogram).
struct LatencySummary {
  std::uint64_t count = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
};

struct ClusterRun {
  EndToEndNumbers numbers;
  LatencySummary latency;
  double allocs_per_request = 0.0;
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
};

ClusterRun run_cluster(tpcw::WorkloadKind kind, double warmup_s,
                       double measure_s, bool nic_batching = false,
                       const std::string& metrics_path = std::string(),
                       const std::string& trace_path = std::string()) {
  sim::Simulator sim;
  core::SystemModel system(sim, {});
  system.network().set_destination_batching(nic_batching);
  obs::TraceRecorder trace;
  if (!trace_path.empty()) system.set_trace_recorder(&trace);
  tpcw::WipsMeter meter;
  tpcw::Workload::Config config;
  config.browsers = 530;
  tpcw::Workload workload(sim, system.frontend(0), &tpcw::Mix::standard(kind),
                          meter, config);
  meter.arm(common::SimTime::seconds(warmup_s),
            common::SimTime::seconds(warmup_s + measure_s));
  workload.start();
  sim.run_until(common::SimTime::seconds(warmup_s));

  const std::uint64_t events_before = sim.events_executed();
  const std::uint64_t issued_before = workload.interactions_issued();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  sim.run_until(common::SimTime::seconds(warmup_s + measure_s));
  const double wall = seconds_since(start);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  ClusterRun run;
  const obs::Histogram& hist = meter.latency_histogram();
  run.latency = {hist.count(), hist.p50_us(), hist.p95_us(), hist.p99_us(),
                 hist.max_us()};
  if (!metrics_path.empty() && !system.metrics().write_json(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty() && !trace.write_csv(trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
  }
  run.events = sim.events_executed() - events_before;
  run.requests = workload.interactions_issued() - issued_before;
  run.sim_seconds = measure_s;
  run.wall_seconds = wall;
  run.numbers.events_per_sec = static_cast<double>(run.events) / wall;
  run.numbers.requests_per_sec = static_cast<double>(run.requests) / wall;
  run.numbers.wall_per_sim_second = wall / measure_s;
  run.allocs_per_request =
      run.requests > 0
          ? static_cast<double>(allocs) / static_cast<double>(run.requests)
          : 0.0;
  return run;
}

void print_end_to_end(const char* name, const ClusterRun& run) {
  std::printf(
      "  %-9s %9.0f events/s  %7.0f req/s  %.4f wall-s per sim-s  "
      "%.2f allocs/req  p50/p95/p99 %.1f/%.1f/%.1f ms  "
      "(%llu events, %llu requests, %.1f sim-s in %.2f s)\n",
      name, run.numbers.events_per_sec, run.numbers.requests_per_sec,
      run.numbers.wall_per_sim_second, run.allocs_per_request,
      static_cast<double>(run.latency.p50_us) / 1e3,
      static_cast<double>(run.latency.p95_us) / 1e3,
      static_cast<double>(run.latency.p99_us) / 1e3,
      static_cast<unsigned long long>(run.events),
      static_cast<unsigned long long>(run.requests), run.sim_seconds,
      run.wall_seconds);
}

void write_json(double zipf_rate, double lru_rate, double queue_rate,
                const ClusterRun (&runs)[3], const ClusterRun (&batched)[3],
                bool smoke) {
  std::FILE* out = std::fopen("BENCH_throughput.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_throughput.json\n");
    return;
  }
  static const char* kMixNames[3] = {"Browsing", "Shopping", "Ordering"};
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_throughput\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"single-timeline end-to-end throughput; "
               "absolute rates depend on the recording host (shared "
               "container, no isolation), ratios before/after are the "
               "meaningful signal\",\n");
  std::fprintf(out, "  \"topology\": \"1 line x (1 proxy + 1 app + 1 db)\",\n");
  std::fprintf(out, "  \"browsers\": 530,\n");
  std::fprintf(out, "  \"before\": {\n");
  std::fprintf(out,
               "    \"provenance\": \"median of three full runs at the seed "
               "of this PR on the same host: binary-heap EventQueue, "
               "per-message NIC scheduling\",\n");
  std::fprintf(out, "    \"zipf_samples_per_sec\": %.0f,\n",
               kBaseline.zipf_samples_per_sec);
  std::fprintf(out, "    \"lru_ops_per_sec\": %.0f,\n",
               kBaseline.lru_ops_per_sec);
  std::fprintf(out, "    \"event_queue_ops_per_sec\": %.0f,\n",
               kBaseline.event_queue_ops_per_sec);
  std::fprintf(out, "    \"request_path_allocs_per_request\": %.1f,\n",
               kBaseline.allocs_per_request);
  std::fprintf(out, "    \"end_to_end\": [\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(out,
                 "      {\"mix\": \"%s\", \"events_per_sec\": %.0f, "
                 "\"requests_per_sec\": %.0f, "
                 "\"wall_s_per_sim_s\": %.4f}%s\n",
                 kMixNames[i], kBaseline.mixes[i].events_per_sec,
                 kBaseline.mixes[i].requests_per_sec,
                 kBaseline.mixes[i].wall_per_sim_second, i < 2 ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n");
  std::fprintf(out, "  \"after\": {\n");
  std::fprintf(out,
               "    \"provenance\": \"hierarchical calendar-queue "
               "EventQueue, per-message NIC scheduling (destination "
               "batching off = default)\",\n");
  std::fprintf(out, "    \"zipf_samples_per_sec\": %.0f,\n", zipf_rate);
  std::fprintf(out, "    \"lru_ops_per_sec\": %.0f,\n", lru_rate);
  std::fprintf(out, "    \"event_queue_ops_per_sec\": %.0f,\n", queue_rate);
  std::fprintf(out, "    \"request_path_allocs_per_request\": %.2f,\n",
               runs[1].allocs_per_request);
  std::fprintf(out, "    \"end_to_end\": [\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(out,
                 "      {\"mix\": \"%s\", \"events_per_sec\": %.0f, "
                 "\"requests_per_sec\": %.0f, \"wall_s_per_sim_s\": %.4f, "
                 "\"events\": %llu, \"requests\": %llu, "
                 "\"allocs_per_request\": %.2f, "
                 "\"latency\": {\"count\": %llu, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f}}%s\n",
                 kMixNames[i], runs[i].numbers.events_per_sec,
                 runs[i].numbers.requests_per_sec,
                 runs[i].numbers.wall_per_sim_second,
                 static_cast<unsigned long long>(runs[i].events),
                 static_cast<unsigned long long>(runs[i].requests),
                 runs[i].allocs_per_request,
                 static_cast<unsigned long long>(runs[i].latency.count),
                 static_cast<double>(runs[i].latency.p50_us) / 1e3,
                 static_cast<double>(runs[i].latency.p95_us) / 1e3,
                 static_cast<double>(runs[i].latency.p99_us) / 1e3,
                 static_cast<double>(runs[i].latency.max_us) / 1e3,
                 i < 2 ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n");
  std::fprintf(out, "  \"after_batched\": {\n");
  std::fprintf(out,
               "    \"provenance\": \"same build with NIC destination "
               "batching enabled (opt-in): identical delivery latencies "
               "from fewer simulator events; equal-time tie order is not "
               "byte-stable, so golden runs keep it off\",\n");
  std::fprintf(out, "    \"end_to_end\": [\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(out,
                 "      {\"mix\": \"%s\", \"events_per_sec\": %.0f, "
                 "\"requests_per_sec\": %.0f, \"wall_s_per_sim_s\": %.4f, "
                 "\"events\": %llu, "
                 "\"events_vs_unbatched\": %.3f}%s\n",
                 kMixNames[i], batched[i].numbers.events_per_sec,
                 batched[i].numbers.requests_per_sec,
                 batched[i].numbers.wall_per_sim_second,
                 static_cast<unsigned long long>(batched[i].events),
                 runs[i].events > 0
                     ? static_cast<double>(batched[i].events) /
                           static_cast<double>(runs[i].events)
                     : 0.0,
                 i < 2 ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n");
  std::fprintf(out, "  \"speedup\": {\n");
  const bool have_baseline = kBaseline.zipf_samples_per_sec > 0.0;
  std::fprintf(out, "    \"zipf\": %.3f,\n",
               have_baseline ? zipf_rate / kBaseline.zipf_samples_per_sec
                             : 0.0);
  std::fprintf(out, "    \"lru\": %.3f,\n",
               have_baseline ? lru_rate / kBaseline.lru_ops_per_sec : 0.0);
  std::fprintf(out, "    \"event_queue\": %.3f,\n",
               kBaseline.event_queue_ops_per_sec > 0.0
                   ? queue_rate / kBaseline.event_queue_ops_per_sec
                   : 0.0);
  std::fprintf(out, "    \"end_to_end_events_per_sec\": [");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(out, "%.3f%s",
                 kBaseline.mixes[i].events_per_sec > 0.0
                     ? runs[i].numbers.events_per_sec /
                           kBaseline.mixes[i].events_per_sec
                     : 0.0,
                 i < 2 ? ", " : "");
  }
  std::fprintf(out, "]\n  }\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_throughput.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = bench::string_flag(argc, argv, "--metrics");
  const std::string trace_path = bench::string_flag(argc, argv, "--trace");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::uint64_t zipf_draws = smoke ? 200'000 : 40'000'000;
  const std::uint64_t lru_ops = smoke ? 200'000 : 20'000'000;
  // Full mode replays one paper tuning iteration (1200 s) per mix.
  const double warmup_s = smoke ? 5.0 : 30.0;
  const double measure_s = smoke ? 10.0 : 1200.0;

  std::printf("bench_throughput%s\n", smoke ? " (--smoke)" : "");
  std::printf("== micro: Zipf sampling (n=10000, alpha=0.8) ==\n");
  const double zipf_rate = bench_zipf(zipf_draws);
  std::printf("  %.1f M samples/s\n", zipf_rate / 1e6);

  std::printf("== micro: LRU cache mixed lookup/insert ==\n");
  const double lru_rate = bench_lru(lru_ops);
  std::printf("  %.1f M ops/s\n", lru_rate / 1e6);

  std::printf("== micro: BM_EventQueueMixed push/pop/cancel ==\n");
  const std::uint64_t queue_iters = smoke ? 200'000 : 10'000'000;
  const double queue_rate = bench_event_queue(queue_iters);
  std::printf("  %.1f M queue-ops/s\n", queue_rate / 1e6);

  std::printf(
      "== end-to-end: 3-tier cluster, 530 browsers, %.0f sim-s measured ==\n",
      measure_s);
  ClusterRun runs[3];
  static const tpcw::WorkloadKind kKinds[3] = {tpcw::WorkloadKind::kBrowsing,
                                               tpcw::WorkloadKind::kShopping,
                                               tpcw::WorkloadKind::kOrdering};
  static const char* kNames[3] = {"Browsing", "Shopping", "Ordering"};
  for (int i = 0; i < 3; ++i) {
    // Telemetry opt-ins attach to the Shopping run (the canonical mix).
    const bool telemetry = i == 1;
    runs[i] = run_cluster(kKinds[i], warmup_s, measure_s,
                          /*nic_batching=*/false,
                          telemetry ? metrics_path : std::string(),
                          telemetry ? trace_path : std::string());
    print_end_to_end(kNames[i], runs[i]);
  }

  std::printf(
      "== end-to-end, NIC destination batching enabled (opt-in) ==\n");
  ClusterRun batched[3];
  for (int i = 0; i < 3; ++i) {
    batched[i] = run_cluster(kKinds[i], warmup_s, measure_s,
                             /*nic_batching=*/true);
    print_end_to_end(kNames[i], batched[i]);
  }

  write_json(zipf_rate, lru_rate, queue_rate, runs, batched, smoke);
  return 0;
}
