// Figure 5: tuning responsiveness to the changing workloads.
//
// The system starts on the default configuration; the TPC-W mix switches
// every `phase` iterations (browsing -> ordering -> shopping -> browsing)
// while one Harmony server keeps tuning continuously.  The paper's claim:
// only a few iterations are needed to adapt after each switch.
//
// Two variants run back to back:
//   continuous   — one session tunes straight through the switches
//                  (the paper's Figure 5 setup);
//   with memory  — a harmony::ConfigurationMemory remembers the best
//                  configuration per workload signature; on each switch the
//                  session is re-seeded from the remembered configuration
//                  (the "Prediction and Adaptation" warm-start).
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harmony/memory.hpp"

namespace {

using namespace ah;

struct PhaseRow {
  std::string workload;
  double head = 0.0;  // first 5 iterations after the switch
  double tail = 0.0;  // rest of the phase
  double best = 0.0;
};

std::vector<PhaseRow> run_variant(bool with_memory, std::size_t phase_len,
                                  std::size_t phases,
                                  std::vector<double>* series) {
  const tpcw::WorkloadKind rotation[] = {
      tpcw::WorkloadKind::kBrowsing, tpcw::WorkloadKind::kOrdering,
      tpcw::WorkloadKind::kShopping, tpcw::WorkloadKind::kBrowsing};

  sim::Simulator sim;
  core::SystemModel system(sim, {});
  core::Experiment::Config experiment_config;
  experiment_config.browsers = bench::kBrowsersPerLine;
  experiment_config.workload = rotation[0];
  core::Experiment experiment(system, experiment_config);
  core::TuningDriver driver(system, experiment,
                            {core::TuningMethod::kDuplication, {}});
  harmony::ConfigurationMemory memory(0.10);

  auto signature = [](tpcw::WorkloadKind kind) {
    return harmony::ConfigurationMemory::Signature{
        tpcw::Mix::standard(kind).browse_fraction()};
  };

  std::vector<PhaseRow> rows;
  for (std::size_t p = 0; p < phases; ++p) {
    const auto workload = rotation[p % 4];
    if (p > 0) {
      const auto previous = rotation[(p - 1) % 4];
      if (with_memory) {
        // Remember where the previous phase ended up; re-seed from memory
        // if this workload (or a close one) has been seen before.
        memory.remember(signature(previous),
                        driver.server().best_configuration(0),
                        driver.server().best_performance(0),
                        std::string(tpcw::workload_name(previous)));
        experiment.set_workload(workload);
        if (const auto entry = memory.recall(signature(workload))) {
          driver.restart_sessions(entry->configuration);
        }
      } else {
        experiment.set_workload(workload);
      }
    }

    PhaseRow row;
    row.workload = std::string(tpcw::workload_name(workload));
    common::RunningStats head;
    common::RunningStats tail;
    for (std::size_t i = 0; i < phase_len; ++i) {
      const auto result = driver.run(1, /*validation_iterations=*/0);
      const double wips = result.wips_series.front();
      if (series != nullptr) series->push_back(wips);
      (i < 5 ? head : tail).add(wips);
      row.best = std::max(row.best, wips);
    }
    row.head = head.mean();
    row.tail = tail.mean();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = ah::bench::threads_flag(argc, argv);
  const std::size_t phase_len = argc > 1 ? std::stoul(argv[1]) : 100;
  const std::size_t phases = argc > 2 ? std::stoul(argv[2]) : 4;
  bench::banner("Figure 5: responsiveness to changing workloads",
                "Figure 5 (Section III.A) + warm-start extension");

  // The plain and warm-start variants are independent end-to-end runs:
  // compute both (fanned out with --threads > 1), then print in order.
  std::vector<double> series[2];
  std::vector<PhaseRow> rows[2];
  ah::bench::fan_out(threads, 2, [&](std::size_t v) {
    rows[v] = run_variant(/*with_memory=*/v == 1, phase_len, phases,
                          &series[v]);
  });

  for (const bool with_memory : {false, true}) {
    std::printf("%s:\n", with_memory
                             ? "with configuration memory (warm-start)"
                             : "continuous tuning (paper Figure 5)");
    const auto& variant_rows = rows[with_memory ? 1 : 0];
    common::TextTable table({"phase", "workload", "first 5 iters (WIPS)",
                             "rest of phase (WIPS)", "phase best"});
    for (std::size_t p = 0; p < variant_rows.size(); ++p) {
      table.add_row({std::to_string(p), variant_rows[p].workload,
                     common::TextTable::num(variant_rows[p].head, 1),
                     common::TextTable::num(variant_rows[p].tail, 1),
                     common::TextTable::num(variant_rows[p].best, 1)});
    }
    table.render(std::cout);
    bench::write_series_csv(with_memory ? "fig5_series_memory"
                                        : "fig5_series",
                            series[with_memory ? 1 : 0]);
    std::printf("\n");
  }
  std::printf(
      "Responsiveness: after each workload switch the 'first 5 iters'\n"
      "column is already close to the 'rest of phase' column — the tuner\n"
      "adapts within a few iterations, as in the paper's Figure 5.  The\n"
      "warm-start variant additionally re-seeds the search from the\n"
      "remembered configuration when a workload returns (final phase).\n");
  return 0;
}
