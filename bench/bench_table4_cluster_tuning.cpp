// Table 4: performance of different methods for cluster tuning.
//
// Four strategies on a six-server cluster (2 proxies, 2 app servers,
// 2 databases; the partitioned variant splits the same hardware into two
// work lines of 1/1/1):
//
//   None                   the default configuration throughout
//   Default method         one Harmony session over all 46 per-node params
//   Parameter duplication  one 23-parameter session, values copied per tier
//   Parameter partitioning one 23-parameter session per work line
//
// Reported per the paper's Table 4: WIPS of the best configuration,
// standard deviation over the second 100 iterations, improvement over no
// tuning, and iterations until convergence.  Expected shape: duplication
// converges fastest, partitioning has the lowest deviation, all tuned
// methods end close together.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t threads = bench::threads_flag(argc, argv);
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 200;
  bench::banner("Table 4: cluster tuning methods",
                "Table 4 (Section III.B)");

  auto monolithic = [] {
    core::SystemModel::Config config;
    config.lines = {core::SystemModel::LineSpec{2, 2, 2}};
    return config;
  };
  auto partitioned = [] {
    core::SystemModel::Config config;
    config.lines = {core::SystemModel::LineSpec{1, 1, 1},
                    core::SystemModel::LineSpec{1, 1, 1}};
    return config;
  };

  struct Row {
    core::TuningMethod method;
    core::SystemModel::Config topology;
  };
  const std::vector<Row> rows{
      {core::TuningMethod::kNone, monolithic()},
      {core::TuningMethod::kDefault, monolithic()},
      {core::TuningMethod::kDuplication, monolithic()},
      {core::TuningMethod::kPartitioning, partitioned()},
  };

  // Each row is a self-contained study, so with --threads > 1 whole cells
  // fan out over a pool.  Cell drivers stay sequential either way, so the
  // printed numbers and CSVs are identical at any thread count.
  struct Cell {
    bench::StudyResult study;
    double best_wips = 0.0;
  };
  std::vector<Cell> cells(rows.size());
  const auto run_cell = [&](std::size_t i) {
    const auto& row = rows[i];
    bench::StudySpec spec;
    spec.topology = row.topology;
    spec.method = row.method;
    spec.iterations = iterations;
    spec.browsers = 2 * bench::browsers_for(tpcw::WorkloadKind::kShopping);
    spec.workload = tpcw::WorkloadKind::kShopping;
    cells[i].study = bench::run_study(spec);
    // Best-configuration WIPS re-measured on a fresh system.
    cells[i].best_wips =
        row.method == core::TuningMethod::kNone
            ? cells[i].study.baseline_wips
            : bench::measure_configuration(
                  spec, cells[i].study.tuning.best_configuration);
  };
  for (const auto& row : rows) {
    std::printf("running '%s' (%zu iterations)...\n",
                std::string(core::tuning_method_name(row.method)).c_str(),
                iterations);
  }
  bench::fan_out(threads, rows.size(), run_cell);

  double none_wips = 0.0;
  common::TextTable table({"Tuning method", "WIPS", "Std dev",
                           "Improvement", "Iterations"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& study = cells[i].study;
    const double best_wips = cells[i].best_wips;
    if (row.method == core::TuningMethod::kNone) none_wips = best_wips;

    // Stddev over the second half of the tuning run (paper: second 100).
    const double stddev = study.tuning.stddev_wips(iterations / 2, iterations);

    std::string improvement = "-";
    if (row.method != core::TuningMethod::kNone && none_wips > 0.0) {
      improvement =
          common::TextTable::percent((best_wips - none_wips) / none_wips, 1);
    }
    // "Iterations": how quickly the method reaches 90% of its eventual
    // gain (the paper's column tracks time-to-tuned, where duplication's
    // 23-dimension space beats the default method's 46 dimensions).
    std::string converged_text = "-";
    if (row.method != core::TuningMethod::kNone) {
      const std::size_t reached = bench::iterations_to_quality(
          study.tuning.wips_series, study.baseline_wips, best_wips);
      converged_text = reached >= iterations
                           ? ("> " + std::to_string(iterations))
                           : std::to_string(reached);
    }
    table.add_row({std::string(core::tuning_method_name(row.method)),
                   common::TextTable::num(best_wips, 1),
                   common::TextTable::num(stddev, 1), improvement,
                   converged_text});
    bench::write_series_csv(
        "table4_" + std::string(core::tuning_method_name(row.method)),
        study.tuning.wips_series);
  }
  table.render(std::cout);
  std::printf(
      "\nExpected shape (paper Table 4): all tuned methods land close\n"
      "together in WIPS; duplication converges in the fewest iterations\n"
      "(23 dimensions vs 46); partitioning shows the smallest standard\n"
      "deviation because each work line sees only its own experiments.\n");
  return 0;
}
