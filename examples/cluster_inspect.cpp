// cluster_inspect: run a workload against a configurable cluster and dump
// per-node utilization, server statistics, latency and error figures.
//
// Useful to understand where the bottleneck sits before letting Active
// Harmony tune — the same view an administrator would get from top/iostat
// on the paper's testbed.
//
// Usage: cluster_inspect [browsers] [workload: browsing|shopping|ordering]
//                        [proxyN appN dbN] [iterations]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "tpcw/constraints.hpp"
#include "tpcw/mix.hpp"

namespace {

ah::tpcw::WorkloadKind parse_workload(const char* name) {
  if (std::strcmp(name, "browsing") == 0) {
    return ah::tpcw::WorkloadKind::kBrowsing;
  }
  if (std::strcmp(name, "ordering") == 0) {
    return ah::tpcw::WorkloadKind::kOrdering;
  }
  return ah::tpcw::WorkloadKind::kShopping;
}

}  // namespace

int main(int argc, char** argv) {
  const int browsers = argc > 1 ? std::stoi(argv[1]) : 700;
  const auto workload =
      parse_workload(argc > 2 ? argv[2] : "shopping");
  const int proxy_nodes = argc > 5 ? std::stoi(argv[3]) : 1;
  const int app_nodes = argc > 5 ? std::stoi(argv[4]) : 1;
  const int db_nodes = argc > 5 ? std::stoi(argv[5]) : 1;
  const std::size_t iterations = argc > 6 ? std::stoul(argv[6]) : 5;

  ah::sim::Simulator sim;
  ah::core::SystemModel::Config system_config;
  system_config.lines = {
      ah::core::SystemModel::LineSpec{proxy_nodes, app_nodes, db_nodes}};
  ah::core::SystemModel system(sim, system_config);

  ah::core::Experiment::Config experiment_config;
  experiment_config.browsers = browsers;
  experiment_config.workload = workload;
  ah::core::Experiment experiment(system, experiment_config);
  ah::tpcw::WirtTracker wirt;
  experiment.set_wirt_tracker(&wirt);

  ah::core::IterationResult last;
  for (std::size_t i = 0; i < iterations; ++i) {
    last = experiment.run_iteration();
    std::printf("iter %2zu: WIPS %7.1f  (browse %6.1f / order %6.1f)  "
                "err %5.2f%%  latency %7.1f ms\n",
                i, last.wips, last.wips_browse, last.wips_order,
                last.error_ratio * 100.0, last.mean_latency_ms);
  }

  std::printf("\n-- node utilization (EWMA) --\n");
  for (const auto& reading : system.readings()) {
    std::printf(
        "node%-2u tier=%d  cpu %5.1f%%  disk %5.1f%%  nic %5.1f%%  mem %5.1f%%"
        "  jobs %4.0f\n",
        reading.node_id, reading.tier, reading.utilization[0] * 100.0,
        reading.utilization[1] * 100.0, reading.utilization[2] * 100.0,
        reading.utilization[3] * 100.0, reading.jobs);
  }

  std::printf("\n-- TPC-W WIRT compliance (90th percentile) --\n");
  for (const auto& result : wirt.check_all()) {
    if (result.samples == 0) continue;
    std::printf("  %-22s p90 %6.2fs  limit %5.1fs  %s (%zu samples)\n",
                std::string(ah::tpcw::interaction_name(result.interaction))
                    .c_str(),
                result.p90_seconds, result.limit_seconds,
                result.compliant ? "OK" : "VIOLATION", result.samples);
  }

  std::printf("\n-- server stats --\n");
  auto& cluster = system.cluster();
  for (const auto id : system.all_nodes()) {
    switch (cluster.tier_of(id)) {
      case ah::cluster::TierKind::kProxy: {
        const auto& p = system.proxy_on(id);
        const auto& s = p.stats();
        std::printf(
            "node%-2u proxy: served %llu memhit %llu diskhit %llu miss %llu "
            "pass %llu | memcache %.1f%% full, hit ratio %.2f\n",
            id, static_cast<unsigned long long>(s.served),
            static_cast<unsigned long long>(s.mem_hits),
            static_cast<unsigned long long>(s.disk_hits),
            static_cast<unsigned long long>(s.misses_forwarded),
            static_cast<unsigned long long>(s.passthrough),
            100.0 * static_cast<double>(p.memory_cache().used()) /
                static_cast<double>(std::max<ah::common::Bytes>(
                    1, p.memory_cache().capacity())),
            p.memory_cache().hit_ratio());
        break;
      }
      case ah::cluster::TierKind::kApp: {
        const auto& s = system.app_on(id).stats();
        std::printf(
            "node%-2u app: served %llu rejHTTP %llu rejAJP %llu queries %llu "
            "spawned %llu\n",
            id, static_cast<unsigned long long>(s.served),
            static_cast<unsigned long long>(s.rejected_http),
            static_cast<unsigned long long>(s.rejected_ajp),
            static_cast<unsigned long long>(s.db_queries),
            static_cast<unsigned long long>(s.threads_spawned));
        break;
      }
      case ah::cluster::TierKind::kDb: {
        const auto& s = system.db_on(id).stats();
        std::printf(
            "node%-2u db: queries %llu (sel %llu join %llu upd %llu ins %llu) "
            "tblmiss %llu binlog %llu batches %llu\n",
            id, static_cast<unsigned long long>(s.queries),
            static_cast<unsigned long long>(s.by_class[0]),
            static_cast<unsigned long long>(s.by_class[1]),
            static_cast<unsigned long long>(s.by_class[2]),
            static_cast<unsigned long long>(s.by_class[3]),
            static_cast<unsigned long long>(s.table_cache_misses),
            static_cast<unsigned long long>(s.binlog_flushes),
            static_cast<unsigned long long>(s.delayed_batches));
        break;
      }
    }
  }
  return 0;
}
