// library_tuning: the Library Specification Layer on the paper's own
// example — "what algorithm is being used (e.g., heap sort vs quick-sort)".
//
// Three sort implementations are registered in one OperationFamily; calls
// come in two context buckets (small nearly-sorted arrays vs large random
// arrays).  The layer measures each implementation and converges on a
// different winner per bucket: insertion sort dominates the small
// nearly-sorted bucket, the O(n log n) sorts win the large one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "harmony/library_layer.hpp"

namespace {

void insertion_sort(std::vector<int>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    int key = v[i];
    std::size_t j = i;
    while (j > 0 && v[j - 1] > key) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = key;
  }
}

void heap_sort(std::vector<int>& v) {
  std::make_heap(v.begin(), v.end());
  std::sort_heap(v.begin(), v.end());
}

void intro_sort(std::vector<int>& v) { std::sort(v.begin(), v.end()); }

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using ah::harmony::OperationFamily;

  OperationFamily::Options options;
  options.buckets = 2;       // 0 = small nearly-sorted, 1 = large random
  options.explore_rate = 0.08;
  ah::harmony::TunedOperation<void(std::vector<int>&)> sorter("sort",
                                                              options);
  sorter.set_clock(now_seconds);
  sorter.add("insertion", insertion_sort);
  sorter.add("heap", heap_sort);
  sorter.add("introsort", intro_sort);

  std::mt19937 rng(7);
  for (int call = 0; call < 600; ++call) {
    const bool small = call % 2 == 0;
    std::vector<int> data;
    if (small) {
      // 256 elements, nearly sorted (a few swaps).
      data.resize(256);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<int>(i);
      }
      for (int s = 0; s < 4; ++s) {
        std::swap(data[rng() % data.size()], data[rng() % data.size()]);
      }
    } else {
      data.resize(20000);
      for (auto& x : data) x = static_cast<int>(rng());
    }
    sorter.call(small ? 0 : 1, data);
  }

  auto& family = sorter.family();
  std::printf("per-bucket results after 600 calls:\n");
  for (std::size_t bucket = 0; bucket < 2; ++bucket) {
    std::printf("  bucket %zu (%s):\n", bucket,
                bucket == 0 ? "small, nearly sorted" : "large, random");
    for (std::size_t i = 0; i < family.implementations(); ++i) {
      std::printf("    %-10s calls %4llu   est cost %.2e s\n",
                  family.implementation_name(i).c_str(),
                  static_cast<unsigned long long>(family.calls(i, bucket)),
                  family.estimated_cost(i, bucket));
    }
    std::printf("    incumbent: %s\n",
                family.implementation_name(family.incumbent(bucket)).c_str());
  }
  return 0;
}
