// Quickstart: tune a single-node-per-tier web cluster with Active Harmony.
//
// Builds the paper's basic setup (one proxy, one application server, one
// database), runs the TPC-W shopping mix, lets the Harmony server tune the
// 23 parameters for a number of iterations, and prints the WIPS trajectory
// plus the best configuration found.
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"
#include "sim/simulator.hpp"
#include "harmony/config_io.hpp"
#include "webstack/params.hpp"

int main(int argc, char** argv) {
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 60;

  ah::sim::Simulator sim;
  ah::core::SystemModel::Config system_config;
  system_config.lines = {ah::core::SystemModel::LineSpec{1, 1, 1}};
  ah::core::SystemModel system(sim, system_config);

  ah::core::Experiment::Config experiment_config;
  experiment_config.browsers = 530;
  experiment_config.workload = ah::tpcw::WorkloadKind::kBrowsing;
  ah::core::Experiment experiment(system, experiment_config);

  ah::core::TuningDriver::Options options;
  options.method = ah::core::TuningMethod::kDuplication;
  ah::core::TuningDriver driver(system, experiment, options);

  std::printf("# iter  WIPS\n");
  ah::core::TuningResult result;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto partial = driver.run(1, /*validation_iterations=*/0);
    result.wips_series.push_back(partial.wips_series.front());
    result.best_configuration = partial.best_configuration;
    result.best_wips = partial.best_wips;
    if (i % 5 == 0 || i + 1 == iterations) {
      std::printf("%6zu  %7.1f\n", i, result.wips_series.back());
    }
  }

  std::printf("\nbest WIPS observed: %.1f\n", result.best_wips);

  // Persist the winner the way an administrator would.
  {
    ah::harmony::ParameterSpace space;
    for (const auto& spec : ah::webstack::parameter_catalogue()) {
      space.add({spec.name, spec.min_value, spec.max_value,
                 spec.default_value});
    }
    const std::string path = "quickstart_best.conf";
    ah::harmony::save_configuration(path, space, result.best_configuration,
                                    "best configuration found by quickstart");
    std::printf("saved to %s\n", path.c_str());
  }
  std::printf("best configuration:\n");
  const auto& catalogue = ah::webstack::parameter_catalogue();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    std::printf("  %-32s %10lld (default %lld)\n", catalogue[i].name.c_str(),
                static_cast<long long>(result.best_configuration[i]),
                static_cast<long long>(catalogue[i].default_value));
  }
  return 0;
}
