// config_compare: measure the default configuration against a hand-tuned
// one across the three TPC-W mixes — the "is tuning worth it" question an
// administrator asks before deploying Active Harmony.
//
// Usage: config_compare [browsers] [iterations-per-cell]
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "tpcw/mix.hpp"
#include "webstack/params.hpp"

namespace {

/// A configuration in the spirit of the paper's Table-3 "Ordering" column:
/// bigger caches, far more threads, larger DB buffers.
std::vector<std::int64_t> hand_tuned() {
  ah::webstack::ProxyParams proxy;
  proxy.cache_mem = 24LL * 1024 * 1024;
  proxy.maximum_object_size_in_memory = 64LL * 1024;
  ah::webstack::AppParams app;
  app.min_processors = 32;
  app.max_processors = 128;
  app.accept_count = 150;
  app.buffer_size = 8192;
  app.ajp_min_processors = 32;
  app.ajp_max_processors = 160;
  app.ajp_accept_count = 300;
  ah::webstack::DbParams db;
  db.binlog_cache_size = 284672;
  db.max_connections = 700;
  db.table_cache = 900;
  db.thread_concurrency = 80;
  db.net_buffer_length = 34816;
  return ah::webstack::to_values(proxy, app, db);
}

double run_cell(ah::tpcw::WorkloadKind workload,
                const std::vector<std::int64_t>& values, int browsers,
                std::size_t iterations) {
  ah::sim::Simulator sim;
  ah::core::SystemModel::Config system_config;
  system_config.lines = {ah::core::SystemModel::LineSpec{1, 1, 1}};
  ah::core::SystemModel system(sim, system_config);
  system.apply_values_all(values);

  ah::core::Experiment::Config experiment_config;
  experiment_config.browsers = browsers;
  experiment_config.workload = workload;
  ah::core::Experiment experiment(system, experiment_config);

  ah::common::RunningStats wips;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto result = experiment.run_iteration();
    if (i > 0) wips.add(result.wips);  // skip the cold-start iteration
  }
  return wips.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const int browsers = argc > 1 ? std::stoi(argv[1]) : 500;
  const std::size_t iterations = argc > 2 ? std::stoul(argv[2]) : 6;

  const auto defaults = ah::webstack::default_values();
  const auto tuned = hand_tuned();

  std::printf("%-10s %12s %12s %10s\n", "workload", "default WIPS",
              "tuned WIPS", "gain");
  for (const auto kind :
       {ah::tpcw::WorkloadKind::kBrowsing, ah::tpcw::WorkloadKind::kShopping,
        ah::tpcw::WorkloadKind::kOrdering}) {
    const double base = run_cell(kind, defaults, browsers, iterations);
    const double best = run_cell(kind, tuned, browsers, iterations);
    std::printf("%-10s %12.1f %12.1f %9.1f%%\n",
                std::string(ah::tpcw::workload_name(kind)).c_str(), base,
                best, 100.0 * (best - base) / base);
  }
  return 0;
}
