// adaptive_cluster: the paper's headline demo as a runnable scenario.
//
// A six-node proxy/app cluster (plus databases) serves a browsing workload;
// mid-run the traffic turns into an ordering storm.  Active Harmony keeps
// tuning parameters every iteration and runs the reconfiguration check
// every `check_every` iterations (paper: every 50).  Watch the tier sizes
// change and throughput recover.
//
// Usage: adaptive_cluster [iterations] [check_every]
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/reconfig_controller.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"
#include "tpcw/mix.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  const std::size_t iterations = argc > 1 ? std::stoul(argv[1]) : 60;
  const std::size_t check_every = argc > 2 ? std::stoul(argv[2]) : 10;

  sim::Simulator sim;
  core::SystemModel::Config system_config;
  system_config.lines = {core::SystemModel::LineSpec{4, 2, 3}};
  core::SystemModel system(sim, system_config);

  core::Experiment::Config experiment_config;
  experiment_config.browsers = 2600;
  experiment_config.workload = tpcw::WorkloadKind::kBrowsing;
  core::Experiment experiment(system, experiment_config);

  core::TuningDriver driver(
      system, experiment,
      {core::TuningMethod::kDuplication, harmony::SessionOptions{}});

  harmony::ReconfigOptions reconfig_options =
      core::SystemModel::default_reconfig_options();
  reconfig_options.resources[core::SystemModel::kCpu].low_threshold = 0.60;
  reconfig_options.resources[core::SystemModel::kDisk].low_threshold = 0.60;
  reconfig_options.resources[core::SystemModel::kNic].low_threshold = 0.50;
  core::ReconfigController controller(system, reconfig_options);

  std::printf("# iter workload  WIPS   proxies apps dbs  note\n");
  for (std::size_t i = 0; i < iterations; ++i) {
    if (i == iterations / 3) {
      experiment.set_workload(tpcw::WorkloadKind::kOrdering);
    }
    const auto result = driver.run(1, /*validation_iterations=*/0);
    std::string note;
    if (i > 0 && i % check_every == 0) {
      if (const auto decision = controller.check(); decision.has_value()) {
        note = "reconfig: node" + std::to_string(decision->donor_node) +
               " -> " +
               std::string(cluster::tier_name(
                   static_cast<cluster::TierKind>(decision->to_tier)));
      }
    }
    std::printf("%6zu %-9s %6.1f  %7zu %4zu %3zu  %s\n", i,
                std::string(tpcw::workload_name(experiment.workload())).c_str(),
                result.wips_series.front(),
                system.cluster().tier(cluster::TierKind::kProxy).size(),
                system.cluster().tier(cluster::TierKind::kApp).size(),
                system.cluster().tier(cluster::TierKind::kDb).size(),
                note.c_str());
  }
  std::printf("\n%zu reconfiguration moves in total.\n",
              controller.moves().size());
  return 0;
}
