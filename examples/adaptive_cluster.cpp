// adaptive_cluster: the paper's headline demo as a runnable scenario.
//
// A six-node proxy/app cluster (plus databases) serves a browsing workload;
// mid-run the traffic turns into an ordering storm.  Active Harmony keeps
// tuning parameters every iteration and runs the reconfiguration check
// every `check_every` iterations (paper: every 50).  Watch the tier sizes
// change and throughput recover.
//
// With --faults a scripted fault plan runs on the same timeline (see
// sim/fault_injector.hpp for the plan grammar): health checking, per-hop
// timeouts and proxy retry/serve-stale degradation switch on, and the tuner
// discards measurement windows that overlapped a disturbance.
//
// With --metrics <path> the full registry snapshot (every counter, gauge
// and latency histogram the SystemModel registers) is written as JSON when
// the run ends; --trace <path> records per-request proxy/app/db spans and
// writes them as CSV.  Both are opt-in and passive: runs with and without
// them are byte-identical on stdout.
//
// Usage: adaptive_cluster [iterations] [check_every] [--faults <plan>]
//                         [--metrics <path>] [--trace <path>]
// Example: adaptive_cluster 60 10 --faults "crash:5@400; restart:5@900"
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/reconfig_controller.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "tpcw/mix.hpp"

int main(int argc, char** argv) {
  using namespace ah;
  std::size_t iterations = 60;
  std::size_t check_every = 10;
  std::string fault_text;
  std::string metrics_path;
  std::string trace_path;
  std::size_t positional = 0;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--faults") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--faults needs a plan argument\n");
        return 1;
      }
      fault_text = argv[++a];
    } else if (arg == "--metrics") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--metrics needs a path argument\n");
        return 1;
      }
      metrics_path = argv[++a];
    } else if (arg == "--trace") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "--trace needs a path argument\n");
        return 1;
      }
      trace_path = argv[++a];
    } else if (positional == 0) {
      iterations = std::stoul(arg);
      ++positional;
    } else if (positional == 1) {
      check_every = std::stoul(arg);
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return 1;
    }
  }

  sim::Simulator sim;
  core::SystemModel::Config system_config;
  system_config.lines = {core::SystemModel::LineSpec{4, 2, 3}};
  core::SystemModel system(sim, system_config);

  // Sample every 8th request: plenty of spans over a long demo without the
  // ring discarding all but the final iterations.
  obs::TraceRecorder trace(/*every_nth=*/8);
  if (!trace_path.empty()) system.set_trace_recorder(&trace);

  if (!fault_text.empty()) {
    std::string error;
    const auto plan = sim::FaultPlan::parse(fault_text, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    system.enable_fault_tolerance({});
    system.install_fault_plan(*plan);
    std::printf("# fault plan armed: %zu events\n", plan->events.size());
  }

  core::Experiment::Config experiment_config;
  experiment_config.browsers = 2600;
  experiment_config.workload = tpcw::WorkloadKind::kBrowsing;
  core::Experiment experiment(system, experiment_config);

  core::TuningDriver driver(
      system, experiment,
      {core::TuningMethod::kDuplication, harmony::SessionOptions{}});

  harmony::ReconfigOptions reconfig_options =
      core::SystemModel::default_reconfig_options();
  reconfig_options.resources[core::SystemModel::kCpu].low_threshold = 0.60;
  reconfig_options.resources[core::SystemModel::kDisk].low_threshold = 0.60;
  reconfig_options.resources[core::SystemModel::kNic].low_threshold = 0.50;
  core::ReconfigController controller(system, reconfig_options);

  std::uint64_t discarded = 0;
  std::printf("# iter workload  WIPS   proxies apps dbs  note\n");
  for (std::size_t i = 0; i < iterations; ++i) {
    if (i == iterations / 3) {
      experiment.set_workload(tpcw::WorkloadKind::kOrdering);
    }
    const auto result = driver.run(1, /*validation_iterations=*/0);
    discarded += result.discarded_windows;
    std::string note;
    if (result.discarded_windows > 0) note = "disturbed; window re-measured";
    if (i > 0 && i % check_every == 0) {
      if (const auto decision = controller.check(); decision.has_value()) {
        note = "reconfig: node" + std::to_string(decision->donor_node) +
               " -> " +
               std::string(cluster::tier_name(
                   static_cast<cluster::TierKind>(decision->to_tier)));
      }
    }
    std::printf("%6zu %-9s %6.1f  %7zu %4zu %3zu  %s\n", i,
                std::string(tpcw::workload_name(experiment.workload())).c_str(),
                result.wips_series.front(),
                system.cluster().tier(cluster::TierKind::kProxy).size(),
                system.cluster().tier(cluster::TierKind::kApp).size(),
                system.cluster().tier(cluster::TierKind::kDb).size(),
                note.c_str());
  }
  std::printf("\n%zu reconfiguration moves in total.\n",
              controller.moves().size());
  if (!fault_text.empty()) {
    std::printf("%llu measurement windows discarded after disturbances.\n",
                static_cast<unsigned long long>(discarded));
  }
  if (!metrics_path.empty()) {
    if (!system.metrics().write_json(metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics snapshot: %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!trace.write_csv(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "span trace: %s\n", trace_path.c_str());
  }
  return 0;
}
