#include "harmony/client.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ah::harmony {
namespace {

TEST(HarmonyClientTest, LifecycleOrderEnforced) {
  HarmonyServer server;
  HarmonyClient client(server);
  EXPECT_THROW(client.add_variable("x", 0, 1, 0), std::logic_error);
  EXPECT_THROW((void)client.request_all(), std::logic_error);
  client.startup("app");
  EXPECT_THROW(client.startup("app"), std::logic_error);
  EXPECT_THROW((void)client.request_all(), std::logic_error);  // not started
  client.add_variable("x", 0, 10, 5);
  client.start();
  EXPECT_THROW(client.start(), std::logic_error);
  EXPECT_THROW(client.add_variable("y", 0, 1, 0), std::logic_error);
  EXPECT_TRUE(client.started());
}

TEST(HarmonyClientTest, RequestAllKeyedByName) {
  HarmonyServer server;
  HarmonyClient client(server);
  client.startup("app");
  client.add_variable("threads", 1, 512, 16);
  client.add_variable("buffer", 4, 4096, 64);
  client.start();
  const auto config = client.request_all();
  ASSERT_EQ(config.size(), 2u);
  EXPECT_EQ(config.at("threads"), 16);
  EXPECT_EQ(config.at("buffer"), 64);
}

TEST(HarmonyClientTest, TuningLoopConverges) {
  HarmonyServer server;
  HarmonyClient client(server);
  client.startup("synthetic");
  client.add_variable("x", 0, 1000, 900);
  client.start();
  for (int i = 0; i < 120; ++i) {
    const auto values = client.request_values();
    const double d = static_cast<double>(values[0]) - 300.0;
    client.performance_update(1000.0 - d * d / 100.0);  // peak at 300
  }
  EXPECT_NEAR(static_cast<double>(client.best_all().at("x")), 300.0, 30.0);
  EXPECT_EQ(client.evaluations(), 120u);
  EXPECT_GT(client.best_performance(), 990.0);
}

TEST(HarmonyClientTest, MultipleClientsIndependentSessions) {
  HarmonyServer server;
  HarmonyClient line0(server);
  HarmonyClient line1(server);
  line0.startup("line0");
  line1.startup("line1");
  line0.add_variable("x", 0, 100, 10);
  line1.add_variable("x", 0, 100, 90);
  line0.start();
  line1.start();
  EXPECT_EQ(line0.request_values()[0], 10);
  EXPECT_EQ(line1.request_values()[0], 90);
  line0.performance_update(1.0);
  EXPECT_EQ(line0.evaluations(), 1u);
  EXPECT_EQ(line1.evaluations(), 0u);
  EXPECT_EQ(server.session_count(), 2u);
}

TEST(HarmonyClientTest, KernelChoicePassesThrough) {
  HarmonyServer server;
  HarmonyClient client(server);
  SessionOptions options;
  options.kernel = TuningKernel::kRandomSearch;
  options.seed = 3;
  client.startup("rand", options);
  client.add_variable("x", 0, 100, 50);
  client.start();
  // Random search: after the default, proposals jump around.
  EXPECT_EQ(client.request_values()[0], 50);
  client.performance_update(1.0);
  bool moved = false;
  for (int i = 0; i < 10; ++i) {
    if (client.request_values()[0] != 50) moved = true;
    client.performance_update(1.0);
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace ah::harmony
