#include "harmony/reconfig.hpp"

#include <gtest/gtest.h>

namespace ah::harmony {
namespace {

ReconfigOptions two_resource_options() {
  ReconfigOptions options;
  options.resources = {
      ResourcePolicy{0.85, 0.30, 4.0},  // cpu (urgent)
      ResourcePolicy{0.85, 0.30, 1.0},  // disk
  };
  options.config_cost_seconds = 10.0;
  return options;
}

NodeReading reading(std::uint32_t id, int tier, double cpu, double disk,
                    double jobs = 0.0, double avg_process = 0.02,
                    double move_cost = 0.01) {
  NodeReading r;
  r.node_id = id;
  r.tier = tier;
  r.utilization = {cpu, disk};
  r.jobs = jobs;
  r.avg_process_seconds = avg_process;
  r.move_cost_seconds = move_cost;
  return r;
}

TEST(ReconfigurerTest, RejectsEmptyPolicies) {
  EXPECT_THROW(Reconfigurer{ReconfigOptions{}}, std::invalid_argument);
}

TEST(ReconfigurerTest, RejectsInvertedThresholds) {
  ReconfigOptions options;
  options.resources = {ResourcePolicy{0.3, 0.8, 1.0}};
  EXPECT_THROW(Reconfigurer{options}, std::invalid_argument);
}

TEST(ReconfigurerTest, UrgencyZeroWhenUnderThreshold) {
  Reconfigurer r(two_resource_options());
  EXPECT_EQ(r.urgency(reading(0, 0, 0.5, 0.5)), 0.0);
}

TEST(ReconfigurerTest, UrgencyWeightsResources) {
  Reconfigurer r(two_resource_options());
  // CPU overload of 0.10 with weight 4 vs disk overload of 0.10 with
  // weight 1: the CPU node must be more urgent (paper footnote 3).
  const double cpu_urgency = r.urgency(reading(0, 0, 0.95, 0.0));
  const double disk_urgency = r.urgency(reading(1, 0, 0.0, 0.95));
  EXPECT_GT(cpu_urgency, disk_urgency);
}

TEST(ReconfigurerTest, OverloadedListSortedByUrgency) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 0, 0.90, 0.0),   // mildly hot
      reading(1, 1, 0.99, 0.0),   // very hot
      reading(2, 2, 0.10, 0.10),  // cool
  };
  const auto hot = r.overloaded(readings);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0]->node_id, 1u);
  EXPECT_EQ(hot[1]->node_id, 0u);
}

TEST(ReconfigurerTest, IdleRequiresAllResourcesLow) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 0, 0.10, 0.10),  // idle
      reading(1, 0, 0.10, 0.50),  // disk busy -> not idle
  };
  const auto idle = r.idle(readings);
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle[0]->node_id, 0u);
}

TEST(ReconfigurerTest, Equation1Arithmetic) {
  Reconfigurer r(two_resource_options());
  // F=10, N=100 jobs, M=0.05s, A=0.02s: 10 + 5 - 2 = 13.
  const auto donor = reading(0, 0, 0.0, 0.0, 100.0, 0.02, 0.05);
  EXPECT_NEAR(r.move_cost(donor), 13.0, 1e-9);
}

TEST(ReconfigurerTest, NoDecisionWithoutOverload) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 0, 0.5, 0.2),
      reading(1, 1, 0.1, 0.1),
  };
  EXPECT_FALSE(r.decide(readings).has_value());
}

TEST(ReconfigurerTest, NoDecisionWithoutIdleDonor) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 0, 0.99, 0.2),
      reading(1, 1, 0.6, 0.6),  // busy but not overloaded: not a donor
  };
  EXPECT_FALSE(r.decide(readings).has_value());
}

TEST(ReconfigurerTest, BasicMoveDecision) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),            // hot app node
      reading(1, 0, 0.05, 0.05),           // idle proxy node
      reading(2, 0, 0.50, 0.50),           // other proxy (keeps tier alive)
  };
  const auto decision = r.decide(readings);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->overloaded_node, 0u);
  EXPECT_EQ(decision->donor_node, 1u);
  EXPECT_EQ(decision->from_tier, 0);
  EXPECT_EQ(decision->to_tier, 1);
}

TEST(ReconfigurerTest, DonorMustBeDifferentTier) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),   // hot app
      reading(1, 1, 0.05, 0.05),  // idle but same tier
  };
  EXPECT_FALSE(r.decide(readings).has_value());
}

TEST(ReconfigurerTest, LastNodeOfTierProtected) {
  Reconfigurer r(two_resource_options());
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),   // hot app
      reading(1, 0, 0.05, 0.05),  // idle proxy, but the ONLY proxy
  };
  EXPECT_FALSE(r.decide(readings).has_value());  // step 4(b)
}

TEST(ReconfigurerTest, CheapestDonorChosen) {
  Reconfigurer r(two_resource_options());
  // Two idle donors; donor 2 has fewer jobs to migrate -> lower Eq. 1.
  auto expensive = reading(1, 0, 0.05, 0.05, /*jobs=*/500.0, 0.001, 0.05);
  auto cheap = reading(2, 0, 0.05, 0.05, /*jobs=*/1.0, 0.001, 0.05);
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),
      expensive,
      cheap,
      reading(3, 0, 0.5, 0.5),  // keeps the proxy tier populated
  };
  const auto decision = r.decide(readings);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->donor_node, 2u);
}

TEST(ReconfigurerTest, ImmediateWhenEquationNonPositive) {
  ReconfigOptions options = two_resource_options();
  options.config_cost_seconds = 1.0;
  Reconfigurer r(options);
  // N=100, M=0.001, A=0.05: 1 + 0.1 - 5 = -3.9 <= 0 -> immediate.
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),
      reading(1, 0, 0.05, 0.05, 100.0, 0.05, 0.001),
      reading(2, 0, 0.5, 0.5),
  };
  const auto decision = r.decide(readings);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->immediate);
  EXPECT_LE(decision->cost_seconds, 0.0);
}

TEST(ReconfigurerTest, DrainWhenEquationPositive) {
  Reconfigurer r(two_resource_options());  // F = 10
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),
      reading(1, 0, 0.05, 0.05, 1.0, 0.02, 0.01),
      reading(2, 0, 0.5, 0.5),
  };
  const auto decision = r.decide(readings);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->immediate);
  EXPECT_GT(decision->cost_seconds, 0.0);
}

TEST(ReconfigurerTest, FallsThroughToNextUrgentNode) {
  Reconfigurer r(two_resource_options());
  // Head of L1 is an app node whose only possible donor tier is empty of
  // idle nodes in *other* tiers except its own; second hot node can be
  // helped.
  const std::vector<NodeReading> readings{
      reading(0, 1, 0.99, 0.2),   // hottest: app tier
      reading(1, 1, 0.05, 0.05),  // idle, same tier as node 0 -> no donor
      reading(2, 0, 0.90, 0.2),   // second hottest: proxy tier
      reading(3, 0, 0.5, 0.5),
  };
  // For node 0 the only idle node (1) shares its tier -> skip; for node 2
  // the idle node 1 is in a different tier and tier 1 has 2 members.
  const auto decision = r.decide(readings);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->overloaded_node, 2u);
  EXPECT_EQ(decision->donor_node, 1u);
}

TEST(ReconfigurerTest, MemoryOnlyOverloadCounts) {
  ReconfigOptions options;
  options.resources = {
      ResourcePolicy{0.85, 0.30, 4.0},
      ResourcePolicy{0.97, 0.90, 3.0},  // memory-style policy
  };
  Reconfigurer r(options);
  NodeReading hot = reading(0, 1, 0.2, 0.0);
  hot.utilization[1] = 0.99;  // paging
  const std::vector<NodeReading> readings{
      hot,
      reading(1, 0, 0.05, 0.05),
      reading(2, 0, 0.5, 0.5),
  };
  ASSERT_TRUE(r.decide(readings).has_value());
}

}  // namespace
}  // namespace ah::harmony
