#include "harmony/server.hpp"

#include <gtest/gtest.h>

namespace ah::harmony {
namespace {

TEST(HarmonyServerTest, CreateAndStartSession) {
  HarmonyServer server;
  const auto id = server.create_session("tomcat");
  EXPECT_FALSE(server.started(id));
  server.register_parameter(id, {"maxProcessors", 1, 1024, 20});
  server.start(id);
  EXPECT_TRUE(server.started(id));
  EXPECT_EQ(server.session_name(id), "tomcat");
  EXPECT_EQ(server.session_count(), 1u);
}

TEST(HarmonyServerTest, RegisterReturnsDimensionIndex) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  EXPECT_EQ(server.register_parameter(id, {"a", 0, 1, 0}), 0u);
  EXPECT_EQ(server.register_parameter(id, {"b", 0, 1, 0}), 1u);
}

TEST(HarmonyServerTest, StartWithoutParametersThrows) {
  HarmonyServer server;
  const auto id = server.create_session("empty");
  EXPECT_THROW(server.start(id), std::logic_error);
}

TEST(HarmonyServerTest, DoubleStartThrows) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"a", 0, 10, 5});
  server.start(id);
  EXPECT_THROW(server.start(id), std::logic_error);
}

TEST(HarmonyServerTest, RegisterAfterStartThrows) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"a", 0, 10, 5});
  server.start(id);
  EXPECT_THROW(server.register_parameter(id, {"b", 0, 10, 5}),
               std::logic_error);
}

TEST(HarmonyServerTest, UnknownSessionThrows) {
  HarmonyServer server;
  EXPECT_THROW(server.get_configuration(7), std::out_of_range);
  EXPECT_THROW(server.start(0), std::out_of_range);
}

TEST(HarmonyServerTest, UseBeforeStartThrows) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"a", 0, 10, 5});
  EXPECT_THROW(server.get_configuration(id), std::logic_error);
  EXPECT_THROW(server.report_performance(id, 1.0), std::logic_error);
}

TEST(HarmonyServerTest, FirstConfigurationIsDefault) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"a", 0, 100, 42});
  server.register_parameter(id, {"b", -10, 10, -3});
  server.start(id);
  EXPECT_EQ(server.get_configuration(id), (PointI{42, -3}));
}

TEST(HarmonyServerTest, HigherPerformanceIsBetter) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"a", 0, 100, 42});
  server.start(id);
  server.report_performance(id, 110.0);
  server.report_performance(id, 95.0);
  EXPECT_DOUBLE_EQ(server.best_performance(id), 110.0);
}

TEST(HarmonyServerTest, BestConfigurationTracksBestPerformance) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"a", 0, 100, 42});
  server.start(id);
  const PointI first = server.get_configuration(id);
  server.report_performance(id, 200.0);  // first config is great
  server.report_performance(id, 10.0);
  server.report_performance(id, 10.0);
  EXPECT_EQ(server.best_configuration(id), first);
}

TEST(HarmonyServerTest, TuningImprovesPerformanceOnSyntheticSurface) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"x", 0, 1000, 900});
  server.start(id);
  auto performance = [](const PointI& p) {
    const double d = static_cast<double>(p[0]) - 250.0;
    return 1000.0 - d * d / 100.0;  // peak at x=250
  };
  for (int i = 0; i < 100; ++i) {
    server.report_performance(id, performance(server.get_configuration(id)));
  }
  EXPECT_NEAR(static_cast<double>(server.best_configuration(id)[0]), 250.0,
              30.0);
  EXPECT_EQ(server.evaluations(id), 100u);
}

TEST(HarmonyServerTest, MultipleIndependentSessions) {
  HarmonyServer server;
  const auto a = server.create_session("line0");
  const auto b = server.create_session("line1");
  server.register_parameter(a, {"x", 0, 100, 10});
  server.register_parameter(b, {"x", 0, 100, 90});
  server.start(a);
  server.start(b);
  // Different defaults prove the sessions do not share state.
  EXPECT_EQ(server.get_configuration(a)[0], 10);
  EXPECT_EQ(server.get_configuration(b)[0], 90);
  server.report_performance(a, 1.0);
  EXPECT_EQ(server.evaluations(a), 1u);
  EXPECT_EQ(server.evaluations(b), 0u);
}

TEST(HarmonyServerTest, BatchProtocol) {
  HarmonyServer server;
  const auto id = server.create_session("s");
  server.register_parameter(id, {"x", 0, 100, 50});
  server.register_parameter(id, {"y", 0, 100, 50});
  server.start(id);
  const auto pending = server.get_pending(id);
  EXPECT_EQ(pending.size(), 3u);  // init simplex of a 2-d space
  std::vector<double> performances(pending.size(), 1.0);
  server.report_performance_batch(id, performances);
  EXPECT_EQ(server.evaluations(id), 3u);
}

TEST(HarmonyServerTest, ConvergenceExposed) {
  SessionOptions options;
  options.patience = 4;
  HarmonyServer server;
  const auto id = server.create_session("s", options);
  server.register_parameter(id, {"x", 0, 10, 5});
  server.start(id);
  for (int i = 0; i < 8; ++i) server.report_performance(id, 100.0);
  EXPECT_TRUE(server.converged_at(id).has_value());
}

}  // namespace
}  // namespace ah::harmony
