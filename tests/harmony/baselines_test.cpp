#include "harmony/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ah::harmony {
namespace {

ParameterSpace box(std::int64_t lo, std::int64_t hi, std::int64_t def,
                   std::size_t dims) {
  ParameterSpace space;
  for (std::size_t d = 0; d < dims; ++d) {
    space.add({"x" + std::to_string(d), lo, hi, def});
  }
  return space;
}

double sphere(const PointI& p, double target = 60.0) {
  double sum = 0;
  for (const auto v : p) {
    const double d = static_cast<double>(v) - target;
    sum += d * d;
  }
  return sum;
}

// -- RandomSearchTuner -------------------------------------------------------

TEST(RandomSearchTest, RejectsEmptySpace) {
  EXPECT_THROW(RandomSearchTuner{ParameterSpace{}}, std::invalid_argument);
}

TEST(RandomSearchTest, FirstAskIsDefault) {
  RandomSearchTuner tuner(box(0, 100, 42, 3));
  EXPECT_EQ(tuner.ask(), (PointI{42, 42, 42}));
}

TEST(RandomSearchTest, ProposalsStayInBounds) {
  RandomSearchTuner tuner(box(-7, 7, 0, 2));
  for (int i = 0; i < 500; ++i) {
    for (const auto v : tuner.ask()) {
      EXPECT_GE(v, -7);
      EXPECT_LE(v, 7);
    }
    tuner.tell(1.0);
  }
  EXPECT_EQ(tuner.evaluations(), 500u);
}

TEST(RandomSearchTest, KeepsBest) {
  RandomSearchTuner tuner(box(0, 1000, 900, 1));
  for (int i = 0; i < 300; ++i) tuner.tell(sphere(tuner.ask(), 200.0));
  // With 300 uniform draws over [0,1000], the best should be within ~50 of
  // the optimum with overwhelming probability.
  EXPECT_NEAR(static_cast<double>(tuner.best()[0]), 200.0, 60.0);
  EXPECT_LE(tuner.best_cost(), sphere({260}, 200.0));
}

TEST(RandomSearchTest, PendingMatchesAsk) {
  RandomSearchTuner tuner(box(0, 10, 5, 2));
  EXPECT_EQ(tuner.pending().size(), 1u);
  EXPECT_EQ(tuner.pending()[0], tuner.ask());
}

TEST(RandomSearchTest, BatchReport) {
  RandomSearchTuner tuner(box(0, 10, 5, 2));
  const std::vector<double> costs{3.0};
  tuner.report(costs);
  EXPECT_EQ(tuner.evaluations(), 1u);
  EXPECT_EQ(tuner.best_cost(), 3.0);
}

// -- CoordinateDescentTuner --------------------------------------------------

TEST(CoordinateDescentTest, RejectsBadOptions) {
  CoordinateDescentTuner::Options bad;
  bad.probes = 1;
  EXPECT_THROW(CoordinateDescentTuner(box(0, 10, 5, 1), bad),
               std::invalid_argument);
  bad = {};
  bad.radius_decay = 1.5;
  EXPECT_THROW(CoordinateDescentTuner(box(0, 10, 5, 1), bad),
               std::invalid_argument);
}

TEST(CoordinateDescentTest, FirstProbeIsIncumbentDefault) {
  CoordinateDescentTuner tuner(box(0, 100, 42, 3));
  EXPECT_EQ(tuner.ask(), (PointI{42, 42, 42}));
}

TEST(CoordinateDescentTest, SweepVariesOnlyCurrentDimension) {
  CoordinateDescentTuner tuner(box(0, 100, 50, 3));
  for (const auto& probe : tuner.pending()) {
    EXPECT_EQ(probe[1], 50);
    EXPECT_EQ(probe[2], 50);
  }
}

TEST(CoordinateDescentTest, AdvancesDimensionAfterSweep) {
  CoordinateDescentTuner tuner(box(0, 100, 50, 3));
  EXPECT_EQ(tuner.current_dimension(), 0u);
  const auto batch = tuner.pending();
  for (std::size_t i = 0; i < batch.size(); ++i) tuner.tell(1.0);
  EXPECT_EQ(tuner.current_dimension(), 1u);
}

TEST(CoordinateDescentTest, FixesBestProbe) {
  CoordinateDescentTuner tuner(box(0, 100, 50, 2));
  // Reward dimension-0 = 75 during the first sweep.
  const auto batch = tuner.pending();
  for (const auto& probe : batch) {
    tuner.tell(std::abs(static_cast<double>(probe[0]) - 75.0));
  }
  // All probes of the second sweep should carry the winner in dim 0.
  std::int64_t winner = -1;
  double best = 1e300;
  for (const auto& probe : batch) {
    const double cost = std::abs(static_cast<double>(probe[0]) - 75.0);
    if (cost < best) {
      best = cost;
      winner = probe[0];
    }
  }
  for (const auto& probe : tuner.pending()) {
    EXPECT_EQ(probe[0], winner);
  }
}

TEST(CoordinateDescentTest, RadiusDecaysPerPass) {
  CoordinateDescentTuner tuner(box(0, 1000, 500, 2));
  const double r0 = tuner.radius();
  // Complete one full pass over both dimensions.
  for (int d = 0; d < 2; ++d) {
    const auto batch = tuner.pending();
    for (std::size_t i = 0; i < batch.size(); ++i) tuner.tell(1.0);
  }
  EXPECT_LT(tuner.radius(), r0);
}

TEST(CoordinateDescentTest, RadiusReexpandsAtFloor) {
  CoordinateDescentTuner::Options options;
  options.initial_radius = 0.5;
  options.radius_decay = 0.1;
  options.min_radius = 0.05;
  CoordinateDescentTuner tuner(box(0, 1000, 500, 1), options);
  // Two passes shrink 0.5 -> 0.05 -> 0.005 < floor -> re-expand.
  for (int pass = 0; pass < 2; ++pass) {
    const auto batch = tuner.pending();
    for (std::size_t i = 0; i < batch.size(); ++i) tuner.tell(1.0);
  }
  EXPECT_DOUBLE_EQ(tuner.radius(), 0.5);
}

TEST(CoordinateDescentTest, ConvergesOnSeparableObjective) {
  CoordinateDescentTuner tuner(box(0, 200, 180, 4));
  for (int i = 0; i < 400; ++i) tuner.tell(sphere(tuner.ask()));
  for (const auto v : tuner.best()) {
    EXPECT_NEAR(static_cast<double>(v), 60.0, 15.0);
  }
}

TEST(CoordinateDescentTest, ProposalsStayInBounds) {
  CoordinateDescentTuner tuner(box(-3, 3, 0, 2));
  common::Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    for (const auto v : tuner.ask()) {
      EXPECT_GE(v, -3);
      EXPECT_LE(v, 3);
    }
    tuner.tell(rng.uniform());
  }
}

TEST(CoordinateDescentTest, DegenerateRangeSurvives) {
  // A fixed parameter ([5,5]) collapses every probe onto the incumbent.
  ParameterSpace space;
  space.add({"fixed", 5, 5, 5});
  space.add({"x", 0, 100, 50});
  CoordinateDescentTuner tuner(std::move(space));
  for (int i = 0; i < 100; ++i) {
    tuner.tell(std::abs(static_cast<double>(tuner.ask()[1]) - 20.0));
  }
  EXPECT_EQ(tuner.best()[0], 5);
  EXPECT_NEAR(static_cast<double>(tuner.best()[1]), 20.0, 15.0);
}

}  // namespace
}  // namespace ah::harmony
