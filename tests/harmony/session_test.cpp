#include "harmony/session.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ah::harmony {
namespace {

ParameterSpace simple_space() {
  return ParameterSpace{{{"x", 0, 100, 50}, {"y", 0, 100, 50}}};
}

TEST(TuningSessionTest, RecordsHistory) {
  TuningSession session("s", simple_space());
  session.tell(3.0);
  session.tell(1.0);
  ASSERT_EQ(session.history().size(), 2u);
  EXPECT_EQ(session.history()[0].cost, 3.0);
  EXPECT_EQ(session.history()[1].cost, 1.0);
  EXPECT_EQ(session.evaluations(), 2u);
}

TEST(TuningSessionTest, HistoryConfigurationsMatchAsked) {
  TuningSession session("s", simple_space());
  const PointI asked = session.ask();
  session.tell(5.0);
  EXPECT_EQ(session.history()[0].configuration, asked);
}

TEST(TuningSessionTest, BestTracksMinimum) {
  TuningSession session("s", simple_space());
  session.tell(3.0);
  session.tell(1.0);
  session.tell(2.0);
  EXPECT_EQ(session.best_cost(), 1.0);
}

TEST(TuningSessionTest, NotConvergedInitially) {
  TuningSession session("s", simple_space());
  EXPECT_FALSE(session.converged_at().has_value());
  session.tell(1.0);
  EXPECT_FALSE(session.converged_at().has_value());
}

TEST(TuningSessionTest, ConvergesAfterPatienceWithoutImprovement) {
  SessionOptions options;
  options.patience = 5;
  TuningSession session("s", simple_space(), options);
  session.tell(10.0);  // improvement at index 0
  for (int i = 0; i < 5; ++i) session.tell(10.0);  // flat
  ASSERT_TRUE(session.converged_at().has_value());
  EXPECT_EQ(*session.converged_at(), 0u);
}

TEST(TuningSessionTest, ImprovementResetsConvergenceClock) {
  SessionOptions options;
  options.patience = 4;
  options.improvement_epsilon = 0.01;
  TuningSession session("s", simple_space(), options);
  session.tell(10.0);
  session.tell(10.0);
  session.tell(10.0);
  session.tell(5.0);  // big improvement at index 3
  session.tell(5.0);
  EXPECT_FALSE(session.converged_at().has_value());
  session.tell(5.0);
  session.tell(5.0);
  session.tell(5.0);  // 4th flat evaluation after the improvement
  ASSERT_TRUE(session.converged_at().has_value());
  EXPECT_EQ(*session.converged_at(), 3u);
}

TEST(TuningSessionTest, TinyImprovementDoesNotReset) {
  SessionOptions options;
  options.patience = 3;
  options.improvement_epsilon = 0.05;  // 5% required
  TuningSession session("s", simple_space(), options);
  session.tell(100.0);
  session.tell(99.0);  // 1% — below epsilon
  session.tell(98.5);
  session.tell(98.4);
  ASSERT_TRUE(session.converged_at().has_value());
  EXPECT_EQ(*session.converged_at(), 0u);
}

TEST(TuningSessionTest, NegativeCostsHandled) {
  // WIPS are reported as negated costs; relative improvement must work on
  // negative values.
  SessionOptions options;
  options.patience = 3;
  TuningSession session("s", simple_space(), options);
  session.tell(-100.0);
  session.tell(-110.0);  // 10% better (more negative)
  EXPECT_FALSE(session.converged_at().has_value());
  session.tell(-110.0);
  session.tell(-110.0);
  session.tell(-110.0);
  ASSERT_TRUE(session.converged_at().has_value());
  EXPECT_EQ(*session.converged_at(), 1u);
}

TEST(TuningSessionTest, NamePreserved) {
  TuningSession session("my-session", simple_space());
  EXPECT_EQ(session.name(), "my-session");
}

TEST(TuningSessionTest, ReportBatchAppendsHistory) {
  TuningSession session("s", simple_space());
  const std::vector<double> costs{5.0, 4.0, 3.0};
  session.report(costs);
  EXPECT_EQ(session.history().size(), 3u);
}

}  // namespace
}  // namespace ah::harmony
