#include "harmony/library_layer.hpp"

#include <gtest/gtest.h>

namespace ah::harmony {
namespace {

OperationFamily::Options no_explore() {
  OperationFamily::Options options;
  options.explore_rate = 0.0;
  return options;
}

TEST(OperationFamilyTest, RejectsBadOptions) {
  OperationFamily::Options bad;
  bad.buckets = 0;
  EXPECT_THROW(OperationFamily("f", bad), std::invalid_argument);
  bad = {};
  bad.explore_rate = 1.0;
  EXPECT_THROW(OperationFamily("f", bad), std::invalid_argument);
}

TEST(OperationFamilyTest, RegisterAssignsIndices) {
  OperationFamily family("sort");
  EXPECT_EQ(family.register_implementation("heap"), 0u);
  EXPECT_EQ(family.register_implementation("quick"), 1u);
  EXPECT_EQ(family.implementations(), 2u);
  EXPECT_EQ(family.implementation_name(1), "quick");
}

TEST(OperationFamilyTest, SelectWithoutImplsThrows) {
  OperationFamily family("empty");
  EXPECT_THROW((void)family.select(), std::logic_error);
}

TEST(OperationFamilyTest, TriesEveryImplementationOnce) {
  OperationFamily family("f", no_explore());
  family.register_implementation("a");
  family.register_implementation("b");
  family.register_implementation("c");
  // Unmeasured implementations are selected before any exploitation.
  const auto first = family.select();
  family.report(first, 1.0);
  const auto second = family.select();
  family.report(second, 1.0);
  const auto third = family.select();
  family.report(third, 1.0);
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(first, third);
}

TEST(OperationFamilyTest, ConvergesOnCheapestImplementation) {
  OperationFamily family("f", no_explore());
  family.register_implementation("slow");
  family.register_implementation("fast");
  for (int i = 0; i < 20; ++i) {
    const auto choice = family.select();
    family.report(choice, choice == 1 ? 1.0 : 10.0);
  }
  EXPECT_EQ(family.incumbent(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(family.select(), 1u);
}

TEST(OperationFamilyTest, ExplorationVisitsLosers) {
  OperationFamily::Options options;
  options.explore_rate = 0.3;
  options.seed = 9;
  OperationFamily family("f", options);
  family.register_implementation("slow");
  family.register_implementation("fast");
  int slow_calls = 0;
  for (int i = 0; i < 500; ++i) {
    const auto choice = family.select();
    if (choice == 0) ++slow_calls;
    family.report(choice, choice == 1 ? 1.0 : 10.0);
  }
  // ~30% exploration => the loser keeps being sampled.
  EXPECT_GT(slow_calls, 50);
  EXPECT_LT(slow_calls, 350);
}

TEST(OperationFamilyTest, AdaptsWhenCostsFlip) {
  OperationFamily::Options options;
  options.explore_rate = 0.2;
  options.cost_alpha = 0.4;
  options.seed = 3;
  OperationFamily family("f", options);
  family.register_implementation("a");
  family.register_implementation("b");
  // Phase 1: a is cheap.
  for (int i = 0; i < 200; ++i) {
    const auto choice = family.select();
    family.report(choice, choice == 0 ? 1.0 : 5.0);
  }
  EXPECT_EQ(family.incumbent(), 0u);
  // Phase 2: costs flip; exploration must discover it.
  for (int i = 0; i < 200; ++i) {
    const auto choice = family.select();
    family.report(choice, choice == 0 ? 5.0 : 1.0);
  }
  EXPECT_EQ(family.incumbent(), 1u);
}

TEST(OperationFamilyTest, BucketsIndependent) {
  OperationFamily::Options options = no_explore();
  options.buckets = 2;
  OperationFamily family("f", options);
  family.register_implementation("a");
  family.register_implementation("b");
  // Bucket 0 favours a, bucket 1 favours b.
  for (int i = 0; i < 10; ++i) {
    for (std::size_t bucket = 0; bucket < 2; ++bucket) {
      const auto choice = family.select(bucket);
      const bool winner = bucket == 0 ? choice == 0 : choice == 1;
      family.report(choice, winner ? 1.0 : 9.0, bucket);
    }
  }
  EXPECT_EQ(family.incumbent(0), 0u);
  EXPECT_EQ(family.incumbent(1), 1u);
}

TEST(OperationFamilyTest, EstimatedCostTracksReports) {
  OperationFamily family("f", no_explore());
  family.register_implementation("a");
  EXPECT_LT(family.estimated_cost(0), 0.0);  // unmeasured
  family.report(0, 10.0);
  EXPECT_DOUBLE_EQ(family.estimated_cost(0), 10.0);
  family.report(0, 0.0);
  EXPECT_NEAR(family.estimated_cost(0), 8.0, 1e-12);  // alpha = 0.2
  EXPECT_EQ(family.calls(0), 2u);
}

TEST(OperationFamilyTest, OutOfRangeThrows) {
  OperationFamily family("f");
  family.register_implementation("a");
  EXPECT_THROW((void)family.estimated_cost(5), std::out_of_range);
  EXPECT_THROW(family.report(0, 1.0, 7), std::out_of_range);
}

TEST(TunedOperationTest, DispatchesAndLearns) {
  TunedOperation<void(int)> op("op", [] {
    OperationFamily::Options options;
    options.explore_rate = 0.0;
    return options;
  }());
  int a_calls = 0;
  int b_calls = 0;
  double fake_clock = 0.0;
  op.set_clock([&fake_clock] { return fake_clock; });
  op.add("slow", [&](int) {
    ++a_calls;
    fake_clock += 10.0;
  });
  op.add("fast", [&](int) {
    ++b_calls;
    fake_clock += 1.0;
  });
  for (int i = 0; i < 30; ++i) op(i);
  EXPECT_EQ(a_calls + b_calls, 30);
  EXPECT_GT(b_calls, a_calls);  // converged on the fast one
  EXPECT_EQ(op.family().incumbent(), 1u);
}

}  // namespace
}  // namespace ah::harmony
