#include "harmony/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ah::harmony {
namespace {

ParameterSpace small_space() {
  return ParameterSpace{{
      {"threads", 1, 512, 16},
      {"buffer_kb", 4, 4096, 64},
      {"cache_mem", 2, 512, 8},
  }};
}

TEST(ConfigIoTest, WriteProducesNameValueLines) {
  std::ostringstream out;
  write_configuration(out, small_space(), {32, 128, 21}, "tuned for browsing");
  EXPECT_EQ(out.str(),
            "# tuned for browsing\n"
            "threads = 32\n"
            "buffer_kb = 128\n"
            "cache_mem = 21\n");
}

TEST(ConfigIoTest, WriteArityMismatchThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_configuration(out, small_space(), {1, 2}),
               std::invalid_argument);
}

TEST(ConfigIoTest, RoundTrip) {
  const auto space = small_space();
  const PointI values{100, 2048, 300};
  std::stringstream stream;
  write_configuration(stream, space, values);
  EXPECT_EQ(read_configuration(stream, space), values);
}

TEST(ConfigIoTest, MissingNamesKeepDefaults) {
  std::istringstream in("threads = 99\n");
  EXPECT_EQ(read_configuration(in, small_space()), (PointI{99, 64, 8}));
}

TEST(ConfigIoTest, CommentsAndBlanksIgnored) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "threads = 7   # trailing comment\n"
      "   \t \n");
  EXPECT_EQ(read_configuration(in, small_space())[0], 7);
}

TEST(ConfigIoTest, WhitespaceTolerant) {
  std::istringstream in("  buffer_kb\t=   512  \n");
  EXPECT_EQ(read_configuration(in, small_space())[1], 512);
}

TEST(ConfigIoTest, UnknownNameThrows) {
  std::istringstream in("bogus = 1\n");
  EXPECT_THROW((void)read_configuration(in, small_space()),
               std::invalid_argument);
}

TEST(ConfigIoTest, MalformedLineThrows) {
  std::istringstream in("threads 32\n");
  EXPECT_THROW((void)read_configuration(in, small_space()),
               std::invalid_argument);
}

TEST(ConfigIoTest, BadValueThrows) {
  std::istringstream in("threads = lots\n");
  EXPECT_THROW((void)read_configuration(in, small_space()),
               std::invalid_argument);
  std::istringstream in2("threads = 12abc\n");
  EXPECT_THROW((void)read_configuration(in2, small_space()),
               std::invalid_argument);
}

TEST(ConfigIoTest, OutOfBoundsClamped) {
  std::istringstream in("threads = 100000\nbuffer_kb = 1\n");
  const auto values = read_configuration(in, small_space());
  EXPECT_EQ(values[0], 512);  // clamped to max
  EXPECT_EQ(values[1], 4);    // clamped to min
}

TEST(ConfigIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "config_io_test.conf";
  const auto space = small_space();
  const PointI values{10, 20, 30};
  save_configuration(path, space, values, "unit test");
  EXPECT_EQ(load_configuration(path, space), values);
  std::remove(path.c_str());
}

TEST(ConfigIoTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_configuration("/no/such/file.conf", small_space()),
               std::runtime_error);
}

TEST(ConfigIoTest, SaveToBadPathThrows) {
  EXPECT_THROW(
      save_configuration("/no-such-dir-xyz/f.conf", small_space(), {1, 2, 3}),
      std::runtime_error);
}

}  // namespace
}  // namespace ah::harmony
