#include "harmony/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace ah::harmony {
namespace {

using Objective = std::function<double(const PointI&)>;

/// Drives a tuner against an objective for a number of evaluations.
void drive(SimplexTuner& tuner, const Objective& objective,
           std::size_t evaluations) {
  for (std::size_t i = 0; i < evaluations; ++i) {
    tuner.tell(objective(tuner.ask()));
  }
}

ParameterSpace box(std::int64_t lo, std::int64_t hi, std::int64_t def,
                   std::size_t dims) {
  ParameterSpace space;
  for (std::size_t d = 0; d < dims; ++d) {
    space.add({"x" + std::to_string(d), lo, hi, def});
  }
  return space;
}

TEST(SimplexTunerTest, RejectsEmptySpace) {
  EXPECT_THROW(SimplexTuner tuner{ParameterSpace{}}, std::invalid_argument);
}

TEST(SimplexTunerTest, RejectsBadCoefficients) {
  SimplexOptions bad;
  bad.contraction = 1.5;
  EXPECT_THROW(SimplexTuner(box(0, 10, 5, 2), bad), std::invalid_argument);
  bad = SimplexOptions{};
  bad.expansion = 0.5;
  EXPECT_THROW(SimplexTuner(box(0, 10, 5, 2), bad), std::invalid_argument);
}

TEST(SimplexTunerTest, InitialBatchIsDimensionPlusOne) {
  SimplexTuner tuner(box(0, 100, 50, 4));
  EXPECT_EQ(tuner.pending().size(), 5u);
  EXPECT_EQ(tuner.phase(), SimplexTuner::Phase::kInit);
}

TEST(SimplexTunerTest, FirstAskIsDefaultConfiguration) {
  SimplexTuner tuner(box(0, 100, 50, 3));
  EXPECT_EQ(tuner.ask(), (PointI{50, 50, 50}));
}

TEST(SimplexTunerTest, InitialVerticesPerturbOneDimensionEach) {
  SimplexTuner tuner(box(0, 100, 50, 3));
  const auto pending = tuner.pending();
  ASSERT_EQ(pending.size(), 4u);
  for (std::size_t v = 1; v < pending.size(); ++v) {
    int changed = 0;
    for (std::size_t d = 0; d < 3; ++d) {
      if (pending[v][d] != 50) ++changed;
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST(SimplexTunerTest, PerturbationFlipsAtUpperBound) {
  // Default at the max: the offset must go downward to stay in bounds.
  ParameterSpace space;
  space.add({"x", 0, 100, 100});
  SimplexTuner tuner(space);
  const auto pending = tuner.pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_LT(pending[1][0], 100);
}

TEST(SimplexTunerTest, AllProposalsStayInBounds) {
  SimplexTuner tuner(box(-10, 10, 0, 3));
  common::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const PointI p = tuner.ask();
    for (std::size_t d = 0; d < p.size(); ++d) {
      EXPECT_GE(p[d], -10);
      EXPECT_LE(p[d], 10);
    }
    tuner.tell(rng.uniform());  // adversarial noise objective
  }
}

TEST(SimplexTunerTest, ConvergesOnQuadratic1D) {
  ParameterSpace space;
  space.add({"x", 0, 1000, 900});
  SimplexTuner tuner(std::move(space));
  drive(tuner, [](const PointI& p) {
    const double d = static_cast<double>(p[0]) - 300.0;
    return d * d;
  }, 120);
  EXPECT_NEAR(static_cast<double>(tuner.best()[0]), 300.0, 10.0);
}

TEST(SimplexTunerTest, ConvergesOnSphere3D) {
  SimplexTuner tuner(box(-500, 500, 400, 3));
  drive(tuner, [](const PointI& p) {
    double sum = 0.0;
    for (const auto v : p) {
      const double d = static_cast<double>(v) - 100.0;
      sum += d * d;
    }
    return sum;
  }, 400);
  for (const auto v : tuner.best()) {
    EXPECT_NEAR(static_cast<double>(v), 100.0, 40.0);
  }
}

TEST(SimplexTunerTest, HandlesRosenbrockWithoutDiverging) {
  SimplexTuner tuner(box(-200, 200, -150, 2));
  drive(tuner, [](const PointI& p) {
    const double x = static_cast<double>(p[0]) / 100.0;
    const double y = static_cast<double>(p[1]) / 100.0;
    return 100.0 * (y - x * x) * (y - x * x) + (1.0 - x) * (1.0 - x);
  }, 500);
  // Optimum at (100, 100) in lattice units; Rosenbrock is hard, accept the
  // valley floor.
  const double x = static_cast<double>(tuner.best()[0]) / 100.0;
  const double y = static_cast<double>(tuner.best()[1]) / 100.0;
  const double value =
      100.0 * (y - x * x) * (y - x * x) + (1.0 - x) * (1.0 - x);
  EXPECT_LT(value, 1.0);
}

TEST(SimplexTunerTest, BestNeverWorsens) {
  SimplexTuner tuner(box(0, 100, 50, 4));
  common::Rng rng(9);
  double best = 1e300;
  for (int i = 0; i < 200; ++i) {
    const PointI p = tuner.ask();
    double cost = 0;
    for (const auto v : p) cost += std::abs(static_cast<double>(v) - 70.0);
    cost += rng.uniform() * 3.0;  // noise
    tuner.tell(cost);
    best = std::min(best, cost);
    EXPECT_DOUBLE_EQ(tuner.best_cost(), best);
  }
}

TEST(SimplexTunerTest, EvaluationCountTracksTells) {
  SimplexTuner tuner(box(0, 10, 5, 2));
  EXPECT_EQ(tuner.evaluations(), 0u);
  tuner.tell(1.0);
  tuner.tell(2.0);
  EXPECT_EQ(tuner.evaluations(), 2u);
}

TEST(SimplexTunerTest, BatchReportEquivalentToSequential) {
  SimplexTuner a(box(0, 100, 50, 3));
  SimplexTuner b(box(0, 100, 50, 3));
  auto objective = [](const PointI& p) {
    double sum = 0;
    for (const auto v : p) sum += static_cast<double>(v * v);
    return sum;
  };
  // a: batch over the full init simplex.
  {
    const auto pending = a.pending();
    std::vector<double> costs;
    costs.reserve(pending.size());
    for (const auto& p : pending) costs.push_back(objective(p));
    a.report(costs);
  }
  // b: one at a time.
  for (std::size_t i = 0; i < 4; ++i) b.tell(objective(b.ask()));
  EXPECT_EQ(a.ask(), b.ask());  // same reflection point afterwards
}

TEST(SimplexTunerTest, ReportWrongCountThrows) {
  SimplexTuner tuner(box(0, 100, 50, 2));
  const std::vector<double> too_many{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_THROW(tuner.report(too_many), std::invalid_argument);
}

TEST(SimplexTunerTest, ShrinkProducesBatch) {
  // Force repeated contraction failures with an adversarial objective that
  // punishes every non-vertex point, eventually triggering a shrink whose
  // pending batch has n points.
  SimplexTuner tuner(box(0, 1000, 500, 3));
  int iterations = 0;
  bool saw_shrink_batch = false;
  common::Rng rng(2);
  while (iterations < 500 && !saw_shrink_batch) {
    const auto pending = tuner.pending();
    if (tuner.phase() == SimplexTuner::Phase::kShrink) {
      EXPECT_EQ(pending.size(), 3u);
      saw_shrink_batch = true;
      break;
    }
    tuner.tell(rng.uniform(0.0, 100.0));
    ++iterations;
  }
  EXPECT_TRUE(saw_shrink_batch);
}

TEST(SimplexTunerTest, DiameterShrinksOnConvergence) {
  SimplexTuner tuner(box(0, 1000, 800, 2));
  auto objective = [](const PointI& p) {
    double sum = 0;
    for (const auto v : p) {
      sum += (static_cast<double>(v) - 200.0) * (static_cast<double>(v) - 200.0);
    }
    return sum;
  };
  drive(tuner, objective, 30);
  const double early = tuner.diameter();
  drive(tuner, objective, 300);
  EXPECT_LT(tuner.diameter(), early);
}

TEST(SimplexTunerTest, DampExtremesKeepsProposalsOffBounds) {
  SimplexOptions options;
  options.damp_extremes = true;
  SimplexTuner tuner(box(0, 100, 50, 2), options);
  // Objective that pulls hard toward +infinity on dim 0 (best at bound).
  int at_bound = 0;
  for (int i = 0; i < 150; ++i) {
    const PointI p = tuner.ask();
    if (p[0] == 100) ++at_bound;
    tuner.tell(-static_cast<double>(p[0]));
  }
  // Damping lets the simplex approach but discourages jumping straight to
  // the boundary; undamped search hits the bound far more often.
  SimplexTuner undamped(box(0, 100, 50, 2));
  int undamped_at_bound = 0;
  for (int i = 0; i < 150; ++i) {
    const PointI p = undamped.ask();
    if (p[0] == 100) ++undamped_at_bound;
    undamped.tell(-static_cast<double>(p[0]));
  }
  EXPECT_LE(at_bound, undamped_at_bound);
}

TEST(SimplexTunerTest, SingleStepRangeParameterWorks) {
  // A [0,1] boolean-like parameter must not break the geometry.
  ParameterSpace space;
  space.add({"flag", 0, 1, 0});
  space.add({"x", 0, 100, 50});
  SimplexTuner tuner(std::move(space));
  drive(tuner, [](const PointI& p) {
    return static_cast<double>(p[0]) * 100.0 +
           std::abs(static_cast<double>(p[1]) - 20.0);
  }, 100);
  EXPECT_EQ(tuner.best()[0], 0);
  EXPECT_NEAR(static_cast<double>(tuner.best()[1]), 20.0, 10.0);
}

// Property sweep: convergence on shifted quadratics across dimensions.
class SimplexDimensionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimplexDimensionSweep, FindsInteriorOptimum) {
  const int dims = GetParam();
  auto objective = [](const PointI& p) {
    double sum = 0;
    for (const auto v : p) {
      const double d = static_cast<double>(v) - 60.0;
      sum += d * d;
    }
    return sum;
  };
  SimplexTuner tuner(box(0, 200, 180, static_cast<std::size_t>(dims)));
  const double initial_cost =
      objective(PointI(static_cast<std::size_t>(dims), 180));
  drive(tuner, objective, 150 * static_cast<std::size_t>(dims));
  if (dims <= 8) {
    // Low dimensions: the simplex should land near the optimum.
    double err = 0;
    for (const auto v : tuner.best()) {
      err = std::max(err, std::abs(static_cast<double>(v) - 60.0));
    }
    EXPECT_LT(err, 45.0) << "dims=" << dims;
  } else {
    // High dimensions: Nelder-Mead converges slowly (which is exactly why
    // the paper needs parameter duplication/partitioning); require a
    // substantial cost reduction rather than proximity.
    EXPECT_LT(tuner.best_cost(), initial_cost * 0.5) << "dims=" << dims;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexDimensionSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 23));

}  // namespace
}  // namespace ah::harmony
