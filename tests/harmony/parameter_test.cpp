#include "harmony/parameter.hpp"

#include <gtest/gtest.h>

namespace ah::harmony {
namespace {

ParameterSpace small_space() {
  return ParameterSpace{{
      {"a", 0, 10, 5},
      {"b", -5, 5, 0},
      {"c", 100, 1000, 100},
  }};
}

TEST(TunableParameterTest, RangeAndContains) {
  const TunableParameter p{"x", 2, 8, 4};
  EXPECT_EQ(p.range(), 6);
  EXPECT_TRUE(p.contains(2));
  EXPECT_TRUE(p.contains(8));
  EXPECT_FALSE(p.contains(1));
  EXPECT_FALSE(p.contains(9));
}

TEST(ParameterSpaceTest, AddValidatesBounds) {
  ParameterSpace space;
  EXPECT_THROW(space.add({"bad", 10, 5, 7}), std::invalid_argument);
  EXPECT_THROW(space.add({"bad", 0, 5, 7}), std::invalid_argument);
  EXPECT_EQ(space.add({"ok", 0, 5, 3}), 0u);
  EXPECT_EQ(space.add({"ok2", 0, 5, 3}), 1u);
}

TEST(ParameterSpaceTest, Accessors) {
  const auto space = small_space();
  EXPECT_EQ(space.dimensions(), 3u);
  EXPECT_FALSE(space.empty());
  EXPECT_EQ(space.parameter(1).name, "b");
  EXPECT_EQ(space.index_of("c"), 2u);
  EXPECT_THROW(static_cast<void>(space.index_of("zzz")), std::out_of_range);
}

TEST(ParameterSpaceTest, Defaults) {
  EXPECT_EQ(small_space().defaults(), (PointI{5, 0, 100}));
}

TEST(ParameterSpaceTest, Valid) {
  const auto space = small_space();
  EXPECT_TRUE(space.valid({5, 0, 100}));
  EXPECT_TRUE(space.valid({10, -5, 1000}));
  EXPECT_FALSE(space.valid({11, 0, 100}));   // out of bounds
  EXPECT_FALSE(space.valid({5, 0}));         // wrong arity
  EXPECT_FALSE(space.valid({5, 0, 99}));     // below min
}

TEST(ParameterSpaceTest, ProjectRoundsAndClamps) {
  const auto space = small_space();
  EXPECT_EQ(space.project({5.4, -0.6, 250.5}), (PointI{5, -1, 251}));
  EXPECT_EQ(space.project({-3.0, 99.0, 2000.0}), (PointI{0, 5, 1000}));
}

TEST(ParameterSpaceTest, ProjectArityMismatchThrows) {
  EXPECT_THROW((void)small_space().project({1.0}), std::invalid_argument);
}

TEST(ParameterSpaceTest, ClampBringsIntoBounds) {
  const auto space = small_space();
  EXPECT_EQ(space.clamp({100, -100, 0}), (PointI{10, -5, 100}));
  EXPECT_THROW((void)space.clamp({1, 2}), std::invalid_argument);
}

TEST(ParameterSpaceTest, RandomPointInBounds) {
  const auto space = small_space();
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(space.valid(space.random_point(rng)));
  }
}

TEST(ParameterSpaceTest, ToContinuous) {
  const PointD d = ParameterSpace::to_continuous({1, -2, 3});
  EXPECT_EQ(d, (PointD{1.0, -2.0, 3.0}));
}

TEST(ParameterSpaceTest, SubspaceSelectsDimensions) {
  const auto space = small_space();
  const std::vector<std::size_t> indices{2, 0};
  const auto sub = space.subspace(indices);
  ASSERT_EQ(sub.dimensions(), 2u);
  EXPECT_EQ(sub.parameter(0).name, "c");
  EXPECT_EQ(sub.parameter(1).name, "a");
}

TEST(ParameterSpaceTest, ScatterGatherRoundTrip) {
  const std::vector<std::size_t> indices{2, 0};
  PointI full{5, 0, 100};
  ParameterSpace::scatter(indices, {777, 9}, full);
  EXPECT_EQ(full, (PointI{9, 0, 777}));
  EXPECT_EQ(ParameterSpace::gather(indices, full), (PointI{777, 9}));
}

TEST(ParameterSpaceTest, ScatterArityMismatchThrows) {
  PointI full{1, 2, 3};
  const std::vector<std::size_t> indices{0};
  EXPECT_THROW(ParameterSpace::scatter(indices, {1, 2}, full),
               std::invalid_argument);
}

}  // namespace
}  // namespace ah::harmony
