#include "harmony/memory.hpp"

#include <gtest/gtest.h>

namespace ah::harmony {
namespace {

TEST(ConfigurationMemoryTest, EmptyRecallsNothing) {
  ConfigurationMemory memory;
  EXPECT_FALSE(memory.recall({0.5, 0.5}).has_value());
  EXPECT_EQ(memory.size(), 0u);
}

TEST(ConfigurationMemoryTest, ExactRecall) {
  ConfigurationMemory memory;
  memory.remember({0.95, 0.5}, {1, 2, 3}, 100.0, "browsing");
  const auto entry = memory.recall({0.95, 0.5});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->configuration, (PointI{1, 2, 3}));
  EXPECT_EQ(entry->label, "browsing");
}

TEST(ConfigurationMemoryTest, NearbyRecallWithinRadius) {
  ConfigurationMemory memory(0.25);
  memory.remember({0.95, 0.5}, {1}, 100.0);
  EXPECT_TRUE(memory.recall({0.90, 0.45}).has_value());
  EXPECT_FALSE(memory.recall({0.50, 0.50}).has_value());
}

TEST(ConfigurationMemoryTest, NearestWins) {
  ConfigurationMemory memory(0.5);
  memory.remember({0.0}, {10}, 1.0, "a");
  memory.remember({1.0}, {20}, 1.0, "b");
  EXPECT_EQ(memory.recall({0.1})->label, "a");
  EXPECT_EQ(memory.recall({0.9})->label, "b");
}

TEST(ConfigurationMemoryTest, UpgradeOnlyWithBetterPerformance) {
  ConfigurationMemory memory(0.25);
  memory.remember({0.5}, {1}, 100.0);
  memory.remember({0.5}, {2}, 50.0);  // worse: ignored
  EXPECT_EQ(memory.size(), 1u);
  EXPECT_EQ(memory.recall({0.5})->configuration, (PointI{1}));
  memory.remember({0.5}, {3}, 200.0);  // better: replaces
  EXPECT_EQ(memory.recall({0.5})->configuration, (PointI{3}));
  EXPECT_EQ(memory.size(), 1u);
}

TEST(ConfigurationMemoryTest, DistinctSignaturesAppend) {
  ConfigurationMemory memory(0.1);
  memory.remember({0.0}, {1}, 1.0);
  memory.remember({1.0}, {2}, 1.0);
  memory.remember({2.0}, {3}, 1.0);
  EXPECT_EQ(memory.size(), 3u);
}

TEST(ConfigurationMemoryTest, ArityMismatchNeverMatches) {
  ConfigurationMemory memory(10.0);
  memory.remember({0.5, 0.5}, {1}, 1.0);
  EXPECT_FALSE(memory.recall({0.5}).has_value());
}

TEST(ConfigurationMemoryTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(ConfigurationMemory::distance({0.0, 0.0}, {3.0, 4.0}),
                   5.0);
  EXPECT_TRUE(std::isinf(ConfigurationMemory::distance({0.0}, {0.0, 0.0})));
}

TEST(ConfigurationMemoryTest, ClearEmpties) {
  ConfigurationMemory memory;
  memory.remember({0.5}, {1}, 1.0);
  memory.clear();
  EXPECT_EQ(memory.size(), 0u);
  EXPECT_FALSE(memory.recall({0.5}).has_value());
}

}  // namespace
}  // namespace ah::harmony
