#include "cluster/node.hpp"

#include <gtest/gtest.h>

namespace ah::cluster {
namespace {

using common::SimTime;

class NodeTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  NodeHardware hw_{};
};

TEST_F(NodeTest, ResourcesMatchHardware) {
  hw_.cpu_cores = 4;
  Node node(sim_, 0, "n0", hw_);
  EXPECT_EQ(node.cpu().servers(), 4);
  EXPECT_EQ(node.disk().servers(), 1);
  EXPECT_EQ(node.nic().servers(), 1);
  EXPECT_EQ(node.id(), 0u);
  EXPECT_EQ(node.name(), "n0");
}

TEST_F(NodeTest, DiskTimeHasSeekFloor) {
  Node node(sim_, 0, "n0", hw_);
  const auto t0 = node.disk_time(0);
  EXPECT_NEAR(t0.as_seconds(), hw_.disk_seek_s, 1e-9);
  // Transfer adds on top of the seek.
  const auto t1 = node.disk_time(35'000'000);  // 1s at 35 MB/s
  EXPECT_NEAR(t1.as_seconds(), hw_.disk_seek_s + 1.0, 1e-6);
}

TEST_F(NodeTest, NicTimeScalesWithBytes) {
  Node node(sim_, 0, "n0", hw_);
  // 100 Mbps: 12'500'000 bytes per second.
  const auto t = node.nic_time(12'500'000);
  EXPECT_NEAR(t.as_seconds(), 1.0, 1e-6);
  EXPECT_EQ(node.nic_time(0), SimTime::zero());
}

TEST_F(NodeTest, FasterCpuShortensService) {
  hw_.cpu_speed = 2.0;
  Node node(sim_, 0, "n0", hw_);
  SimTime done = SimTime::zero();
  node.cpu().submit(SimTime::millis(10), [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done, SimTime::millis(5));
}

TEST_F(NodeTest, MemoryAccounting) {
  Node node(sim_, 0, "n0", hw_);
  EXPECT_EQ(node.memory_used(), 0);
  node.alloc_memory(100);
  node.alloc_memory(50);
  EXPECT_EQ(node.memory_used(), 150);
  node.free_memory(100);
  EXPECT_EQ(node.memory_used(), 50);
}

TEST_F(NodeTest, FreeBelowZeroClamps) {
  Node node(sim_, 0, "n0", hw_);
  node.alloc_memory(10);
  node.free_memory(100);
  EXPECT_EQ(node.memory_used(), 0);
}

TEST_F(NodeTest, MemoryPressureFraction) {
  hw_.memory = 1000;
  Node node(sim_, 0, "n0", hw_);
  node.alloc_memory(500);
  EXPECT_DOUBLE_EQ(node.memory_pressure(), 0.5);
  node.alloc_memory(1500);
  EXPECT_DOUBLE_EQ(node.memory_pressure(), 2.0);  // overcommit allowed
}

TEST_F(NodeTest, NoPagingSlowdownBelowThreshold) {
  hw_.memory = 1000;
  Node node(sim_, 0, "n0", hw_);
  node.alloc_memory(900);  // 90% < 95% threshold
  SimTime done = SimTime::zero();
  node.cpu().submit(SimTime::millis(10), [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done, SimTime::millis(10));
}

TEST_F(NodeTest, PagingSlowsCpuWhenOvercommitted) {
  hw_.memory = 1000;
  Node node(sim_, 0, "n0", hw_);
  node.alloc_memory(2000);  // 200% pressure
  SimTime done = SimTime::zero();
  node.cpu().submit(SimTime::millis(10), [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_GT(done, SimTime::millis(10));
}

TEST_F(NodeTest, PagingRecoversAfterFree) {
  hw_.memory = 1000;
  Node node(sim_, 0, "n0", hw_);
  node.alloc_memory(2000);
  node.free_memory(1500);
  SimTime done = SimTime::zero();
  node.cpu().submit(SimTime::millis(10), [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done, SimTime::millis(10));
}

TEST_F(NodeTest, UtilizationProbesDeltaBased) {
  Node node(sim_, 0, "n0", hw_);
  // Saturate both CPU cores for 10ms, then idle 10ms.
  node.cpu().submit(SimTime::millis(10), {});
  node.cpu().submit(SimTime::millis(10), {});
  sim_.run_until(SimTime::millis(10));
  EXPECT_NEAR(node.cpu_utilization_probe(), 1.0, 1e-9);
  sim_.run_until(SimTime::millis(20));
  EXPECT_NEAR(node.cpu_utilization_probe(), 0.0, 1e-9);
}

TEST_F(NodeTest, DiskAndNicProbes) {
  Node node(sim_, 0, "n0", hw_);
  node.disk().submit(SimTime::millis(5), {});
  node.nic().submit(SimTime::millis(2), {});
  sim_.run_until(SimTime::millis(10));
  EXPECT_NEAR(node.disk_utilization_probe(), 0.5, 1e-9);
  EXPECT_NEAR(node.nic_utilization_probe(), 0.2, 1e-9);
}

}  // namespace
}  // namespace ah::cluster
