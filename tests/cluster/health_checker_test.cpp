#include "cluster/health_checker.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace ah::cluster {
namespace {

using common::SimTime;

class HealthCheckerTest : public ::testing::Test {
 protected:
  HealthCheckerTest() {
    for (int i = 0; i < 3; ++i) cluster_.add_node(hw_, TierKind::kApp);
  }

  HealthChecker::Config fast_config() {
    HealthChecker::Config config;
    config.period = SimTime::millis(100);
    config.mark_down_after = 2;
    config.mark_up_after = 2;
    return config;
  }

  sim::Simulator sim_;
  Cluster cluster_{sim_};
  NodeHardware hw_{};
};

TEST_F(HealthCheckerTest, HealthyNodesStayMarkedUp) {
  HealthChecker checker(sim_, cluster_, fast_config());
  checker.start();
  sim_.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(checker.transitions(), 0u);
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_TRUE(checker.node_up(id));
    EXPECT_TRUE(cluster_.node(id).marked_up());
  }
  // 10 ticks x 3 nodes.
  EXPECT_EQ(checker.probes_sent(), 30u);
}

TEST_F(HealthCheckerTest, CrashMarksDownWithinProbeBudget) {
  const auto config = fast_config();
  HealthChecker checker(sim_, cluster_, config);
  checker.start();
  sim_.run_until(SimTime::seconds(1.0));

  cluster_.node(1).set_alive(false);
  const SimTime crashed_at = sim_.now();
  sim_.run_until(crashed_at + HealthChecker::probe_budget(config));
  EXPECT_FALSE(checker.node_up(1));
  EXPECT_FALSE(cluster_.node(1).marked_up());
  EXPECT_FALSE(cluster_.tier(TierKind::kApp).member_healthy(1));
  EXPECT_EQ(cluster_.tier(TierKind::kApp).healthy_count(), 2u);
  // Untouched nodes keep their mark.
  EXPECT_TRUE(checker.node_up(0));
  EXPECT_TRUE(checker.node_up(2));
}

TEST_F(HealthCheckerTest, SingleMissedProbeDoesNotFlip) {
  // mark_down_after = 2: one failed probe must never change routing.
  HealthChecker checker(sim_, cluster_, fast_config());
  checker.start();
  cluster_.node(0).set_alive(false);
  sim_.run_until(SimTime::millis(150));  // exactly one probe tick
  EXPECT_TRUE(checker.node_up(0));
  cluster_.node(0).set_alive(true);
  sim_.run_until(SimTime::seconds(1.0));
  EXPECT_TRUE(checker.node_up(0));
  EXPECT_EQ(checker.transitions(), 0u);
}

TEST_F(HealthCheckerTest, RecoveryMarksUpAfterHysteresis) {
  HealthChecker checker(sim_, cluster_, fast_config());
  std::vector<std::pair<NodeId, bool>> log;
  checker.set_transition_observer(
      [&log](NodeId id, bool up) { log.emplace_back(id, up); });
  checker.start();

  cluster_.node(2).set_alive(false);
  sim_.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(checker.node_up(2));

  cluster_.node(2).set_alive(true);
  sim_.run_until(SimTime::seconds(2.0));
  EXPECT_TRUE(checker.node_up(2));
  EXPECT_TRUE(cluster_.node(2).marked_up());
  EXPECT_EQ(cluster_.tier(TierKind::kApp).healthy_count(), 3u);

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<NodeId, bool>{2, false}));
  EXPECT_EQ(log[1], (std::pair<NodeId, bool>{2, true}));
  EXPECT_EQ(checker.transitions(), 2u);
}

TEST_F(HealthCheckerTest, StopHaltsProbing) {
  HealthChecker checker(sim_, cluster_, fast_config());
  checker.start();
  sim_.run_until(SimTime::seconds(0.5));
  checker.stop();
  EXPECT_FALSE(checker.running());
  const auto probes = checker.probes_sent();
  cluster_.node(0).set_alive(false);
  sim_.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(checker.probes_sent(), probes);
  EXPECT_TRUE(checker.node_up(0));  // nobody noticed — probing is off
}

TEST_F(HealthCheckerTest, ProbeBudgetAndDowntimeAccounting) {
  // One crash-and-recover cycle, checked against every exported metric:
  // the failed-probe count (the probe budget being consumed), the
  // mark-down/mark-up transition tallies, the live nodes_down gauge, and
  // the aggregate marked-down node-time.
  HealthChecker checker(sim_, cluster_, fast_config());
  checker.start();
  sim_.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(checker.failed_probes(), 0u);
  EXPECT_EQ(checker.nodes_down(), 0);
  EXPECT_EQ(checker.total_downtime(), SimTime::zero());

  cluster_.node(1).set_alive(false);
  sim_.run_until(SimTime::seconds(2.0));
  ASSERT_FALSE(checker.node_up(1));
  // mark_down_after = 2 consecutive failures, and every later tick on the
  // still-dead node keeps failing.
  EXPECT_GE(checker.failed_probes(), 2u);
  EXPECT_EQ(checker.mark_downs(), 1u);
  EXPECT_EQ(checker.mark_ups(), 0u);
  EXPECT_EQ(checker.nodes_down(), 1);
  // The window is still open: downtime accrues up to now and keeps
  // growing while the node stays marked down.
  const SimTime open_window = checker.total_downtime();
  EXPECT_GT(open_window, SimTime::zero());
  sim_.run_until(SimTime::seconds(2.5));
  EXPECT_GT(checker.total_downtime(), open_window);

  cluster_.node(1).set_alive(true);
  sim_.run_until(SimTime::seconds(4.0));
  ASSERT_TRUE(checker.node_up(1));
  EXPECT_EQ(checker.mark_ups(), 1u);
  EXPECT_EQ(checker.nodes_down(), 0);
  // Closed window: the total is frozen once everyone is back up.
  const SimTime closed = checker.total_downtime();
  EXPECT_GT(closed, open_window);
  sim_.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(checker.total_downtime(), closed);
}

TEST_F(HealthCheckerTest, CoversNodesAddedMidRun) {
  HealthChecker checker(sim_, cluster_, fast_config());
  checker.start();
  sim_.run_until(SimTime::seconds(0.5));
  const auto id = cluster_.add_node(hw_, TierKind::kApp);
  cluster_.node(id).set_alive(false);
  sim_.run_until(SimTime::seconds(1.5));
  EXPECT_FALSE(checker.node_up(id));
}

}  // namespace
}  // namespace ah::cluster
