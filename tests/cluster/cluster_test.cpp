#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace ah::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Cluster cluster_{sim_};
  NodeHardware hw_{};
};

TEST_F(ClusterTest, AddNodeAssignsSequentialIds) {
  EXPECT_EQ(cluster_.add_node(hw_, TierKind::kProxy), 0u);
  EXPECT_EQ(cluster_.add_node(hw_, TierKind::kApp), 1u);
  EXPECT_EQ(cluster_.node_count(), 2u);
}

TEST_F(ClusterTest, TierMembershipRecorded) {
  const auto p = cluster_.add_node(hw_, TierKind::kProxy);
  const auto a = cluster_.add_node(hw_, TierKind::kApp);
  const auto d = cluster_.add_node(hw_, TierKind::kDb);
  EXPECT_EQ(cluster_.tier_of(p), TierKind::kProxy);
  EXPECT_EQ(cluster_.tier_of(a), TierKind::kApp);
  EXPECT_EQ(cluster_.tier_of(d), TierKind::kDb);
  EXPECT_TRUE(cluster_.tier(TierKind::kProxy).contains(p));
}

TEST_F(ClusterTest, NodesInTierOrdered) {
  const auto a = cluster_.add_node(hw_, TierKind::kApp);
  const auto b = cluster_.add_node(hw_, TierKind::kApp);
  auto nodes = cluster_.nodes_in(TierKind::kApp);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0]->id(), a);
  EXPECT_EQ(nodes[1]->id(), b);
}

TEST_F(ClusterTest, MoveNodeUpdatesMembership) {
  const auto p1 = cluster_.add_node(hw_, TierKind::kProxy);
  cluster_.add_node(hw_, TierKind::kProxy);
  cluster_.add_node(hw_, TierKind::kApp);
  cluster_.move_node(p1, TierKind::kApp);
  EXPECT_EQ(cluster_.tier_of(p1), TierKind::kApp);
  EXPECT_EQ(cluster_.tier(TierKind::kProxy).size(), 1u);
  EXPECT_EQ(cluster_.tier(TierKind::kApp).size(), 2u);
}

TEST_F(ClusterTest, MoveLastNodeThrows) {
  const auto p = cluster_.add_node(hw_, TierKind::kProxy);
  cluster_.add_node(hw_, TierKind::kApp);
  EXPECT_THROW(cluster_.move_node(p, TierKind::kApp), std::logic_error);
}

TEST_F(ClusterTest, MoveToSameTierIsNoop) {
  const auto p = cluster_.add_node(hw_, TierKind::kProxy);
  bool observed = false;
  cluster_.set_move_observer(
      [&](NodeId, TierKind, TierKind) { observed = true; });
  cluster_.move_node(p, TierKind::kProxy);
  EXPECT_FALSE(observed);
}

TEST_F(ClusterTest, MoveObserverFires) {
  const auto p1 = cluster_.add_node(hw_, TierKind::kProxy);
  cluster_.add_node(hw_, TierKind::kProxy);
  NodeId moved = 999;
  TierKind from{};
  TierKind to{};
  cluster_.set_move_observer([&](NodeId id, TierKind f, TierKind t) {
    moved = id;
    from = f;
    to = t;
  });
  cluster_.move_node(p1, TierKind::kDb);
  EXPECT_EQ(moved, p1);
  EXPECT_EQ(from, TierKind::kProxy);
  EXPECT_EQ(to, TierKind::kDb);
}

TEST_F(ClusterTest, NodeAccessOutOfRangeThrows) {
  EXPECT_THROW(static_cast<void>(cluster_.node(0)), std::out_of_range);
}

TEST_F(ClusterTest, NodesGetDistinctNames) {
  const auto a = cluster_.add_node(hw_, TierKind::kProxy);
  const auto b = cluster_.add_node(hw_, TierKind::kProxy);
  EXPECT_NE(cluster_.node(a).name(), cluster_.node(b).name());
}

}  // namespace
}  // namespace ah::cluster
