#include "cluster/network.hpp"

#include <gtest/gtest.h>

namespace ah::cluster {
namespace {

using common::SimTime;

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Network net_{sim_};
  NodeHardware hw_{};
};

TEST_F(NetworkTest, DeliveryAfterSerializationPlusLatency) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  SimTime delivered = SimTime::zero();
  // 12'500 bytes at 100 Mbps = 1 ms serialization; +200 us latency.
  net_.send(a, b, 12'500, [&] { delivered = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered, SimTime::micros(1200));
}

TEST_F(NetworkTest, SenderNicCharged) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  net_.send(a, b, 12'500, [] {});
  sim_.run();
  EXPECT_EQ(a.nic().completed(), 1u);
  EXPECT_EQ(b.nic().completed(), 0u);
}

TEST_F(NetworkTest, LoopbackIsFree) {
  Node a(sim_, 0, "a", hw_);
  SimTime delivered = SimTime::millis(99);
  net_.send(a, a, 1'000'000, [&] { delivered = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered, SimTime::zero());
  EXPECT_EQ(a.nic().completed(), 0u);
}

TEST_F(NetworkTest, ConcurrentSendsSerializeOnNic) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  SimTime first = SimTime::zero();
  SimTime second = SimTime::zero();
  net_.send(a, b, 12'500, [&] { first = sim_.now(); });
  net_.send(a, b, 12'500, [&] { second = sim_.now(); });
  sim_.run();
  EXPECT_EQ(first, SimTime::micros(1200));
  // Second message waits for the NIC: 2 ms serialization total.
  EXPECT_EQ(second, SimTime::micros(2200));
}

TEST_F(NetworkTest, CountsTraffic) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  net_.send(a, b, 100, [] {});
  net_.send(b, a, 200, [] {});
  sim_.run();
  EXPECT_EQ(net_.messages_sent(), 2u);
  EXPECT_EQ(net_.bytes_sent(), 300);
}

}  // namespace
}  // namespace ah::cluster
