#include "cluster/network.hpp"

#include <gtest/gtest.h>

namespace ah::cluster {
namespace {

using common::SimTime;

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Network net_{sim_};
  NodeHardware hw_{};
};

TEST_F(NetworkTest, DeliveryAfterSerializationPlusLatency) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  SimTime delivered = SimTime::zero();
  // 12'500 bytes at 100 Mbps = 1 ms serialization; +200 us latency.
  net_.send(a, b, 12'500, [&] { delivered = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered, SimTime::micros(1200));
}

TEST_F(NetworkTest, SenderNicCharged) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  net_.send(a, b, 12'500, [] {});
  sim_.run();
  EXPECT_EQ(a.nic().completed(), 1u);
  EXPECT_EQ(b.nic().completed(), 0u);
}

TEST_F(NetworkTest, LoopbackIsFree) {
  Node a(sim_, 0, "a", hw_);
  SimTime delivered = SimTime::millis(99);
  net_.send(a, a, 1'000'000, [&] { delivered = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered, SimTime::zero());
  EXPECT_EQ(a.nic().completed(), 0u);
}

TEST_F(NetworkTest, ConcurrentSendsSerializeOnNic) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  SimTime first = SimTime::zero();
  SimTime second = SimTime::zero();
  net_.send(a, b, 12'500, [&] { first = sim_.now(); });
  net_.send(a, b, 12'500, [&] { second = sim_.now(); });
  sim_.run();
  EXPECT_EQ(first, SimTime::micros(1200));
  // Second message waits for the NIC: 2 ms serialization total.
  EXPECT_EQ(second, SimTime::micros(2200));
}

TEST_F(NetworkTest, FanOutCoalescesOntoQueuedTailWithExactTimes) {
  net_.set_destination_batching(true);
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  SimTime first = SimTime::zero();
  SimTime second = SimTime::zero();
  SimTime third = SimTime::zero();
  // 12'500 bytes = 1 ms serialization each.  The first send starts at
  // once (no batch window); the second queues and opens the window; the
  // third folds into the second's NIC job.
  net_.send(a, b, 12'500, [&] { first = sim_.now(); });
  net_.send(a, b, 12'500, [&] { second = sim_.now(); });
  net_.send(a, b, 12'500, [&] { third = sim_.now(); });
  sim_.run();
  // Delivery times are exactly the unbatched schedule.
  EXPECT_EQ(first, SimTime::micros(1200));
  EXPECT_EQ(second, SimTime::micros(2200));
  EXPECT_EQ(third, SimTime::micros(3200));
  EXPECT_EQ(net_.batches_coalesced(), 1u);
  EXPECT_EQ(net_.messages_batched(), 2u);
  // Two NIC queue operations served three messages.
  EXPECT_EQ(a.nic().completed(), 2u);
}

TEST_F(NetworkTest, InterleavedDestinationClosesBatchWindow) {
  net_.set_destination_batching(true);
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  Node c(sim_, 2, "c", hw_);
  std::vector<std::pair<int, SimTime>> delivered;
  net_.send(a, b, 12'500, [&] { delivered.push_back({1, sim_.now()}); });
  net_.send(a, b, 12'500, [&] { delivered.push_back({2, sim_.now()}); });
  net_.send(a, c, 12'500, [&] { delivered.push_back({3, sim_.now()}); });
  net_.send(a, b, 12'500, [&] { delivered.push_back({4, sim_.now()}); });
  sim_.run();
  // The send to c closed b's window, and its own slot does not accept the
  // final b message either: strict per-message FIFO times.
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered[0], (std::pair<int, SimTime>{1, SimTime::micros(1200)}));
  EXPECT_EQ(delivered[1], (std::pair<int, SimTime>{2, SimTime::micros(2200)}));
  EXPECT_EQ(delivered[2], (std::pair<int, SimTime>{3, SimTime::micros(3200)}));
  EXPECT_EQ(delivered[3], (std::pair<int, SimTime>{4, SimTime::micros(4200)}));
  EXPECT_EQ(net_.batches_coalesced(), 0u);
  EXPECT_EQ(net_.messages_batched(), 0u);
}

TEST_F(NetworkTest, BatchWindowClosesWhenJobStartsSerializing) {
  net_.set_destination_batching(true);
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  SimTime late = SimTime::zero();
  net_.send(a, b, 12'500, [] {});
  net_.send(a, b, 12'500, [] {});  // queued: window opens
  // By 1.5 ms the queued job is serializing (started at 1 ms), so this
  // send must get its own NIC job, not ride the old window.
  sim_.schedule(SimTime::micros(1500), [&] {
    net_.send(a, b, 12'500, [&] { late = sim_.now(); });
  });
  sim_.run();
  EXPECT_EQ(net_.batches_coalesced(), 0u);
  // Queued at 1.5 ms, serializes 2-3 ms, +200 us latency.
  EXPECT_EQ(late, SimTime::micros(3200));
}

TEST_F(NetworkTest, SlowdownScalesBatchedDeliveries) {
  net_.set_destination_batching(true);
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  a.nic().set_slowdown(2.0);
  SimTime first = SimTime::zero();
  SimTime second = SimTime::zero();
  SimTime third = SimTime::zero();
  net_.send(a, b, 12'500, [&] { first = sim_.now(); });
  net_.send(a, b, 12'500, [&] { second = sim_.now(); });
  net_.send(a, b, 12'500, [&] { third = sim_.now(); });
  sim_.run();
  // Each 1 ms demand serves for 2 ms; member prefixes scale the same way.
  EXPECT_EQ(first, SimTime::micros(2200));
  EXPECT_EQ(second, SimTime::micros(4200));
  EXPECT_EQ(third, SimTime::micros(6200));
  EXPECT_EQ(net_.batches_coalesced(), 1u);
}

TEST_F(NetworkTest, DroppedMessageStillChargesNicAndBlocksCoalescing) {
  net_.set_destination_batching(true);
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  Node c(sim_, 2, "c", hw_);
  net_.set_link_fault(a.id(), c.id(), /*drop=*/1.0, SimTime::zero());
  std::vector<std::pair<int, SimTime>> delivered;
  net_.send(a, b, 12'500, [&] { delivered.push_back({1, sim_.now()}); });
  net_.send(a, b, 12'500, [&] { delivered.push_back({2, sim_.now()}); });
  // Dropped, but its serialization still queues on the NIC — the batch
  // window's job is no longer the queue tail afterwards.
  EXPECT_FALSE(net_.send(a, c, 12'500, [&] { delivered.push_back({3, sim_.now()}); }));
  net_.send(a, b, 12'500, [&] { delivered.push_back({4, sim_.now()}); });
  sim_.run();
  EXPECT_EQ(net_.messages_dropped(), 1u);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], (std::pair<int, SimTime>{1, SimTime::micros(1200)}));
  EXPECT_EQ(delivered[1], (std::pair<int, SimTime>{2, SimTime::micros(2200)}));
  // The dropped frame occupied the wire for 2-3 ms.
  EXPECT_EQ(delivered[2], (std::pair<int, SimTime>{4, SimTime::micros(4200)}));
  EXPECT_EQ(a.nic().completed(), 4u);
}

TEST_F(NetworkTest, CountsTraffic) {
  Node a(sim_, 0, "a", hw_);
  Node b(sim_, 1, "b", hw_);
  net_.send(a, b, 100, [] {});
  net_.send(b, a, 200, [] {});
  sim_.run();
  EXPECT_EQ(net_.messages_sent(), 2u);
  EXPECT_EQ(net_.bytes_sent(), 300);
}

}  // namespace
}  // namespace ah::cluster
