#include "cluster/load_balancer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ah::cluster {
namespace {

TEST(LoadBalancerTest, RoundRobinCycles) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(lb.pick(3));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(LoadBalancerTest, RoundRobinSingleBackend) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(lb.pick(1), 0u);
}

TEST(LoadBalancerTest, RoundRobinResetRestartsCycle) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  static_cast<void>(lb.pick(3));
  static_cast<void>(lb.pick(3));
  lb.reset();
  EXPECT_EQ(lb.pick(3), 0u);
}

TEST(LoadBalancerTest, RoundRobinHandlesBackendCountChange) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  static_cast<void>(lb.pick(3));
  static_cast<void>(lb.pick(3));
  // Shrink to 2 backends: pick stays in range.
  for (int i = 0; i < 10; ++i) EXPECT_LT(lb.pick(2), 2u);
}

TEST(LoadBalancerTest, LeastLoadedPicksMinimum) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  const std::vector<double> loads{5.0, 1.0, 3.0};
  EXPECT_EQ(lb.pick(3, [&](std::size_t i) { return loads[i]; }), 1u);
}

TEST(LoadBalancerTest, LeastLoadedTieBreaksToFirst) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  EXPECT_EQ(lb.pick(4, [](std::size_t) { return 2.0; }), 0u);
}

TEST(LoadBalancerTest, LeastLoadedWithoutLoadFnDefaultsToFirst) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  EXPECT_EQ(lb.pick(4), 0u);
}

TEST(LoadBalancerTest, RandomStaysInRange) {
  LoadBalancer lb(BalancePolicy::kRandom, 99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(lb.pick(7), 7u);
}

TEST(LoadBalancerTest, RandomCoversAllBackends) {
  LoadBalancer lb(BalancePolicy::kRandom, 7);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[lb.pick(3)];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [_, count] : counts) EXPECT_GT(count, 800);
}

TEST(LoadBalancerTest, RandomDeterministicPerSeed) {
  LoadBalancer a(BalancePolicy::kRandom, 5);
  LoadBalancer b(BalancePolicy::kRandom, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.pick(10), b.pick(10));
}

}  // namespace
}  // namespace ah::cluster
