#include "cluster/load_balancer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ah::cluster {
namespace {

TEST(LoadBalancerTest, RoundRobinCycles) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(lb.pick(3));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(LoadBalancerTest, RoundRobinSingleBackend) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(lb.pick(1), 0u);
}

TEST(LoadBalancerTest, RoundRobinResetRestartsCycle) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  static_cast<void>(lb.pick(3));
  static_cast<void>(lb.pick(3));
  lb.reset();
  EXPECT_EQ(lb.pick(3), 0u);
}

TEST(LoadBalancerTest, RoundRobinHandlesBackendCountChange) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  static_cast<void>(lb.pick(3));
  static_cast<void>(lb.pick(3));
  // Shrink to 2 backends: pick stays in range.
  for (int i = 0; i < 10; ++i) EXPECT_LT(lb.pick(2), 2u);
}

TEST(LoadBalancerTest, LeastLoadedPicksMinimum) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  const std::vector<double> loads{5.0, 1.0, 3.0};
  EXPECT_EQ(lb.pick(3, [&](std::size_t i) { return loads[i]; }), 1u);
}

TEST(LoadBalancerTest, LeastLoadedTieBreaksToFirst) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  EXPECT_EQ(lb.pick(4, [](std::size_t) { return 2.0; }), 0u);
}

TEST(LoadBalancerTest, LeastLoadedWithoutLoadFnDefaultsToFirst) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  EXPECT_EQ(lb.pick(4), 0u);
}

TEST(LoadBalancerTest, RandomStaysInRange) {
  LoadBalancer lb(BalancePolicy::kRandom, 99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(lb.pick(7), 7u);
}

TEST(LoadBalancerTest, RandomCoversAllBackends) {
  LoadBalancer lb(BalancePolicy::kRandom, 7);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[lb.pick(3)];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [_, count] : counts) EXPECT_GT(count, 800);
}

TEST(LoadBalancerTest, RandomDeterministicPerSeed) {
  LoadBalancer a(BalancePolicy::kRandom, 5);
  LoadBalancer b(BalancePolicy::kRandom, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.pick(10), b.pick(10));
}

// -- Availability mask -------------------------------------------------------

TEST(LoadBalancerTest, MaskedRoundRobinSkipsUnavailable) {
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  const auto avail = [](std::size_t i) { return i != 1; };
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(lb.pick(3, {}, avail));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 2, 0, 2, 0, 2}));
}

TEST(LoadBalancerTest, MaskedRoundRobinSpreadsEvenlyOverHealthySubset) {
  // The naive fix — advance the cursor modulo n, then skip forward to the
  // next available backend — lands twice as often on the survivor that
  // follows a masked-out backend.  The cursor must count *picks*, not
  // backend indices, for an even spread.
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  const auto avail = [](std::size_t i) { return i != 2; };
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 900; ++i) ++counts[lb.pick(4, {}, avail)];
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 300);
  EXPECT_EQ(counts[1], 300);
  EXPECT_EQ(counts[3], 300);
}

TEST(LoadBalancerTest, MaskedRoundRobinUnmaskedSequenceUnchanged) {
  // An all-true mask must reproduce the unmasked sequence exactly
  // (golden-run byte-identity when fault tolerance is enabled but no
  // fault ever fires).
  LoadBalancer masked(BalancePolicy::kRoundRobin);
  LoadBalancer plain(BalancePolicy::kRoundRobin);
  const auto all = [](std::size_t) { return true; };
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(masked.pick(3, {}, all), plain.pick(3));
  }
}

TEST(LoadBalancerTest, MaskedLeastLoadedSkipsUnavailable) {
  LoadBalancer lb(BalancePolicy::kLeastLoaded);
  const std::vector<double> loads{5.0, 1.0, 3.0};
  EXPECT_EQ(lb.pick(
                3, [&](std::size_t i) { return loads[i]; },
                [](std::size_t i) { return i != 1; }),
            2u);
}

TEST(LoadBalancerTest, MaskedRandomPicksOnlyAvailable) {
  LoadBalancer lb(BalancePolicy::kRandom, 11);
  const auto avail = [](std::size_t i) { return i % 2 == 0; };
  for (int i = 0; i < 500; ++i) {
    const auto pick = lb.pick(6, {}, avail);
    EXPECT_EQ(pick % 2, 0u);
  }
}

TEST(LoadBalancerTest, FullyMaskedFallsBackToAll) {
  // An all-false mask is ignored (callers fail fast before picking, but
  // the balancer itself must not divide by the empty subset).
  LoadBalancer lb(BalancePolicy::kRoundRobin);
  const auto none = [](std::size_t) { return false; };
  EXPECT_LT(lb.pick(3, {}, none), 3u);
}

}  // namespace
}  // namespace ah::cluster
