#include "cluster/tier.hpp"

#include <gtest/gtest.h>

namespace ah::cluster {
namespace {

TEST(TierNamesTest, AllNamed) {
  EXPECT_EQ(tier_name(TierKind::kProxy), "proxy");
  EXPECT_EQ(tier_name(TierKind::kApp), "app");
  EXPECT_EQ(tier_name(TierKind::kDb), "db");
}

TEST(TierIndexTest, StableIndices) {
  EXPECT_EQ(tier_index(TierKind::kProxy), 0u);
  EXPECT_EQ(tier_index(TierKind::kApp), 1u);
  EXPECT_EQ(tier_index(TierKind::kDb), 2u);
  EXPECT_EQ(kTierCount, 3u);
}

TEST(TierTest, StartsEmpty) {
  Tier tier(TierKind::kApp);
  EXPECT_TRUE(tier.empty());
  EXPECT_EQ(tier.size(), 0u);
  EXPECT_EQ(tier.kind(), TierKind::kApp);
}

TEST(TierTest, AddPreservesOrder) {
  Tier tier(TierKind::kProxy);
  tier.add(5);
  tier.add(2);
  tier.add(9);
  EXPECT_EQ(tier.members(), (std::vector<NodeId>{5, 2, 9}));
  EXPECT_EQ(tier.size(), 3u);
}

TEST(TierTest, ContainsReflectsMembership) {
  Tier tier(TierKind::kDb);
  tier.add(7);
  EXPECT_TRUE(tier.contains(7));
  EXPECT_FALSE(tier.contains(8));
}

TEST(TierTest, RemoveExisting) {
  Tier tier(TierKind::kProxy);
  tier.add(1);
  tier.add(2);
  EXPECT_TRUE(tier.remove(1));
  EXPECT_EQ(tier.members(), (std::vector<NodeId>{2}));
}

TEST(TierTest, RemoveMissingReturnsFalse) {
  Tier tier(TierKind::kProxy);
  tier.add(1);
  EXPECT_FALSE(tier.remove(99));
  EXPECT_EQ(tier.size(), 1u);
}

}  // namespace
}  // namespace ah::cluster
