#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ah::obs {
namespace {

TEST(RegistryTest, EmptyRegistrySnapshotsAreWellFormed) {
  Registry reg;
  EXPECT_EQ(reg.json_string(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
  EXPECT_EQ(reg.csv_string(), "metric,value\n");
}

TEST(RegistryTest, PullHappensAtSnapshotTime) {
  Registry reg;
  std::uint64_t value = 1;
  reg.add_counter("calls", [&value] { return value; });
  EXPECT_EQ(reg.counter_value("calls"), 1u);
  value = 42;
  EXPECT_EQ(reg.counter_value("calls"), 42u);
  EXPECT_NE(reg.json_string().find("\"calls\": 42"), std::string::npos);
}

TEST(RegistryTest, UnknownCounterReadsZero) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("no_such_metric"), 0u);
}

TEST(RegistryTest, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.add_counter("zulu", [] { return std::uint64_t{1}; });
  reg.add_counter("alpha", [] { return std::uint64_t{2}; });
  const std::string json = reg.json_string();
  EXPECT_LT(json.find("zulu"), json.find("alpha"));
  const std::string csv = reg.csv_string();
  EXPECT_LT(csv.find("zulu"), csv.find("alpha"));
}

TEST(RegistryTest, JsonSnapshotHasFixedFormats) {
  Registry reg;
  reg.add_counter("net.sent", [] { return std::uint64_t{7}; });
  reg.add_gauge("util.cpu", [] { return 0.25; });
  Histogram h;
  h.record_us(10);
  h.record_us(20);
  reg.add_histogram("lat", &h);
  EXPECT_EQ(reg.json_string(),
            "{\n"
            "  \"counters\": {\n"
            "    \"net.sent\": 7\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"util.cpu\": 0.250000\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"lat\": {\"count\": 2, \"min_us\": 10, \"mean_us\": 15.000,"
            " \"p50_us\": 10, \"p95_us\": 20, \"p99_us\": 20, \"max_us\": 20}\n"
            "  }\n"
            "}\n");
}

TEST(RegistryTest, CsvExpandsHistograms) {
  Registry reg;
  Histogram h;
  h.record_us(10);
  reg.add_histogram("lat", &h);
  EXPECT_EQ(reg.csv_string(),
            "metric,value\n"
            "lat.count,1\n"
            "lat.min_us,10\n"
            "lat.mean_us,10.000\n"
            "lat.p50_us,10\n"
            "lat.p95_us,10\n"
            "lat.p99_us,10\n"
            "lat.max_us,10\n");
}

TEST(RegistryTest, CountsBySourceKind) {
  Registry reg;
  reg.add_counter("a", [] { return std::uint64_t{0}; });
  reg.add_counter("b", [] { return std::uint64_t{0}; });
  reg.add_gauge("c", [] { return 0.0; });
  Histogram h;
  reg.add_histogram("d", &h);
  EXPECT_EQ(reg.counter_count(), 2u);
  EXPECT_EQ(reg.gauge_count(), 1u);
  EXPECT_EQ(reg.histogram_count(), 1u);
}

TEST(RegistryTest, WriteJsonRoundTrips) {
  Registry reg;
  reg.add_counter("x", [] { return std::uint64_t{3}; });
  const std::string path = ::testing::TempDir() + "/registry_test_metrics.json";
  ASSERT_TRUE(reg.write_json(path));
  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof buf, in) != nullptr) content += buf;
  std::fclose(in);
  std::remove(path.c_str());
  EXPECT_EQ(content, reg.json_string());
}

TEST(RegistryTest, WriteToUnwritablePathFails) {
  Registry reg;
  EXPECT_FALSE(reg.write_json("/nonexistent-dir/metrics.json"));
  EXPECT_FALSE(reg.write_csv("/nonexistent-dir/metrics.csv"));
}

}  // namespace
}  // namespace ah::obs
