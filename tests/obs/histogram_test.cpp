#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace ah::obs {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_us(), 0u);
  EXPECT_EQ(h.min_us(), 0u);
  EXPECT_EQ(h.max_us(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 0.0);
  EXPECT_EQ(h.percentile_us(0.5), 0u);
  EXPECT_EQ(h.p99_us(), 0u);
}

TEST(HistogramTest, ValuesBelow32AreExact) {
  // Group 0 has one bucket per microsecond, so every percentile of a
  // sub-32 us distribution is exact.
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record_us(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min_us(), 0u);
  EXPECT_EQ(h.max_us(), 31u);
  // rank = ceil(0.5 * 32) = 16 -> 16th smallest value = 15.
  EXPECT_EQ(h.p50_us(), 15u);
  // rank = ceil(0.25 * 32) = 8 -> value 7.
  EXPECT_EQ(h.percentile_us(0.25), 7u);
}

TEST(HistogramTest, BucketIndexIsMonotoneAndInRange) {
  std::size_t prev = 0;
  for (int bit = 0; bit < 64; ++bit) {
    for (std::uint64_t v :
         {std::uint64_t{1} << bit, (std::uint64_t{1} << bit) + 1}) {
      const std::size_t idx = Histogram::bucket_index(v);
      ASSERT_LT(idx, Histogram::kBucketCount) << "v=" << v;
      ASSERT_GE(idx, prev) << "v=" << v;
      ASSERT_LE(Histogram::bucket_low_us(idx), v) << "v=" << v;
      prev = idx;
    }
  }
}

TEST(HistogramTest, BucketBoundaries) {
  // [0, 32): identity mapping.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(31), 31u);
  // Group 1 starts at index 64 (slots [32, 64) are unused by design).
  EXPECT_EQ(Histogram::bucket_index(32), 64u);
  EXPECT_EQ(Histogram::bucket_index(63), 95u);
  // Group 2: [64, 128) in 32 sub-buckets of width 2.
  EXPECT_EQ(Histogram::bucket_index(64), 96u);
  EXPECT_EQ(Histogram::bucket_index(65), 96u);
  EXPECT_EQ(Histogram::bucket_index(66), 97u);
  // Representative (lower bound) round-trips.
  EXPECT_EQ(Histogram::bucket_low_us(Histogram::bucket_index(64)), 64u);
  EXPECT_EQ(Histogram::bucket_low_us(Histogram::bucket_index(100)), 100u);
}

TEST(HistogramTest, ExtremeValuesStayInBounds) {
  Histogram h;
  h.record_us(std::numeric_limits<std::uint64_t>::max());
  h.record_us(std::uint64_t{1} << 63);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_us(), std::numeric_limits<std::uint64_t>::max());
  // Both land in the top group; the rank-1 percentile reports the bucket
  // lower bound, the rank-2 one the exact maximum.
  EXPECT_EQ(h.percentile_us(1.0), std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramTest, RelativeErrorBoundedBySubBucketWidth) {
  Histogram h;
  const std::uint64_t v = 1'000'000;  // 1 s in us
  h.record_us(v);
  const std::uint64_t low =
      Histogram::bucket_low_us(Histogram::bucket_index(v));
  EXPECT_LE(low, v);
  // Sub-bucket width in v's octave is 2^(group-1); bound is v / 32.
  EXPECT_LE(v - low, v / 32 + 1);
}

TEST(HistogramTest, LastOccupiedBucketReportsExactMax) {
  Histogram h;
  h.record_us(10);
  h.record_us(1'000'003);  // not a bucket boundary
  // p99 rank = ceil(0.99 * 2) = 2 -> lands in the max's bucket -> exact max.
  EXPECT_EQ(h.p99_us(), 1'000'003u);
  EXPECT_EQ(h.p50_us(), 10u);
}

TEST(HistogramTest, RecordClampsNegativeSpans) {
  Histogram h;
  h.record(common::SimTime::micros(-5));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_us(), 0u);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram both;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    (v % 2 == 0 ? a : b).record_us(v * 37);
    both.record_us(v * 37);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum_us(), both.sum_us());
  EXPECT_EQ(a.min_us(), both.min_us());
  EXPECT_EQ(a.max_us(), both.max_us());
  EXPECT_EQ(a.p50_us(), both.p50_us());
  EXPECT_EQ(a.p95_us(), both.p95_us());
  EXPECT_EQ(a.p99_us(), both.p99_us());
}

TEST(HistogramTest, MergeEmptyLeavesStatsUntouched) {
  Histogram a;
  a.record_us(42);
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min_us(), 42u);
  EXPECT_EQ(a.max_us(), 42u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record_us(7);
  h.record_us(1 << 20);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_us(), 0u);
  EXPECT_EQ(h.p50_us(), 0u);
  h.record_us(3);
  EXPECT_EQ(h.min_us(), 3u);
  EXPECT_EQ(h.p50_us(), 3u);
}

TEST(HistogramTest, PercentilesAreExactRankAgainstSortedData) {
  // Cross-check the bucket walk against a brute-force exact-rank answer on
  // sub-32 us data, where buckets are exact.
  Histogram h;
  const std::uint64_t values[] = {3, 3, 5, 9, 9, 9, 14, 20, 20, 31};
  for (std::uint64_t v : values) h.record_us(v);
  // n = 10: rank(0.5) = 5 -> 9; rank(0.95) = 10 -> 31; rank(0.1) = 1 -> 3.
  EXPECT_EQ(h.p50_us(), 9u);
  EXPECT_EQ(h.p95_us(), 31u);
  EXPECT_EQ(h.percentile_us(0.1), 3u);
}

TEST(HistogramTest, NullSinkMacroIsANoOp) {
  Histogram* null_hist = nullptr;
  AH_OBS_RECORD_US(null_hist, 5);
  AH_OBS_RECORD_SPAN(null_hist, common::SimTime::micros(5));
  Histogram h;
  AH_OBS_RECORD_US(&h, 5);
  AH_OBS_RECORD_SPAN(&h, common::SimTime::micros(6));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_us(), 6u);
}

}  // namespace
}  // namespace ah::obs
