#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ah::obs {
namespace {

using common::SimTime;

Span make_span(std::uint64_t id, Hop hop, std::int64_t enqueue_us) {
  Span s;
  s.request_id = id;
  s.node = "n0";
  s.hop = hop;
  s.enqueue = SimTime::micros(enqueue_us);
  s.start = SimTime::micros(enqueue_us + 10);
  s.complete = SimTime::micros(enqueue_us + 35);
  return s;
}

void record(TraceRecorder& rec, const Span& s) {
  rec.record_span(s.request_id, s.hop, s.node, s.enqueue, s.start, s.complete);
}

TEST(TraceRecorderTest, SamplingIsSequenceBased) {
  TraceRecorder rec(/*every_nth=*/4, /*capacity=*/16);
  EXPECT_TRUE(rec.sampled(0));
  EXPECT_FALSE(rec.sampled(1));
  EXPECT_FALSE(rec.sampled(3));
  EXPECT_TRUE(rec.sampled(4));
  EXPECT_TRUE(rec.sampled(400));
  EXPECT_EQ(rec.every_nth(), 4u);
}

TEST(TraceRecorderTest, DegenerateConfigIsClamped) {
  TraceRecorder rec(/*every_nth=*/0, /*capacity=*/0);
  EXPECT_EQ(rec.every_nth(), 1u);
  EXPECT_EQ(rec.capacity(), 1u);
  EXPECT_TRUE(rec.sampled(7));
}

TEST(TraceRecorderTest, RingKeepsMostRecentSpans) {
  TraceRecorder rec(1, /*capacity=*/4);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    record(rec, make_span(id, Hop::kApp, static_cast<std::int64_t>(id) * 100));
  }
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.size(), 4u);
  // Oldest surviving span first: ids 3, 4, 5, 6.
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.span(i).request_id, i + 3) << i;
  }
}

TEST(TraceRecorderTest, PartiallyFilledRingIsOldestFirst) {
  TraceRecorder rec(1, /*capacity=*/8);
  record(rec, make_span(11, Hop::kProxy, 0));
  record(rec, make_span(12, Hop::kDb, 50));
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.span(0).request_id, 11u);
  EXPECT_EQ(rec.span(1).request_id, 12u);
  EXPECT_EQ(rec.span(1).hop, Hop::kDb);
}

TEST(TraceRecorderTest, ResetEmptiesButKeepsCapacity) {
  TraceRecorder rec(1, /*capacity=*/4);
  record(rec, make_span(1, Hop::kProxy, 0));
  rec.reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.capacity(), 4u);
  record(rec, make_span(2, Hop::kApp, 10));
  EXPECT_EQ(rec.span(0).request_id, 2u);
}

TEST(TraceRecorderTest, HopNames) {
  EXPECT_STREQ(hop_name(Hop::kProxy), "proxy");
  EXPECT_STREQ(hop_name(Hop::kApp), "app");
  EXPECT_STREQ(hop_name(Hop::kDb), "db");
}

TEST(TraceRecorderTest, CsvDerivesQueueWaitAndService) {
  TraceRecorder rec(1, 4);
  record(rec, make_span(5, Hop::kDb, 100));
  const std::string path =
      ::testing::TempDir() + "/trace_recorder_test_spans.csv";
  ASSERT_TRUE(rec.write_csv(path));
  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof buf, in) != nullptr) content += buf;
  std::fclose(in);
  std::remove(path.c_str());
  EXPECT_EQ(content,
            "request_id,hop,node,enqueue_us,start_us,complete_us,"
            "queue_wait_us,service_us\n"
            "5,db,n0,100,110,135,10,25\n");
}

TEST(TraceRecorderTest, MacroGatesOnNullAndSampling) {
  TraceRecorder* none = nullptr;
  AH_OBS_TRACE_SPAN(none, 8, Hop::kApp, "n0", SimTime::zero(),
                    SimTime::zero(), SimTime::zero());
  TraceRecorder rec(/*every_nth=*/2, /*capacity=*/4);
  AH_OBS_TRACE_SPAN(&rec, 7, Hop::kApp, "n0", SimTime::zero(),
                    SimTime::zero(), SimTime::zero());  // 7 % 2 != 0: skipped
  AH_OBS_TRACE_SPAN(&rec, 8, Hop::kApp, "n0", SimTime::zero(),
                    SimTime::zero(), SimTime::zero());
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.span(0).request_id, 8u);
}

TEST(TraceRecorderTest, WriteCsvToUnwritablePathFails) {
  TraceRecorder rec(1, 4);
  EXPECT_FALSE(rec.write_csv("/nonexistent-dir/spans.csv"));
}

}  // namespace
}  // namespace ah::obs
