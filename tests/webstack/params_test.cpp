#include "webstack/params.hpp"

#include <gtest/gtest.h>

namespace ah::webstack {
namespace {

TEST(CatalogueTest, Has23Parameters) {
  EXPECT_EQ(parameter_catalogue().size(), 23u);
}

TEST(CatalogueTest, TierSliceSizesMatchPaper) {
  // Table 3: 7 proxy, 7 web, 9 database parameters.
  EXPECT_EQ(catalogue_indices_for(cluster::TierKind::kProxy).size(), 7u);
  EXPECT_EQ(catalogue_indices_for(cluster::TierKind::kApp).size(), 7u);
  EXPECT_EQ(catalogue_indices_for(cluster::TierKind::kDb).size(), 9u);
}

TEST(CatalogueTest, DefaultsMatchPaperTable3) {
  const auto& cat = parameter_catalogue();
  auto default_of = [&](const std::string& name) {
    return cat[catalogue_index(name)].default_value;
  };
  EXPECT_EQ(default_of("cache_mem"), 8);
  EXPECT_EQ(default_of("cache_swap_low"), 90);
  EXPECT_EQ(default_of("cache_swap_high"), 95);
  EXPECT_EQ(default_of("maximum_object_size"), 4096);
  EXPECT_EQ(default_of("minProcessors"), 5);
  EXPECT_EQ(default_of("maxProcessors"), 20);
  EXPECT_EQ(default_of("acceptCount"), 10);
  EXPECT_EQ(default_of("bufferSize"), 2048);
  EXPECT_EQ(default_of("binlog_cache_size"), 32768);
  EXPECT_EQ(default_of("max_connections"), 100);
  EXPECT_EQ(default_of("join_buffer_size"), 8388600);
  EXPECT_EQ(default_of("table_cache"), 64);
  EXPECT_EQ(default_of("thread_con"), 10);
  EXPECT_EQ(default_of("thread_stack"), 65535);
}

TEST(CatalogueTest, BoundsContainDefaults) {
  for (const auto& spec : parameter_catalogue()) {
    EXPECT_LE(spec.min_value, spec.default_value) << spec.name;
    EXPECT_LE(spec.default_value, spec.max_value) << spec.name;
  }
}

TEST(CatalogueTest, BoundsContainPaperTunedValues) {
  // The widest tuned values reported in Table 3 must be reachable.
  const auto& cat = parameter_catalogue();
  auto check = [&](const std::string& name, std::int64_t tuned) {
    const auto& spec = cat[catalogue_index(name)];
    EXPECT_GE(tuned, spec.min_value) << name;
    EXPECT_LE(tuned, spec.max_value) << name;
  };
  check("cache_mem", 21);
  check("maximum_object_size_in_memory", 2560);
  check("store_objects_per_bucket", 105);
  check("minProcessors", 102);
  check("maxProcessors", 131);
  check("acceptCount", 671);
  check("AJPmaxProcessors", 296);
  check("binlog_cache_size", 284672);
  check("max_connections", 701);
  check("table_cache", 905);
  check("thread_con", 91);
  check("thread_stack", 1018880);
}

TEST(CatalogueTest, UnknownNameThrows) {
  EXPECT_THROW(static_cast<void>(catalogue_index("no_such_param")),
               std::out_of_range);
}

TEST(CatalogueTest, DefaultValuesVectorAligned) {
  const auto values = default_values();
  ASSERT_EQ(values.size(), 23u);
  const auto& cat = parameter_catalogue();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], cat[i].default_value);
  }
}

TEST(ParamDecodeTest, ProxyFromDefaults) {
  const auto p = proxy_from_values(default_values());
  EXPECT_EQ(p.cache_mem, 8LL * 1024 * 1024);
  EXPECT_EQ(p.cache_swap_low, 90);
  EXPECT_EQ(p.cache_swap_high, 95);
  EXPECT_EQ(p.maximum_object_size, 4096LL * 1024);
  EXPECT_EQ(p.minimum_object_size, 0);
  EXPECT_EQ(p.maximum_object_size_in_memory, 8LL * 1024);
  EXPECT_EQ(p.store_objects_per_bucket, 20);
}

TEST(ParamDecodeTest, AppFromDefaults) {
  const auto a = app_from_values(default_values());
  EXPECT_EQ(a.min_processors, 5);
  EXPECT_EQ(a.max_processors, 20);
  EXPECT_EQ(a.accept_count, 10);
  EXPECT_EQ(a.buffer_size, 2048);
  EXPECT_EQ(a.ajp_min_processors, 5);
  EXPECT_EQ(a.ajp_max_processors, 20);
  EXPECT_EQ(a.ajp_accept_count, 10);
}

TEST(ParamDecodeTest, DbFromDefaults) {
  const auto d = db_from_values(default_values());
  EXPECT_EQ(d.binlog_cache_size, 32768);
  EXPECT_EQ(d.delayed_insert_limit, 100);
  EXPECT_EQ(d.max_connections, 100);
  EXPECT_EQ(d.delayed_queue_size, 1000);
  EXPECT_EQ(d.join_buffer_size, 8388600);
  EXPECT_EQ(d.net_buffer_length, 16384);
  EXPECT_EQ(d.table_cache, 64);
  EXPECT_EQ(d.thread_concurrency, 10);
  EXPECT_EQ(d.thread_stack, 65535);
}

TEST(ParamDecodeTest, WrongSizeThrows) {
  std::vector<std::int64_t> wrong(5, 1);
  EXPECT_THROW((void)proxy_from_values(wrong), std::invalid_argument);
  EXPECT_THROW((void)app_from_values(wrong), std::invalid_argument);
  EXPECT_THROW((void)db_from_values(wrong), std::invalid_argument);
}

TEST(ParamDecodeTest, RoundTripThroughToValues) {
  auto values = default_values();
  values[catalogue_index("cache_mem")] = 21;
  values[catalogue_index("maxProcessors")] = 131;
  values[catalogue_index("thread_con")] = 91;
  const auto p = proxy_from_values(values);
  const auto a = app_from_values(values);
  const auto d = db_from_values(values);
  EXPECT_EQ(to_values(p, a, d), values);
}

TEST(ParamDecodeTest, UnitConversions) {
  auto values = default_values();
  values[catalogue_index("cache_mem")] = 16;              // MB
  values[catalogue_index("maximum_object_size")] = 2048;  // KB
  const auto p = proxy_from_values(values);
  EXPECT_EQ(p.cache_mem, 16LL * 1024 * 1024);
  EXPECT_EQ(p.maximum_object_size, 2048LL * 1024);
}

}  // namespace
}  // namespace ah::webstack
