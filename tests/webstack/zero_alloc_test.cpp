// Asserts the zero-allocation property of the steady-state request path.
//
// A global operator-new hook counts heap allocations while a warmed-up
// miniature deployment (client -> frontend -> proxy -> app -> db and back)
// serves requests.  After warm-up every pool, ring buffer and cache slab has
// reached its high-water capacity, so a steady-state request must complete
// without a single heap allocation.  This test lives in its own executable
// because the hook is process-global.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "ctrl/admission_controller.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "webstack/router.hpp"

namespace {

std::atomic<bool> g_track{false};
std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t n) {
  if (g_track.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return operator new(n); }

// The replacement operator new above allocates with malloc, so freeing with
// std::free is the matching deallocation; GCC cannot see through the
// replacement and reports a false mismatched-new-delete pair.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ah::webstack {
namespace {

using common::SimTime;

class ZeroAllocTest : public ::testing::Test {
 protected:
  ZeroAllocTest()
      : net_(sim_),
        frontend_(sim_, cluster::BalancePolicy::kRoundRobin),
        app_router_(net_, cluster::BalancePolicy::kRoundRobin),
        db_router_(net_, cluster::BalancePolicy::kRoundRobin) {}

  cluster::Node& add_node(const std::string& name) {
    nodes_.push_back(std::make_unique<cluster::Node>(
        sim_, static_cast<cluster::NodeId>(nodes_.size()), name,
        cluster::NodeHardware{}));
    return *nodes_.back();
  }

  void build_cluster() {
    auto& pnode = add_node("p0");
    auto& anode = add_node("a0");
    auto& dnode = add_node("d0");
    dbs_.push_back(std::make_unique<DbServer>(sim_, dnode, DbParams{}));
    db_router_.add_backend(dbs_.back().get());
    apps_.push_back(std::make_unique<AppServer>(
        sim_, anode,
        [this](const DbQuery& q, cluster::Node& from, DbResultFn done) {
          db_router_.route(q, from, std::move(done));
        },
        AppParams{}));
    app_router_.add_backend(apps_.back().get());
    proxies_.push_back(std::make_unique<ProxyServer>(
        sim_, pnode,
        [this](const Request& r, cluster::Node& from, ResponseFn done) {
          app_router_.route(r, from, std::move(done));
        },
        ProxyParams{}));
    frontend_.add_backend(proxies_.back().get());
  }

  Request make_request(const RequestProfile& profile) {
    Request r;
    r.id = next_id_++;
    r.profile = &profile;
    r.object_id = r.id % 16;  // small working set => warm cache slab
    r.response_bytes = 8192;
    r.issued_at = sim_.now();
    return r;
  }

  /// Routes one request through the full stack and runs it to completion.
  /// Returns whether it succeeded.
  bool run_one(const RequestProfile& profile) {
    bool ok = false;
    frontend_.route(make_request(profile),
                    [&ok](const Response& r) { ok = r.ok; });
    sim_.run();
    return ok;
  }

  sim::Simulator sim_;
  cluster::Network net_;
  FrontendRouter frontend_;
  AppTierRouter app_router_;
  DbTierRouter db_router_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::vector<std::unique_ptr<ProxyServer>> proxies_;
  std::vector<std::unique_ptr<AppServer>> apps_;
  std::vector<std::unique_ptr<DbServer>> dbs_;
  std::uint64_t next_id_ = 1;
};

TEST_F(ZeroAllocTest, SteadyStateRequestPathDoesNotAllocate) {
  RequestProfile dynamic_db;
  dynamic_db.name = "dyn-db";
  dynamic_db.cacheable = false;
  dynamic_db.app_cpu = SimTime::millis(2);
  dynamic_db.queries[0] = 2;
  dynamic_db.queries[1] = 1;

  RequestProfile cacheable;
  cacheable.name = "static";
  cacheable.cacheable = true;
  cacheable.app_cpu = SimTime::millis(1);

  build_cluster();

  // Warm-up: grow every pool, ring buffer and cache structure to its
  // steady-state footprint.  The db server draws from its RNG, so different
  // branches (I/O, binlog, table miss) all get exercised.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(run_one(dynamic_db));
    ASSERT_TRUE(run_one(cacheable));
  }

  // Measure: the proxy -> app -> db round trip must be allocation-free.
  g_allocs.store(0);
  g_track.store(true);
  constexpr int kMeasured = 100;
  int served = 0;
  for (int i = 0; i < kMeasured; ++i) {
    if (run_one(dynamic_db)) ++served;
    if (run_one(cacheable)) ++served;
  }
  g_track.store(false);

  EXPECT_EQ(served, 2 * kMeasured);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "steady-state requests performed heap allocations";
}

TEST_F(ZeroAllocTest, AdmissionControlledPathDoesNotAllocate) {
  // Same steady-state property with the admission controller attached and
  // actively shedding: the per-request admit() hash, the observe() window
  // stores, the periodic control tick, and both shed outcomes (serve-stale
  // for cacheable traffic, fast-fail for the rest) must all be pure
  // arithmetic on pre-sized state.
  RequestProfile dynamic_db;
  dynamic_db.name = "dyn-db";
  dynamic_db.cacheable = false;
  dynamic_db.app_cpu = SimTime::millis(2);
  dynamic_db.queries[0] = 2;
  dynamic_db.queries[1] = 1;

  RequestProfile cacheable;
  cacheable.name = "static";
  cacheable.cacheable = true;
  cacheable.app_cpu = SimTime::millis(1);

  build_cluster();

  ctrl::AdmissionController::Config config;
  // Target far below the achievable latency: every window breaches, so the
  // loop walks the admit fraction down and keeps shedding throughout.
  config.target_p95 = SimTime::millis(1);
  config.period = SimTime::seconds(1.0);
  config.min_samples = 2;  // this harness trickles ~4 requests per period
  ctrl::AdmissionController controller(sim_, config);
  proxies_.back()->set_admission(&controller,
                                 ProxyServer::ShedMode::kServeStale);
  controller.start();

  // The started controller re-arms a tick every period, so the event queue
  // never drains; advance in bounded slices instead of sim_.run().
  auto run_timed = [this](const RequestProfile& profile) {
    bool completed = false;
    frontend_.route(make_request(profile),
                    [&completed](const Response&) { completed = true; });
    sim_.run_until(sim_.now() + SimTime::millis(250));
    return completed;
  };

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(run_timed(cacheable));
    ASSERT_TRUE(run_timed(dynamic_db));
  }
  ASSERT_LT(controller.admit_fraction(), 1.0);  // warm-up ended shedding

  const std::uint64_t shed_before = controller.shed();
  const std::uint64_t ticks_before = controller.ticks();
  g_allocs.store(0);
  g_track.store(true);
  constexpr int kMeasured = 100;
  int completed = 0;
  for (int i = 0; i < kMeasured; ++i) {
    if (run_timed(cacheable)) ++completed;
    if (run_timed(dynamic_db)) ++completed;
  }
  g_track.store(false);
  controller.stop();

  EXPECT_EQ(completed, 2 * kMeasured);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "admission-controlled requests performed heap allocations";
  // Prove both controller paths actually ran during the measured window.
  EXPECT_GT(controller.shed(), shed_before);
  EXPECT_GT(controller.admitted(), 0u);
  EXPECT_GT(controller.ticks(), ticks_before);
}

TEST_F(ZeroAllocTest, TelemetryRecordingDoesNotAllocate) {
  // Same steady-state property with the full telemetry layer switched on:
  // hop histograms on every router and a span recorder sampling every
  // request.  The trace slab is sized at construction and histogram octave
  // pages are faulted in during warm-up, so steady-state recording must be
  // pure stores/increments.
  RequestProfile dynamic_db;
  dynamic_db.name = "dyn-db";
  dynamic_db.cacheable = false;
  dynamic_db.app_cpu = SimTime::millis(2);
  dynamic_db.queries[0] = 2;
  dynamic_db.queries[1] = 1;

  build_cluster();

  obs::Histogram frontend_hist;
  obs::Histogram app_hist;
  obs::Histogram db_hist;
  frontend_.set_hop_histogram(&frontend_hist);
  app_router_.set_hop_histogram(&app_hist);
  db_router_.set_hop_histogram(&db_hist);
  // Capacity above the measured request count: the ring never wraps here,
  // but wrapping would also be allocation-free (modular cursor on a slab).
  obs::TraceRecorder trace(/*every_nth=*/1, /*capacity=*/1024);
  proxies_.back()->set_trace(&trace);
  apps_.back()->set_trace(&trace);
  dbs_.back()->set_trace(&trace);

  for (int i = 0; i < 200; ++i) ASSERT_TRUE(run_one(dynamic_db));

  const std::uint64_t hist_before = frontend_hist.count();
  const std::uint64_t spans_before = trace.recorded();
  g_allocs.store(0);
  g_track.store(true);
  constexpr int kMeasured = 100;
  int served = 0;
  for (int i = 0; i < kMeasured; ++i) {
    if (run_one(dynamic_db)) ++served;
  }
  g_track.store(false);

  EXPECT_EQ(served, kMeasured);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "telemetry recording performed heap allocations";
  // Prove the telemetry actually ran during the measured window.
  EXPECT_EQ(frontend_hist.count(), hist_before + kMeasured);
  EXPECT_EQ(app_hist.count(), frontend_hist.count());
  EXPECT_GE(trace.recorded(), spans_before + 3 * kMeasured);
}

}  // namespace
}  // namespace ah::webstack
