#include "webstack/router.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ah::webstack {
namespace {

using common::SimTime;

/// A full miniature deployment: 1 proxy node, N app nodes, 1 db node.
class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : net_(sim_),
        frontend_(sim_, cluster::BalancePolicy::kRoundRobin),
        app_router_(net_, cluster::BalancePolicy::kRoundRobin),
        db_router_(net_, cluster::BalancePolicy::kRoundRobin) {}

  cluster::Node& add_node(const std::string& name) {
    nodes_.push_back(std::make_unique<cluster::Node>(
        sim_, static_cast<cluster::NodeId>(nodes_.size()), name,
        cluster::NodeHardware{}));
    return *nodes_.back();
  }

  AppServer& add_app(cluster::Node& node) {
    apps_.push_back(std::make_unique<AppServer>(
        sim_, node,
        [this](const DbQuery& q, cluster::Node& from, DbResultFn done) {
          db_router_.route(q, from, std::move(done));
        },
        AppParams{}));
    app_router_.add_backend(apps_.back().get());
    return *apps_.back();
  }

  DbServer& add_db(cluster::Node& node) {
    dbs_.push_back(std::make_unique<DbServer>(sim_, node, DbParams{}));
    db_router_.add_backend(dbs_.back().get());
    return *dbs_.back();
  }

  ProxyServer& add_proxy(cluster::Node& node) {
    proxies_.push_back(std::make_unique<ProxyServer>(
        sim_, node,
        [this](const Request& r, cluster::Node& from, ResponseFn done) {
          app_router_.route(r, from, std::move(done));
        },
        ProxyParams{}));
    frontend_.add_backend(proxies_.back().get());
    return *proxies_.back();
  }

  Request make_request(bool needs_db) {
    static RequestProfile dynamic_db = [] {
      RequestProfile p;
      p.name = "dyn-db";
      p.cacheable = false;
      p.app_cpu = SimTime::millis(2);
      p.queries[0] = 2;
      return p;
    }();
    static RequestProfile dynamic_nodb = [] {
      RequestProfile p;
      p.name = "dyn";
      p.cacheable = false;
      p.app_cpu = SimTime::millis(2);
      return p;
    }();
    Request r;
    r.id = next_id_++;
    r.profile = needs_db ? &dynamic_db : &dynamic_nodb;
    r.object_id = r.id;
    r.response_bytes = 8192;
    r.issued_at = sim_.now();
    return r;
  }

  sim::Simulator sim_;
  cluster::Network net_;
  FrontendRouter frontend_;
  AppTierRouter app_router_;
  DbTierRouter db_router_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::vector<std::unique_ptr<ProxyServer>> proxies_;
  std::vector<std::unique_ptr<AppServer>> apps_;
  std::vector<std::unique_ptr<DbServer>> dbs_;
  std::uint64_t next_id_ = 1;
};

TEST_F(RouterTest, EndToEndThroughAllTiers) {
  add_proxy(add_node("p0"));
  add_app(add_node("a0"));
  add_db(add_node("d0"));
  Response out;
  frontend_.route(make_request(true), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.origin, Response::Origin::kDb);
  EXPECT_EQ(dbs_[0]->stats().queries, 2u);
}

TEST_F(RouterTest, EmptyFrontendFailsFast) {
  Response out{true, Response::Origin::kApp, 1};
  frontend_.route(make_request(false), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_FALSE(out.ok);
}

TEST_F(RouterTest, EmptyAppTierFailsThroughProxy) {
  add_proxy(add_node("p0"));
  Response out;
  frontend_.route(make_request(false), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_FALSE(out.ok);
}

TEST_F(RouterTest, EmptyDbTierFailsThroughApp) {
  add_proxy(add_node("p0"));
  add_app(add_node("a0"));
  Response out;
  frontend_.route(make_request(true), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_FALSE(out.ok);
}

TEST_F(RouterTest, RoundRobinSpreadsAcrossAppNodes) {
  add_proxy(add_node("p0"));
  add_app(add_node("a0"));
  add_app(add_node("a1"));
  add_db(add_node("d0"));
  for (int i = 0; i < 10; ++i) {
    frontend_.route(make_request(false), [](const Response&) {});
    sim_.run();
  }
  EXPECT_EQ(apps_[0]->stats().served, 5u);
  EXPECT_EQ(apps_[1]->stats().served, 5u);
}

TEST_F(RouterTest, RemoveBackendStopsNewTraffic) {
  add_proxy(add_node("p0"));
  add_app(add_node("a0"));
  add_app(add_node("a1"));
  add_db(add_node("d0"));
  EXPECT_TRUE(app_router_.remove_backend(apps_[0].get()));
  for (int i = 0; i < 4; ++i) {
    frontend_.route(make_request(false), [](const Response&) {});
    sim_.run();
  }
  EXPECT_EQ(apps_[0]->stats().served, 0u);
  EXPECT_EQ(apps_[1]->stats().served, 4u);
}

TEST_F(RouterTest, RemoveUnknownBackendReturnsFalse) {
  add_proxy(add_node("p0"));
  auto& node = add_node("ax");
  AppServer orphan(
      sim_, node,
      [](const DbQuery&, cluster::Node&, DbResultFn done) {
        done(DbResult{true});
      },
      AppParams{});
  EXPECT_FALSE(app_router_.remove_backend(&orphan));
}

TEST_F(RouterTest, NetworkChargesSenderNics) {
  add_proxy(add_node("p0"));
  add_app(add_node("a0"));
  add_db(add_node("d0"));
  frontend_.route(make_request(true), [](const Response&) {});
  sim_.run();
  // proxy NIC: forward to app + response to client; app NIC: queries +
  // response; db NIC: results.
  EXPECT_GT(nodes_[0]->nic().completed(), 0u);
  EXPECT_GT(nodes_[1]->nic().completed(), 0u);
  EXPECT_GT(nodes_[2]->nic().completed(), 0u);
}

TEST_F(RouterTest, ClientLatencyAddsRoundTrip) {
  add_proxy(add_node("p0"));
  add_app(add_node("a0"));
  add_db(add_node("d0"));
  SimTime done_at;
  frontend_.route(make_request(false),
                  [&](const Response&) { done_at = sim_.now(); });
  sim_.run();
  // At least two client-latency hops (300us each) plus service.
  EXPECT_GE(done_at, SimTime::micros(600));
}

TEST_F(RouterTest, BackendCountsTrackAddRemove) {
  EXPECT_EQ(frontend_.backend_count(), 0u);
  auto& proxy = add_proxy(add_node("p0"));
  EXPECT_EQ(frontend_.backend_count(), 1u);
  EXPECT_TRUE(frontend_.remove_backend(&proxy));
  EXPECT_EQ(frontend_.backend_count(), 0u);
}

}  // namespace
}  // namespace ah::webstack
