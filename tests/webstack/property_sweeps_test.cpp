// Property-style sweeps across the tunable-parameter catalogue: the
// qualitative response directions the tuner relies on must hold for every
// value in a parameter's range, not just the defaults the unit tests pin.
#include <gtest/gtest.h>

#include "../support/parked.hpp"

#include "webstack/db_server.hpp"
#include "webstack/proxy_server.hpp"

namespace ah::webstack {
namespace {

using common::SimTime;

// -- Database monotonicity ----------------------------------------------

/// Runs `count` queries of one class against a fresh DbServer configured by
/// `params` and returns the total completion time.
SimTime db_total_time(const DbParams& params, QueryClass cls, int count,
                      std::uint64_t seed = 17) {
  sim::Simulator sim;
  cluster::Node node(sim, 0, "db", {});
  DbServer db(sim, node, params, seed);
  SimTime last = SimTime::zero();
  for (int i = 0; i < count; ++i) {
    DbQuery query;
    query.cls = cls;
    query.table_id = static_cast<std::uint64_t>(i % 8);
    query.result_bytes = 1024;
    db.execute(query, [&](const DbResult& r) {
      EXPECT_TRUE(r.ok);
      last = sim.now();
    });
  }
  sim.run();
  return last;
}

class BinlogCacheSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BinlogCacheSweep, LargerCacheNeverSlowsUpdates) {
  DbParams small;
  small.binlog_cache_size = GetParam();
  DbParams large;
  large.binlog_cache_size = GetParam() * 8;
  const auto t_small = db_total_time(small, QueryClass::kUpdate, 150);
  const auto t_large = db_total_time(large, QueryClass::kUpdate, 150);
  // Monotone response direction; the tolerance absorbs the lognormal
  // transaction-size jitter (spill thresholds make different runs spill
  // different transactions).
  EXPECT_LE(t_large.as_seconds(), t_small.as_seconds() * 1.15)
      << "binlog_cache_size=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinlogCacheSweep,
                         ::testing::Values(4096, 16384, 32768, 131072));

class TableCacheSweep : public ::testing::TestWithParam<int> {};

TEST_P(TableCacheSweep, LargerTableCacheNeverIncreasesMisses) {
  auto run = [](int table_cache) {
    sim::Simulator sim;
    cluster::Node node(sim, 0, "db", {});
    DbParams params;
    params.table_cache = table_cache;
    params.thread_concurrency = 64;
    params.max_connections = 64;
    DbServer db(sim, node, params, 23);
    for (int i = 0; i < 300; ++i) {
      DbQuery query;
      query.cls = QueryClass::kSelectSimple;
      query.table_id = static_cast<std::uint64_t>(i % 8);
      db.execute(query, [](const DbResult&) {});
    }
    sim.run();
    return db.stats().table_cache_misses;
  };
  const auto misses_small = run(GetParam());
  const auto misses_large = run(GetParam() * 8);
  EXPECT_LE(misses_large, misses_small) << "table_cache=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableCacheSweep,
                         ::testing::Values(16, 32, 64, 128));

class ThreadConcurrencySweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadConcurrencySweep, MoreExecutorsNeverSlowBatch) {
  // table_cache must be roomy here: raising thread_con with the default
  // table_cache increases descriptor pressure and can legitimately slow
  // the batch — the coupling that makes the paper tune thread_con and
  // table_cache together (see TableCacheSweep for that direction).
  DbParams low;
  low.thread_concurrency = GetParam();
  low.table_cache = 2048;
  DbParams high;
  high.thread_concurrency = GetParam() * 4;
  high.table_cache = 2048;
  const auto t_low = db_total_time(low, QueryClass::kSelectSimple, 120);
  const auto t_high = db_total_time(high, QueryClass::kSelectSimple, 120);
  EXPECT_LE(t_high.as_seconds(), t_low.as_seconds() * 1.05)
      << "thread_con=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Concurrency, ThreadConcurrencySweep,
                         ::testing::Values(1, 2, 5, 10));

// -- Proxy cache response directions --------------------------------------

struct ProxyCacheCase {
  common::Bytes cache_mem;
  common::Bytes max_in_mem;
};

class ProxyCacheSweep : public ::testing::TestWithParam<ProxyCacheCase> {};

TEST_P(ProxyCacheSweep, MemoryHitsNeverDecreaseWithBiggerCache) {
  auto run = [](const ProxyCacheCase& cache_case) {
    sim::Simulator sim;
    cluster::Node node(sim, 0, "p", {});
    ProxyParams params;
    params.cache_mem = cache_case.cache_mem;
    params.maximum_object_size_in_memory = cache_case.max_in_mem;
    ProxyServer proxy(
        sim, node,
        [&sim](const Request& r, cluster::Node&, ResponseFn done) {
          sim.schedule(SimTime::millis(5),
                       [bytes = r.response_bytes,
                        done = test::park(std::move(done))]() mutable {
            (*done)(Response{true, Response::Origin::kApp, bytes});
          });
        },
        params);
    static RequestProfile profile = [] {
      RequestProfile p;
      p.name = "page";
      p.cacheable = true;
      p.proxy_cpu = SimTime::micros(200);
      return p;
    }();
    // 600 requests over 50 objects of ~10 KB, Zipf-ish skew via modulo
    // powers.
    std::uint64_t id = 1;
    for (int i = 0; i < 600; ++i) {
      Request request;
      request.id = id++;
      request.profile = &profile;
      request.object_id = static_cast<std::uint64_t>((i * i) % 50);
      request.response_bytes = 10 * 1024;
      proxy.handle(request, [](const Response&) {});
      sim.run();
    }
    return proxy.stats().mem_hits;
  };

  const ProxyCacheCase base = GetParam();
  const ProxyCacheCase bigger{base.cache_mem * 4, base.max_in_mem * 4};
  EXPECT_GE(run(bigger), run(base))
      << "cache_mem=" << base.cache_mem << " max_in_mem=" << base.max_in_mem;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ProxyCacheSweep,
    ::testing::Values(ProxyCacheCase{256 * 1024, 4 * 1024},
                      ProxyCacheCase{1024 * 1024, 8 * 1024},
                      ProxyCacheCase{4 * 1024 * 1024, 16 * 1024}));

// -- Swap watermarks: the paper's negative finding -------------------------

class SwapWatermarkSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SwapWatermarkSweep, WatermarksAreNearInert) {
  auto run = [](int low, int high) {
    sim::Simulator sim;
    cluster::Node node(sim, 0, "p", {});
    ProxyParams params;
    params.cache_swap_low = low;
    params.cache_swap_high = high;
    ProxyServer proxy(
        sim, node,
        [&sim](const Request& r, cluster::Node&, ResponseFn done) {
          sim.schedule(SimTime::millis(5),
                       [bytes = r.response_bytes,
                        done = test::park(std::move(done))]() mutable {
            (*done)(Response{true, Response::Origin::kApp, bytes});
          });
        },
        params);
    static RequestProfile profile = [] {
      RequestProfile p;
      p.name = "page";
      p.cacheable = true;
      p.proxy_cpu = SimTime::micros(200);
      return p;
    }();
    for (int i = 0; i < 400; ++i) {
      Request request;
      request.id = static_cast<std::uint64_t>(i + 1);
      request.profile = &profile;
      request.object_id = static_cast<std::uint64_t>(i % 60);
      request.response_bytes = 6 * 1024;
      proxy.handle(request, [](const Response&) {});
      sim.run();
    }
    return sim.now();
  };
  const auto [low, high] = GetParam();
  const auto t_default = run(90, 95);
  const auto t_other = run(low, high);
  // Within 5%: the knobs exist and work but do not move performance —
  // matching the paper's finding for cache_swap_low/high.
  EXPECT_NEAR(t_other.as_seconds() / t_default.as_seconds(), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Marks, SwapWatermarkSweep,
                         ::testing::Values(std::pair{50, 60},
                                           std::pair{70, 90},
                                           std::pair{94, 99}));

}  // namespace
}  // namespace ah::webstack
